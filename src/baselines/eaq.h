#ifndef KGAQ_BASELINES_EAQ_H_
#define KGAQ_BASELINES_EAQ_H_

#include "baselines/baseline_util.h"
#include "common/status.h"
#include "embedding/embedding_model.h"
#include "kg/knowledge_graph.h"
#include "query/query_graph.h"

namespace kgaq {

/// EAQ-style link-prediction aggregator (Li, Ge, Chen — ICDE'20).
///
/// EAQ collects candidate entities by *predicting* the query edge with the
/// KG embedding: every type-matched candidate u in the n-bounded scope is
/// scored with ScoreTriple(u_s, predicate, u), and candidates above an
/// adaptive threshold (mean + z_margin * sigma of candidate scores) are
/// taken as answers. It performs no edge-to-path mapping, so semantically
/// valid multi-hop answers score poorly — matching its ~15-20% errors in
/// Tables VI/VII. Like the original system, only simple queries are
/// supported (Unimplemented otherwise) and no error bound is offered.
class Eaq {
 public:
  struct Options {
    int n_hops = 3;
    /// Score threshold offset in candidate-score standard deviations.
    double z_margin = 0.0;
  };

  Eaq(const KnowledgeGraph& g, const EmbeddingModel& model)
      : Eaq(g, model, Options()) {}
  Eaq(const KnowledgeGraph& g, const EmbeddingModel& model, Options options);

  Result<BaselineResult> Execute(const AggregateQuery& query) const;

 private:
  const KnowledgeGraph* g_;
  const EmbeddingModel* model_;
  Options options_;
};

}  // namespace kgaq

#endif  // KGAQ_BASELINES_EAQ_H_
