#include "baselines/ssb.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/timer.h"
#include "embedding/predicate_similarity.h"
#include "semsim/path_enumerator.h"

namespace kgaq {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}  // namespace

Ssb::Ssb(const KnowledgeGraph& g, const EmbeddingModel& model,
         Options options)
    : g_(&g), model_(&model), options_(options) {}

Result<std::unordered_map<NodeId, double>> Ssb::BranchSimilarities(
    const QueryBranch& branch) const {
  const NodeId us = g_->FindNodeByName(branch.specific_name);
  if (us == kInvalidId) {
    return Status::NotFound("specific node '" + branch.specific_name +
                            "' not found");
  }

  // Per (node, cumulative length): max cumulative log-sum over all
  // multi-stage simple-path compositions. Stage maxima per exact length
  // compose exactly because log-sums are additive (see
  // PathEnumerator::BestLogSumsByLength).
  std::unordered_map<NodeId, std::vector<double>> frontier;
  frontier.emplace(us, std::vector<double>{0.0});  // length 0, log-sum 0

  for (size_t s = 0; s < branch.hops.size(); ++s) {
    const QueryHop& hop = branch.hops[s];
    const PredicateId pred = g_->PredicateIdOf(hop.predicate);
    if (pred == kInvalidId) {
      return Status::NotFound("query predicate '" + hop.predicate +
                              "' is unknown to the KG embedding");
    }
    PredicateSimilarityCache sims(*model_, pred);
    std::vector<TypeId> hop_types;
    for (const auto& t : hop.node_types) {
      TypeId id = g_->TypeIdOf(t);
      if (id != kInvalidId) hop_types.push_back(id);
    }

    std::unordered_map<NodeId, std::vector<double>> next;
    for (const auto& [root, lengths] : frontier) {
      auto stage = PathEnumerator::BestLogSumsByLength(
          *g_, root, options_.n_hops, sims);
      for (const auto& [v, stage_row] : stage) {
        bool type_ok = false;
        for (TypeId t : hop_types) {
          if (g_->HasType(v, t)) {
            type_ok = true;
            break;
          }
        }
        if (!type_ok) continue;
        for (size_t l1 = 0; l1 < lengths.size(); ++l1) {
          if (lengths[l1] == kNegInf) continue;
          for (size_t l2 = 1; l2 < stage_row.size(); ++l2) {
            if (stage_row[l2] == kNegInf) continue;
            const size_t len = l1 + l2;
            auto [it, inserted] = next.try_emplace(
                v, (s + 1) * static_cast<size_t>(options_.n_hops) + 1,
                kNegInf);
            auto& row = it->second;
            const double log_sum = lengths[l1] + stage_row[l2];
            if (log_sum > row[len]) row[len] = log_sum;
          }
        }
      }
    }
    frontier = std::move(next);
  }

  std::unordered_map<NodeId, double> out;
  out.reserve(frontier.size());
  for (const auto& [v, lengths] : frontier) {
    double best = 0.0;
    for (size_t len = 1; len < lengths.size(); ++len) {
      if (lengths[len] == kNegInf) continue;
      best = std::max(best,
                      std::exp(lengths[len] / static_cast<double>(len)));
    }
    if (best > 0.0) out.emplace(v, best);
  }
  return out;
}

Result<BaselineResult> Ssb::Execute(const AggregateQuery& query) const {
  WallTimer timer;
  KGAQ_RETURN_IF_ERROR(query.Validate(*g_));

  // tau-relevant correct answers must reach tau in every branch
  // (intersection semantics for complex shapes, §V-B).
  std::unordered_map<NodeId, double> min_sim;
  for (size_t bi = 0; bi < query.query.branches.size(); ++bi) {
    auto sims = BranchSimilarities(query.query.branches[bi]);
    if (!sims.ok()) return sims.status();
    if (bi == 0) {
      min_sim = std::move(*sims);
    } else {
      std::unordered_map<NodeId, double> merged;
      for (const auto& [node, s] : min_sim) {
        auto it = sims->find(node);
        if (it != sims->end()) {
          merged.emplace(node, std::min(s, it->second));
        }
      }
      min_sim = std::move(merged);
    }
  }

  std::vector<NodeId> correct;
  for (const auto& [node, s] : min_sim) {
    if (s >= options_.tau) correct.push_back(node);
  }
  std::sort(correct.begin(), correct.end());

  BaselineResult out = AggregateOverAnswers(*g_, query, std::move(correct));
  out.millis = timer.ElapsedMillis();
  return out;
}

}  // namespace kgaq
