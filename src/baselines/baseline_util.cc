#include "baselines/baseline_util.h"

#include <algorithm>
#include <cmath>

namespace kgaq {

bool NodeHasAnyType(const KnowledgeGraph& g, NodeId u,
                    const std::vector<TypeId>& types) {
  for (TypeId t : types) {
    if (g.HasType(u, t)) return true;
  }
  return false;
}

std::vector<TypeId> ResolveTypeIds(const KnowledgeGraph& g,
                                   const std::vector<std::string>& names) {
  std::vector<TypeId> out;
  for (const auto& name : names) {
    TypeId id = g.TypeIdOf(name);
    if (id != kInvalidId) out.push_back(id);
  }
  return out;
}

BaselineResult AggregateOverAnswers(const KnowledgeGraph& g,
                                    const AggregateQuery& query,
                                    std::vector<NodeId> answers) {
  BaselineResult out;

  const AttributeId value_attr =
      query.attribute.empty() ? kInvalidId : g.AttributeIdOf(query.attribute);
  const bool needs_value =
      query.function != AggregateFunction::kCount && value_attr != kInvalidId;
  std::vector<std::pair<AttributeId, const Filter*>> filters;
  for (const Filter& f : query.filters) {
    filters.emplace_back(g.AttributeIdOf(f.attribute), &f);
  }
  const AttributeId group_attr = query.group_by.enabled()
                                     ? g.AttributeIdOf(query.group_by.attribute)
                                     : kInvalidId;

  std::vector<double> values;
  std::map<int64_t, std::vector<double>> group_values;
  for (NodeId u : answers) {
    bool keep = true;
    for (const auto& [attr, f] : filters) {
      auto v = g.Attribute(u, attr);
      if (attr == kInvalidId || !v.has_value() || *v < f->lower ||
          *v > f->upper) {
        keep = false;
        break;
      }
    }
    if (!keep) continue;
    double value = 0.0;
    if (needs_value) {
      auto v = g.Attribute(u, value_attr);
      if (!v.has_value()) continue;
      value = *v;
    }
    if (group_attr != kInvalidId) {
      auto v = g.Attribute(u, group_attr);
      if (!v.has_value()) continue;
      const int64_t key = static_cast<int64_t>(
          std::floor(*v / query.group_by.bucket_width));
      group_values[key].push_back(value);
    }
    values.push_back(value);
    out.answers.push_back(u);
  }

  out.value = ApplyAggregate(query.function, values);
  for (auto& [key, vals] : group_values) {
    out.group_values[key] = ApplyAggregate(query.function, vals);
  }
  return out;
}

}  // namespace kgaq
