#ifndef KGAQ_BASELINES_BASELINE_UTIL_H_
#define KGAQ_BASELINES_BASELINE_UTIL_H_

#include <map>
#include <vector>

#include "common/status.h"
#include "kg/knowledge_graph.h"
#include "query/query_graph.h"

namespace kgaq {

/// Result shape shared by every exact / factoid-query baseline: a concrete
/// answer set with the aggregate computed over it.
struct BaselineResult {
  double value = 0.0;
  std::vector<NodeId> answers;
  /// GROUP-BY buckets (bucket key -> aggregate), when requested.
  std::map<int64_t, double> group_values;
  double millis = 0.0;
};

/// Applies the query's filters / attribute requirements to a raw answer
/// set and computes f_a (and GROUP-BY buckets) over the survivors —
/// the "additional aggregate operation" the paper appends to factoid
/// queries (Fig. 1b). Answers missing a required aggregate or GROUP-BY
/// attribute are dropped, mirroring the approximate engine's validation.
BaselineResult AggregateOverAnswers(const KnowledgeGraph& g,
                                    const AggregateQuery& query,
                                    std::vector<NodeId> answers);

/// True iff `u` carries at least one of the (resolved) `types`.
bool NodeHasAnyType(const KnowledgeGraph& g, NodeId u,
                    const std::vector<TypeId>& types);

/// Resolves type names to ids, dropping unknown names.
std::vector<TypeId> ResolveTypeIds(const KnowledgeGraph& g,
                                   const std::vector<std::string>& names);

}  // namespace kgaq

#endif  // KGAQ_BASELINES_BASELINE_UTIL_H_
