#ifndef KGAQ_BASELINES_SSB_H_
#define KGAQ_BASELINES_SSB_H_

#include <unordered_map>
#include <vector>

#include "baselines/baseline_util.h"
#include "common/status.h"
#include "embedding/embedding_model.h"
#include "kg/knowledge_graph.h"
#include "query/query_graph.h"

namespace kgaq {

/// Semantic Similarity-based Baseline (Algorithm 1): exact but costly
/// enumeration of the tau-relevant correct answers A+ and of V = f_a(A+).
///
/// SSB enumerates every simple path up to n hops from the mapping node
/// (O(|A| * m^n)), computes each candidate's exact Eq. 3 similarity, and
/// thresholds at tau. It doubles as the tau-GT oracle of the evaluation
/// (§VII): every relative-error column in Tables VI/IX/XI is measured
/// against SSB's output.
class Ssb {
 public:
  struct Options {
    double tau = 0.85;
    int n_hops = 3;
  };

  Ssb(const KnowledgeGraph& g, const EmbeddingModel& model, Options options);

  /// Exact evaluation of a (possibly complex) aggregate query.
  Result<BaselineResult> Execute(const AggregateQuery& query) const;

  /// Exact Eq. 3 similarity of every type-matched candidate of one branch
  /// (chains handled stage-exactly via per-length log-sum composition).
  /// Exposed for Table V's Jaccard computation and for validator tests.
  Result<std::unordered_map<NodeId, double>> BranchSimilarities(
      const QueryBranch& branch) const;

 private:
  const KnowledgeGraph* g_;
  const EmbeddingModel* model_;
  Options options_;
};

}  // namespace kgaq

#endif  // KGAQ_BASELINES_SSB_H_
