#ifndef KGAQ_BASELINES_SGQ_H_
#define KGAQ_BASELINES_SGQ_H_

#include "baselines/baseline_util.h"
#include "common/status.h"
#include "embedding/embedding_model.h"
#include "kg/knowledge_graph.h"
#include "query/query_graph.h"

namespace kgaq {

/// SGQ-style incremental top-k semantic search (Wang et al., ICDE'20).
///
/// SGQ ranks candidates by semantic similarity and returns them in top-k
/// batches. Following the paper's evaluation protocol (§VII-A), k starts
/// at `k_step` and grows in steps of `k_step` until all tau-relevant
/// answers are inside the prefix; the final prefix necessarily drags in
/// some below-threshold answers, which is why SGQ's aggregate shows small
/// but non-zero error in Tables VI/VII.
class SgqTopK {
 public:
  struct Options {
    size_t k_step = 50;
    double tau = 0.85;
    int n_hops = 3;
  };

  SgqTopK(const KnowledgeGraph& g, const EmbeddingModel& model,
          Options options);

  Result<BaselineResult> Execute(const AggregateQuery& query) const;

 private:
  const KnowledgeGraph* g_;
  const EmbeddingModel* model_;
  Options options_;
};

}  // namespace kgaq

#endif  // KGAQ_BASELINES_SGQ_H_
