#include "baselines/eaq.h"

#include <algorithm>
#include <cmath>

#include "common/timer.h"
#include "kg/bfs.h"

namespace kgaq {

Eaq::Eaq(const KnowledgeGraph& g, const EmbeddingModel& model,
         Options options)
    : g_(&g), model_(&model), options_(options) {}

Result<BaselineResult> Eaq::Execute(const AggregateQuery& query) const {
  WallTimer timer;
  KGAQ_RETURN_IF_ERROR(query.Validate(*g_));
  if (query.query.shape != QueryShape::kSimple) {
    return Status::Unimplemented(
        "EAQ performs aggregation only for simple queries");
  }

  const QueryBranch& branch = query.query.branches[0];
  const NodeId us = g_->FindNodeByName(branch.specific_name);
  const PredicateId pred = g_->PredicateIdOf(branch.hops[0].predicate);
  if (pred == kInvalidId) {
    return Status::NotFound("query predicate '" + branch.hops[0].predicate +
                            "' is unknown to the KG embedding");
  }
  const std::vector<TypeId> target_types =
      ResolveTypeIds(*g_, branch.target_types());

  const BoundedSubgraph scope = BoundedBfs(*g_, us, options_.n_hops);
  std::vector<std::pair<double, NodeId>> scored;
  for (NodeId u : scope.nodes) {
    if (u == us || !NodeHasAnyType(*g_, u, target_types)) continue;
    // Link prediction: how plausible would the triple (u_s, pred, u) be?
    // (Direction matches the query edge q_s -> q_t.)
    scored.emplace_back(model_->ScoreTriple(us, pred, u), u);
  }
  if (scored.empty()) {
    BaselineResult out = AggregateOverAnswers(*g_, query, {});
    out.millis = timer.ElapsedMillis();
    return out;
  }

  double mean = 0.0;
  for (const auto& [s, u] : scored) mean += s;
  mean /= static_cast<double>(scored.size());
  double var = 0.0;
  for (const auto& [s, u] : scored) var += (s - mean) * (s - mean);
  var /= static_cast<double>(scored.size());
  const double threshold = mean + options_.z_margin * std::sqrt(var);

  std::vector<NodeId> answers;
  for (const auto& [s, u] : scored) {
    if (s >= threshold) answers.push_back(u);
  }
  std::sort(answers.begin(), answers.end());

  BaselineResult out = AggregateOverAnswers(*g_, query, std::move(answers));
  out.millis = timer.ElapsedMillis();
  return out;
}

}  // namespace kgaq
