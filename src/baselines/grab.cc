#include "baselines/grab.h"

#include <algorithm>
#include <unordered_set>

#include "common/timer.h"
#include "kg/bfs.h"

namespace kgaq {

GraB::GraB(const KnowledgeGraph& g, Options options)
    : g_(&g), options_(options) {}

Result<BaselineResult> GraB::Execute(const AggregateQuery& query) const {
  WallTimer timer;
  KGAQ_RETURN_IF_ERROR(query.Validate(*g_));

  std::unordered_set<NodeId> intersection;
  bool first = true;
  for (const QueryBranch& branch : query.query.branches) {
    const NodeId us = g_->FindNodeByName(branch.specific_name);
    if (us == kInvalidId) {
      return Status::NotFound("specific node '" + branch.specific_name +
                              "' not found");
    }
    const int radius = static_cast<int>(branch.hops.size()) +
                       options_.structural_slack;
    const BoundedSubgraph scope = BoundedBfs(*g_, us, radius);
    const std::vector<TypeId> target_types =
        ResolveTypeIds(*g_, branch.target_types());

    std::unordered_set<NodeId> matches;
    for (NodeId u : scope.nodes) {
      if (u == us) continue;
      if (NodeHasAnyType(*g_, u, target_types)) matches.insert(u);
    }
    if (first) {
      intersection = std::move(matches);
      first = false;
    } else {
      std::unordered_set<NodeId> merged;
      for (NodeId u : matches) {
        if (intersection.count(u)) merged.insert(u);
      }
      intersection = std::move(merged);
    }
    if (intersection.empty()) break;
  }

  std::vector<NodeId> answers(intersection.begin(), intersection.end());
  std::sort(answers.begin(), answers.end());
  BaselineResult out = AggregateOverAnswers(*g_, query, std::move(answers));
  out.millis = timer.ElapsedMillis();
  return out;
}

}  // namespace kgaq
