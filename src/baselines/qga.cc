#include "baselines/qga.h"

#include <algorithm>
#include <cctype>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/timer.h"

namespace kgaq {

namespace {

// Splits an identifier-style predicate name into lowercase tokens on
// '_', '-', '.' and camelCase boundaries.
std::vector<std::string> Tokenize(const std::string& name) {
  std::vector<std::string> out;
  std::string cur;
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool sep = c == '_' || c == '-' || c == '.' || c == ' ';
    const bool camel = std::isupper(static_cast<unsigned char>(c)) &&
                       !cur.empty() &&
                       std::islower(static_cast<unsigned char>(cur.back()));
    if (sep || camel) {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
      if (sep) continue;
    }
    cur.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

bool SharesToken(const std::vector<std::string>& a,
                 const std::vector<std::string>& b) {
  for (const auto& x : a) {
    for (const auto& y : b) {
      if (x == y) return true;
    }
  }
  return false;
}

}  // namespace

Qga::Qga(const KnowledgeGraph& g, Options options)
    : g_(&g), options_(options) {}

Result<BaselineResult> Qga::Execute(const AggregateQuery& query) const {
  WallTimer timer;
  KGAQ_RETURN_IF_ERROR(query.Validate(*g_));

  // Which KG predicates lexically overlap any query-hop keyword?
  std::vector<std::vector<std::string>> hop_tokens;
  for (const QueryBranch& branch : query.query.branches) {
    for (const QueryHop& hop : branch.hops) {
      hop_tokens.push_back(Tokenize(hop.predicate));
    }
  }
  std::vector<bool> predicate_matches(g_->NumPredicates(), false);
  for (PredicateId p = 0; p < g_->NumPredicates(); ++p) {
    const auto tokens = Tokenize(g_->predicates().name(p));
    for (const auto& ht : hop_tokens) {
      if (SharesToken(tokens, ht)) {
        predicate_matches[p] = true;
        break;
      }
    }
  }

  std::unordered_set<NodeId> intersection;
  bool first = true;
  for (const QueryBranch& branch : query.query.branches) {
    const NodeId us = g_->FindNodeByName(branch.specific_name);
    if (us == kInvalidId) {
      return Status::NotFound("specific node '" + branch.specific_name +
                              "' not found");
    }
    const std::vector<TypeId> target_types =
        ResolveTypeIds(*g_, branch.target_types());

    // BFS tracking whether any traversed edge matched a keyword.
    std::unordered_set<NodeId> matches;
    // state: (node, any-keyword-on-path) — visit each combination once.
    std::vector<int8_t> seen(g_->NumNodes() * 2, 0);
    std::vector<std::pair<NodeId, bool>> queue = {{us, false}};
    std::vector<int> depth = {0};
    seen[us * 2 + 0] = 1;
    for (size_t head = 0; head < queue.size(); ++head) {
      const auto [u, matched] = queue[head];
      const int d = depth[head];
      if (matched && u != us && NodeHasAnyType(*g_, u, target_types)) {
        matches.insert(u);
      }
      if (d >= options_.max_hops) continue;
      for (const Neighbor& nb : g_->Neighbors(u)) {
        const bool m2 = matched || predicate_matches[nb.predicate];
        if (seen[nb.node * 2 + (m2 ? 1 : 0)]) continue;
        seen[nb.node * 2 + (m2 ? 1 : 0)] = 1;
        queue.emplace_back(nb.node, m2);
        depth.push_back(d + 1);
      }
    }
    if (first) {
      intersection = std::move(matches);
      first = false;
    } else {
      std::unordered_set<NodeId> merged;
      for (NodeId u : matches) {
        if (intersection.count(u)) merged.insert(u);
      }
      intersection = std::move(merged);
    }
    if (intersection.empty()) break;
  }

  std::vector<NodeId> answers(intersection.begin(), intersection.end());
  std::sort(answers.begin(), answers.end());
  BaselineResult out = AggregateOverAnswers(*g_, query, std::move(answers));
  out.millis = timer.ElapsedMillis();
  return out;
}

}  // namespace kgaq
