#include "baselines/sgq.h"

#include <algorithm>

#include "baselines/ssb.h"
#include "common/timer.h"

namespace kgaq {

SgqTopK::SgqTopK(const KnowledgeGraph& g, const EmbeddingModel& model,
                 Options options)
    : g_(&g), model_(&model), options_(options) {}

Result<BaselineResult> SgqTopK::Execute(const AggregateQuery& query) const {
  WallTimer timer;
  KGAQ_RETURN_IF_ERROR(query.Validate(*g_));

  // Rank candidates by exact branch-min similarity (SGQ's answer order).
  Ssb::Options ssb_opts;
  ssb_opts.tau = options_.tau;
  ssb_opts.n_hops = options_.n_hops;
  Ssb ranker(*g_, *model_, ssb_opts);

  std::unordered_map<NodeId, double> min_sim;
  for (size_t bi = 0; bi < query.query.branches.size(); ++bi) {
    auto sims = ranker.BranchSimilarities(query.query.branches[bi]);
    if (!sims.ok()) return sims.status();
    if (bi == 0) {
      min_sim = std::move(*sims);
    } else {
      std::unordered_map<NodeId, double> merged;
      for (const auto& [node, s] : min_sim) {
        auto it = sims->find(node);
        if (it != sims->end()) merged.emplace(node, std::min(s, it->second));
      }
      min_sim = std::move(merged);
    }
  }

  std::vector<std::pair<double, NodeId>> ranked;
  ranked.reserve(min_sim.size());
  for (const auto& [node, s] : min_sim) ranked.emplace_back(s, node);
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.first > b.first || (a.first == b.first && a.second < b.second);
  });

  // Grow k in steps of k_step until every tau-relevant answer is covered.
  size_t num_relevant = 0;
  for (const auto& [s, node] : ranked) {
    if (s >= options_.tau) ++num_relevant;
  }
  size_t k = options_.k_step;
  if (num_relevant > 0) {
    // Relevant answers occupy a prefix of the similarity order, so the
    // smallest multiple of k_step covering them is enough.
    k = ((num_relevant + options_.k_step - 1) / options_.k_step) *
        options_.k_step;
  }
  k = std::min(k, ranked.size());

  std::vector<NodeId> answers;
  answers.reserve(k);
  for (size_t i = 0; i < k; ++i) answers.push_back(ranked[i].second);
  std::sort(answers.begin(), answers.end());

  BaselineResult out = AggregateOverAnswers(*g_, query, std::move(answers));
  out.millis = timer.ElapsedMillis();
  return out;
}

}  // namespace kgaq
