#ifndef KGAQ_BASELINES_EXACT_MATCHER_H_
#define KGAQ_BASELINES_EXACT_MATCHER_H_

#include "baselines/baseline_util.h"
#include "common/status.h"
#include "kg/knowledge_graph.h"
#include "query/query_graph.h"

namespace kgaq {

/// Exact-schema matcher — the SPARQL/BGP semantics the paper evaluates via
/// JENA, Virtuoso and Neo4j: an answer is returned only when the KG
/// contains edges matching the query graph *edge for edge* (same
/// predicates, same hop count). Answers expressed through structurally
/// different but semantically equivalent schemas are invisible to it,
/// which is exactly the effectiveness ceiling Tables VI/VII document.
class ExactMatcher {
 public:
  explicit ExactMatcher(const KnowledgeGraph& g);

  Result<BaselineResult> Execute(const AggregateQuery& query) const;

 private:
  const KnowledgeGraph* g_;
};

}  // namespace kgaq

#endif  // KGAQ_BASELINES_EXACT_MATCHER_H_
