#include "baselines/exact_matcher.h"

#include <algorithm>
#include <unordered_set>

#include "common/timer.h"

namespace kgaq {

ExactMatcher::ExactMatcher(const KnowledgeGraph& g) : g_(&g) {}

Result<BaselineResult> ExactMatcher::Execute(
    const AggregateQuery& query) const {
  WallTimer timer;
  KGAQ_RETURN_IF_ERROR(query.Validate(*g_));

  std::unordered_set<NodeId> intersection;
  bool first_branch = true;
  for (const QueryBranch& branch : query.query.branches) {
    const NodeId us = g_->FindNodeByName(branch.specific_name);
    if (us == kInvalidId) {
      return Status::NotFound("specific node '" + branch.specific_name +
                              "' not found");
    }
    // Hop-by-hop exact expansion (a BGP join): frontier starts at u_s, and
    // each hop follows only edges labelled with the query predicate into
    // nodes carrying the hop's type.
    std::unordered_set<NodeId> frontier = {us};
    for (const QueryHop& hop : branch.hops) {
      const PredicateId pred = g_->PredicateIdOf(hop.predicate);
      std::vector<TypeId> types = ResolveTypeIds(*g_, hop.node_types);
      std::unordered_set<NodeId> next;
      if (pred != kInvalidId) {
        for (NodeId u : frontier) {
          for (const Neighbor& nb : g_->Neighbors(u)) {
            if (nb.predicate != pred) continue;
            if (!NodeHasAnyType(*g_, nb.node, types)) continue;
            next.insert(nb.node);
          }
        }
      }
      frontier = std::move(next);
      if (frontier.empty()) break;
    }
    if (first_branch) {
      intersection = std::move(frontier);
      first_branch = false;
    } else {
      std::unordered_set<NodeId> merged;
      for (NodeId u : frontier) {
        if (intersection.count(u)) merged.insert(u);
      }
      intersection = std::move(merged);
    }
    if (intersection.empty()) break;
  }

  std::vector<NodeId> answers(intersection.begin(), intersection.end());
  std::sort(answers.begin(), answers.end());
  BaselineResult out = AggregateOverAnswers(*g_, query, std::move(answers));
  out.millis = timer.ElapsedMillis();
  return out;
}

}  // namespace kgaq
