#ifndef KGAQ_BASELINES_GRAB_H_
#define KGAQ_BASELINES_GRAB_H_

#include "baselines/baseline_util.h"
#include "common/status.h"
#include "kg/knowledge_graph.h"
#include "query/query_graph.h"

namespace kgaq {

/// GraB-style index-free structural matcher (Jin et al., WWW'15).
///
/// GraB bounds matching scores by *structural* proximity: a candidate
/// scores higher the closer it sits to the mapping node, regardless of
/// predicate semantics. Per branch it accepts type-matched candidates
/// within `structural_radius` extra hops of the query path length. The
/// shorter-is-better assumption is exactly what §III Remark (1) argues
/// against, producing GraB's mid-range errors in Tables VI/VII.
class GraB {
 public:
  struct Options {
    /// Accepted slack over the query's hop count (radius = hops + slack).
    int structural_slack = 1;
  };

  explicit GraB(const KnowledgeGraph& g) : GraB(g, Options()) {}
  GraB(const KnowledgeGraph& g, Options options);

  Result<BaselineResult> Execute(const AggregateQuery& query) const;

 private:
  const KnowledgeGraph* g_;
  Options options_;
};

}  // namespace kgaq

#endif  // KGAQ_BASELINES_GRAB_H_
