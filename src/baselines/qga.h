#ifndef KGAQ_BASELINES_QGA_H_
#define KGAQ_BASELINES_QGA_H_

#include "baselines/baseline_util.h"
#include "common/status.h"
#include "kg/knowledge_graph.h"
#include "query/query_graph.h"

namespace kgaq {

/// QGA-style keyword search over the KG (Han et al., CIKM'17).
///
/// QGA assembles query graphs from keywords; its recall is bounded by
/// lexical overlap between the user's keyword and edge predicates. This
/// reproduction tokenizes predicate names (snake/camel separators) and
/// accepts a candidate when some path of at most `max_hops` hops from the
/// mapping node reaches it with at least one token-overlapping predicate
/// on the path. Purely lexical matching both misses paraphrased schemas
/// and admits spurious ones — QGA posts the largest errors in Tables
/// VI/VII, which this policy reproduces.
class Qga {
 public:
  struct Options {
    int max_hops = 2;
  };

  explicit Qga(const KnowledgeGraph& g) : Qga(g, Options()) {}
  Qga(const KnowledgeGraph& g, Options options);

  Result<BaselineResult> Execute(const AggregateQuery& query) const;

 private:
  const KnowledgeGraph* g_;
  Options options_;
};

}  // namespace kgaq

#endif  // KGAQ_BASELINES_QGA_H_
