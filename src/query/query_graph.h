#ifndef KGAQ_QUERY_QUERY_GRAPH_H_
#define KGAQ_QUERY_QUERY_GRAPH_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "kg/knowledge_graph.h"
#include "query/aggregate.h"

namespace kgaq {

/// Range filter on a numerical attribute of the answers (Definition 6):
/// an answer qualifies iff lower <= u.attribute <= upper.
struct Filter {
  std::string attribute;
  double lower;
  double upper;

  bool operator==(const Filter&) const = default;
};

/// GROUP-BY on a numerical attribute of the target node (§V-A): answers
/// are bucketed as floor(value / bucket_width); a width of e.g. 10 over an
/// `age` attribute yields the paper's "each age group".
struct GroupBy {
  std::string attribute;
  double bucket_width = 1.0;

  bool enabled() const { return !attribute.empty(); }

  bool operator==(const GroupBy&) const = default;
};

/// One hop of a (possibly multi-hop) query path: an edge predicate
/// followed by a type constraint on the node it reaches.
struct QueryHop {
  std::string predicate;
  std::vector<std::string> node_types;

  bool operator==(const QueryHop&) const = default;
};

/// A simple or chain-shaped query path from one specific node to the
/// shared target node (Definition 3 / §V-B).
///
/// hops.size() == 1 is the paper's "simple question"; hops.size() > 1 is a
/// chain. The final hop's node_types constrain the target q_t.
struct QueryBranch {
  std::string specific_name;
  std::vector<std::string> specific_types;
  std::vector<QueryHop> hops;

  const std::vector<std::string>& target_types() const {
    return hops.back().node_types;
  }

  bool operator==(const QueryBranch&) const = default;
};

/// The shapes of Fig. 4 plus the simple 1-edge query.
enum class QueryShape { kSimple, kChain, kStar, kCycle, kFlower };

const char* QueryShapeToString(QueryShape s);

/// A query graph Q in decomposition form: one or more branches that share
/// the same target node (the paper's decomposition-assembly framework, §V-B
/// — star/cycle/flower queries decompose into simple/chain branches whose
/// answer samples are intersected).
struct QueryGraph {
  QueryShape shape = QueryShape::kSimple;
  std::vector<QueryBranch> branches;

  /// Convenience constructors -------------------------------------------

  /// Builds the 2-node / 1-edge simple query of Definition 3.
  static QueryGraph Simple(std::string specific_name,
                           std::vector<std::string> specific_types,
                           std::string predicate,
                           std::vector<std::string> target_types);

  /// Builds a chain query from a single multi-hop branch.
  static QueryGraph Chain(QueryBranch branch);

  /// Builds a star/cycle/flower query from branches sharing a target.
  static QueryGraph Complex(QueryShape shape,
                            std::vector<QueryBranch> branches);

  /// Structural sanity checks + existence of names/types/predicates in `g`.
  /// Unknown predicates are allowed (they simply have low similarity to
  /// everything via the embedding), but the specific node must resolve.
  Status Validate(const KnowledgeGraph& g) const;

  bool operator==(const QueryGraph&) const = default;
};

/// A full aggregate query AQ_G = (Q, f_a) with optional filter / GROUP-BY
/// decoration (Definitions 2 and 6, §V-A).
struct AggregateQuery {
  QueryGraph query;
  AggregateFunction function = AggregateFunction::kCount;
  /// Attribute the aggregate ranges over; ignored (may be empty) for COUNT.
  std::string attribute;
  std::vector<Filter> filters;
  GroupBy group_by;

  Status Validate(const KnowledgeGraph& g) const;

  bool operator==(const AggregateQuery&) const = default;
};

}  // namespace kgaq

#endif  // KGAQ_QUERY_QUERY_GRAPH_H_
