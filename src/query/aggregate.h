#ifndef KGAQ_QUERY_AGGREGATE_H_
#define KGAQ_QUERY_AGGREGATE_H_

#include <span>
#include <string>
#include <string_view>

#include "common/status.h"

namespace kgaq {

/// Aggregate functions supported by AQ_G = (Q, f_a) (Definition 2).
///
/// COUNT/SUM/AVG carry CLT-based accuracy guarantees; MAX/MIN are
/// best-effort (§VII: returned from the collected sample, no guarantee).
enum class AggregateFunction {
  kCount,
  kSum,
  kAvg,
  kMax,
  kMin,
};

/// "COUNT", "SUM", "AVG", "MAX", "MIN".
const char* AggregateFunctionToString(AggregateFunction f);

/// Parses the spelling produced by AggregateFunctionToString.
Result<AggregateFunction> ParseAggregateFunction(std::string_view s);

/// True for COUNT/SUM/AVG — the estimators of §IV-B apply and the engine
/// can provide Theorem-2 termination.
bool HasAccuracyGuarantee(AggregateFunction f);

/// Exact aggregate over a value multiset; the ground-truth operator
/// V = f_a(A+). COUNT ignores values' magnitudes (returns the count);
/// AVG/MAX/MIN of an empty set return 0.
double ApplyAggregate(AggregateFunction f, std::span<const double> values);

}  // namespace kgaq

#endif  // KGAQ_QUERY_AGGREGATE_H_
