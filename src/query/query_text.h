#ifndef KGAQ_QUERY_QUERY_TEXT_H_
#define KGAQ_QUERY_QUERY_TEXT_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "query/query_graph.h"

namespace kgaq {

/// Textual wire format for aggregate queries — the form a query arrives
/// in over the network (serve/http_server.h POSTs this to /query) and
/// the form tools log and replay. One expression per query:
///
///   AVG(x.price) WHERE ("Germany":Country)-[product]->(x:Automobile)
///   COUNT(x) WHERE ("UK":Country)-[hosts]->(:City)-[homeOf]->(x:Club)
///   SUM(x.price) WHERE ("DE")-[product]->(x:Car), ("Bosch")-[supplies]->(x:Car)
///       FILTER price IN [1000,50000] GROUP BY year WIDTH 10 SHAPE star
///
/// Grammar (whitespace between tokens is free; keywords are
/// case-insensitive, canonical output is uppercase):
///
///   query    := aggfn '(' 'x' ('.' name)? ')' 'WHERE' branch (',' branch)*
///               ('FILTER' name 'IN' '[' number ',' number ']')*
///               ('GROUP' 'BY' name 'WIDTH' number)?
///               ('SHAPE' name)?
///   aggfn    := 'COUNT' | 'SUM' | 'AVG' | 'MAX' | 'MIN'
///   branch   := '(' string (':' types)? ')' hop+
///   hop      := '-[' name ']->' node
///   node     := '(' 'x'? (':' types)? ')'     -- 'x' marks the shared
///                                                target; it must appear
///                                                on every branch's LAST
///                                                node and nowhere else
///   types    := name ('|' name)*
///   name     := bare identifier [A-Za-z_][A-Za-z0-9_]* or quoted string
///   string   := '"' chars '"' with \" and \\ escapes (all other bytes,
///               including newlines, stand for themselves)
///   number   := shortest-round-trip decimal/scientific double, or
///               'inf' / '-inf'
///
/// The SHAPE clause (star | cycle | flower | simple | chain) is only
/// needed — and only emitted — when the shape cannot be derived from the
/// structure: one branch is simple (1 hop) or chain (2+), several
/// branches default to star.
///
/// Round-trip contract: for any query `q`,
/// ParseAggregateQuery(FormatAggregateQuery(q)) reconstructs `q` exactly
/// (field-for-field, bit-exact doubles), and re-formatting parsed
/// canonical text reproduces it byte-for-byte. Tested over every example
/// workload in tests/query_text_test.cc.
///
/// Errors: malformed input never crashes; the returned status message is
/// prefixed with the 1-based "line:col: " of the offending character.
Result<AggregateQuery> ParseAggregateQuery(std::string_view text);

/// Canonical single-line rendering of `query` (see grammar above).
std::string FormatAggregateQuery(const AggregateQuery& query);

/// Appends the shortest decimal rendering of `v` that parses back to
/// exactly `v` (std::to_chars); "inf"/"-inf"/"nan" for non-finite
/// values. Shared by the wire format and the HTTP front-end's JSON.
void AppendRoundTripDouble(std::string& out, double v);

}  // namespace kgaq

#endif  // KGAQ_QUERY_QUERY_TEXT_H_
