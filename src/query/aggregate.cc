#include "query/aggregate.h"

#include <algorithm>

namespace kgaq {

const char* AggregateFunctionToString(AggregateFunction f) {
  switch (f) {
    case AggregateFunction::kCount:
      return "COUNT";
    case AggregateFunction::kSum:
      return "SUM";
    case AggregateFunction::kAvg:
      return "AVG";
    case AggregateFunction::kMax:
      return "MAX";
    case AggregateFunction::kMin:
      return "MIN";
  }
  return "?";
}

Result<AggregateFunction> ParseAggregateFunction(std::string_view s) {
  if (s == "COUNT") return AggregateFunction::kCount;
  if (s == "SUM") return AggregateFunction::kSum;
  if (s == "AVG") return AggregateFunction::kAvg;
  if (s == "MAX") return AggregateFunction::kMax;
  if (s == "MIN") return AggregateFunction::kMin;
  return Status::InvalidArgument("unknown aggregate function '" +
                                 std::string(s) + "'");
}

bool HasAccuracyGuarantee(AggregateFunction f) {
  return f == AggregateFunction::kCount || f == AggregateFunction::kSum ||
         f == AggregateFunction::kAvg;
}

double ApplyAggregate(AggregateFunction f, std::span<const double> values) {
  switch (f) {
    case AggregateFunction::kCount:
      return static_cast<double>(values.size());
    case AggregateFunction::kSum: {
      double acc = 0.0;
      for (double v : values) acc += v;
      return acc;
    }
    case AggregateFunction::kAvg: {
      if (values.empty()) return 0.0;
      double acc = 0.0;
      for (double v : values) acc += v;
      return acc / static_cast<double>(values.size());
    }
    case AggregateFunction::kMax:
      return values.empty() ? 0.0
                            : *std::max_element(values.begin(), values.end());
    case AggregateFunction::kMin:
      return values.empty() ? 0.0
                            : *std::min_element(values.begin(), values.end());
  }
  return 0.0;
}

}  // namespace kgaq
