#include "query/query_text.h"

#include <cctype>
#include <charconv>
#include <cstdint>
#include <string>

#include "query/aggregate.h"

namespace kgaq {

namespace {

bool IsBareStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsBareChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// True when `name` can be emitted without quotes. "x" is reserved for
/// the target marker, so a type/predicate literally named "x" is quoted.
bool IsBareName(const std::string& name) {
  if (name.empty() || name == "x") return false;
  if (!IsBareStart(name[0])) return false;
  for (char c : name) {
    if (!IsBareChar(c)) return false;
  }
  return true;
}

void AppendName(std::string& out, const std::string& name) {
  if (IsBareName(name)) {
    out += name;
    return;
  }
  out += '"';
  for (char c : name) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

void AppendTypes(std::string& out, const std::vector<std::string>& types) {
  for (size_t i = 0; i < types.size(); ++i) {
    if (i > 0) out += '|';
    AppendName(out, types[i]);
  }
}

/// The shape Parse derives when no SHAPE clause is present; Format emits
/// the clause exactly when the stored shape differs from this.
QueryShape DerivedShape(const QueryGraph& q) {
  if (q.branches.size() <= 1) {
    const bool chain =
        !q.branches.empty() && q.branches[0].hops.size() > 1;
    return chain ? QueryShape::kChain : QueryShape::kSimple;
  }
  return QueryShape::kStar;
}

const char* ShapeWord(QueryShape s) {
  switch (s) {
    case QueryShape::kSimple:
      return "simple";
    case QueryShape::kChain:
      return "chain";
    case QueryShape::kStar:
      return "star";
    case QueryShape::kCycle:
      return "cycle";
    case QueryShape::kFlower:
      return "flower";
  }
  return "?";
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

/// Recursive-descent cursor over the wire text. Tracks 1-based line and
/// column so every error can point at the offending character — quoted
/// strings may contain raw newlines, so the counters advance inside them
/// too.
class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_(text) {}

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  char PeekAt(size_t ahead) const {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }

  void Advance() {
    if (pos_ >= text_.size()) return;
    if (text_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }

  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      Advance();
    }
  }

  /// "line:col: msg" — the position every malformed-input test keys on.
  Status Error(const std::string& msg) const {
    return Status::InvalidArgument(std::to_string(line_) + ":" +
                                   std::to_string(col_) + ": " + msg);
  }

  std::string Describe() const {
    if (AtEnd()) return "end of input";
    const char c = Peek();
    if (std::isprint(static_cast<unsigned char>(c))) {
      return std::string("'") + c + "'";
    }
    return "byte 0x" + std::to_string(static_cast<unsigned char>(c));
  }

  Status ExpectChar(char c, const char* what) {
    SkipWhitespace();
    if (Peek() != c) {
      return Error(std::string("expected '") + c + "' " + what + ", got " +
                   Describe());
    }
    Advance();
    return Status::OK();
  }

  /// Next bare word ([A-Za-z_][A-Za-z0-9_]*), without consuming it.
  std::string PeekWord() {
    SkipWhitespace();
    std::string word;
    size_t i = 0;
    if (IsBareStart(Peek())) {
      word += Peek();
      for (i = 1; IsBareChar(PeekAt(i)); ++i) word += PeekAt(i);
    }
    return word;
  }

  void ConsumeWord(const std::string& word) {
    for (size_t i = 0; i < word.size(); ++i) Advance();
  }

  Status ExpectKeyword(const char* keyword) {
    const std::string word = PeekWord();
    if (!EqualsIgnoreCase(word, keyword)) {
      return Error(std::string("expected '") + keyword + "', got " +
                   (word.empty() ? Describe() : "'" + word + "'"));
    }
    ConsumeWord(word);
    return Status::OK();
  }

  /// Quoted string with \" and \\ escapes; every other byte (newlines
  /// included) stands for itself.
  Result<std::string> ParseQuoted(const char* what) {
    SkipWhitespace();
    if (Peek() != '"') {
      return Error(std::string("expected quoted ") + what + ", got " +
                   Describe());
    }
    const size_t open_line = line_;
    const size_t open_col = col_;
    Advance();
    std::string out;
    while (!AtEnd()) {
      const char c = Peek();
      if (c == '"') {
        Advance();
        return out;
      }
      if (c == '\\') {
        const char next = PeekAt(1);
        if (next != '"' && next != '\\') {
          return Error("invalid escape in quoted string (only \\\" and "
                       "\\\\ are recognized)");
        }
        Advance();
        out += next;
        Advance();
        continue;
      }
      out += c;
      Advance();
    }
    return Error("unterminated quoted string (opened at " +
                 std::to_string(open_line) + ":" +
                 std::to_string(open_col) + ")");
  }

  /// Bare identifier or quoted string.
  Result<std::string> ParseName(const char* what) {
    SkipWhitespace();
    if (Peek() == '"') return ParseQuoted(what);
    const std::string word = PeekWord();
    if (word.empty()) {
      return Error(std::string("expected ") + what + " (identifier or "
                   "quoted string), got " + Describe());
    }
    ConsumeWord(word);
    return word;
  }

  Result<double> ParseNumber(const char* what) {
    SkipWhitespace();
    double value = 0.0;
    const char* begin = text_.data() + pos_;
    const char* end = text_.data() + text_.size();
    auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc() || ptr == begin) {
      return Error(std::string("expected number ") + what + ", got " +
                   Describe());
    }
    // Numbers never contain newlines; advance column-wise.
    for (const char* p = begin; p != ptr; ++p) Advance();
    return value;
  }

  size_t line() const { return line_; }
  size_t col() const { return col_; }

 private:
  std::string_view text_;
  size_t pos_ = 0;
  size_t line_ = 1;
  size_t col_ = 1;
};

/// One node spec: `(`, optional `x` target marker, optional `:` types,
/// `)`.
struct NodeSpec {
  bool is_target = false;
  std::vector<std::string> types;
};

Result<NodeSpec> ParseNodeSpec(Cursor& c) {
  NodeSpec out;
  KGAQ_RETURN_IF_ERROR(c.ExpectChar('(', "to open a node"));
  c.SkipWhitespace();
  const std::string word = c.PeekWord();
  if (word == "x") {
    out.is_target = true;
    c.ConsumeWord(word);
    c.SkipWhitespace();
  } else if (!word.empty()) {
    return c.Error("expected 'x', ':' or ')' in node, got '" + word +
                   "' (only a branch's first node carries a quoted name)");
  }
  if (c.Peek() == ':') {
    c.Advance();
    c.SkipWhitespace();
    // Allow the degenerate `(:)` / `(x:)` spelling of "no types".
    while (c.Peek() != ')') {
      auto type = c.ParseName("node type");
      if (!type.ok()) return type.status();
      out.types.push_back(std::move(*type));
      c.SkipWhitespace();
      if (c.Peek() == '|') {
        c.Advance();
        c.SkipWhitespace();
      } else {
        break;
      }
    }
  }
  KGAQ_RETURN_IF_ERROR(c.ExpectChar(')', "to close the node"));
  return out;
}

Result<QueryBranch> ParseBranch(Cursor& c) {
  QueryBranch branch;
  KGAQ_RETURN_IF_ERROR(c.ExpectChar('(', "to open the branch's specific "
                                         "node"));
  auto name = c.ParseQuoted("specific-node name");
  if (!name.ok()) return name.status();
  branch.specific_name = std::move(*name);
  c.SkipWhitespace();
  if (c.Peek() == ':') {
    c.Advance();
    c.SkipWhitespace();
    while (c.Peek() != ')') {
      auto type = c.ParseName("node type");
      if (!type.ok()) return type.status();
      branch.specific_types.push_back(std::move(*type));
      c.SkipWhitespace();
      if (c.Peek() == '|') {
        c.Advance();
        c.SkipWhitespace();
      } else {
        break;
      }
    }
  }
  KGAQ_RETURN_IF_ERROR(c.ExpectChar(')', "to close the specific node"));

  bool saw_target = false;
  for (;;) {
    c.SkipWhitespace();
    if (c.Peek() != '-') {
      if (branch.hops.empty()) {
        return c.Error("expected '-[' to begin the branch's first hop, "
                       "got " + c.Describe());
      }
      break;
    }
    if (saw_target) {
      return c.Error("hop follows the target node — '(x...)' must be the "
                     "branch's last node");
    }
    c.Advance();  // '-'
    KGAQ_RETURN_IF_ERROR(c.ExpectChar('[', "after '-' to open the hop "
                                           "predicate"));
    auto pred = c.ParseName("hop predicate");
    if (!pred.ok()) return pred.status();
    KGAQ_RETURN_IF_ERROR(c.ExpectChar(']', "to close the hop predicate"));
    KGAQ_RETURN_IF_ERROR(c.ExpectChar('-', "in the hop arrow ']->'"));
    KGAQ_RETURN_IF_ERROR(c.ExpectChar('>', "in the hop arrow ']->'"));
    auto node = ParseNodeSpec(c);
    if (!node.ok()) return node.status();
    saw_target = node->is_target;
    branch.hops.push_back(QueryHop{std::move(*pred),
                                   std::move(node->types)});
  }
  if (!saw_target) {
    return c.Error("branch's last node must be the target '(x...)'");
  }
  return branch;
}

}  // namespace

void AppendRoundTripDouble(std::string& out, double v) {
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  (void)ec;  // 64 bytes always suffice for a double
  out.append(buf, ptr);
}

std::string FormatAggregateQuery(const AggregateQuery& query) {
  std::string out = AggregateFunctionToString(query.function);
  out += "(x";
  if (!query.attribute.empty()) {
    out += '.';
    AppendName(out, query.attribute);
  }
  out += ") WHERE ";
  const QueryGraph& q = query.query;
  for (size_t bi = 0; bi < q.branches.size(); ++bi) {
    if (bi > 0) out += ", ";
    const QueryBranch& b = q.branches[bi];
    out += "(\"";
    for (char ch : b.specific_name) {
      if (ch == '"' || ch == '\\') out += '\\';
      out += ch;
    }
    out += '"';
    if (!b.specific_types.empty()) {
      out += ':';
      AppendTypes(out, b.specific_types);
    }
    out += ')';
    for (size_t hi = 0; hi < b.hops.size(); ++hi) {
      const QueryHop& hop = b.hops[hi];
      out += "-[";
      AppendName(out, hop.predicate);
      out += "]->(";
      const bool last = hi + 1 == b.hops.size();
      if (last) out += 'x';
      if (!hop.node_types.empty()) {
        out += ':';
        AppendTypes(out, hop.node_types);
      }
      out += ')';
    }
  }
  for (const Filter& f : query.filters) {
    out += " FILTER ";
    AppendName(out, f.attribute);
    out += " IN [";
    AppendRoundTripDouble(out, f.lower);
    out += ',';
    AppendRoundTripDouble(out, f.upper);
    out += ']';
  }
  if (query.group_by.enabled()) {
    out += " GROUP BY ";
    AppendName(out, query.group_by.attribute);
    out += " WIDTH ";
    AppendRoundTripDouble(out, query.group_by.bucket_width);
  }
  if (q.shape != DerivedShape(q)) {
    out += " SHAPE ";
    out += ShapeWord(q.shape);
  }
  return out;
}

Result<AggregateQuery> ParseAggregateQuery(std::string_view text) {
  Cursor c(text);
  AggregateQuery out;

  // Aggregate function.
  const std::string fn_word = c.PeekWord();
  if (fn_word.empty()) {
    return c.Error("expected aggregate function (COUNT/SUM/AVG/MAX/MIN), "
                   "got " + c.Describe());
  }
  std::string fn_upper = fn_word;
  for (char& ch : fn_upper) {
    ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
  }
  auto fn = ParseAggregateFunction(fn_upper);
  if (!fn.ok()) {
    return c.Error("unknown aggregate function '" + fn_word + "'");
  }
  out.function = *fn;
  c.ConsumeWord(fn_word);

  // Target: (x) or (x.attr).
  KGAQ_RETURN_IF_ERROR(c.ExpectChar('(', "after the aggregate function"));
  c.SkipWhitespace();
  const std::string target = c.PeekWord();
  if (target != "x") {
    return c.Error("expected the target variable 'x', got " +
                   (target.empty() ? c.Describe() : "'" + target + "'"));
  }
  c.ConsumeWord(target);
  c.SkipWhitespace();
  if (c.Peek() == '.') {
    c.Advance();
    auto attr = c.ParseName("aggregate attribute");
    if (!attr.ok()) return attr.status();
    out.attribute = std::move(*attr);
  }
  KGAQ_RETURN_IF_ERROR(c.ExpectChar(')', "to close the aggregate target"));

  KGAQ_RETURN_IF_ERROR(c.ExpectKeyword("WHERE"));

  // Branches.
  for (;;) {
    auto branch = ParseBranch(c);
    if (!branch.ok()) return branch.status();
    out.query.branches.push_back(std::move(*branch));
    c.SkipWhitespace();
    if (c.Peek() == ',') {
      c.Advance();
    } else {
      break;
    }
  }

  // Trailing clauses, any order; canonical order is FILTER* GROUP? SHAPE?.
  bool have_group = false;
  bool have_shape = false;
  for (;;) {
    c.SkipWhitespace();
    if (c.AtEnd()) break;
    const std::string word = c.PeekWord();
    if (EqualsIgnoreCase(word, "FILTER")) {
      c.ConsumeWord(word);
      Filter f;
      auto attr = c.ParseName("filter attribute");
      if (!attr.ok()) return attr.status();
      f.attribute = std::move(*attr);
      KGAQ_RETURN_IF_ERROR(c.ExpectKeyword("IN"));
      KGAQ_RETURN_IF_ERROR(c.ExpectChar('[', "to open the filter range"));
      auto lo = c.ParseNumber("for the filter lower bound");
      if (!lo.ok()) return lo.status();
      f.lower = *lo;
      KGAQ_RETURN_IF_ERROR(c.ExpectChar(',', "between the filter bounds"));
      auto hi = c.ParseNumber("for the filter upper bound");
      if (!hi.ok()) return hi.status();
      f.upper = *hi;
      KGAQ_RETURN_IF_ERROR(c.ExpectChar(']', "to close the filter range"));
      out.filters.push_back(std::move(f));
    } else if (EqualsIgnoreCase(word, "GROUP")) {
      if (have_group) return c.Error("duplicate GROUP BY clause");
      have_group = true;
      c.ConsumeWord(word);
      KGAQ_RETURN_IF_ERROR(c.ExpectKeyword("BY"));
      auto attr = c.ParseName("group-by attribute");
      if (!attr.ok()) return attr.status();
      out.group_by.attribute = std::move(*attr);
      KGAQ_RETURN_IF_ERROR(c.ExpectKeyword("WIDTH"));
      auto width = c.ParseNumber("for the group-by bucket width");
      if (!width.ok()) return width.status();
      out.group_by.bucket_width = *width;
    } else if (EqualsIgnoreCase(word, "SHAPE")) {
      if (have_shape) return c.Error("duplicate SHAPE clause");
      have_shape = true;
      c.ConsumeWord(word);
      const std::string shape = c.PeekWord();
      bool known = false;
      for (QueryShape s :
           {QueryShape::kSimple, QueryShape::kChain, QueryShape::kStar,
            QueryShape::kCycle, QueryShape::kFlower}) {
        if (EqualsIgnoreCase(shape, ShapeWord(s))) {
          out.query.shape = s;
          known = true;
          break;
        }
      }
      if (!known) {
        return c.Error("unknown shape '" + shape +
                       "' (simple|chain|star|cycle|flower)");
      }
      c.ConsumeWord(shape);
    } else {
      return c.Error("expected FILTER, GROUP BY, SHAPE, or end of query, "
                     "got " + (word.empty() ? c.Describe()
                                            : "'" + word + "'"));
    }
  }
  if (!have_shape) out.query.shape = DerivedShape(out.query);
  return out;
}

}  // namespace kgaq
