#include "query/query_graph.h"

#include <algorithm>
#include <utility>

namespace kgaq {

const char* QueryShapeToString(QueryShape s) {
  switch (s) {
    case QueryShape::kSimple:
      return "Simple";
    case QueryShape::kChain:
      return "Chain";
    case QueryShape::kStar:
      return "Star";
    case QueryShape::kCycle:
      return "Cycle";
    case QueryShape::kFlower:
      return "Flower";
  }
  return "?";
}

QueryGraph QueryGraph::Simple(std::string specific_name,
                              std::vector<std::string> specific_types,
                              std::string predicate,
                              std::vector<std::string> target_types) {
  QueryGraph q;
  q.shape = QueryShape::kSimple;
  QueryBranch b;
  b.specific_name = std::move(specific_name);
  b.specific_types = std::move(specific_types);
  b.hops.push_back({std::move(predicate), std::move(target_types)});
  q.branches.push_back(std::move(b));
  return q;
}

QueryGraph QueryGraph::Chain(QueryBranch branch) {
  QueryGraph q;
  q.shape = QueryShape::kChain;
  q.branches.push_back(std::move(branch));
  return q;
}

QueryGraph QueryGraph::Complex(QueryShape shape,
                               std::vector<QueryBranch> branches) {
  QueryGraph q;
  q.shape = shape;
  q.branches = std::move(branches);
  return q;
}

Status QueryGraph::Validate(const KnowledgeGraph& g) const {
  if (branches.empty()) {
    return Status::InvalidArgument("query graph has no branches");
  }
  const bool multi = shape == QueryShape::kStar ||
                     shape == QueryShape::kCycle ||
                     shape == QueryShape::kFlower;
  if (multi && branches.size() < 2) {
    return Status::InvalidArgument(
        "complex query shapes require at least two branches");
  }
  if (!multi && branches.size() != 1) {
    return Status::InvalidArgument(
        "simple/chain queries must have exactly one branch");
  }
  if (shape == QueryShape::kSimple && branches[0].hops.size() != 1) {
    return Status::InvalidArgument("simple query must have exactly one hop");
  }
  for (const QueryBranch& b : branches) {
    if (b.hops.empty()) {
      return Status::InvalidArgument("branch has no hops");
    }
    if (b.specific_name.empty()) {
      return Status::InvalidArgument("branch has no specific-node name");
    }
    NodeId us = g.FindNodeByName(b.specific_name);
    if (us == kInvalidId) {
      return Status::NotFound("specific node '" + b.specific_name +
                              "' does not exist in the graph");
    }
    // The specific node's declared types must intersect its KG types.
    if (!b.specific_types.empty()) {
      bool any = false;
      for (const auto& t : b.specific_types) {
        TypeId tid = g.TypeIdOf(t);
        if (tid != kInvalidId && g.HasType(us, tid)) {
          any = true;
          break;
        }
      }
      if (!any) {
        return Status::InvalidArgument("specific node '" + b.specific_name +
                                       "' matches none of the given types");
      }
    }
    for (const QueryHop& h : b.hops) {
      if (h.predicate.empty()) {
        return Status::InvalidArgument("hop with empty predicate");
      }
      if (h.node_types.empty()) {
        return Status::InvalidArgument(
            "hop without node-type constraint (Definition 3 requires "
            "target types)");
      }
    }
  }
  // All branches must share at least one target type (shared target node).
  if (branches.size() > 1) {
    for (const auto& t : branches[0].target_types()) {
      bool in_all = true;
      for (size_t i = 1; i < branches.size() && in_all; ++i) {
        const auto& types = branches[i].target_types();
        in_all = std::find(types.begin(), types.end(), t) != types.end();
      }
      if (in_all) return Status::OK();
    }
    return Status::InvalidArgument(
        "branches of a complex query must share a target type");
  }
  return Status::OK();
}

Status AggregateQuery::Validate(const KnowledgeGraph& g) const {
  KGAQ_RETURN_IF_ERROR(query.Validate(g));
  if (function != AggregateFunction::kCount && attribute.empty()) {
    return Status::InvalidArgument(
        std::string(AggregateFunctionToString(function)) +
        " requires an aggregate attribute");
  }
  if (!attribute.empty() && g.AttributeIdOf(attribute) == kInvalidId) {
    return Status::NotFound("aggregate attribute '" + attribute +
                            "' does not exist in the graph");
  }
  for (const Filter& f : filters) {
    if (f.attribute.empty()) {
      return Status::InvalidArgument("filter with empty attribute");
    }
    if (f.lower > f.upper) {
      return Status::InvalidArgument("filter with lower > upper on '" +
                                     f.attribute + "'");
    }
    if (g.AttributeIdOf(f.attribute) == kInvalidId) {
      return Status::NotFound("filter attribute '" + f.attribute +
                              "' does not exist in the graph");
    }
  }
  if (group_by.enabled()) {
    if (group_by.bucket_width <= 0.0) {
      return Status::InvalidArgument("GROUP-BY bucket width must be > 0");
    }
    if (g.AttributeIdOf(group_by.attribute) == kInvalidId) {
      return Status::NotFound("GROUP-BY attribute '" + group_by.attribute +
                              "' does not exist in the graph");
    }
  }
  return Status::OK();
}

}  // namespace kgaq
