#include "serve/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <charconv>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <utility>

#include "common/fault_injection.h"
#include "core/engine_context.h"
#include "query/query_text.h"

namespace kgaq {

namespace {

void AppendJsonString(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

const char* ReasonPhrase(int code) {
  switch (code) {
    case 200:
      return "OK";
    case 202:
      return "Accepted";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 408:
      return "Request Timeout";
    case 409:
      return "Conflict";
    case 412:
      return "Precondition Failed";
    case 413:
      return "Payload Too Large";
    case 429:
      return "Too Many Requests";
    case 501:
      return "Not Implemented";
    case 503:
      return "Service Unavailable";
    default:
      return "Internal Server Error";
  }
}

/// `extra_headers` must be "" or complete "Name: value\r\n" lines.
std::string MakeResponse(int code, const std::string& content_type,
                         const std::string& body,
                         const std::string& extra_headers = "") {
  std::string out = "HTTP/1.1 " + std::to_string(code) + " " +
                    ReasonPhrase(code) + "\r\n";
  out += "Content-Type: " + content_type + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += extra_headers;
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

std::string JsonError(int code, const std::string& message,
                      const std::string& extra_headers = "") {
  std::string body = "{\"error\":";
  AppendJsonString(body, message);
  body += "}\n";
  return MakeResponse(code, "application/json", body, extra_headers);
}

/// Retry-After takes integral seconds; round up so a client never
/// returns before the estimated drain instant.
std::string RetryAfterHeader(double retry_after_ms) {
  const auto secs = static_cast<uint64_t>(
      std::ceil(std::max(retry_after_ms, 0.0) / 1000.0));
  return "Retry-After: " + std::to_string(std::max<uint64_t>(secs, 1)) +
         "\r\n";
}

/// Splits "a=1&b=2" into pairs; no percent-decoding (every recognized
/// parameter is numeric).
std::vector<std::pair<std::string, std::string>> ParseQueryParams(
    const std::string& qs) {
  std::vector<std::pair<std::string, std::string>> out;
  size_t pos = 0;
  while (pos < qs.size()) {
    size_t amp = qs.find('&', pos);
    if (amp == std::string::npos) amp = qs.size();
    const std::string pair = qs.substr(pos, amp - pos);
    const size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      out.emplace_back(pair, "");
    } else {
      out.emplace_back(pair.substr(0, eq), pair.substr(eq + 1));
    }
    pos = amp + 1;
  }
  return out;
}

std::optional<double> ParseDoubleValue(const std::string& s) {
  double v = 0.0;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, v);
  if (ec != std::errc() || ptr != end || s.empty()) return std::nullopt;
  return v;
}

std::optional<uint64_t> ParseUint64Value(const std::string& s) {
  uint64_t v = 0;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, v);
  if (ec != std::errc() || ptr != end || s.empty()) return std::nullopt;
  return v;
}

void AppendResultJson(std::string& out, const AggregateResult& r) {
  out += "{\"v_hat\":";
  AppendRoundTripDouble(out, r.v_hat);
  out += ",\"moe\":";
  AppendRoundTripDouble(out, r.moe);
  out += ",\"confidence_level\":";
  AppendRoundTripDouble(out, r.confidence_level);
  out += ",\"error_bound\":";
  AppendRoundTripDouble(out, r.error_bound);
  out += ",\"satisfied\":";
  out += r.satisfied ? "true" : "false";
  out += ",\"rounds\":" + std::to_string(r.rounds);
  out += ",\"total_draws\":" + std::to_string(r.total_draws);
  out += ",\"correct_draws\":" + std::to_string(r.correct_draws);
  out += ",\"num_candidates\":" + std::to_string(r.num_candidates);
  if (!r.groups.empty()) {
    out += ",\"groups\":[";
    for (size_t i = 0; i < r.groups.size(); ++i) {
      const GroupEstimate& g = r.groups[i];
      if (i > 0) out += ',';
      out += "{\"bucket_lower\":";
      AppendRoundTripDouble(out, g.bucket_lower);
      out += ",\"v_hat\":";
      AppendRoundTripDouble(out, g.v_hat);
      out += ",\"moe\":";
      AppendRoundTripDouble(out, g.moe);
      out += ",\"support\":" + std::to_string(g.support);
      out += ",\"satisfied\":";
      out += g.satisfied ? "true" : "false";
      out += '}';
    }
    out += ']';
  }
  out += '}';
}

void AppendTicketJson(std::string& out, const QueryResponse& resp) {
  out += "{\"id\":" + std::to_string(resp.id);
  out += ",\"state\":\"";
  out += QueryStateToString(resp.state);
  out += "\",\"seed_used\":" + std::to_string(resp.seed_used);
  out += ",\"queue_ms\":";
  AppendRoundTripDouble(out, resp.queue_ms);
  out += ",\"run_ms\":";
  AppendRoundTripDouble(out, resp.run_ms);
  if (resp.degraded) {
    // Partial answer: the run was retired early (overload shed or
    // deadline) and result.error_bound is the achieved, not requested,
    // bound. Only emitted when set, so non-degraded responses keep
    // their exact pre-overload wire shape.
    out += ",\"degraded\":true";
  }
  if (resp.state == QueryState::kFailed) {
    out += ",\"error\":";
    AppendJsonString(out, resp.status.ToString());
  } else if (IsTerminalState(resp.state)) {
    out += ",\"result\":";
    AppendResultJson(out, resp.result);
  }
  out += "}\n";
}

bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

HttpServer::HttpServer(QueryService& service, HttpServerOptions options)
    : service_(service), options_(std::move(options)) {}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start() {
  if (listen_fd_ >= 0) return Status::FailedPrecondition("already started");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("unparseable bind address '" +
                                   options_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("bind " + options_.bind_address + ":" +
                           std::to_string(options_.port) + ": " + err);
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, options_.backlog) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("listen: " + err);
  }

  stopping_.store(false);
  // The accept thread works on its own copy of the fd, so Stop() never
  // races its reads; the fd itself is closed only after the join.
  accept_thread_ = std::thread([this, fd = listen_fd_] { AcceptLoop(fd); });
  const size_t handlers = std::max<size_t>(1, options_.num_handler_threads);
  handlers_.reserve(handlers);
  for (size_t i = 0; i < handlers; ++i) {
    handlers_.emplace_back([this] { HandlerLoop(); });
  }
  return Status::OK();
}

void HttpServer::Stop() {
  if (listen_fd_ < 0 && !accept_thread_.joinable()) return;
  stopping_.store(true);
  if (listen_fd_ >= 0) {
    // shutdown() wakes the blocking accept(); the close itself waits
    // until the accept thread has joined, so the fd number cannot be
    // recycled under a still-running accept().
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  {
    // Taken-and-released around the flag so a handler that already
    // evaluated its wait predicate cannot block between this store and
    // the notify (the classic missed-wakeup race).
    std::lock_guard<std::mutex> lock(conn_mu_);
    stopping_.store(true);
  }
  conn_available_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (std::thread& t : handlers_) {
    if (t.joinable()) t.join();
  }
  handlers_.clear();
  std::lock_guard<std::mutex> lock(conn_mu_);
  for (int fd : connections_) ::close(fd);
  connections_.clear();
}

HttpServer::Stats HttpServer::stats() const {
  Stats out;
  out.requests = requests_.load(std::memory_order_relaxed);
  out.bad_requests = bad_requests_.load(std::memory_order_relaxed);
  return out;
}

void HttpServer::AcceptLoop(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (stopping_.load()) {
      if (fd >= 0) ::close(fd);
      return;
    }
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed
    }
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      connections_.push_back(fd);
    }
    conn_available_.notify_one();
  }
}

void HttpServer::HandlerLoop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(conn_mu_);
      conn_available_.wait(lock, [&] {
        return stopping_.load() || !connections_.empty();
      });
      if (stopping_.load() && connections_.empty()) return;
      fd = connections_.front();
      connections_.pop_front();
    }
    HandleConnection(fd);
  }
}

void HttpServer::HandleConnection(int fd) {
  const auto set_timeout = [fd](int which, double ms) {
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(ms / 1000.0);
    tv.tv_usec = static_cast<suseconds_t>(static_cast<long>(ms * 1000.0) %
                                          1000000);
    ::setsockopt(fd, SOL_SOCKET, which, &tv, sizeof(tv));
  };
  set_timeout(SO_RCVTIMEO, options_.read_timeout_ms);
  set_timeout(SO_SNDTIMEO, options_.write_timeout_ms);

  // Per-recv timeouts alone don't stop a slow-loris client that feeds a
  // byte every few seconds; the whole connection also runs against one
  // wall-clock deadline.
  const auto conn_deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(
              options_.connection_deadline_ms));
  const auto past_deadline = [&conn_deadline] {
    return std::chrono::steady_clock::now() >= conn_deadline;
  };

  std::string buf;
  size_t header_end = std::string::npos;
  char chunk[4096];
  while (header_end == std::string::npos) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0 || KGAQ_FAULT_POINT("http.conn.read_error")) {
      ::close(fd);
      return;  // timeout, reset, or client gave up mid-head
    }
    buf.append(chunk, static_cast<size_t>(n));
    header_end = buf.find("\r\n\r\n");
    if (buf.size() > options_.max_request_bytes) {
      requests_.fetch_add(1, std::memory_order_relaxed);
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
      SendAll(fd, JsonError(413, "request exceeds limit"));
      ::close(fd);
      return;
    }
    if (header_end == std::string::npos && past_deadline()) {
      requests_.fetch_add(1, std::memory_order_relaxed);
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
      SendAll(fd, JsonError(408, "connection deadline exceeded mid-head"));
      ::close(fd);
      return;
    }
  }
  requests_.fetch_add(1, std::memory_order_relaxed);

  // Request line: METHOD SP TARGET SP VERSION.
  const std::string head = buf.substr(0, header_end);
  const size_t line_end = head.find("\r\n");
  const std::string request_line =
      line_end == std::string::npos ? head : head.substr(0, line_end);
  const size_t sp1 = request_line.find(' ');
  const size_t sp2 =
      sp1 == std::string::npos ? std::string::npos
                               : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    SendAll(fd, JsonError(400, "malformed request line"));
    ::close(fd);
    return;
  }
  const std::string method = request_line.substr(0, sp1);
  const std::string target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);

  // Body by Content-Length (case-insensitive header scan).
  size_t content_length = 0;
  {
    std::string lower = head;
    for (char& c : lower) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    const size_t pos = lower.find("content-length:");
    if (pos != std::string::npos) {
      content_length = std::strtoull(head.c_str() + pos + 15, nullptr, 10);
    }
  }
  if (content_length > options_.max_request_bytes) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    SendAll(fd, JsonError(413, "body exceeds limit"));
    ::close(fd);
    return;
  }
  std::string body = buf.substr(header_end + 4);
  while (body.size() < content_length) {
    if (past_deadline()) {
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
      SendAll(fd, JsonError(408, "connection deadline exceeded mid-body"));
      ::close(fd);
      return;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0 || KGAQ_FAULT_POINT("http.conn.read_error")) {
      // A stalled or reset client left the body short. Never dispatch a
      // truncated body: a wire-format prefix cut at a clause boundary is
      // itself a valid (different) query.
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
      SendAll(fd, JsonError(400, "body truncated: got " +
                                     std::to_string(body.size()) + " of " +
                                     std::to_string(content_length) +
                                     " Content-Length bytes"));
      ::close(fd);
      return;
    }
    body.append(chunk, static_cast<size_t>(n));
  }
  body.resize(content_length);

  const std::string response = Dispatch(method, target, body);
  SendAll(fd, response);
  ::close(fd);
}

std::string HttpServer::Dispatch(const std::string& method,
                                 const std::string& target,
                                 const std::string& body) {
  const size_t qmark = target.find('?');
  const std::string path =
      qmark == std::string::npos ? target : target.substr(0, qmark);
  const std::string query_string =
      qmark == std::string::npos ? "" : target.substr(qmark + 1);

  auto bad = [this](int code, const std::string& msg) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    return JsonError(code, msg);
  };

  if (path == "/healthz") {
    // Healthy keeps the historical "ok" body; load balancers checking
    // for 200 see Saturated replicas as alive but can read the body to
    // deprioritize them, and Shedding replicas drain via plain 503. A
    // non-Healthy memory-pressure state is appended as a body suffix
    // (" memory:pressured" / " memory:critical") without changing the
    // status code — pressure degrades cache builds, not availability.
    std::string memory_suffix;
    const MemoryPressure pressure = service_.context()->memory_pressure();
    if (pressure != MemoryPressure::kHealthy) {
      memory_suffix =
          std::string(" memory:") + MemoryPressureToString(pressure);
    }
    switch (service_.overload_state()) {
      case OverloadState::kHealthy:
        return MakeResponse(200, "text/plain", "ok" + memory_suffix + "\n");
      case OverloadState::kSaturated:
        return MakeResponse(200, "text/plain",
                            "saturated" + memory_suffix + "\n");
      case OverloadState::kShedding:
        return MakeResponse(
            503, "text/plain", "shedding" + memory_suffix + "\n",
            RetryAfterHeader(service_.stats().retry_after_ms));
    }
    return MakeResponse(200, "text/plain", "ok" + memory_suffix + "\n");
  }

  if (path == "/stats") {
    const QueryService::ServiceStats s = service_.stats();
    const EngineContext::CacheStats c = service_.context()->Stats();
    std::string out = "{\"service\":{";
    out += "\"submitted\":" + std::to_string(s.submitted);
    out += ",\"done\":" + std::to_string(s.done);
    out += ",\"failed\":" + std::to_string(s.failed);
    out += ",\"cancelled\":" + std::to_string(s.cancelled);
    out += ",\"deadline_expired\":" + std::to_string(s.deadline_expired);
    out += ",\"rejected\":" + std::to_string(s.rejected);
    out += ",\"shed\":" + std::to_string(s.shed);
    out += ",\"degraded\":" + std::to_string(s.degraded);
    out += ",\"queued\":" + std::to_string(s.queued);
    out += ",\"running\":" + std::to_string(s.running);
    out += ",\"overload\":\"";
    out += OverloadStateToString(s.overload);
    out += "\",\"retry_after_ms\":";
    AppendRoundTripDouble(out, s.retry_after_ms);
    out += ",\"last_tick_age_ms\":";
    AppendRoundTripDouble(out, s.last_tick_age_ms);
    out += ",\"watchdog_stalls\":" + std::to_string(s.watchdog_stalls);
    out += ",\"memory_pressure\":\"";
    out += MemoryPressureToString(s.memory_pressure);
    out += "\"},\"http\":{";
    out += "\"requests\":" +
           std::to_string(requests_.load(std::memory_order_relaxed));
    out += ",\"bad_requests\":" +
           std::to_string(bad_requests_.load(std::memory_order_relaxed));
    out += "},\"caches\":{\"sims\":{";
    out += "\"hits\":" + std::to_string(c.sims_hits);
    out += ",\"misses\":" + std::to_string(c.sims_misses);
    out += ",\"entries\":" + std::to_string(c.sims_entries);
    out += ",\"bytes\":" + std::to_string(c.sims_bytes);
    out += "},\"cores\":{";
    out += "\"hits\":" + std::to_string(c.core_hits);
    out += ",\"misses\":" + std::to_string(c.core_misses);
    out += ",\"entries\":" + std::to_string(c.core_entries);
    out += ",\"bytes\":" + std::to_string(c.core_bytes);
    out += "},\"chain\":{";
    out += "\"hits\":" + std::to_string(c.chain_hits);
    out += ",\"misses\":" + std::to_string(c.chain_misses);
    out += ",\"entries\":" + std::to_string(c.chain_entries);
    out += ",\"bytes\":" + std::to_string(c.chain_bytes);
    out += "},\"governor\":{";
    out += "\"budget_bytes\":" + std::to_string(c.budget_bytes);
    out += ",\"charged_bytes\":" + std::to_string(c.charged_bytes);
    out += ",\"pinned_bytes\":" + std::to_string(c.pinned_bytes);
    out += ",\"pressure\":\"";
    out += MemoryPressureToString(c.pressure);
    out += "\",\"evictions\":" + std::to_string(c.evictions);
    out += ",\"admission_rejects\":" + std::to_string(c.admission_rejects);
    out += ",\"shed_builds\":" + std::to_string(c.shed_builds);
    out += ",\"alloc_failures\":" + std::to_string(c.alloc_failures);
    out += ",\"build_failures\":" + std::to_string(c.build_failures);
    out += "},\"total_bytes\":" + std::to_string(c.TotalBytes());
    out += "}}\n";
    return MakeResponse(200, "application/json", out);
  }

  if (path == "/query") {
    if (method != "POST") {
      return bad(405, "submit queries with POST /query");
    }
    auto query = ParseAggregateQuery(body);
    if (!query.ok()) {
      return bad(400, query.status().message());
    }
    QueryRequest request;
    request.query = std::move(*query);
    for (const auto& [key, value] : ParseQueryParams(query_string)) {
      if (key == "eb") {
        auto v = ParseDoubleValue(value);
        if (!v.has_value()) return bad(400, "unparseable eb value");
        request.error_bound = *v;
      } else if (key == "conf") {
        auto v = ParseDoubleValue(value);
        if (!v.has_value()) return bad(400, "unparseable conf value");
        request.confidence_level = *v;
      } else if (key == "seed") {
        auto v = ParseUint64Value(value);
        if (!v.has_value()) return bad(400, "unparseable seed value");
        request.seed = *v;
      } else if (key == "max_rounds") {
        auto v = ParseUint64Value(value);
        if (!v.has_value()) return bad(400, "unparseable max_rounds value");
        request.max_rounds = static_cast<size_t>(*v);
      } else if (key == "deadline_ms") {
        auto v = ParseDoubleValue(value);
        if (!v.has_value()) return bad(400, "unparseable deadline_ms value");
        request.deadline_ms = *v;
      } else {
        return bad(400, "unknown parameter '" + key +
                            "' (eb, conf, seed, max_rounds, deadline_ms)");
      }
    }
    const std::string canonical = FormatAggregateQuery(request.query);
    QueryTicket ticket = service_.SubmitAsync(std::move(request));
    {
      // A rejected submission comes back already terminal (bounded queue
      // full, shedding, or shutdown). Map its status through the shared
      // taxonomy — 429 or 503 — with a Retry-After paced to the queue's
      // observed drain rate, and never register it: the id is spent and
      // there is nothing to poll.
      const QueryResponse birth = ticket.Poll();
      if (birth.state == QueryState::kFailed &&
          (birth.status.code() == StatusCode::kResourceExhausted ||
           birth.status.code() == StatusCode::kUnavailable)) {
        bad_requests_.fetch_add(1, std::memory_order_relaxed);
        return JsonError(HttpStatusForCode(birth.status.code()),
                         birth.status.message(),
                         RetryAfterHeader(service_.stats().retry_after_ms));
      }
    }
    {
      std::lock_guard<std::mutex> lock(tickets_mu_);
      tickets_.emplace(ticket.id(), ticket);
      ticket_order_.push_back(ticket.id());
      // Bounded registry: evict the oldest submissions (any external
      // ticket copies stay valid; the evicted id just answers 404).
      while (tickets_.size() > std::max<size_t>(1,
                                                options_.max_tracked_tickets)) {
        tickets_.erase(ticket_order_.front());
        ticket_order_.pop_front();
      }
    }
    std::string out = "{\"id\":" + std::to_string(ticket.id());
    out += ",\"state\":\"";
    out += QueryStateToString(ticket.Poll().state);
    out += "\",\"query\":";
    AppendJsonString(out, canonical);
    out += "}\n";
    return MakeResponse(202, "application/json", out);
  }

  auto ticket_for = [&](const std::string& prefix) -> std::optional<QueryTicket> {
    const std::string id_text = path.substr(prefix.size());
    auto id = ParseUint64Value(id_text);
    if (!id.has_value()) return std::nullopt;
    std::lock_guard<std::mutex> lock(tickets_mu_);
    auto it = tickets_.find(*id);
    if (it == tickets_.end()) return std::nullopt;
    return it->second;
  };

  if (path.rfind("/result/", 0) == 0) {
    auto ticket = ticket_for("/result/");
    if (!ticket.has_value()) {
      return bad(404, "unknown query id '" + path.substr(8) + "'");
    }
    std::string out;
    AppendTicketJson(out, ticket->Poll());
    return MakeResponse(200, "application/json", out);
  }

  if (path.rfind("/cancel/", 0) == 0) {
    auto ticket = ticket_for("/cancel/");
    if (!ticket.has_value()) {
      return bad(404, "unknown query id '" + path.substr(8) + "'");
    }
    ticket->Cancel();
    std::string out;
    AppendTicketJson(out, ticket->Poll());
    return MakeResponse(200, "application/json", out);
  }

  return bad(404, "no route for '" + path + "'");
}

std::string ExtractJsonField(const std::string& body,
                             const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = body.find(needle);
  if (pos == std::string::npos) return "";
  size_t i = pos + needle.size();
  if (i < body.size() && body[i] == '"') {
    ++i;
    std::string out;
    while (i < body.size() && body[i] != '"') {
      if (body[i] != '\\' || i + 1 >= body.size()) {
        out += body[i++];
        continue;
      }
      // Invert exactly what AppendJsonString emits.
      const char esc = body[i + 1];
      i += 2;
      switch (esc) {
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          unsigned code = 0;
          if (i + 4 <= body.size()) {
            code = static_cast<unsigned>(
                std::strtoul(body.substr(i, 4).c_str(), nullptr, 16));
            i += 4;
          }
          out += static_cast<char>(code);
          break;
        }
        default:  // \" and \\ (and anything else) decode to the char
          out += esc;
      }
    }
    return out;
  }
  size_t end = i;
  while (end < body.size() && body[end] != ',' && body[end] != '}' &&
         body[end] != ']') {
    ++end;
  }
  return body.substr(i, end - i);
}

Result<HttpResponse> HttpFetch(const std::string& host, uint16_t port,
                               const std::string& method,
                               const std::string& target,
                               const std::string& body) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("unparseable host '" + host +
                                   "' (numeric IPv4 only)");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      KGAQ_FAULT_POINT("http.client.connect_error")) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    // kUnavailable, not kIoError: no request bytes reached a server, so
    // the call is safe to retry regardless of the method's idempotency.
    return Status::Unavailable("connect " + host + ":" +
                               std::to_string(port) + ": " + err);
  }
  std::string request = method + " " + target + " HTTP/1.1\r\n";
  request += "Host: " + host + "\r\n";
  request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  request += "Connection: close\r\n\r\n";
  request += body;
  if (!SendAll(fd, request)) {
    ::close(fd);
    return Status::IoError("send failed");
  }
  std::string raw;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 || KGAQ_FAULT_POINT("http.client.recv_error")) {
      ::close(fd);
      // The request may have reached the server before the read died, so
      // this is NOT blindly retryable: kIoError, and the retry policy
      // decides by idempotency.
      return Status::IoError(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) break;
    raw.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);

  HttpResponse out;
  const size_t sp = raw.find(' ');
  if (raw.rfind("HTTP/", 0) != 0 || sp == std::string::npos) {
    return Status::IoError("malformed HTTP response");
  }
  out.status_code = std::atoi(raw.c_str() + sp + 1);
  const size_t header_end = raw.find("\r\n\r\n");
  if (header_end != std::string::npos) {
    out.body = raw.substr(header_end + 4);
    // Case-insensitive Retry-After scan over the header block only.
    std::string head = raw.substr(0, header_end);
    for (char& c : head) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    const size_t ra = head.find("retry-after:");
    if (ra != std::string::npos) {
      out.retry_after_s = std::strtod(raw.c_str() + ra + 12, nullptr);
    }
  }
  return out;
}

}  // namespace kgaq
