#include "serve/http_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#if defined(__linux__)
#include <sys/epoll.h>
#include <sys/eventfd.h>
#endif

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <charconv>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <utility>

#include "common/fault_injection.h"
#include "core/engine_context.h"
#include "query/query_text.h"

namespace kgaq {

namespace {

/// Event-loop tick: the poller never sleeps longer than this, so idle
/// reaping, 408 deadlines and long-poll expiries have ~this granularity
/// and a Stop() is observed within one tick even if its wakeup is lost.
constexpr int kLoopTickMs = 20;

/// Hard ceiling on GET /result/<id>?wait=MS long-polls.
constexpr double kMaxLongPollMs = 60000.0;

void AppendJsonString(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

const char* ReasonPhrase(int code) {
  switch (code) {
    case 200:
      return "OK";
    case 202:
      return "Accepted";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 408:
      return "Request Timeout";
    case 409:
      return "Conflict";
    case 412:
      return "Precondition Failed";
    case 413:
      return "Payload Too Large";
    case 429:
      return "Too Many Requests";
    case 431:
      return "Request Header Fields Too Large";
    case 501:
      return "Not Implemented";
    case 503:
      return "Service Unavailable";
    default:
      return "Internal Server Error";
  }
}

/// `extra_headers` must be "" or complete "Name: value\r\n" lines.
/// `keep_alive` picks the Connection header; the event-loop server keeps
/// the socket open exactly when it says keep-alive, the blocking model
/// always passes false (its historical one-request-per-connection wire
/// behavior).
std::string MakeResponse(int code, const std::string& content_type,
                         const std::string& body, bool keep_alive,
                         const std::string& extra_headers = "") {
  std::string out = "HTTP/1.1 " + std::to_string(code) + " " +
                    ReasonPhrase(code) + "\r\n";
  out += "Content-Type: " + content_type + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += extra_headers;
  out += keep_alive ? "Connection: keep-alive\r\n\r\n"
                    : "Connection: close\r\n\r\n";
  out += body;
  return out;
}

std::string JsonError(int code, const std::string& message, bool keep_alive,
                      const std::string& extra_headers = "") {
  std::string body = "{\"error\":";
  AppendJsonString(body, message);
  body += "}\n";
  return MakeResponse(code, "application/json", body, keep_alive,
                      extra_headers);
}

/// Status code of a response string this file generated ("HTTP/1.1 NNN").
int ResponseStatusCode(const std::string& response) {
  return std::atoi(response.c_str() + 9);
}

/// Errors after which the input stream is unframeable (the offending
/// bytes are still buffered, or were never received): the connection
/// must close. Routing errors (404/405) and overload rejections
/// (429/503) leave framing intact and keep the connection alive.
bool ResponseClosesConnection(int code) {
  return code == 400 || code == 408 || code == 413 || code == 431;
}

/// Retry-After takes integral seconds; round up so a client never
/// returns before the estimated drain instant.
std::string RetryAfterHeader(double retry_after_ms) {
  const auto secs = static_cast<uint64_t>(
      std::ceil(std::max(retry_after_ms, 0.0) / 1000.0));
  return "Retry-After: " + std::to_string(std::max<uint64_t>(secs, 1)) +
         "\r\n";
}

/// Splits "a=1&b=2" into pairs; no percent-decoding (every recognized
/// parameter is numeric).
std::vector<std::pair<std::string, std::string>> ParseQueryParams(
    const std::string& qs) {
  std::vector<std::pair<std::string, std::string>> out;
  size_t pos = 0;
  while (pos < qs.size()) {
    size_t amp = qs.find('&', pos);
    if (amp == std::string::npos) amp = qs.size();
    const std::string pair = qs.substr(pos, amp - pos);
    const size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      out.emplace_back(pair, "");
    } else {
      out.emplace_back(pair.substr(0, eq), pair.substr(eq + 1));
    }
    pos = amp + 1;
  }
  return out;
}

std::optional<double> ParseDoubleValue(const std::string& s) {
  double v = 0.0;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, v);
  if (ec != std::errc() || ptr != end || s.empty()) return std::nullopt;
  return v;
}

std::optional<uint64_t> ParseUint64Value(const std::string& s) {
  uint64_t v = 0;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, v);
  if (ec != std::errc() || ptr != end || s.empty()) return std::nullopt;
  return v;
}

void AppendResultJson(std::string& out, const AggregateResult& r) {
  out += "{\"v_hat\":";
  AppendRoundTripDouble(out, r.v_hat);
  out += ",\"moe\":";
  AppendRoundTripDouble(out, r.moe);
  out += ",\"confidence_level\":";
  AppendRoundTripDouble(out, r.confidence_level);
  out += ",\"error_bound\":";
  AppendRoundTripDouble(out, r.error_bound);
  out += ",\"satisfied\":";
  out += r.satisfied ? "true" : "false";
  out += ",\"rounds\":" + std::to_string(r.rounds);
  out += ",\"total_draws\":" + std::to_string(r.total_draws);
  out += ",\"correct_draws\":" + std::to_string(r.correct_draws);
  out += ",\"num_candidates\":" + std::to_string(r.num_candidates);
  if (!r.groups.empty()) {
    out += ",\"groups\":[";
    for (size_t i = 0; i < r.groups.size(); ++i) {
      const GroupEstimate& g = r.groups[i];
      if (i > 0) out += ',';
      out += "{\"bucket_lower\":";
      AppendRoundTripDouble(out, g.bucket_lower);
      out += ",\"v_hat\":";
      AppendRoundTripDouble(out, g.v_hat);
      out += ",\"moe\":";
      AppendRoundTripDouble(out, g.moe);
      out += ",\"support\":" + std::to_string(g.support);
      out += ",\"satisfied\":";
      out += g.satisfied ? "true" : "false";
      out += '}';
    }
    out += ']';
  }
  out += '}';
}

void AppendTicketJson(std::string& out, const QueryResponse& resp) {
  out += "{\"id\":" + std::to_string(resp.id);
  out += ",\"state\":\"";
  out += QueryStateToString(resp.state);
  out += "\",\"seed_used\":" + std::to_string(resp.seed_used);
  out += ",\"queue_ms\":";
  AppendRoundTripDouble(out, resp.queue_ms);
  out += ",\"run_ms\":";
  AppendRoundTripDouble(out, resp.run_ms);
  if (resp.degraded) {
    // Partial answer: the run was retired early (overload shed or
    // deadline) and result.error_bound is the achieved, not requested,
    // bound. Only emitted when set, so non-degraded responses keep
    // their exact pre-overload wire shape.
    out += ",\"degraded\":true";
  }
  if (resp.state == QueryState::kFailed) {
    out += ",\"error\":";
    AppendJsonString(out, resp.status.ToString());
  } else if (IsTerminalState(resp.state)) {
    out += ",\"result\":";
    AppendResultJson(out, resp.result);
  }
  out += "}\n";
}

bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void SetNoDelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

double ElapsedMs(std::chrono::steady_clock::time_point from,
                 std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

std::chrono::steady_clock::duration MsDuration(double ms) {
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double, std::milli>(ms));
}

struct PollerEvent {
  int fd = -1;
  bool readable = false;
  bool writable = false;
  bool hangup = false;
};

/// Readiness backend of an event loop: epoll where available (Linux),
/// poll(2) otherwise or when HttpServerOptions::force_poll_backend asks
/// for it. Both backends are LEVEL-triggered — still-pending readiness
/// is re-reported on the next Wait, which is what makes a dropped
/// wakeup (the `serve.loop.wakeup` fault) recoverable instead of a
/// lost completion.
class Poller {
 public:
  explicit Poller(bool force_poll) {
#if defined(__linux__)
    if (!force_poll) epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
#else
    (void)force_poll;
#endif
  }
  ~Poller() {
#if defined(__linux__)
    if (epfd_ >= 0) ::close(epfd_);
#endif
  }
  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  void Add(int fd, bool rd, bool wr) {
#if defined(__linux__)
    if (epfd_ >= 0) {
      epoll_event ev{};
      ev.events = EpollMask(rd, wr);
      ev.data.fd = fd;
      ::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev);
      return;
    }
#endif
    index_[fd] = pfds_.size();
    pfds_.push_back(pollfd{fd, PollMask(rd, wr), 0});
  }

  void Mod(int fd, bool rd, bool wr) {
#if defined(__linux__)
    if (epfd_ >= 0) {
      epoll_event ev{};
      ev.events = EpollMask(rd, wr);
      ev.data.fd = fd;
      ::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev);
      return;
    }
#endif
    auto it = index_.find(fd);
    if (it != index_.end()) pfds_[it->second].events = PollMask(rd, wr);
  }

  void Del(int fd) {
#if defined(__linux__)
    if (epfd_ >= 0) {
      ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
      return;
    }
#endif
    auto it = index_.find(fd);
    if (it == index_.end()) return;
    const size_t i = it->second;
    const size_t last = pfds_.size() - 1;
    if (i != last) {
      pfds_[i] = pfds_[last];
      index_[pfds_[i].fd] = i;
    }
    pfds_.pop_back();
    index_.erase(it);
  }

  /// Blocks up to timeout_ms, appends ready fds to `out`, returns how
  /// many were ready (0 on timeout or EINTR).
  size_t Wait(int timeout_ms, std::vector<PollerEvent>& out) {
#if defined(__linux__)
    if (epfd_ >= 0) {
      epoll_event evs[256];
      const int n = ::epoll_wait(epfd_, evs, 256, timeout_ms);
      if (n <= 0) return 0;
      for (int i = 0; i < n; ++i) {
        PollerEvent ev;
        ev.fd = evs[i].data.fd;
        ev.readable = (evs[i].events & EPOLLIN) != 0;
        ev.writable = (evs[i].events & EPOLLOUT) != 0;
        ev.hangup = (evs[i].events & (EPOLLHUP | EPOLLERR)) != 0;
        out.push_back(ev);
      }
      return static_cast<size_t>(n);
    }
#endif
    const int n = ::poll(pfds_.data(), static_cast<nfds_t>(pfds_.size()),
                         timeout_ms);
    if (n <= 0) return 0;
    for (const pollfd& p : pfds_) {
      if (p.revents == 0) continue;
      PollerEvent ev;
      ev.fd = p.fd;
      ev.readable = (p.revents & POLLIN) != 0;
      ev.writable = (p.revents & POLLOUT) != 0;
      ev.hangup = (p.revents & (POLLHUP | POLLERR | POLLNVAL)) != 0;
      out.push_back(ev);
    }
    return static_cast<size_t>(n);
  }

 private:
#if defined(__linux__)
  static uint32_t EpollMask(bool rd, bool wr) {
    return (rd ? static_cast<uint32_t>(EPOLLIN) : 0u) |
           (wr ? static_cast<uint32_t>(EPOLLOUT) : 0u);
  }
  int epfd_ = -1;
#endif
  static short PollMask(bool rd, bool wr) {
    return static_cast<short>((rd ? POLLIN : 0) | (wr ? POLLOUT : 0));
  }
  std::vector<pollfd> pfds_;
  std::unordered_map<int, size_t> index_;
};

/// Cross-thread wakeup for an event loop: eventfd on Linux, a
/// non-blocking pipe elsewhere. Signal() from any thread makes the
/// loop's poller return; Drain() resets it.
class WakeupFd {
 public:
  WakeupFd() = default;
  ~WakeupFd() { Close(); }
  WakeupFd(const WakeupFd&) = delete;
  WakeupFd& operator=(const WakeupFd&) = delete;

  Status Open() {
#if defined(__linux__)
    read_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (read_fd_ < 0) {
      return Status::IoError(std::string("eventfd: ") + std::strerror(errno));
    }
    write_fd_ = read_fd_;
    return Status::OK();
#else
    int fds[2];
    if (::pipe(fds) != 0) {
      return Status::IoError(std::string("pipe: ") + std::strerror(errno));
    }
    SetNonBlocking(fds[0]);
    SetNonBlocking(fds[1]);
    read_fd_ = fds[0];
    write_fd_ = fds[1];
    return Status::OK();
#endif
  }

  void Close() {
    if (write_fd_ >= 0 && write_fd_ != read_fd_) ::close(write_fd_);
    if (read_fd_ >= 0) ::close(read_fd_);
    read_fd_ = write_fd_ = -1;
  }

  int read_fd() const { return read_fd_; }

  void Signal() {
    if (write_fd_ < 0) return;
    const uint64_t one = 1;
    // EAGAIN (counter/pipe full) is fine: a wakeup is already pending.
    const ssize_t n = ::write(write_fd_, &one, sizeof(one));
    (void)n;
  }

  void Drain() {
    if (read_fd_ < 0) return;
    char buf[64];
    while (::read(read_fd_, buf, sizeof(buf)) > 0) {
    }
  }

 private:
  int read_fd_ = -1;
  int write_fd_ = -1;
};

/// Everything the connection-level code needs from one parsed response
/// head.
struct ParsedResponseHead {
  int status_code = 0;
  bool have_length = false;
  size_t content_length = 0;
  bool close = false;  ///< server said Connection: close
  double retry_after_s = 0.0;
};

bool ParseResponseHead(const std::string& head, ParsedResponseHead& out) {
  const size_t sp = head.find(' ');
  if (head.rfind("HTTP/", 0) != 0 || sp == std::string::npos) return false;
  out.status_code = std::atoi(head.c_str() + sp + 1);
  std::string lower = head;
  for (char& c : lower) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  size_t pos = lower.find("content-length:");
  if (pos != std::string::npos) {
    out.have_length = true;
    out.content_length = std::strtoull(head.c_str() + pos + 15, nullptr, 10);
  }
  pos = lower.find("retry-after:");
  if (pos != std::string::npos) {
    out.retry_after_s = std::strtod(head.c_str() + pos + 12, nullptr);
  }
  pos = lower.find("connection:");
  if (pos != std::string::npos) {
    size_t line_end = lower.find("\r\n", pos);
    if (line_end == std::string::npos) line_end = lower.size();
    out.close =
        lower.substr(pos, line_end - pos).find("close") != std::string::npos;
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------
// EventLoop: one thread owning a share of the connection population.
// ---------------------------------------------------------------------

/// A connection lives on exactly one loop for its whole life, so all its
/// state (buffers, parse position, wait registration) is plain data with
/// no locks. The only cross-thread surface is the Mailbox: the acceptor
/// posts fresh sockets, QueryTicket::OnTerminal callbacks post finished
/// long-poll responses, and both ring the wakeup fd so the poller
/// returns. The mailbox is a shared_ptr because a completion callback
/// can outlive the loop (scheduler retires a query after server Stop) —
/// it then finds `open == false` and drops the completion.
class HttpServer::EventLoop {
 public:
  explicit EventLoop(HttpServer& server)
      : server_(server), mailbox_(std::make_shared<Mailbox>()) {}
  ~EventLoop() { Stop(); }

  Status Start() {
    Status st = mailbox_->wake.Open();
    if (!st.ok()) return st;
    poller_ = std::make_unique<Poller>(server_.options_.force_poll_backend);
    poller_->Add(mailbox_->wake.read_fd(), /*rd=*/true, /*wr=*/false);
    stop_.store(false);
    thread_ = std::thread([this] { Run(); });
    return Status::OK();
  }

  /// Joins the loop thread and closes every owned socket. Stop is
  /// signalled via its own atomic, checked every tick — a lost wakeup
  /// (fault-injected or otherwise) can delay shutdown by at most one
  /// tick, never block it.
  void Stop() {
    if (thread_.joinable()) {
      stop_.store(true);
      {
        std::lock_guard<std::mutex> lock(mailbox_->mu);
        mailbox_->wake.Signal();
      }
      thread_.join();
    }
    std::lock_guard<std::mutex> lock(mailbox_->mu);
    mailbox_->open = false;
    for (int fd : mailbox_->new_fds) ::close(fd);
    mailbox_->new_fds.clear();
    mailbox_->completions.clear();
    mailbox_->wake.Close();
    for (auto& [fd, conn] : conns_) {
      (void)conn;
      ::close(fd);
    }
    conns_.clear();
    open_connections_.store(0, std::memory_order_relaxed);
    poller_.reset();
  }

  /// Hands a freshly accepted socket (already non-blocking) to this
  /// loop. Called from the acceptor thread.
  void AddConnection(int fd) {
    std::lock_guard<std::mutex> lock(mailbox_->mu);
    if (!mailbox_->open) {
      ::close(fd);
      return;
    }
    mailbox_->new_fds.push_back(fd);
    mailbox_->wake.Signal();
  }

  size_t open_connections() const {
    return open_connections_.load(std::memory_order_relaxed);
  }
  uint64_t wakeups() const {
    return wakeups_.load(std::memory_order_relaxed);
  }
  /// Pending cross-thread work not yet drained by the loop.
  size_t queue_depth() const {
    std::lock_guard<std::mutex> lock(mailbox_->mu);
    return mailbox_->new_fds.size() + mailbox_->completions.size();
  }

 private:
  /// A long-poll response rendered off-loop, addressed by (fd, gen,
  /// epoch) so a completion for a closed / recycled connection or an
  /// already-expired wait is dropped instead of answering the wrong
  /// request.
  struct Completion {
    int fd = -1;
    uint64_t gen = 0;
    uint64_t epoch = 0;
    std::string response;
  };

  struct Mailbox {
    mutable std::mutex mu;
    bool open = true;
    WakeupFd wake;
    std::vector<int> new_fds;
    std::vector<Completion> completions;
  };

  struct Conn {
    int fd = -1;
    uint64_t gen = 0;   ///< distinguishes reuses of the same fd number
    std::string in;     ///< unparsed request bytes
    std::string out;    ///< unflushed response bytes
    size_t out_off = 0;
    uint64_t served = 0;  ///< requests handled on this connection
    bool close_after_flush = false;
    bool want_write = false;   ///< registered for write readiness
    bool paused_read = false;  ///< read interest dropped (buffer full)
    /// Parsing is paused while a POST /query sits in the current
    /// admission wave; pipelined successors are answered after it.
    bool pending_submit = false;
    // Long-poll state: parsing is paused so pipelined successors are
    // answered in order after the deferred response.
    bool waiting = false;
    bool wait_keep_alive = true;
    uint64_t wait_epoch = 0;
    std::chrono::steady_clock::time_point wait_deadline{};
    std::optional<QueryTicket> wait_ticket;
    std::chrono::steady_clock::time_point last_activity{};
    /// First byte of the (partial) request at the head of `in` arrived
    /// here; exceeding connection_deadline_ms answers 408 (slow-loris).
    std::chrono::steady_clock::time_point request_start{};
  };

  /// One parsed POST /query awaiting the current admission wave.
  struct PendingSubmit {
    int fd = -1;
    uint64_t gen = 0;
    HttpServer::PreparedSubmit prep;
    bool keep_alive = true;
  };

  void Run() {
    std::vector<PollerEvent> events;
    const int wake_fd = mailbox_->wake.read_fd();
    while (!stop_.load(std::memory_order_relaxed)) {
      events.clear();
      const size_t n = poller_->Wait(kLoopTickMs, events);
      if (stop_.load(std::memory_order_relaxed)) break;
      if (n > 0) wakeups_.fetch_add(1, std::memory_order_relaxed);
      for (const PollerEvent& ev : events) {
        if (ev.fd == wake_fd) {
          if (KGAQ_FAULT_POINT("serve.loop.wakeup")) {
            // Injected dropped wakeup: neither drained nor dispatched.
            // The backend is level-triggered, so the still-readable
            // wakeup fd re-fires on the next Wait — the fault costs a
            // tick of latency, never a lost completion or connection.
            continue;
          }
          mailbox_->wake.Drain();
          DrainMailbox();
          continue;
        }
        if (ev.writable) FlushConn(ev.fd);
        auto it = conns_.find(ev.fd);
        if (it == conns_.end()) continue;
        if (ev.readable || ev.hangup) {
          if (it->second.paused_read) {
            // Read interest is off, so readiness here is a hangup: the
            // peer died while we were backpressuring it.
            if (ev.hangup) CloseConn(ev.fd);
          } else {
            ReadConn(ev.fd);
          }
        }
      }
      RunWork();
      SweepTimers();
      RunWork();
    }
  }

  /// Parses / responds / flushes until no connection has actionable
  /// input, dispatching each accumulated admission wave as it forms.
  /// Batching is what keeps high connection counts cheap: every POST
  /// /query parsed in this drain cycle joins ONE SubmitBatch call.
  void RunWork() {
    while (!dirty_.empty() || !batch_.empty()) {
      std::vector<int> work;
      work.swap(dirty_);
      for (int fd : work) ProcessConn(fd);
      if (!batch_.empty()) DispatchBatch();
    }
  }

  void DrainMailbox() {
    std::vector<int> fresh;
    std::vector<Completion> comps;
    {
      std::lock_guard<std::mutex> lock(mailbox_->mu);
      fresh.swap(mailbox_->new_fds);
      comps.swap(mailbox_->completions);
    }
    const auto now = std::chrono::steady_clock::now();
    for (int fd : fresh) {
      Conn c;
      c.fd = fd;
      c.gen = next_gen_++;
      c.last_activity = now;
      conns_.emplace(fd, std::move(c));
      poller_->Add(fd, /*rd=*/true, /*wr=*/false);
      open_connections_.store(conns_.size(), std::memory_order_relaxed);
    }
    for (Completion& comp : comps) {
      auto it = conns_.find(comp.fd);
      if (it == conns_.end()) continue;
      Conn& c = it->second;
      if (c.gen != comp.gen || !c.waiting || c.wait_epoch != comp.epoch) {
        continue;  // connection recycled, or the wait already expired
      }
      c.waiting = false;
      c.wait_ticket.reset();
      Respond(c, std::move(comp.response), !c.wait_keep_alive);
      if (!c.in.empty()) c.request_start = now;
      dirty_.push_back(comp.fd);
    }
  }

  /// Incremental pipelined parsing: frames as many complete requests as
  /// the buffer holds, stopping at a deferred response (admission wave
  /// or long-poll wait) so responses keep request order.
  void ProcessConn(int fd) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) return;
    Conn& c = it->second;
    const size_t max_head = server_.options_.max_header_bytes;
    while (!c.waiting && !c.pending_submit && !c.close_after_flush) {
      const size_t header_end = c.in.find("\r\n\r\n");
      if (header_end == std::string::npos) {
        if (c.in.size() > max_head) {
          Fail(c, 431, "request head exceeds " + std::to_string(max_head) +
                           " bytes");
        }
        break;
      }
      if (header_end + 4 > max_head) {
        Fail(c, 431, "request head exceeds " + std::to_string(max_head) +
                         " bytes");
        break;
      }
      const std::string head = c.in.substr(0, header_end);
      const size_t line_end = head.find("\r\n");
      const std::string request_line =
          line_end == std::string::npos ? head : head.substr(0, line_end);
      const size_t sp1 = request_line.find(' ');
      const size_t sp2 = sp1 == std::string::npos
                             ? std::string::npos
                             : request_line.find(' ', sp1 + 1);
      if (sp1 == std::string::npos || sp2 == std::string::npos) {
        Fail(c, 400, "malformed request line");
        break;
      }
      const std::string method = request_line.substr(0, sp1);
      const std::string target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
      const std::string version = request_line.substr(sp2 + 1);

      // Header scan (case-insensitive): Content-Length frames the body,
      // Connection decides keep-alive.
      std::string lower = head;
      for (char& ch : lower) {
        ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
      }
      size_t content_length = 0;
      {
        const size_t pos = lower.find("content-length:");
        if (pos != std::string::npos) {
          content_length =
              std::strtoull(head.c_str() + pos + 15, nullptr, 10);
        }
      }
      std::string conn_token;
      {
        const size_t pos = lower.find("connection:");
        if (pos != std::string::npos) {
          size_t v = pos + 11;
          while (v < lower.size() && (lower[v] == ' ' || lower[v] == '\t')) {
            ++v;
          }
          size_t e = lower.find("\r\n", v);
          if (e == std::string::npos) e = lower.size();
          while (e > v && (lower[e - 1] == ' ' || lower[e - 1] == '\t')) {
            --e;
          }
          conn_token = lower.substr(v, e - v);
        }
      }
      if (content_length > server_.options_.max_request_bytes) {
        Fail(c, 413, "body exceeds limit");
        break;
      }
      const size_t total = header_end + 4 + content_length;
      if (c.in.size() < total) break;  // body still in flight

      const std::string body = c.in.substr(header_end + 4, content_length);
      c.in.erase(0, total);
      if (!c.in.empty()) {
        // The next (pipelined) request's 408 budget starts now.
        c.request_start = std::chrono::steady_clock::now();
      }
      server_.requests_parsed_.fetch_add(1, std::memory_order_relaxed);
      server_.requests_.fetch_add(1, std::memory_order_relaxed);
      if (c.served > 0) {
        server_.keepalive_reuses_.fetch_add(1, std::memory_order_relaxed);
      }
      c.served += 1;
      // HTTP/1.1 defaults to keep-alive, anything else to close.
      bool keep_alive = version == "HTTP/1.1" ? conn_token != "close"
                                              : conn_token == "keep-alive";
      const size_t max_requests = server_.options_.max_keepalive_requests;
      if (max_requests > 0 && c.served >= max_requests) keep_alive = false;
      HandleRequest(c, method, target, body, keep_alive);
    }
    if (!c.close_after_flush && c.paused_read &&
        c.in.size() < InBufferCap()) {
      c.paused_read = false;
      poller_->Mod(c.fd, /*rd=*/true, c.want_write);
    }
    FlushConn(fd);
  }

  void HandleRequest(Conn& c, const std::string& method,
                     const std::string& target, const std::string& body,
                     bool keep_alive) {
    const size_t qmark = target.find('?');
    const std::string path =
        qmark == std::string::npos ? target : target.substr(0, qmark);
    const std::string query_string =
        qmark == std::string::npos ? "" : target.substr(qmark + 1);

    if (path == "/query" && method == "POST") {
      HttpServer::PreparedSubmit prep =
          server_.PrepareSubmit(query_string, body);
      if (!prep.ok) {
        Respond(c, std::move(prep.error_response), /*close_after=*/true);
        return;
      }
      // Defer: every submission parsed within this drain cycle joins
      // one admission wave (QueryService::SubmitBatch) in
      // DispatchBatch, so a thousand connections submitting at once
      // cost one scheduler wakeup.
      PendingSubmit ps;
      ps.fd = c.fd;
      ps.gen = c.gen;
      ps.prep = std::move(prep);
      ps.keep_alive = keep_alive;
      batch_.push_back(std::move(ps));
      c.pending_submit = true;
      return;
    }

    if (method == "GET" && path.rfind("/result/", 0) == 0) {
      double wait_ms = 0.0;
      bool wait_ok = true;
      for (const auto& [key, value] : ParseQueryParams(query_string)) {
        if (key != "wait") continue;
        auto w = ParseDoubleValue(value);
        if (!w.has_value()) {
          wait_ok = false;
          break;
        }
        wait_ms = *w;
      }
      if (wait_ok && wait_ms > 0.0) {
        std::optional<QueryTicket> ticket =
            server_.FindTicket(path.substr(8));
        if (ticket.has_value() && !IsTerminalState(ticket->Poll().state)) {
          BeginWait(c, *ticket, wait_ms, keep_alive);
          return;
        }
      }
      // Unknown id, unparseable wait, or already-terminal ticket:
      // Dispatch answers immediately (its WaitFor returns at once).
    }

    std::string response =
        server_.Dispatch(method, target, body, keep_alive);
    const int code = ResponseStatusCode(response);
    Respond(c, std::move(response),
            !keep_alive || ResponseClosesConnection(code));
  }

  /// Defers this request's response until the query retires (pushed by
  /// the scheduler through the mailbox) or the wait expires.
  void BeginWait(Conn& c, QueryTicket& ticket, double wait_ms,
                 bool keep_alive) {
    c.waiting = true;
    c.wait_keep_alive = keep_alive;
    c.wait_epoch += 1;
    c.wait_ticket = ticket;
    c.wait_deadline = std::chrono::steady_clock::now() +
                      MsDuration(std::min(wait_ms, kMaxLongPollMs));
    std::shared_ptr<Mailbox> mb = mailbox_;
    const int fd = c.fd;
    const uint64_t gen = c.gen;
    const uint64_t epoch = c.wait_epoch;
    ticket.OnTerminal(
        [mb, fd, gen, epoch, keep_alive](const QueryResponse& resp) {
          // Runs on the scheduler thread (or inline when the ticket went
          // terminal while BeginWait set up): render here so the loop
          // only splices bytes.
          std::string body;
          AppendTicketJson(body, resp);
          Completion comp;
          comp.fd = fd;
          comp.gen = gen;
          comp.epoch = epoch;
          comp.response =
              MakeResponse(200, "application/json", body, keep_alive);
          std::lock_guard<std::mutex> lock(mb->mu);
          if (!mb->open) return;
          mb->completions.push_back(std::move(comp));
          mb->wake.Signal();
        });
  }

  /// Submits the accumulated admission wave as ONE QueryService batch
  /// and finishes each response. A submission whose connection died
  /// meanwhile still registers its ticket (the query was admitted and
  /// runs); only the response bytes are dropped.
  void DispatchBatch() {
    std::vector<PendingSubmit> wave;
    wave.swap(batch_);
    std::vector<QueryRequest> requests;
    requests.reserve(wave.size());
    for (PendingSubmit& ps : wave) {
      requests.push_back(std::move(ps.prep.request));
    }
    std::vector<QueryTicket> tickets =
        server_.service_.SubmitBatch(std::move(requests));
    for (size_t i = 0; i < wave.size(); ++i) {
      std::string response = server_.FinishSubmit(
          wave[i].prep, std::move(tickets[i]), wave[i].keep_alive);
      auto it = conns_.find(wave[i].fd);
      if (it == conns_.end() || it->second.gen != wave[i].gen) continue;
      Conn& c = it->second;
      c.pending_submit = false;
      if (!c.in.empty()) {
        c.request_start = std::chrono::steady_clock::now();
      }
      const int code = ResponseStatusCode(response);
      Respond(c, std::move(response),
              !wave[i].keep_alive || ResponseClosesConnection(code));
      dirty_.push_back(wave[i].fd);
    }
  }

  void ReadConn(int fd) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) return;
    Conn& c = it->second;
    if (KGAQ_FAULT_POINT("http.conn.read_error")) {
      CloseConn(fd);
      return;
    }
    char chunk[16384];
    const bool was_empty = c.in.empty();
    bool progress = false;
    for (;;) {
      if (c.in.size() >= InBufferCap()) {
        // Backpressure: a paused connection (long-poll wait, admission
        // wave) kept pipelining. Stop reading until parsing frees room,
        // instead of buffering without bound.
        c.paused_read = true;
        poller_->Mod(fd, /*rd=*/false, c.want_write);
        break;
      }
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n > 0) {
        c.in.append(chunk, static_cast<size_t>(n));
        progress = true;
        if (static_cast<size_t>(n) < sizeof(chunk)) break;
        continue;
      }
      if (n == 0) {  // peer closed
        CloseConn(fd);
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      CloseConn(fd);
      return;
    }
    if (progress) {
      c.last_activity = std::chrono::steady_clock::now();
      if (was_empty) c.request_start = c.last_activity;
      dirty_.push_back(fd);
    }
  }

  void FlushConn(int fd) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) return;
    Conn& c = it->second;
    while (c.out_off < c.out.size()) {
      const ssize_t n = ::send(fd, c.out.data() + c.out_off,
                               c.out.size() - c.out_off, MSG_NOSIGNAL);
      if (n > 0) {
        c.out_off += static_cast<size_t>(n);
        c.last_activity = std::chrono::steady_clock::now();
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        if (!c.want_write) {
          c.want_write = true;
          poller_->Mod(fd, !c.paused_read, /*wr=*/true);
        }
        return;
      }
      if (n < 0 && errno == EINTR) continue;
      CloseConn(fd);
      return;
    }
    c.out.clear();
    c.out_off = 0;
    if (c.want_write) {
      c.want_write = false;
      poller_->Mod(fd, !c.paused_read, /*wr=*/false);
    }
    if (c.close_after_flush) CloseConn(fd);
  }

  /// Loop-driven timers, swept every tick: silent reaping of idle
  /// keep-alive connections, 408 for requests trickling past the
  /// deadline (slow-loris), and long-poll expiry (answered with the
  /// live non-terminal snapshot).
  void SweepTimers() {
    const auto now = std::chrono::steady_clock::now();
    const double idle_ms = server_.options_.idle_timeout_ms;
    const double request_ms = server_.options_.connection_deadline_ms;
    std::vector<int> idle_close, timed_out, expired_waits;
    for (auto& [fd, c] : conns_) {
      if (c.waiting) {
        if (now >= c.wait_deadline) expired_waits.push_back(fd);
        continue;
      }
      if (c.pending_submit) continue;
      if (!c.in.empty()) {
        if (request_ms > 0 && ElapsedMs(c.request_start, now) > request_ms) {
          timed_out.push_back(fd);
        }
        continue;
      }
      if (c.out.empty() && !c.close_after_flush && idle_ms > 0 &&
          ElapsedMs(c.last_activity, now) > idle_ms) {
        idle_close.push_back(fd);
      }
    }
    // Idle reap closes silently — the client just reconnects.
    for (int fd : idle_close) CloseConn(fd);
    for (int fd : timed_out) {
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      Fail(it->second, 408, "connection deadline exceeded mid-request");
      FlushConn(fd);
    }
    for (int fd : expired_waits) {
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      Conn& c = it->second;
      c.waiting = false;
      c.wait_epoch += 1;  // orphan the in-flight completion, if any
      std::string body;
      AppendTicketJson(body, c.wait_ticket->Poll());
      c.wait_ticket.reset();
      Respond(c,
              MakeResponse(200, "application/json", body, c.wait_keep_alive),
              !c.wait_keep_alive);
      if (!c.in.empty()) c.request_start = now;
      dirty_.push_back(fd);
    }
  }

  /// Parse-layer failure: counts a (bad) request and closes after the
  /// flush — past this point the input stream is unframeable.
  void Fail(Conn& c, int code, const std::string& msg) {
    server_.requests_.fetch_add(1, std::memory_order_relaxed);
    server_.bad_requests_.fetch_add(1, std::memory_order_relaxed);
    Respond(c, JsonError(code, msg, /*keep_alive=*/false),
            /*close_after=*/true);
  }

  void Respond(Conn& c, std::string response, bool close_after) {
    c.out += response;
    if (close_after) c.close_after_flush = true;
  }

  void CloseConn(int fd) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) return;
    poller_->Del(fd);
    ::close(fd);
    conns_.erase(it);
    open_connections_.store(conns_.size(), std::memory_order_relaxed);
  }

  /// Per-connection input cap: one maximal request plus slack. Beyond
  /// it reads pause (see ReadConn) rather than buffering unboundedly.
  size_t InBufferCap() const {
    return server_.options_.max_request_bytes +
           server_.options_.max_header_bytes + 4096;
  }

  HttpServer& server_;
  std::shared_ptr<Mailbox> mailbox_;
  std::unique_ptr<Poller> poller_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::unordered_map<int, Conn> conns_;
  std::atomic<size_t> open_connections_{0};
  std::atomic<uint64_t> wakeups_{0};
  uint64_t next_gen_ = 1;
  std::vector<int> dirty_;           ///< fds with actionable input
  std::vector<PendingSubmit> batch_; ///< current admission wave
};

// ---------------------------------------------------------------------
// HttpServer
// ---------------------------------------------------------------------

HttpServer::HttpServer(QueryService& service, HttpServerOptions options)
    : service_(service), options_(std::move(options)) {}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start() {
  if (listen_fd_ >= 0) return Status::FailedPrecondition("already started");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("unparseable bind address '" +
                                   options_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("bind " + options_.bind_address + ":" +
                           std::to_string(options_.port) + ": " + err);
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, options_.backlog) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("listen: " + err);
  }

  stopping_.store(false);
  if (options_.model == ServerModel::kEventLoop) {
    const size_t nloops = std::max<size_t>(1, options_.event_threads);
    loops_.reserve(nloops);
    for (size_t i = 0; i < nloops; ++i) {
      loops_.emplace_back(std::make_unique<EventLoop>(*this));
      Status st = loops_.back()->Start();
      if (!st.ok()) {
        for (auto& loop : loops_) loop->Stop();
        loops_.clear();
        ::close(listen_fd_);
        listen_fd_ = -1;
        return st;
      }
    }
    accept_thread_ =
        std::thread([this, fd = listen_fd_] { AcceptLoopEvented(fd); });
    return Status::OK();
  }

  // The accept thread works on its own copy of the fd, so Stop() never
  // races its reads; the fd itself is closed only after the join.
  accept_thread_ =
      std::thread([this, fd = listen_fd_] { AcceptLoopBlocking(fd); });
  const size_t handlers = std::max<size_t>(1, options_.num_handler_threads);
  handlers_.reserve(handlers);
  for (size_t i = 0; i < handlers; ++i) {
    handlers_.emplace_back([this] { HandlerLoop(); });
  }
  return Status::OK();
}

void HttpServer::Stop() {
  if (listen_fd_ < 0 && !accept_thread_.joinable() && loops_.empty()) return;
  stopping_.store(true);
  if (listen_fd_ >= 0) {
    // shutdown() wakes the blocking accept(); the close itself waits
    // until the accept thread has joined, so the fd number cannot be
    // recycled under a still-running accept().
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  {
    // Taken-and-released around the flag so a handler that already
    // evaluated its wait predicate cannot block between this store and
    // the notify (the classic missed-wakeup race).
    std::lock_guard<std::mutex> lock(conn_mu_);
    stopping_.store(true);
  }
  conn_available_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (std::thread& t : handlers_) {
    if (t.joinable()) t.join();
  }
  handlers_.clear();
  for (auto& loop : loops_) loop->Stop();
  loops_.clear();
  std::lock_guard<std::mutex> lock(conn_mu_);
  for (int fd : connections_) ::close(fd);
  connections_.clear();
}

HttpServer::Stats HttpServer::stats() const {
  Stats out;
  out.requests = requests_.load(std::memory_order_relaxed);
  out.bad_requests = bad_requests_.load(std::memory_order_relaxed);
  out.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  out.keepalive_reuses = keepalive_reuses_.load(std::memory_order_relaxed);
  out.requests_parsed = requests_parsed_.load(std::memory_order_relaxed);
  for (const auto& loop : loops_) {
    out.open_connections += loop->open_connections();
    out.loop_wakeups += loop->wakeups();
    out.loop_queue_depths.push_back(loop->queue_depth());
    out.loop_connections.push_back(loop->open_connections());
  }
  return out;
}

void HttpServer::AcceptLoopEvented(int listen_fd) {
  size_t next = 0;
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (stopping_.load()) {
      if (fd >= 0) ::close(fd);
      return;
    }
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EMFILE || errno == ENFILE) {
        // Out of descriptors: back off instead of spinning; pending
        // connections wait in the listen backlog meanwhile.
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      return;  // listener closed
    }
    SetNonBlocking(fd);
    SetNoDelay(fd);
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    // Round-robin: a connection is owned by one loop for life.
    loops_[next]->AddConnection(fd);
    next = (next + 1) % loops_.size();
  }
}

void HttpServer::AcceptLoopBlocking(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (stopping_.load()) {
      if (fd >= 0) ::close(fd);
      return;
    }
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      connections_.push_back(fd);
    }
    conn_available_.notify_one();
  }
}

void HttpServer::HandlerLoop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(conn_mu_);
      conn_available_.wait(lock, [&] {
        return stopping_.load() || !connections_.empty();
      });
      if (stopping_.load() && connections_.empty()) return;
      fd = connections_.front();
      connections_.pop_front();
    }
    HandleConnection(fd);
  }
}

void HttpServer::HandleConnection(int fd) {
  const auto set_timeout = [fd](int which, double ms) {
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(ms / 1000.0);
    tv.tv_usec = static_cast<suseconds_t>(static_cast<long>(ms * 1000.0) %
                                          1000000);
    ::setsockopt(fd, SOL_SOCKET, which, &tv, sizeof(tv));
  };
  set_timeout(SO_RCVTIMEO, options_.read_timeout_ms);
  set_timeout(SO_SNDTIMEO, options_.write_timeout_ms);

  // Per-recv timeouts alone don't stop a slow-loris client that feeds a
  // byte every few seconds; the whole connection also runs against one
  // wall-clock deadline.
  const auto conn_deadline =
      std::chrono::steady_clock::now() +
      MsDuration(options_.connection_deadline_ms);
  const auto past_deadline = [&conn_deadline] {
    return std::chrono::steady_clock::now() >= conn_deadline;
  };

  std::string buf;
  size_t header_end = std::string::npos;
  char chunk[4096];
  while (header_end == std::string::npos) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0 || KGAQ_FAULT_POINT("http.conn.read_error")) {
      ::close(fd);
      return;  // timeout, reset, or client gave up mid-head
    }
    buf.append(chunk, static_cast<size_t>(n));
    header_end = buf.find("\r\n\r\n");
    if (buf.size() > options_.max_request_bytes) {
      requests_.fetch_add(1, std::memory_order_relaxed);
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
      SendAll(fd, JsonError(413, "request exceeds limit", false));
      ::close(fd);
      return;
    }
    if (header_end == std::string::npos && past_deadline()) {
      requests_.fetch_add(1, std::memory_order_relaxed);
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
      SendAll(fd,
              JsonError(408, "connection deadline exceeded mid-head", false));
      ::close(fd);
      return;
    }
  }
  requests_.fetch_add(1, std::memory_order_relaxed);

  // Request line: METHOD SP TARGET SP VERSION.
  const std::string head = buf.substr(0, header_end);
  const size_t line_end = head.find("\r\n");
  const std::string request_line =
      line_end == std::string::npos ? head : head.substr(0, line_end);
  const size_t sp1 = request_line.find(' ');
  const size_t sp2 =
      sp1 == std::string::npos ? std::string::npos
                               : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    SendAll(fd, JsonError(400, "malformed request line", false));
    ::close(fd);
    return;
  }
  const std::string method = request_line.substr(0, sp1);
  const std::string target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);

  // Body by Content-Length (case-insensitive header scan).
  size_t content_length = 0;
  {
    std::string lower = head;
    for (char& c : lower) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    const size_t pos = lower.find("content-length:");
    if (pos != std::string::npos) {
      content_length = std::strtoull(head.c_str() + pos + 15, nullptr, 10);
    }
  }
  if (content_length > options_.max_request_bytes) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    SendAll(fd, JsonError(413, "body exceeds limit", false));
    ::close(fd);
    return;
  }
  std::string body = buf.substr(header_end + 4);
  while (body.size() < content_length) {
    if (past_deadline()) {
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
      SendAll(fd,
              JsonError(408, "connection deadline exceeded mid-body", false));
      ::close(fd);
      return;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0 || KGAQ_FAULT_POINT("http.conn.read_error")) {
      // A stalled or reset client left the body short. Never dispatch a
      // truncated body: a wire-format prefix cut at a clause boundary is
      // itself a valid (different) query.
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
      SendAll(fd, JsonError(400,
                            "body truncated: got " +
                                std::to_string(body.size()) + " of " +
                                std::to_string(content_length) +
                                " Content-Length bytes",
                            false));
      ::close(fd);
      return;
    }
    body.append(chunk, static_cast<size_t>(n));
  }
  body.resize(content_length);

  const std::string response =
      Dispatch(method, target, body, /*keep_alive=*/false);
  SendAll(fd, response);
  ::close(fd);
}

HttpServer::PreparedSubmit HttpServer::PrepareSubmit(
    const std::string& query_string, const std::string& body) {
  PreparedSubmit prep;
  const auto fail = [&](const std::string& msg) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    prep.ok = false;
    // Submission parse errors always close: 400 is in the
    // unframeable-stream class.
    prep.error_response = JsonError(400, msg, /*keep_alive=*/false);
    return prep;
  };
  auto query = ParseAggregateQuery(body);
  if (!query.ok()) {
    return fail(query.status().message());
  }
  prep.request.query = std::move(*query);
  for (const auto& [key, value] : ParseQueryParams(query_string)) {
    if (key == "eb") {
      auto v = ParseDoubleValue(value);
      if (!v.has_value()) return fail("unparseable eb value");
      prep.request.error_bound = *v;
    } else if (key == "conf") {
      auto v = ParseDoubleValue(value);
      if (!v.has_value()) return fail("unparseable conf value");
      prep.request.confidence_level = *v;
    } else if (key == "seed") {
      auto v = ParseUint64Value(value);
      if (!v.has_value()) return fail("unparseable seed value");
      prep.request.seed = *v;
    } else if (key == "max_rounds") {
      auto v = ParseUint64Value(value);
      if (!v.has_value()) return fail("unparseable max_rounds value");
      prep.request.max_rounds = static_cast<size_t>(*v);
    } else if (key == "deadline_ms") {
      auto v = ParseDoubleValue(value);
      if (!v.has_value()) return fail("unparseable deadline_ms value");
      prep.request.deadline_ms = *v;
    } else {
      return fail("unknown parameter '" + key +
                  "' (eb, conf, seed, max_rounds, deadline_ms)");
    }
  }
  prep.canonical = FormatAggregateQuery(prep.request.query);
  prep.ok = true;
  return prep;
}

std::string HttpServer::FinishSubmit(const PreparedSubmit& prep,
                                     QueryTicket ticket, bool keep_alive) {
  {
    // A rejected submission comes back already terminal (bounded queue
    // full, shedding, or shutdown). Map its status through the shared
    // taxonomy — 429 or 503 — with a Retry-After paced to the queue's
    // observed drain rate, and never register it: the id is spent and
    // there is nothing to poll. Rejections keep the connection alive —
    // the retrying client comes back over the same socket.
    const QueryResponse birth = ticket.Poll();
    if (birth.state == QueryState::kFailed &&
        (birth.status.code() == StatusCode::kResourceExhausted ||
         birth.status.code() == StatusCode::kUnavailable)) {
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
      return JsonError(HttpStatusForCode(birth.status.code()),
                       birth.status.message(), keep_alive,
                       RetryAfterHeader(service_.stats().retry_after_ms));
    }
  }
  RegisterTicket(ticket);
  std::string out = "{\"id\":" + std::to_string(ticket.id());
  out += ",\"state\":\"";
  out += QueryStateToString(ticket.Poll().state);
  out += "\",\"query\":";
  AppendJsonString(out, prep.canonical);
  out += "}\n";
  return MakeResponse(202, "application/json", out, keep_alive);
}

void HttpServer::RegisterTicket(const QueryTicket& ticket) {
  std::lock_guard<std::mutex> lock(tickets_mu_);
  tickets_.emplace(ticket.id(), ticket);
  ticket_order_.push_back(ticket.id());
  // Bounded registry: evict the oldest submissions (any external
  // ticket copies stay valid; the evicted id just answers 404).
  while (tickets_.size() >
         std::max<size_t>(1, options_.max_tracked_tickets)) {
    tickets_.erase(ticket_order_.front());
    ticket_order_.pop_front();
  }
}

std::optional<QueryTicket> HttpServer::FindTicket(
    const std::string& id_text) {
  auto id = ParseUint64Value(id_text);
  if (!id.has_value()) return std::nullopt;
  std::lock_guard<std::mutex> lock(tickets_mu_);
  auto it = tickets_.find(*id);
  if (it == tickets_.end()) return std::nullopt;
  return it->second;
}

std::string HttpServer::Dispatch(const std::string& method,
                                 const std::string& target,
                                 const std::string& body, bool keep_alive) {
  const size_t qmark = target.find('?');
  const std::string path =
      qmark == std::string::npos ? target : target.substr(0, qmark);
  const std::string query_string =
      qmark == std::string::npos ? "" : target.substr(qmark + 1);

  auto bad = [this, keep_alive](int code, const std::string& msg) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    // 400 means the stream is unframeable and the connection closes;
    // routing errors keep it alive.
    return JsonError(code, msg, keep_alive && code != 400);
  };

  if (path == "/healthz") {
    // Healthy keeps the historical "ok" body; load balancers checking
    // for 200 see Saturated replicas as alive but can read the body to
    // deprioritize them, and Shedding replicas drain via plain 503. A
    // non-Healthy memory-pressure state is appended as a body suffix
    // (" memory:pressured" / " memory:critical") without changing the
    // status code — pressure degrades cache builds, not availability.
    std::string memory_suffix;
    const MemoryPressure pressure = service_.context()->memory_pressure();
    if (pressure != MemoryPressure::kHealthy) {
      memory_suffix =
          std::string(" memory:") + MemoryPressureToString(pressure);
    }
    // Subsystem suffixes (e.g. the shard tier's " shards:degraded") ride
    // the same body; they inform without changing the status code.
    if (health_augmenter_) memory_suffix += health_augmenter_();
    switch (service_.overload_state()) {
      case OverloadState::kHealthy:
        return MakeResponse(200, "text/plain", "ok" + memory_suffix + "\n",
                            keep_alive);
      case OverloadState::kSaturated:
        return MakeResponse(200, "text/plain",
                            "saturated" + memory_suffix + "\n", keep_alive);
      case OverloadState::kShedding:
        return MakeResponse(
            503, "text/plain", "shedding" + memory_suffix + "\n", keep_alive,
            RetryAfterHeader(service_.stats().retry_after_ms));
    }
    return MakeResponse(200, "text/plain", "ok" + memory_suffix + "\n",
                        keep_alive);
  }

  if (path == "/stats") {
    const QueryService::ServiceStats s = service_.stats();
    const EngineContext::CacheStats c = service_.context()->Stats();
    const Stats h = stats();
    std::string out = "{\"service\":{";
    out += "\"submitted\":" + std::to_string(s.submitted);
    out += ",\"done\":" + std::to_string(s.done);
    out += ",\"failed\":" + std::to_string(s.failed);
    out += ",\"cancelled\":" + std::to_string(s.cancelled);
    out += ",\"deadline_expired\":" + std::to_string(s.deadline_expired);
    out += ",\"rejected\":" + std::to_string(s.rejected);
    out += ",\"shed\":" + std::to_string(s.shed);
    out += ",\"degraded\":" + std::to_string(s.degraded);
    out += ",\"queued\":" + std::to_string(s.queued);
    out += ",\"running\":" + std::to_string(s.running);
    out += ",\"overload\":\"";
    out += OverloadStateToString(s.overload);
    out += "\",\"retry_after_ms\":";
    AppendRoundTripDouble(out, s.retry_after_ms);
    out += ",\"scheduler_wakeups\":" + std::to_string(s.scheduler_wakeups);
    out += ",\"last_tick_age_ms\":";
    AppendRoundTripDouble(out, s.last_tick_age_ms);
    out += ",\"watchdog_stalls\":" + std::to_string(s.watchdog_stalls);
    out += ",\"memory_pressure\":\"";
    out += MemoryPressureToString(s.memory_pressure);
    out += "\"},\"http\":{";
    out += "\"requests\":" + std::to_string(h.requests);
    out += ",\"bad_requests\":" + std::to_string(h.bad_requests);
    out += "},\"server\":{";
    // Front-door counters (all zero under kBlockingThreads, whose
    // connections are one-shot and untracked): the per-stage profiler
    // view of the event loops.
    out += "\"connections_accepted\":" +
           std::to_string(h.connections_accepted);
    out += ",\"open_connections\":" + std::to_string(h.open_connections);
    out += ",\"keepalive_reuses\":" + std::to_string(h.keepalive_reuses);
    out += ",\"requests_parsed\":" + std::to_string(h.requests_parsed);
    out += ",\"loop_wakeups\":" + std::to_string(h.loop_wakeups);
    out += ",\"loops\":[";
    for (size_t i = 0; i < h.loop_queue_depths.size(); ++i) {
      if (i > 0) out += ',';
      out += "{\"connections\":" + std::to_string(h.loop_connections[i]);
      out += ",\"queue_depth\":" + std::to_string(h.loop_queue_depths[i]);
      out += '}';
    }
    out += "]},\"caches\":{\"sims\":{";
    out += "\"hits\":" + std::to_string(c.sims_hits);
    out += ",\"misses\":" + std::to_string(c.sims_misses);
    out += ",\"entries\":" + std::to_string(c.sims_entries);
    out += ",\"bytes\":" + std::to_string(c.sims_bytes);
    out += "},\"cores\":{";
    out += "\"hits\":" + std::to_string(c.core_hits);
    out += ",\"misses\":" + std::to_string(c.core_misses);
    out += ",\"entries\":" + std::to_string(c.core_entries);
    out += ",\"bytes\":" + std::to_string(c.core_bytes);
    out += "},\"chain\":{";
    out += "\"hits\":" + std::to_string(c.chain_hits);
    out += ",\"misses\":" + std::to_string(c.chain_misses);
    out += ",\"entries\":" + std::to_string(c.chain_entries);
    out += ",\"bytes\":" + std::to_string(c.chain_bytes);
    out += "},\"governor\":{";
    out += "\"budget_bytes\":" + std::to_string(c.budget_bytes);
    out += ",\"charged_bytes\":" + std::to_string(c.charged_bytes);
    out += ",\"pinned_bytes\":" + std::to_string(c.pinned_bytes);
    out += ",\"pressure\":\"";
    out += MemoryPressureToString(c.pressure);
    out += "\",\"evictions\":" + std::to_string(c.evictions);
    out += ",\"admission_rejects\":" + std::to_string(c.admission_rejects);
    out += ",\"shed_builds\":" + std::to_string(c.shed_builds);
    out += ",\"alloc_failures\":" + std::to_string(c.alloc_failures);
    out += ",\"build_failures\":" + std::to_string(c.build_failures);
    out += "},\"total_bytes\":" + std::to_string(c.TotalBytes());
    out += "}";
    if (stats_augmenter_) {
      const std::string extra = stats_augmenter_();
      if (!extra.empty()) {
        out += ',';
        out += extra;
      }
    }
    out += "}\n";
    return MakeResponse(200, "application/json", out, keep_alive);
  }

  if (path == "/query") {
    if (method != "POST") {
      return bad(405, "submit queries with POST /query");
    }
    PreparedSubmit prep = PrepareSubmit(query_string, body);
    if (!prep.ok) return prep.error_response;
    QueryTicket ticket = service_.SubmitAsync(std::move(prep.request));
    return FinishSubmit(prep, std::move(ticket), keep_alive);
  }

  if (path.rfind("/result/", 0) == 0) {
    auto ticket = FindTicket(path.substr(8));
    if (!ticket.has_value()) {
      return bad(404, "unknown query id '" + path.substr(8) + "'");
    }
    double wait_ms = 0.0;
    for (const auto& [key, value] : ParseQueryParams(query_string)) {
      if (key != "wait") continue;
      auto w = ParseDoubleValue(value);
      if (!w.has_value()) return bad(400, "unparseable wait value");
      wait_ms = *w;
    }
    if (wait_ms > 0.0) {
      // Blocking model (and the already-terminal fast path under the
      // event loop, whose loops intercept live waits before Dispatch):
      // park this handler thread for up to the clamped wait.
      ticket->WaitFor(std::min(wait_ms, kMaxLongPollMs));
    }
    std::string out;
    AppendTicketJson(out, ticket->Poll());
    return MakeResponse(200, "application/json", out, keep_alive);
  }

  if (path.rfind("/cancel/", 0) == 0) {
    auto ticket = FindTicket(path.substr(8));
    if (!ticket.has_value()) {
      return bad(404, "unknown query id '" + path.substr(8) + "'");
    }
    ticket->Cancel();
    std::string out;
    AppendTicketJson(out, ticket->Poll());
    return MakeResponse(200, "application/json", out, keep_alive);
  }

  if (extra_handler_) {
    if (auto handled = extra_handler_(method, path, body)) {
      if (handled->first >= 400) {
        bad_requests_.fetch_add(1, std::memory_order_relaxed);
      }
      return MakeResponse(handled->first, "text/plain", handled->second,
                          keep_alive);
    }
  }

  return bad(404, "no route for '" + path + "'");
}

std::string ExtractJsonField(const std::string& body,
                             const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = body.find(needle);
  if (pos == std::string::npos) return "";
  size_t i = pos + needle.size();
  if (i < body.size() && body[i] == '"') {
    ++i;
    std::string out;
    while (i < body.size() && body[i] != '"') {
      if (body[i] != '\\' || i + 1 >= body.size()) {
        out += body[i++];
        continue;
      }
      // Invert exactly what AppendJsonString emits.
      const char esc = body[i + 1];
      i += 2;
      switch (esc) {
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          unsigned code = 0;
          if (i + 4 <= body.size()) {
            code = static_cast<unsigned>(
                std::strtoul(body.substr(i, 4).c_str(), nullptr, 16));
            i += 4;
          }
          out += static_cast<char>(code);
          break;
        }
        default:  // \" and \\ (and anything else) decode to the char
          out += esc;
      }
    }
    return out;
  }
  size_t end = i;
  while (end < body.size() && body[end] != ',' && body[end] != '}' &&
         body[end] != ']') {
    ++end;
  }
  return body.substr(i, end - i);
}

// ---------------------------------------------------------------------
// Client-side connections
// ---------------------------------------------------------------------

HttpClientConnection::~HttpClientConnection() { Close(); }

HttpClientConnection::HttpClientConnection(
    HttpClientConnection&& other) noexcept
    : fd_(other.fd_),
      host_(std::move(other.host_)),
      port_(other.port_),
      requests_sent_(other.requests_sent_),
      timeout_ms_(other.timeout_ms_) {
  other.fd_ = -1;
  other.requests_sent_ = 0;
}

HttpClientConnection& HttpClientConnection::operator=(
    HttpClientConnection&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    host_ = std::move(other.host_);
    port_ = other.port_;
    requests_sent_ = other.requests_sent_;
    timeout_ms_ = other.timeout_ms_;
    other.fd_ = -1;
    other.requests_sent_ = 0;
  }
  return *this;
}

void HttpClientConnection::SetTimeoutMs(double ms) {
  timeout_ms_ = (ms > 0.0 && std::isfinite(ms)) ? ms : 0.0;
  if (fd_ >= 0) ApplyTimeout(fd_);
}

void HttpClientConnection::ApplyTimeout(int fd) const {
  timeval tv{};
  if (timeout_ms_ > 0.0) {
    // A zero timeval means "no timeout" to the kernel, so sub-ms budgets
    // round up to 1 ms rather than silently unbounding the socket.
    const double ms = std::max(1.0, timeout_ms_);
    tv.tv_sec = static_cast<time_t>(ms / 1000.0);
    tv.tv_usec = static_cast<suseconds_t>(
        (ms - static_cast<double>(tv.tv_sec) * 1000.0) * 1000.0);
  }
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

void HttpClientConnection::Close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  requests_sent_ = 0;
}

Status HttpClientConnection::Connect(const std::string& host,
                                     uint16_t port) {
  Close();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("unparseable host '" + host +
                                   "' (numeric IPv4 only)");
  }
  // SO_SNDTIMEO bounds the blocking connect too, so a deadline-clamped
  // RPC cannot hang in the handshake against a black-holed peer.
  ApplyTimeout(fd);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      KGAQ_FAULT_POINT("http.client.connect_error")) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    // kUnavailable, not kIoError: no request bytes reached a server, so
    // the call is safe to retry regardless of the method's idempotency.
    return Status::Unavailable("connect " + host + ":" +
                               std::to_string(port) + ": " + err);
  }
  SetNoDelay(fd);
  fd_ = fd;
  host_ = host;
  port_ = port;
  requests_sent_ = 0;
  return Status::OK();
}

Result<HttpResponse> HttpClientConnection::RoundTrip(
    const std::string& method, const std::string& target,
    const std::string& body, bool keep_alive) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  const bool reused = requests_sent_ > 0;

  std::string request = method + " " + target + " HTTP/1.1\r\n";
  request += "Host: " + host_ + "\r\n";
  request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  request += keep_alive ? "Connection: keep-alive\r\n\r\n"
                        : "Connection: close\r\n\r\n";
  request += body;

  std::string raw;
  // Maps a dead transport to the replay taxonomy RetryingHttpClient
  // relies on: a REUSED connection dying before a single response byte
  // means the server reaped it while idle and executed nothing —
  // kUnavailable, safe to retry for any method. A fresh connection (or
  // one that already produced bytes) dying mid-flight may have executed
  // the request: kIoError, replayed only for idempotent methods.
  // `timed_out` (SO_RCVTIMEO/SO_SNDTIMEO expiry, see SetTimeoutMs) takes
  // precedence over the reused-connection rule: a slow server is NOT a
  // reaped keep-alive — the request may be executing right now, so a
  // timeout is always kIoError (replayed only for idempotent methods),
  // never the retry-everything kUnavailable.
  const auto transport_error = [&](const std::string& what,
                                   bool timed_out = false) -> Status {
    Close();
    if (timed_out) return Status::IoError("timed out: " + what);
    if (reused && raw.empty()) {
      return Status::Unavailable("stale keep-alive connection: " + what);
    }
    return Status::IoError(what);
  };
  const auto is_timeout = []() {
    return errno == EAGAIN || errno == EWOULDBLOCK || errno == EINPROGRESS;
  };

  if (!SendAll(fd_, request)) {
    return transport_error("send failed", timeout_ms_ > 0.0 && is_timeout());
  }
  char chunk[4096];
  size_t header_end = std::string::npos;
  while (header_end == std::string::npos) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 || KGAQ_FAULT_POINT("http.client.recv_error")) {
      const bool to = n < 0 && timeout_ms_ > 0.0 && is_timeout();
      return transport_error(std::string("recv: ") + std::strerror(errno),
                             to);
    }
    if (n == 0) {
      return transport_error("connection closed before response head");
    }
    raw.append(chunk, static_cast<size_t>(n));
    header_end = raw.find("\r\n\r\n");
  }
  ParsedResponseHead head;
  if (!ParseResponseHead(raw.substr(0, header_end), head)) {
    Close();
    return Status::IoError("malformed HTTP response");
  }
  const size_t body_start = header_end + 4;
  bool saw_eof = false;
  if (head.have_length) {
    while (raw.size() < body_start + head.content_length) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0 || KGAQ_FAULT_POINT("http.client.recv_error")) {
        const bool to = n < 0 && timeout_ms_ > 0.0 && is_timeout();
        return transport_error(std::string("recv: ") + std::strerror(errno),
                               to);
      }
      if (n == 0) return transport_error("connection closed mid-body");
      raw.append(chunk, static_cast<size_t>(n));
    }
  } else {
    // No Content-Length: legacy framing, body runs to connection close.
    for (;;) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0 || KGAQ_FAULT_POINT("http.client.recv_error")) {
        const bool to = n < 0 && timeout_ms_ > 0.0 && is_timeout();
        return transport_error(std::string("recv: ") + std::strerror(errno),
                               to);
      }
      if (n == 0) break;
      raw.append(chunk, static_cast<size_t>(n));
    }
    saw_eof = true;
  }

  HttpResponse out;
  out.status_code = head.status_code;
  out.retry_after_s = head.retry_after_s;
  out.body = head.have_length ? raw.substr(body_start, head.content_length)
                              : raw.substr(body_start);
  requests_sent_ += 1;
  if (!keep_alive || head.close || saw_eof) {
    const uint64_t sent = requests_sent_;
    Close();
    requests_sent_ = sent;  // Close() resets; keep the tally readable
  }
  return out;
}

Result<HttpResponse> HttpFetch(const std::string& host, uint16_t port,
                               const std::string& method,
                               const std::string& target,
                               const std::string& body) {
  HttpClientConnection conn;
  Status st = conn.Connect(host, port);
  if (!st.ok()) return st;
  return conn.RoundTrip(method, target, body, /*keep_alive=*/false);
}

}  // namespace kgaq
