#ifndef KGAQ_SERVE_QUERY_SERVICE_H_
#define KGAQ_SERVE_QUERY_SERVICE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "core/approx_engine.h"
#include "core/engine_context.h"
#include "query/query_graph.h"

namespace kgaq {

/// Admission / scheduling knobs of a QueryService.
struct ServiceOptions {
  /// Admission width: how many queries run their rounds concurrently.
  /// Further submissions queue and enter as earlier queries finish.
  size_t max_concurrent = 8;
  /// Base seed; query i draws with seed QueryService::QuerySeed(base, i),
  /// so per-query streams are independent yet fully reproducible.
  uint64_t base_seed = 7;
  /// Per-query engine configuration (its `seed` field is overridden by
  /// the derived per-query seed).
  EngineOptions engine;
};

/// A resident front-end serving many aggregate queries over ONE shared
/// EngineContext — the paper's interactive setting at service scale:
/// build-once shared state, cheap per-query sessions, and round-level
/// interleaving so no single long-running query monopolizes the pool.
///
///   auto ctx = EngineContext::LoadFromSnapshot("kg.snap");
///   QueryService service(*std::move(ctx));
///   for (const auto& q : workload) service.Submit(q);
///   auto results = service.RunAll();
///
/// Scheduling: admitted sessions advance in lockstep "ticks". Each tick
/// submits one Algorithm-2 round per unfinished session as a TaskGroup
/// batch on GlobalPool() and joins; finished sessions retire and queued
/// queries take their slots. Within a round a session's own parallel
/// helpers run inline (they detect pool workers), so the pool's unit of
/// work is one session-round.
///
/// Determinism: each session owns its Rng (seeded from QuerySeed) and
/// every context cache is a synchronized memo over pure functions, so a
/// query's result is bitwise-identical to running it alone with the same
/// seed — concurrency and cache warmth change wall-clock, never v_hat or
/// moe. Tested in tests/serve_test.cc.
class QueryService {
 public:
  explicit QueryService(std::shared_ptr<const EngineContext> context,
                        ServiceOptions options = {});

  /// The seed query `index` samples with under base seed `base_seed`
  /// (splitmix64 of the pair). Exposed so a solo ApproxEngine run can
  /// reproduce a service-run query exactly.
  static uint64_t QuerySeed(uint64_t base_seed, size_t index);

  /// Enqueues a query; returns its index (position in RunAll's output).
  size_t Submit(AggregateQuery query);

  size_t num_submitted() const { return queries_.size(); }

  /// Runs every submitted query to the engine's error bound and returns
  /// their results in submission order (a reference into the service —
  /// valid until the next Submit/RunAll). Queries that fail validation
  /// carry their error Status. May be called again after more Submits;
  /// already-run queries are not re-run (their results are returned
  /// again) and indices keep counting up, so reruns stay reproducible.
  const std::vector<Result<AggregateResult>>& RunAll();

  /// One-call batch convenience.
  static std::vector<Result<AggregateResult>> RunBatch(
      std::shared_ptr<const EngineContext> context,
      const std::vector<AggregateQuery>& queries,
      ServiceOptions options = {});

  const std::shared_ptr<const EngineContext>& context() const {
    return ctx_;
  }

 private:
  std::shared_ptr<const EngineContext> ctx_;
  ServiceOptions options_;
  std::vector<AggregateQuery> queries_;
  std::vector<Result<AggregateResult>> results_;  // parallel to queries_
  size_t num_completed_ = 0;
};

}  // namespace kgaq

#endif  // KGAQ_SERVE_QUERY_SERVICE_H_
