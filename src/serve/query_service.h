#ifndef KGAQ_SERVE_QUERY_SERVICE_H_
#define KGAQ_SERVE_QUERY_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "core/approx_engine.h"
#include "core/engine_context.h"
#include "query/query_graph.h"

namespace kgaq {

namespace serve_internal {
struct TicketState;
}  // namespace serve_internal

/// Overload state of a QueryService under bounded admission — a
/// three-state machine over the queue-depth fraction q = queued /
/// max_queue_depth, with hysteresis so the state cannot flap on every
/// submit/retire (see ServiceOptions thresholds):
///
///   Healthy ──q ≥ saturated_enter──▶ Saturated ──q ≥ shedding_enter──▶ Shedding
///      ▲◀──q ≤ saturated_exit─────────┘  ▲◀──────q ≤ shedding_exit───────┘
///
/// Shedding rejects new submissions outright (429 upstream) and retires
/// in-flight queries that already hold a ≥1-round estimate with a
/// degraded response, so the queue drains instead of collapsing.
/// Unbounded services (max_queue_depth == 0) are always Healthy.
enum class OverloadState : uint8_t { kHealthy, kSaturated, kShedding };

/// "healthy", "saturated", "shedding".
const char* OverloadStateToString(OverloadState s);

/// Admission / scheduling knobs of a QueryService.
struct ServiceOptions {
  /// Admission width: how many queries run their rounds concurrently.
  /// Further submissions queue and enter as earlier queries finish.
  size_t max_concurrent = 8;
  /// Base seed; the query submitted `index`-th draws with seed
  /// QueryService::QuerySeed(base, index) unless its request pins one, so
  /// per-query streams are independent yet fully reproducible.
  uint64_t base_seed = 7;
  /// Bounded admission: maximum tickets waiting for a slot. 0 keeps the
  /// legacy unbounded queue. A full queue rejects at submit with
  /// StatusCode::kResourceExhausted (ticket lands terminal kFailed,
  /// never queued; the HTTP front-end answers 429 + Retry-After).
  size_t max_queue_depth = 0;
  /// Maximum time a ticket may wait in the queue before the scheduler
  /// sheds it (kFailed + kResourceExhausted, counted in stats().shed).
  /// 0 means wait forever. A shed-in-queue query never ran, so it holds
  /// no partial estimate — bound queue *depth* too if you want arrivals
  /// rejected up front instead.
  double max_queue_wait_ms = 0.0;
  /// Overload state-machine thresholds, as fractions of max_queue_depth
  /// (ignored when the queue is unbounded). Enter thresholds must sit
  /// above their exit thresholds — the gap is the hysteresis band.
  double saturated_enter = 0.50;
  double saturated_exit = 0.25;
  double shedding_enter = 0.90;
  double shedding_exit = 0.50;
  /// Scheduler watchdog: a tick (one admit + step + retire cycle) that
  /// runs longer than this logs a debug warning to stderr and counts in
  /// stats().watchdog_stalls; stats().last_tick_age_ms exposes the age
  /// of the tick currently in progress so an operator probing /stats can
  /// see a stall while it is happening. 0 disables the warning.
  double watchdog_warn_ms = 1000.0;
  /// Per-query engine configuration. A request's overrides (error bound,
  /// confidence, seed, max rounds) are applied on top; the `seed` field is
  /// otherwise overridden by the derived per-query seed.
  EngineOptions engine;
};

/// A query as it arrives at the service: the aggregate query plus the
/// per-query knobs a caller may override without touching the service's
/// engine defaults. This is the unit the wire format parses into — see
/// ParseAggregateQuery (query/query_text.h) and serve/http_server.h.
struct QueryRequest {
  AggregateQuery query;
  /// Engine overrides; unset fields inherit ServiceOptions::engine.
  std::optional<double> error_bound;
  std::optional<double> confidence_level;
  std::optional<uint64_t> seed;  ///< pins the Rng stream (else QuerySeed)
  std::optional<size_t> max_rounds;
  /// Latency bound in milliseconds, measured from submission on the
  /// monotonic clock — it covers queue wait. <= 0 means no deadline. An
  /// expired query retires at the next round boundary with its partial
  /// estimate (state kDeadlineExceeded).
  double deadline_ms = 0.0;
};

/// Lifecycle of a submitted query. Terminal states are kDone, kFailed,
/// kCancelled and kDeadlineExceeded; a ticket's state only ever moves
/// forward (kQueued -> kRunning -> terminal, or kQueued -> terminal).
enum class QueryState : uint8_t {
  kQueued,
  kRunning,
  kDone,              ///< ran to its natural end; `result` is final
  kFailed,            ///< admission failed; `status` carries the error
  kCancelled,         ///< Cancel() honored; `result` holds the partial
  kDeadlineExceeded,  ///< deadline expired; `result` holds the partial
};

/// "QUEUED", "RUNNING", "DONE", "FAILED", "CANCELLED",
/// "DEADLINE_EXCEEDED".
const char* QueryStateToString(QueryState s);

bool IsTerminalState(QueryState s);

/// Everything the service knows about one query, returned BY VALUE — a
/// response outlives the service and is never invalidated by later
/// submissions (unlike the legacy RunAll reference, see below).
struct QueryResponse {
  uint64_t id = 0;
  QueryState state = QueryState::kQueued;
  /// Non-OK exactly when state == kFailed.
  Status status;
  /// Final for kDone; the partial estimate (possibly zero-round) for
  /// kCancelled / kDeadlineExceeded; default for kQueued / kFailed.
  AggregateResult result;
  /// The seed this query's Rng stream was (or will be) seeded with; a
  /// solo ApproxEngine run with this seed reproduces the result exactly.
  uint64_t seed_used = 0;
  /// Graceful degradation marker: true when the run was stopped short by
  /// overload shedding or an expired deadline *after* completing at
  /// least one round — `result` then carries a valid partial estimate
  /// whose `error_bound` field is rewritten to the ACHIEVED relative
  /// bound (moe / |v_hat|) instead of the requested one. A degraded
  /// response is an answer, not an error: `status` stays OK. Queries
  /// stopped before their first round are never marked degraded (their
  /// estimate would be vacuous).
  bool degraded = false;
  /// Submission -> admission (or -> terminal when never admitted).
  double queue_ms = 0.0;
  /// Admission -> retirement; 0 until admitted.
  double run_ms = 0.0;
};

/// Handle to one asynchronously submitted query. Cheap to copy (all
/// copies share the same ticket); default-constructed tickets are empty.
///
/// Lifecycle:
///   auto ticket = service.SubmitAsync({query});
///   ticket.Poll();          // non-blocking state snapshot
///   ticket.Cancel();        // cooperative: takes effect between rounds
///   auto resp = ticket.Wait();  // blocks until terminal
///
/// All members are safe to call from any thread, concurrently with the
/// scheduler and with each other. A ticket keeps its state alive
/// independently of the service, so Wait/Poll stay valid even after the
/// service is destroyed (outstanding queries are cancelled then).
class QueryTicket {
 public:
  QueryTicket() = default;

  bool valid() const { return state_ != nullptr; }
  uint64_t id() const;

  /// Non-blocking snapshot of the query's current state. `result` is
  /// meaningful only once the state is terminal.
  QueryResponse Poll() const;

  /// Blocks until the query reaches a terminal state and returns it.
  QueryResponse Wait() const;

  /// Wait with a timeout; returns the terminal response, or nullopt when
  /// the query is still live after `timeout_ms`.
  std::optional<QueryResponse> WaitFor(double timeout_ms) const;

  /// Requests cooperative cancellation: a queued query retires without
  /// running; a running one retires at its next round boundary with the
  /// partial estimate. Idempotent; a no-op once terminal.
  void Cancel();

  /// Registers a completion callback: `fn` is invoked exactly once with
  /// the terminal QueryResponse — immediately (on the calling thread) if
  /// the ticket is already terminal, otherwise from the scheduler thread
  /// at retirement. Callbacks must be cheap and non-blocking (post to a
  /// queue, signal an eventfd): they run inside the scheduler's retire
  /// path. This is the push half of the ticket API — the HTTP front-end's
  /// event loops use it to answer long-poll result fetches without
  /// parking a thread per waiter.
  void OnTerminal(std::function<void(const QueryResponse&)> fn);

 private:
  friend class QueryService;
  explicit QueryTicket(std::shared_ptr<serve_internal::TicketState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<serve_internal::TicketState> state_;
};

/// A resident front-end serving many aggregate queries over ONE shared
/// EngineContext — the paper's interactive setting at service scale:
/// build-once shared state, cheap per-query sessions, and round-level
/// interleaving so no single long-running query monopolizes the pool.
///
///   auto ctx = EngineContext::LoadFromSnapshot("kg.snap");
///   QueryService service(*std::move(ctx));
///   auto t1 = service.SubmitAsync({q1});            // returns immediately
///   auto t2 = service.SubmitAsync({q2, .deadline_ms = 50});
///   t2.Cancel();                                    // or let it expire
///   QueryResponse r1 = t1.Wait();                   // by value, stable
///
/// Scheduling: a background scheduler thread owns the run loop. Admitted
/// sessions advance in lockstep "ticks": each tick admits queued queries
/// into free slots (up to max_concurrent), submits one Algorithm-2 round
/// per unfinished session as a TaskGroup batch on GlobalPool(), joins,
/// and retires finished / cancelled / expired sessions. Submission never
/// blocks on running queries — SubmitAsync while a run is in flight just
/// queues the ticket and wakes the scheduler.
///
/// Determinism: each session owns its Rng (seeded from QuerySeed of the
/// submission index, or the request's pinned seed) and every context
/// cache is a synchronized memo over pure functions, so an uncancelled
/// query's result is bitwise-identical to running it alone with the same
/// seed — concurrency, queueing, cache warmth, and other queries being
/// cancelled change wall-clock, never v_hat or moe. Cancellation and
/// deadlines are checked between rounds only and per-query streams are
/// independent, so a retiring query cannot perturb any other session's
/// draws. Tested in tests/serve_test.cc.
///
/// Overload protection (opt-in via ServiceOptions::max_queue_depth): a
/// full queue rejects at submit (kResourceExhausted — the ticket comes
/// back already terminal), queued tickets older than max_queue_wait_ms
/// are shed, and the Healthy/Saturated/Shedding state machine (with
/// hysteresis) drives graceful degradation: while Shedding, new
/// submissions are refused and in-flight queries that already completed
/// ≥1 round retire at the next round boundary with a *degraded* partial
/// estimate (QueryResponse::degraded, achieved error bound) rather than
/// an error. The anytime estimator makes this loss-free: every accepted
/// query that ran at least one round always gets an answer. Tested in
/// tests/overload_test.cc.
class QueryService {
 public:
  explicit QueryService(std::shared_ptr<const EngineContext> context,
                        ServiceOptions options = {});

  /// Cancels every outstanding query, drains the scheduler, and joins it.
  /// Call Drain() first for a graceful end-of-life.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// The seed the `index`-th submitted query samples with under base seed
  /// `base_seed` (splitmix64 of the pair). Exposed so a solo ApproxEngine
  /// run can reproduce a service-run query exactly.
  static uint64_t QuerySeed(uint64_t base_seed, size_t index);

  /// Enqueues a query for asynchronous execution and returns its ticket
  /// immediately — submission is valid while earlier queries are still
  /// running. The ticket's id is the query's submission index (the same
  /// index QuerySeed derives the seed from).
  QueryTicket SubmitAsync(QueryRequest request);

  /// Batching shim for high-QPS front doors: submits a whole wave of
  /// requests under ONE lock acquisition and at most ONE scheduler
  /// wakeup, so N requests arriving within one event-loop drain cycle
  /// cost one admission wave instead of N per-request wakeups. Tickets
  /// come back in request order with consecutive submission indices —
  /// identical ids, seeds, and admission decisions to submitting the
  /// same requests one by one (tested in serve_test.cc). Rejections
  /// (queue full / shedding / shutdown) are evaluated per request, in
  /// order, exactly as SubmitAsync would.
  std::vector<QueryTicket> SubmitBatch(std::vector<QueryRequest> requests);

  /// Number of queries submitted so far (async + legacy).
  size_t num_submitted() const;

  /// Blocks until every query submitted so far is terminal.
  void Drain();

  /// Service-level counters (tickets by state), for /stats and tests.
  /// Every submission ends in exactly one of the five terminal buckets:
  ///   submitted == done + failed + cancelled + deadline_expired
  ///                + rejected + shed        (once all tickets retire)
  /// `degraded` is an overlay, not a bucket: it counts the done /
  /// deadline_expired tickets whose response carried a degraded partial.
  struct ServiceStats {
    uint64_t submitted = 0;
    uint64_t done = 0;
    uint64_t failed = 0;
    uint64_t cancelled = 0;
    uint64_t deadline_expired = 0;
    uint64_t rejected = 0;  ///< refused at submit (queue full / shedding)
    uint64_t shed = 0;      ///< evicted from the queue (max_queue_wait_ms)
    uint64_t degraded = 0;  ///< retired with a degraded partial estimate
    size_t queued = 0;   ///< currently waiting for a slot
    size_t running = 0;  ///< currently admitted
    OverloadState overload = OverloadState::kHealthy;
    /// Suggested client wait before resubmitting, from the observed
    /// queue drain rate (EWMA of inter-retirement gaps x queue depth).
    /// The HTTP front-end rounds this up into 429 Retry-After.
    double retry_after_ms = 0.0;
    /// Scheduler wakeups actually signalled by submissions. Wakeups are
    /// coalesced: a submission only notifies when the scheduler is
    /// parked, and SubmitBatch signals at most once per wave, so under a
    /// high-QPS front door this grows far slower than `submitted` (the
    /// tick-batching shim at work — compare the two to see it).
    uint64_t scheduler_wakeups = 0;
    /// Scheduler watchdog (see ServiceOptions::watchdog_warn_ms): age of
    /// the tick currently in progress (0 when the scheduler is idle or
    /// between ticks), and how many ticks have stalled past the
    /// threshold since construction.
    double last_tick_age_ms = 0.0;
    uint64_t watchdog_stalls = 0;
    /// Memory-pressure state of the shared EngineContext budget (always
    /// kHealthy for an ungoverned context). Under kCritical the engine
    /// sheds new cache builds — queries still run, on ephemeral
    /// structures, and come back marked degraded. See docs/memory.md.
    MemoryPressure memory_pressure = MemoryPressure::kHealthy;
  };
  ServiceStats stats() const;

  /// Current overload state (see OverloadState).
  OverloadState overload_state() const;

  // --- Legacy blocking surface (thin wrappers over the async core) -----

  /// Enqueues a query with service-default options; returns its index
  /// (position in RunAll's output). Kept for source compatibility —
  /// prefer SubmitAsync, whose QueryResponse is returned by value.
  size_t Submit(AggregateQuery query);

  /// Blocks until every Submit()-ed query is terminal and returns their
  /// results in submission order. LIFETIME TRAP (the reason this API is
  /// legacy): the return is a reference into the service, and the element
  /// it exposes for query i is invalidated by the next Submit/RunAll —
  /// the vector reallocates as it grows. Copy out anything you keep, or
  /// use SubmitAsync + QueryTicket::Wait, which return by value. The old
  /// caller-driven loop is gone; this wrapper just waits on the
  /// background scheduler. Queries that fail admission carry their error
  /// Status. May be called again after more Submits; already-run queries
  /// are not re-run and indices keep counting up, so reruns stay
  /// reproducible.
  const std::vector<Result<AggregateResult>>& RunAll();

  /// One-call batch convenience.
  static std::vector<Result<AggregateResult>> RunBatch(
      std::shared_ptr<const EngineContext> context,
      const std::vector<AggregateQuery>& queries,
      ServiceOptions options = {});

  const std::shared_ptr<const EngineContext>& context() const {
    return ctx_;
  }

 private:
  using TicketPtr = std::shared_ptr<serve_internal::TicketState>;

  void SchedulerLoop();
  /// Marks `t` terminal under its own lock and updates service counters.
  /// `degraded` tags the response as a degraded partial (see
  /// QueryResponse::degraded) and rewrites result.error_bound to the
  /// achieved bound; `shed_from_queue` routes the kFailed count into
  /// stats().shed instead of stats().failed.
  void Retire(const TicketPtr& t, QueryState state, Status status,
              AggregateResult result, bool degraded = false,
              bool shed_from_queue = false);
  /// Re-evaluates the overload state machine from the current queue
  /// depth. Caller holds mu_.
  void UpdateOverloadLocked();
  /// Closes the scheduler tick in progress: warns + counts a watchdog
  /// stall when it overran watchdog_warn_ms (unless a concurrent stats()
  /// probe already did). Caller holds mu_.
  void NoteTickEndLocked();
  /// Suggested client backoff from the drain-rate EWMA. Caller holds mu_.
  double RetryAfterMsLocked() const;

  std::shared_ptr<const EngineContext> ctx_;
  ServiceOptions options_;

  mutable std::mutex mu_;
  std::condition_variable wake_;     ///< wakes the scheduler
  std::condition_variable drained_;  ///< signalled as tickets retire
  std::deque<TicketPtr> queue_;      ///< submitted, not yet admitted
  size_t next_index_ = 0;            ///< submission counter (ids + seeds)
  size_t outstanding_ = 0;           ///< non-terminal tickets
  size_t running_ = 0;               ///< admitted by the scheduler
  bool scheduler_waiting_ = false;   ///< parked in wake_.wait (coalescing)
  bool shutdown_ = false;
  ServiceStats stats_;
  OverloadState overload_ = OverloadState::kHealthy;
  /// Drain-rate estimate: EWMA of the gap between consecutive
  /// retirements, in ms. 0 until two retirements have been observed.
  double drain_interval_ms_ = 0.0;
  std::chrono::steady_clock::time_point last_retire_;
  bool any_retired_ = false;
  /// Scheduler watchdog state (guarded by mu_). `tick_warned_` and
  /// `watchdog_stalls_` are mutable because a stats() probe may be the
  /// first observer of a stall still in progress and records it there.
  std::chrono::steady_clock::time_point tick_start_;
  bool tick_in_progress_ = false;
  mutable bool tick_warned_ = false;
  mutable uint64_t watchdog_stalls_ = 0;
  std::thread scheduler_;  ///< started lazily on first submission

  // Legacy wrapper state: tickets in Submit order, materialized results.
  std::vector<TicketPtr> legacy_tickets_;
  std::vector<Result<AggregateResult>> legacy_results_;
};

}  // namespace kgaq

#endif  // KGAQ_SERVE_QUERY_SERVICE_H_
