#include "serve/http_client.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

namespace kgaq {

namespace {

bool IsIdempotentMethod(const std::string& method) {
  return method == "GET" || method == "HEAD";
}

bool IsRetryableHttpStatus(int code) { return code == 429 || code == 503; }

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z ^= z >> 30;
  z *= 0xBF58476D1CE4E5B9ULL;
  z ^= z >> 27;
  z *= 0x94D049BB133111EBULL;
  z ^= z >> 31;
  return z;
}

double UniformDouble(uint64_t& state) {
  return static_cast<double>(SplitMix64(state) >> 11) * 0x1.0p-53;
}

}  // namespace

RetryingHttpClient::RetryingHttpClient(RetryOptions options)
    : options_(options),
      fetch_(nullptr),  // null fetch_ selects the pooled transport
      sleep_([](double ms) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(ms));
      }),
      rng_state_(options.seed) {}

RetryingHttpClient::RetryingHttpClient(RetryOptions options, FetchFn fetch,
                                       SleepFn sleep)
    : options_(options),
      fetch_(std::move(fetch)),
      sleep_(std::move(sleep)),
      rng_state_(options.seed) {}

RetryingHttpClient::Stats RetryingHttpClient::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void RetryingHttpClient::EvictHost(const std::string& host, uint16_t port) {
  const std::string key = host + ":" + std::to_string(port);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pool_.find(key);
  if (it == pool_.end()) return;
  for (auto& slot : it->second) {
    if (slot->in_use) {
      // A round trip is mid-flight on another thread; closing under it
      // would race the socket I/O. Flag it — checkin closes it.
      if (!slot->evict_on_return) {
        slot->evict_on_return = true;
        ++stats_.evictions;
      }
    } else if (slot->conn.connected()) {
      slot->conn.Close();
      ++stats_.evictions;
    }
  }
}

Result<HttpResponse> RetryingHttpClient::PooledFetch(
    const std::string& host, uint16_t port, const std::string& method,
    const std::string& target, const std::string& body, double timeout_ms) {
  const std::string key = host + ":" + std::to_string(port);
  const size_t cap = std::max<size_t>(1, options_.connections_per_host);
  PooledConn* slot = nullptr;
  std::unique_ptr<PooledConn> overflow;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto& conns = pool_[key];
    for (auto& c : conns) {
      if (!c->in_use) {
        slot = c.get();
        break;
      }
    }
    if (slot == nullptr && conns.size() < cap) {
      conns.push_back(std::make_unique<PooledConn>());
      slot = conns.back().get();
    }
    if (slot != nullptr) {
      slot->in_use = true;
    } else {
      ++stats_.overflows;
    }
  }
  if (slot == nullptr) {
    // Pool saturated: run this attempt on a temporary connection rather
    // than queueing behind an in-flight round trip of unknown duration.
    overflow = std::make_unique<PooledConn>();
    slot = overflow.get();
  }

  const bool reused = slot->conn.connected();
  bool connected_now = false;
  Result<HttpResponse> out = [&]() -> Result<HttpResponse> {
    // Applied before Connect so the timeout also bounds the handshake
    // (SO_SNDTIMEO covers a blocking connect on Linux).
    slot->conn.SetTimeoutMs(timeout_ms);
    if (!reused) {
      Status st = slot->conn.Connect(host, port);
      if (!st.ok()) return st;
      connected_now = true;
    }
    // RoundTrip closes the socket itself on every transport error and on
    // Connection: close responses, so the pool never retains a connection
    // whose framing state is unknown; the next checkout reconnects.
    return slot->conn.RoundTrip(method, target, body,
                                /*keep_alive=*/overflow == nullptr);
  }();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (reused) ++stats_.reuses;
    if (connected_now && overflow == nullptr) ++stats_.reconnects;
    if (overflow == nullptr) {
      if (slot->evict_on_return) {
        slot->conn.Close();
        slot->evict_on_return = false;
      }
      slot->in_use = false;
    }
  }
  return out;
}

Result<HttpResponse> RetryingHttpClient::Fetch(const std::string& host,
                                               uint16_t port,
                                               const std::string& method,
                                               const std::string& target,
                                               const std::string& body,
                                               double timeout_ms) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.requests;
  }
  const int attempts = std::max(1, options_.max_attempts);
  const double base = std::max(1.0, options_.initial_backoff_ms);
  const double cap = std::max(base, options_.max_backoff_ms);
  double prev_sleep = base;

  Result<HttpResponse> last = Status::Internal("no attempt made");
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      // Decorrelated jitter: next sleep is uniform in [base, 3*prev],
      // capped. Unlike plain exponential doubling, concurrent clients
      // that failed together do not wake together.
      double sleep_ms;
      {
        std::lock_guard<std::mutex> lock(mu_);
        sleep_ms =
            base + UniformDouble(rng_state_) * (3.0 * prev_sleep - base);
        ++stats_.retries;
      }
      sleep_ms = std::min(cap, std::max(base, sleep_ms));
      if (options_.honor_retry_after && last.ok() &&
          last->retry_after_s > 0.0) {
        sleep_ms = std::min(
            cap, std::max(sleep_ms, last->retry_after_s * 1000.0));
      }
      prev_sleep = sleep_ms;
      sleep_(sleep_ms);
    }

    last = fetch_ ? fetch_(host, port, method, target, body)
                  : PooledFetch(host, port, method, target, body, timeout_ms);
    if (!last.ok()) {
      const StatusCode code = last.status().code();
      if (code == StatusCode::kUnavailable) continue;  // nothing was sent
      if (code == StatusCode::kIoError && IsIdempotentMethod(method)) {
        continue;  // mid-flight death; safe to replay a GET
      }
      return last;  // non-retryable transport or non-idempotent replay
    }
    if (!IsRetryableHttpStatus(last->status_code)) return last;
    // 429/503: rejected before any work — loop for every method.
  }
  return last;  // attempts exhausted; hand back the final outcome
}

}  // namespace kgaq
