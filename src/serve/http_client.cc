#include "serve/http_client.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

namespace kgaq {

namespace {

bool IsIdempotentMethod(const std::string& method) {
  return method == "GET" || method == "HEAD";
}

bool IsRetryableHttpStatus(int code) { return code == 429 || code == 503; }

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z ^= z >> 30;
  z *= 0xBF58476D1CE4E5B9ULL;
  z ^= z >> 27;
  z *= 0x94D049BB133111EBULL;
  z ^= z >> 31;
  return z;
}

double UniformDouble(uint64_t& state) {
  return static_cast<double>(SplitMix64(state) >> 11) * 0x1.0p-53;
}

}  // namespace

RetryingHttpClient::RetryingHttpClient(RetryOptions options)
    : options_(options),
      fetch_(nullptr),  // null fetch_ selects the pooled transport
      sleep_([](double ms) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(ms));
      }),
      rng_state_(options.seed) {}

RetryingHttpClient::RetryingHttpClient(RetryOptions options, FetchFn fetch,
                                       SleepFn sleep)
    : options_(options),
      fetch_(std::move(fetch)),
      sleep_(std::move(sleep)),
      rng_state_(options.seed) {}

Result<HttpResponse> RetryingHttpClient::PooledFetch(
    const std::string& host, uint16_t port, const std::string& method,
    const std::string& target, const std::string& body) {
  const std::string key = host + ":" + std::to_string(port);
  HttpClientConnection& conn = pool_[key];
  if (conn.connected()) {
    ++stats_.reuses;
  } else {
    Status st = conn.Connect(host, port);
    if (!st.ok()) return st;
    ++stats_.reconnects;
  }
  // RoundTrip closes the socket itself on every transport error and on
  // Connection: close responses, so the pool never retains a connection
  // whose framing state is unknown; the next attempt reconnects.
  return conn.RoundTrip(method, target, body, /*keep_alive=*/true);
}

Result<HttpResponse> RetryingHttpClient::Fetch(const std::string& host,
                                               uint16_t port,
                                               const std::string& method,
                                               const std::string& target,
                                               const std::string& body) {
  ++stats_.requests;
  const int attempts = std::max(1, options_.max_attempts);
  const double base = std::max(1.0, options_.initial_backoff_ms);
  const double cap = std::max(base, options_.max_backoff_ms);
  double prev_sleep = base;

  Result<HttpResponse> last = Status::Internal("no attempt made");
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      // Decorrelated jitter: next sleep is uniform in [base, 3*prev],
      // capped. Unlike plain exponential doubling, concurrent clients
      // that failed together do not wake together.
      double sleep_ms =
          base + UniformDouble(rng_state_) * (3.0 * prev_sleep - base);
      sleep_ms = std::min(cap, std::max(base, sleep_ms));
      if (options_.honor_retry_after && last.ok() &&
          last->retry_after_s > 0.0) {
        sleep_ms = std::min(
            cap, std::max(sleep_ms, last->retry_after_s * 1000.0));
      }
      prev_sleep = sleep_ms;
      sleep_(sleep_ms);
      ++stats_.retries;
    }

    last = fetch_ ? fetch_(host, port, method, target, body)
                  : PooledFetch(host, port, method, target, body);
    if (!last.ok()) {
      const StatusCode code = last.status().code();
      if (code == StatusCode::kUnavailable) continue;  // nothing was sent
      if (code == StatusCode::kIoError && IsIdempotentMethod(method)) {
        continue;  // mid-flight death; safe to replay a GET
      }
      return last;  // non-retryable transport or non-idempotent replay
    }
    if (!IsRetryableHttpStatus(last->status_code)) return last;
    // 429/503: rejected before any work — loop for every method.
  }
  return last;  // attempts exhausted; hand back the final outcome
}

}  // namespace kgaq
