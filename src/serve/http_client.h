#ifndef KGAQ_SERVE_HTTP_CLIENT_H_
#define KGAQ_SERVE_HTTP_CLIENT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "serve/http_server.h"

namespace kgaq {

/// Retry policy for RetryingHttpClient: capped exponential backoff with
/// decorrelated jitter. All sleeps are deterministic given `seed` — the
/// i-th backoff depends only on the seed and the previous sleep — so
/// tests can assert the exact schedule through an injected sleep fn.
struct RetryOptions {
  /// Total tries including the first; 1 disables retry entirely.
  int max_attempts = 4;
  /// First backoff's lower bound and the jitter floor for later ones.
  double initial_backoff_ms = 100.0;
  /// Hard ceiling on any single sleep.
  double max_backoff_ms = 5000.0;
  /// Seeds the jitter stream; same seed, same failures -> same schedule.
  uint64_t seed = 1;
  /// When a 429/503 carries Retry-After, sleep at least that long
  /// (still capped by max_backoff_ms).
  bool honor_retry_after = true;
};

/// A thin, dependency-free retrying client for loopback tests, smoke
/// binaries, and the chaos soak. The default constructor POOLS
/// transport connections: one persistent keep-alive HttpClientConnection
/// per host:port, reused across Fetch calls, reconnected transparently
/// when the server closes it (idle reap, max_keepalive_requests, or a
/// transport error). What it retries:
///
///   - kUnavailable transport errors: either the connect itself failed
///     or a REUSED pooled connection died before yielding a single
///     response byte (the server reaped it while we were idle) — in
///     both cases no request executed, so retrying is safe for every
///     method; the retry reconnects.
///   - kIoError transport errors (send/recv died mid-flight on a fresh
///     connection): the server MAY have executed the request, so these
///     retry only for idempotent methods (GET / HEAD). A POST /query
///     that dies mid-read is surfaced to the caller rather than
///     silently submitted twice. The pooled connection is dropped, so
///     a retry (when allowed) starts on a fresh socket.
///   - HTTP 429 and 503: the server explicitly said "later"; the
///     request was rejected before any work, so retrying is safe for
///     every method. Retry-After, when present, paces the wait.
///
/// Everything else — 4xx/5xx responses, parse failures — returns
/// immediately: retrying a deterministic failure only adds load.
///
/// Backoff between tries is decorrelated jitter (Brooker/AWS):
///   sleep_i = min(cap, uniform(base, 3 * sleep_{i-1}))
/// which spreads a thundering herd across time instead of synchronizing
/// it the way plain doubling does.
///
/// Not thread-safe: one client per thread (each gets its own pool).
class RetryingHttpClient {
 public:
  /// Injection seams for tests: a fake fetch scripts server behavior and
  /// a fake sleep records the backoff schedule without waiting.
  using FetchFn = std::function<Result<HttpResponse>(
      const std::string& host, uint16_t port, const std::string& method,
      const std::string& target, const std::string& body)>;
  using SleepFn = std::function<void(double ms)>;

  /// Pooled keep-alive transport (see class comment).
  explicit RetryingHttpClient(RetryOptions options = {});
  /// Test constructor: custom transport and/or clockless sleep. An
  /// injected transport is NOT pooled — the fetch fn owns connection
  /// lifetime.
  RetryingHttpClient(RetryOptions options, FetchFn fetch, SleepFn sleep);

  /// Fetches with retries per the class contract. On success the LAST
  /// response is returned (even a 4xx — only transport errors and
  /// retryable statuses loop). On exhaustion, the last transport error
  /// or the final 429/503 response is returned as-is.
  Result<HttpResponse> Fetch(const std::string& host, uint16_t port,
                             const std::string& method,
                             const std::string& target,
                             const std::string& body = "");

  struct Stats {
    uint64_t requests = 0;  ///< Fetch() calls
    uint64_t retries = 0;   ///< extra attempts beyond each first try
    /// Attempts served over an already-open pooled connection — the
    /// keep-alive win; reuses / requests ~ 1 means churn is gone.
    uint64_t reuses = 0;
    /// Pooled connections (re)established: first contact per host plus
    /// one per server-side close observed. Always 0 with an injected
    /// transport.
    uint64_t reconnects = 0;
  };
  Stats stats() const { return stats_; }

 private:
  /// One attempt over the per-host pooled keep-alive connection.
  Result<HttpResponse> PooledFetch(const std::string& host, uint16_t port,
                                   const std::string& method,
                                   const std::string& target,
                                   const std::string& body);

  RetryOptions options_;
  FetchFn fetch_;  ///< injected transport; null in pooled mode
  SleepFn sleep_;
  uint64_t rng_state_;
  Stats stats_;
  /// host:port -> persistent connection (pooled mode only). RoundTrip
  /// closes the socket on every transport error and every
  /// `Connection: close` response, so a pooled entry is never left in
  /// an unknown framing state — the next Fetch just reconnects.
  std::unordered_map<std::string, HttpClientConnection> pool_;
};

}  // namespace kgaq

#endif  // KGAQ_SERVE_HTTP_CLIENT_H_
