#ifndef KGAQ_SERVE_HTTP_CLIENT_H_
#define KGAQ_SERVE_HTTP_CLIENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "serve/http_server.h"

namespace kgaq {

/// Retry policy for RetryingHttpClient: capped exponential backoff with
/// decorrelated jitter. All sleeps are deterministic given `seed` — the
/// i-th backoff depends only on the seed and the previous sleep — so
/// tests can assert the exact schedule through an injected sleep fn.
struct RetryOptions {
  /// Total tries including the first; 1 disables retry entirely.
  int max_attempts = 4;
  /// First backoff's lower bound and the jitter floor for later ones.
  double initial_backoff_ms = 100.0;
  /// Hard ceiling on any single sleep.
  double max_backoff_ms = 5000.0;
  /// Seeds the jitter stream; same seed, same failures -> same schedule.
  uint64_t seed = 1;
  /// When a 429/503 carries Retry-After, sleep at least that long
  /// (still capped by max_backoff_ms).
  bool honor_retry_after = true;
  /// Pooled keep-alive connections kept per host:port (at least 1).
  /// Concurrent Fetch calls to one host fan out over the pool; calls
  /// beyond it overflow onto temporary one-shot connections instead of
  /// queueing, so a burst degrades to pre-pool behavior rather than
  /// serializing.
  size_t connections_per_host = 4;
};

/// A thin, dependency-free retrying client for loopback tests, smoke
/// binaries, the shard coordinator's remote channels, and the chaos
/// soak. The default constructor POOLS transport connections: up to
/// RetryOptions::connections_per_host persistent keep-alive
/// HttpClientConnections per host:port, reused across Fetch calls,
/// reconnected transparently when the server closes one (idle reap,
/// max_keepalive_requests, or a transport error). What it retries:
///
///   - kUnavailable transport errors: either the connect itself failed
///     or a REUSED pooled connection died before yielding a single
///     response byte (the server reaped it while we were idle) — in
///     both cases no request executed, so retrying is safe for every
///     method; the retry reconnects.
///   - kIoError transport errors (send/recv died mid-flight on a fresh
///     connection): the server MAY have executed the request, so these
///     retry only for idempotent methods (GET / HEAD). A POST /query
///     that dies mid-read is surfaced to the caller rather than
///     silently submitted twice. The pooled connection is dropped, so
///     a retry (when allowed) starts on a fresh socket.
///   - HTTP 429 and 503: the server explicitly said "later"; the
///     request was rejected before any work, so retrying is safe for
///     every method. Retry-After, when present, paces the wait.
///
/// Everything else — 4xx/5xx responses, parse failures — returns
/// immediately: retrying a deterministic failure only adds load.
///
/// Backoff between tries is decorrelated jitter (Brooker/AWS):
///   sleep_i = min(cap, uniform(base, 3 * sleep_{i-1}))
/// which spreads a thundering herd across time instead of synchronizing
/// it the way plain doubling does.
///
/// Thread-safe: the pool hands each in-flight Fetch its own connection
/// (checkout under a mutex, round trip outside it), so one client can
/// back every shard channel of a coordinator. The retry jitter stream
/// and stats are mutex-guarded; with contention the exact interleaving
/// of jitter draws across threads is scheduler-dependent, but each
/// single-threaded use keeps the old deterministic schedule.
class RetryingHttpClient {
 public:
  /// Injection seams for tests: a fake fetch scripts server behavior and
  /// a fake sleep records the backoff schedule without waiting.
  using FetchFn = std::function<Result<HttpResponse>(
      const std::string& host, uint16_t port, const std::string& method,
      const std::string& target, const std::string& body)>;
  using SleepFn = std::function<void(double ms)>;

  /// Pooled keep-alive transport (see class comment).
  explicit RetryingHttpClient(RetryOptions options = {});
  /// Test constructor: custom transport and/or clockless sleep. An
  /// injected transport is NOT pooled — the fetch fn owns connection
  /// lifetime.
  RetryingHttpClient(RetryOptions options, FetchFn fetch, SleepFn sleep);

  /// Fetches with retries per the class contract. On success the LAST
  /// response is returned (even a 4xx — only transport errors and
  /// retryable statuses loop). On exhaustion, the last transport error
  /// or the final 429/503 response is returned as-is.
  ///
  /// `timeout_ms` (when > 0) bounds each ATTEMPT's socket operations via
  /// SO_SNDTIMEO/SO_RCVTIMEO on the pooled connection — not the whole
  /// Fetch including backoff sleeps; callers with a hard deadline should
  /// also size max_attempts accordingly. A timed-out attempt surfaces as
  /// kIoError ("timed out"), which is NOT retried for non-idempotent
  /// methods, so a deadline-clamped POST fails fast instead of replaying
  /// into a spent budget. Ignored with an injected transport.
  Result<HttpResponse> Fetch(const std::string& host, uint16_t port,
                             const std::string& method,
                             const std::string& target,
                             const std::string& body = "",
                             double timeout_ms = 0.0);

  /// Closes every pooled connection to host:port — the circuit-breaker
  /// open hook (shard/health.h): once a host is presumed dead, cached
  /// sockets to it are worthless at best and half-dead at worst, so
  /// failback after recovery reconnects fresh. Idle slots close
  /// immediately; checked-out slots close when their in-flight round
  /// trip returns. Each connection closed counts in stats().evictions.
  void EvictHost(const std::string& host, uint16_t port);

  struct Stats {
    uint64_t requests = 0;  ///< Fetch() calls
    uint64_t retries = 0;   ///< extra attempts beyond each first try
    /// Attempts served over an already-open pooled connection — the
    /// keep-alive win; reuses / requests ~ 1 means churn is gone.
    uint64_t reuses = 0;
    /// Pooled connections (re)established: first contact per host plus
    /// one per server-side close observed. Always 0 with an injected
    /// transport.
    uint64_t reconnects = 0;
    /// Attempts that found every pooled connection busy and ran on a
    /// temporary one-shot connection instead. Persistently nonzero means
    /// connections_per_host is undersized for the concurrency.
    uint64_t overflows = 0;
    /// Pooled connections closed by EvictHost (breaker-open eviction).
    uint64_t evictions = 0;
  };
  Stats stats() const;

 private:
  /// One pool slot: a persistent connection plus its checkout flag.
  /// Slots are heap-allocated so pointers stay stable while the per-host
  /// vector grows under the lock.
  struct PooledConn {
    HttpClientConnection conn;
    bool in_use = false;
    /// EvictHost raced an in-flight round trip: close at checkin.
    bool evict_on_return = false;
  };

  /// One attempt over a checked-out per-host pooled connection (or a
  /// temporary overflow connection when the pool is saturated).
  Result<HttpResponse> PooledFetch(const std::string& host, uint16_t port,
                                   const std::string& method,
                                   const std::string& target,
                                   const std::string& body,
                                   double timeout_ms);

  RetryOptions options_;
  FetchFn fetch_;  ///< injected transport; null in pooled mode
  SleepFn sleep_;
  /// mu_ guards rng_state_, stats_ and the pool STRUCTURE (checkout /
  /// checkin / growth); the actual socket I/O runs outside the lock on
  /// the checked-out slot, which the in_use flag makes exclusive.
  mutable std::mutex mu_;
  uint64_t rng_state_;
  Stats stats_;
  /// host:port -> up to connections_per_host persistent connections.
  /// RoundTrip closes the socket on every transport error and every
  /// `Connection: close` response, so a pooled entry is never left in
  /// an unknown framing state — the next checkout just reconnects.
  std::unordered_map<std::string, std::vector<std::unique_ptr<PooledConn>>>
      pool_;
};

}  // namespace kgaq

#endif  // KGAQ_SERVE_HTTP_CLIENT_H_
