#include "serve/query_service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <thread>
#include <utility>

#include "common/fault_injection.h"
#include "common/thread_pool.h"

namespace kgaq {

namespace serve_internal {

/// Shared state behind one QueryTicket: written by the scheduler, read by
/// any number of ticket copies. `cancel` is the flag QuerySession polls
/// between rounds (SetStopControl), so Cancel() needs no lock to reach a
/// running query; everything else is guarded by `mu`.
struct TicketState {
  using Clock = std::chrono::steady_clock;

  // Immutable after SubmitAsync publishes the ticket.
  uint64_t id = 0;
  uint64_t seed_used = 0;
  Deadline deadline;
  Clock::time_point submit_time;

  std::atomic<bool> cancel{false};
  /// Consumed by the scheduler at admission.
  QueryRequest request;

  mutable std::mutex mu;
  std::condition_variable cv;
  QueryState state = QueryState::kQueued;
  Status status;
  AggregateResult result;
  bool degraded = false;
  double queue_ms = 0.0;
  double run_ms = 0.0;
  /// Completion callbacks (QueryTicket::OnTerminal), fired exactly once
  /// by Retire — moved out under `mu`, invoked outside it.
  std::vector<std::function<void(const QueryResponse&)>> callbacks;

  QueryResponse Snapshot() const {
    std::lock_guard<std::mutex> lock(mu);
    QueryResponse out;
    out.id = id;
    out.state = state;
    out.status = status;
    out.result = result;
    out.seed_used = seed_used;
    out.degraded = degraded;
    out.queue_ms = queue_ms;
    out.run_ms = run_ms;
    return out;
  }
};

}  // namespace serve_internal

using serve_internal::TicketState;

const char* QueryStateToString(QueryState s) {
  switch (s) {
    case QueryState::kQueued:
      return "QUEUED";
    case QueryState::kRunning:
      return "RUNNING";
    case QueryState::kDone:
      return "DONE";
    case QueryState::kFailed:
      return "FAILED";
    case QueryState::kCancelled:
      return "CANCELLED";
    case QueryState::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

bool IsTerminalState(QueryState s) {
  return s != QueryState::kQueued && s != QueryState::kRunning;
}

const char* OverloadStateToString(OverloadState s) {
  switch (s) {
    case OverloadState::kHealthy:
      return "healthy";
    case OverloadState::kSaturated:
      return "saturated";
    case OverloadState::kShedding:
      return "shedding";
  }
  return "unknown";
}

// ---------------------------------------------------------------- ticket

uint64_t QueryTicket::id() const { return state_ != nullptr ? state_->id : 0; }

QueryResponse QueryTicket::Poll() const {
  if (state_ == nullptr) return QueryResponse{};
  return state_->Snapshot();
}

QueryResponse QueryTicket::Wait() const {
  if (state_ == nullptr) return QueryResponse{};
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [&] { return IsTerminalState(state_->state); });
  lock.unlock();
  return state_->Snapshot();
}

std::optional<QueryResponse> QueryTicket::WaitFor(double timeout_ms) const {
  if (state_ == nullptr) return QueryResponse{};
  std::unique_lock<std::mutex> lock(state_->mu);
  const bool terminal = state_->cv.wait_for(
      lock, std::chrono::duration<double, std::milli>(timeout_ms),
      [&] { return IsTerminalState(state_->state); });
  lock.unlock();
  if (!terminal) return std::nullopt;
  return state_->Snapshot();
}

void QueryTicket::Cancel() {
  if (state_ == nullptr) return;
  state_->cancel.store(true, std::memory_order_release);
}

void QueryTicket::OnTerminal(std::function<void(const QueryResponse&)> fn) {
  if (state_ == nullptr || fn == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (!IsTerminalState(state_->state)) {
      state_->callbacks.push_back(std::move(fn));
      return;
    }
  }
  // Already terminal (including tickets born rejected, which never pass
  // through Retire): invoke on the caller's thread, outside the lock.
  fn(state_->Snapshot());
}

// --------------------------------------------------------------- service

QueryService::QueryService(std::shared_ptr<const EngineContext> context,
                           ServiceOptions options)
    : ctx_(std::move(context)), options_(options) {}

QueryService::~QueryService() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    // Queued work is cancelled outright; the scheduler sets the cancel
    // flag on admitted sessions and drains them at their next round
    // boundary, so this join is bounded by one round per active query.
    for (const TicketPtr& t : queue_) {
      t->cancel.store(true, std::memory_order_release);
    }
    to_join = std::move(scheduler_);
  }
  wake_.notify_all();
  if (to_join.joinable()) to_join.join();
}

uint64_t QueryService::QuerySeed(uint64_t base_seed, size_t index) {
  // splitmix64 over (base, index): well-separated per-query streams that
  // any solo run can reproduce from the same pair.
  uint64_t z = base_seed + 0x9E3779B97F4A7C15ULL * (index + 1);
  z ^= z >> 30;
  z *= 0xBF58476D1CE4E5B9ULL;
  z ^= z >> 27;
  z *= 0x94D049BB133111EBULL;
  z ^= z >> 31;
  return z;
}

QueryTicket QueryService::SubmitAsync(QueryRequest request) {
  std::vector<QueryRequest> wave;
  wave.push_back(std::move(request));
  return SubmitBatch(std::move(wave)).front();
}

std::vector<QueryTicket> QueryService::SubmitBatch(
    std::vector<QueryRequest> requests) {
  std::vector<QueryTicket> out;
  out.reserve(requests.size());
  bool notify = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto now = TicketState::Clock::now();
    bool any_queued = false;
    for (QueryRequest& request : requests) {
      auto state = std::make_shared<TicketState>();
      state->submit_time = now;
      state->deadline = request.deadline_ms > 0.0
                            ? Deadline::AfterMillis(request.deadline_ms)
                            : Deadline::Infinite();
      state->id = next_index_++;
      state->seed_used =
          request.seed.has_value()
              ? *request.seed
              : QuerySeed(options_.base_seed, static_cast<size_t>(state->id));
      state->request = std::move(request);
      ++stats_.submitted;
      // Re-evaluate overload BEFORE the admission decision so a queue the
      // scheduler has already drained lets us exit Shedding on this very
      // submit instead of rejecting against stale state. Evaluated per
      // request, in order, so a batch makes exactly the same admission
      // decisions as the equivalent sequence of SubmitAsync calls.
      UpdateOverloadLocked();
      Status reject;
      if (shutdown_) {
        reject = Status::Unavailable("service shutting down");
      } else if (KGAQ_FAULT_POINT("serve.admit.queue_full") ||
                 (options_.max_queue_depth > 0 &&
                  queue_.size() >= options_.max_queue_depth) ||
                 overload_ == OverloadState::kShedding) {
        reject = Status::ResourceExhausted(
            "admission queue full; retry after " +
            std::to_string(static_cast<uint64_t>(RetryAfterMsLocked())) +
            " ms");
      }
      if (!reject.ok()) {
        // Rejected tickets are born terminal: they consumed a submission
        // index (and a seed) but never touch queue_, outstanding_, or
        // Retire, so Drain() does not wait on them. No lock on state->mu
        // is needed — the ticket has not been published yet.
        state->state = QueryState::kFailed;
        state->status = std::move(reject);
        ++stats_.rejected;
        out.push_back(QueryTicket(std::move(state)));
        continue;
      }
      queue_.push_back(state);
      ++outstanding_;
      any_queued = true;
      UpdateOverloadLocked();  // this push may cross an enter threshold
      out.push_back(QueryTicket(std::move(state)));
    }
    if (any_queued) {
      if (!scheduler_.joinable()) {
        scheduler_ = std::thread([this] { SchedulerLoop(); });
      }
      // Wakeup coalescing: only signal when the scheduler is actually
      // parked. A scheduler mid-tick re-reads the queue before blocking,
      // so skipping the notify is safe — and a whole admission wave
      // costs at most one futex wake instead of one per request.
      if (scheduler_waiting_) {
        notify = true;
        ++stats_.scheduler_wakeups;
      }
    }
  }
  if (notify) wake_.notify_all();
  return out;
}

size_t QueryService::num_submitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_index_;
}

void QueryService::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drained_.wait(lock, [&] { return outstanding_ == 0; });
}

QueryService::ServiceStats QueryService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServiceStats out = stats_;
  out.queued = queue_.size();
  out.running = running_;
  out.overload = overload_;
  out.retry_after_ms = RetryAfterMsLocked();
  if (tick_in_progress_) {
    out.last_tick_age_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - tick_start_)
                               .count();
    // A probe may observe a stall while the tick is still running; count
    // it here (once — the scheduler skips it when closing the tick).
    if (options_.watchdog_warn_ms > 0.0 &&
        out.last_tick_age_ms > options_.watchdog_warn_ms && !tick_warned_) {
      tick_warned_ = true;
      ++watchdog_stalls_;
      std::fprintf(stderr,
                   "[kgaq.serve] watchdog: scheduler tick running for "
                   "%.1f ms (threshold %.1f ms)\n",
                   out.last_tick_age_ms, options_.watchdog_warn_ms);
    }
  }
  out.watchdog_stalls = watchdog_stalls_;
  out.memory_pressure = ctx_->memory_pressure();
  return out;
}

OverloadState QueryService::overload_state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return overload_;
}

void QueryService::UpdateOverloadLocked() {
  if (options_.max_queue_depth == 0) {
    overload_ = OverloadState::kHealthy;
    return;
  }
  const double q = static_cast<double>(queue_.size()) /
                   static_cast<double>(options_.max_queue_depth);
  // Hysteresis: enter thresholds are strictly above the matching exit
  // thresholds, so small oscillations around one boundary cannot flap
  // the state (and with it /healthz) on every submit/retire.
  switch (overload_) {
    case OverloadState::kHealthy:
      if (q >= options_.shedding_enter) {
        overload_ = OverloadState::kShedding;
      } else if (q >= options_.saturated_enter) {
        overload_ = OverloadState::kSaturated;
      }
      break;
    case OverloadState::kSaturated:
      if (q >= options_.shedding_enter) {
        overload_ = OverloadState::kShedding;
      } else if (q <= options_.saturated_exit) {
        overload_ = OverloadState::kHealthy;
      }
      break;
    case OverloadState::kShedding:
      if (q <= options_.shedding_exit) {
        overload_ = q <= options_.saturated_exit ? OverloadState::kHealthy
                                                 : OverloadState::kSaturated;
      }
      break;
  }
}

void QueryService::NoteTickEndLocked() {
  if (!tick_in_progress_) return;
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - tick_start_)
                        .count();
  if (options_.watchdog_warn_ms > 0.0 && ms > options_.watchdog_warn_ms &&
      !tick_warned_) {
    ++watchdog_stalls_;
    std::fprintf(stderr,
                 "[kgaq.serve] watchdog: scheduler tick took %.1f ms "
                 "(threshold %.1f ms)\n",
                 ms, options_.watchdog_warn_ms);
  }
  tick_in_progress_ = false;
  tick_warned_ = false;
}

double QueryService::RetryAfterMsLocked() const {
  // Expected time for the queue to drain at the observed retirement
  // rate. Before any retirement there is no rate, so fall back to one
  // second — long enough to matter, short enough to re-probe quickly.
  const double interval =
      (any_retired_ && drain_interval_ms_ > 0.0) ? drain_interval_ms_
                                                 : 1000.0;
  const double queued = static_cast<double>(queue_.size());
  const double estimate = queued > 0.0 ? queued * interval : interval;
  return std::clamp(estimate, 1.0, 60000.0);
}

void QueryService::Retire(const TicketPtr& t, QueryState state,
                          Status status, AggregateResult result,
                          bool degraded, bool shed_from_queue) {
  const auto now = TicketState::Clock::now();
  if (degraded && result.rounds > 0 && std::abs(result.v_hat) > 0.0) {
    // A degraded answer reports what it achieved, not what was asked:
    // the relative half-width of the confidence interval actually built.
    result.error_bound = result.moe / std::abs(result.v_hat);
  }
  std::vector<std::function<void(const QueryResponse&)>> callbacks;
  {
    std::lock_guard<std::mutex> lock(t->mu);
    if (IsTerminalState(t->state)) return;  // first terminal wins
    if (t->state == QueryState::kQueued) {
      t->queue_ms = std::chrono::duration<double, std::milli>(
                        now - t->submit_time)
                        .count();
    }
    t->state = state;
    t->status = std::move(status);
    t->result = std::move(result);
    t->degraded = degraded;
    callbacks = std::move(t->callbacks);
    t->callbacks.clear();
  }
  t->cv.notify_all();
  if (!callbacks.empty()) {
    // OnTerminal contract: exactly once, outside the ticket lock, with
    // the terminal snapshot. Callbacks run on this (scheduler) thread,
    // so they must stay cheap — see QueryTicket::OnTerminal.
    const QueryResponse snapshot = t->Snapshot();
    for (auto& fn : callbacks) fn(snapshot);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    --outstanding_;
    if (any_retired_) {
      const double dt =
          std::chrono::duration<double, std::milli>(now - last_retire_)
              .count();
      // EWMA of inter-retirement gaps: the drain rate Retry-After is
      // computed from. 0.2 weight smooths bursty tick retirements.
      drain_interval_ms_ = 0.8 * drain_interval_ms_ + 0.2 * dt;
    }
    any_retired_ = true;
    last_retire_ = now;
    if (shed_from_queue) {
      ++stats_.shed;
    } else {
      switch (state) {
        case QueryState::kDone:
          ++stats_.done;
          break;
        case QueryState::kFailed:
          ++stats_.failed;
          break;
        case QueryState::kCancelled:
          ++stats_.cancelled;
          break;
        case QueryState::kDeadlineExceeded:
          ++stats_.deadline_expired;
          break;
        default:
          break;
      }
    }
    if (degraded) ++stats_.degraded;
    UpdateOverloadLocked();
  }
  drained_.notify_all();
}

void QueryService::SchedulerLoop() {
  ThreadPool& pool = GlobalPool();

  struct Active {
    TicketPtr ticket;
    std::unique_ptr<QuerySession> session;
    TicketState::Clock::time_point admit_time;
  };
  enum class ReapWhy : uint8_t { kCancel, kDeadline, kShed };
  struct Reaped {
    TicketPtr ticket;
    ReapWhy why;
  };
  std::vector<Active> active;
  std::vector<Reaped> reap;

  for (;;) {
    // Collect this tick's admissions (and notice shutdown). The wait
    // predicate reads `active`, but that vector is only ever mutated by
    // this thread, so the read is race-free.
    std::vector<TicketPtr> admit;
    bool shutting_down = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      NoteTickEndLocked();  // close the previous tick before blocking
      scheduler_waiting_ = true;  // submissions must notify to unpark us
      wake_.wait(lock, [&] {
        return shutdown_ || !queue_.empty() || !active.empty();
      });
      scheduler_waiting_ = false;
      tick_start_ = std::chrono::steady_clock::now();
      tick_in_progress_ = true;
      shutting_down = shutdown_;
      if (shutdown_ && queue_.empty() && active.empty()) {
        running_ = 0;
        tick_in_progress_ = false;  // the scheduler is gone, not stalled
        return;
      }
      const size_t width = std::max<size_t>(1, options_.max_concurrent);
      while (active.size() + admit.size() < width && !queue_.empty()) {
        admit.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      // Sweep the remaining queue for tickets that died waiting —
      // cancelled, deadline-expired, or queued past max_queue_wait — so
      // their waiters unblock now rather than at some future admission.
      // Precedence cancel > deadline > shed: the destructor cancels all
      // queued tickets, so shutdown outcomes stay deterministic.
      const auto sweep_now = TicketState::Clock::now();
      for (size_t i = 0; i < queue_.size();) {
        const TicketPtr& q = queue_[i];
        ReapWhy why = ReapWhy::kShed;
        bool dead = true;
        if (q->cancel.load(std::memory_order_acquire)) {
          why = ReapWhy::kCancel;
        } else if (q->deadline.expired()) {
          why = ReapWhy::kDeadline;
        } else if (options_.max_queue_wait_ms > 0.0 &&
                   std::chrono::duration<double, std::milli>(
                       sweep_now - q->submit_time)
                           .count() > options_.max_queue_wait_ms) {
          why = ReapWhy::kShed;
        } else {
          dead = false;
        }
        if (dead) {
          reap.push_back({std::move(queue_[i]), why});
          queue_.erase(queue_.begin() + static_cast<ptrdiff_t>(i));
        } else {
          ++i;
        }
      }
      UpdateOverloadLocked();  // admission + sweep just drained the queue
    }
    for (Reaped& r : reap) {
      switch (r.why) {
        case ReapWhy::kCancel:
          Retire(r.ticket, QueryState::kCancelled, Status::OK(),
                 AggregateResult{});
          break;
        case ReapWhy::kDeadline:
          Retire(r.ticket, QueryState::kDeadlineExceeded, Status::OK(),
                 AggregateResult{});
          break;
        case ReapWhy::kShed:
          Retire(r.ticket, QueryState::kFailed,
                 Status::ResourceExhausted(
                     "shed from admission queue: waited past "
                     "max_queue_wait_ms"),
                 AggregateResult{}, /*degraded=*/false,
                 /*shed_from_queue=*/true);
          break;
      }
    }
    reap.clear();

    // Fault point for the shutdown-during-tick regression test: park the
    // scheduler here so ~QueryService can run mid-tick, then re-read the
    // shutdown flag so this tick reacts to it instead of a stale snapshot
    // taken before the stall.
    if (KGAQ_FAULT_POINT("serve.scheduler.stall")) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutting_down = shutdown_;
    }
    if (shutting_down) {
      for (Active& a : active) {
        a.ticket->cancel.store(true, std::memory_order_release);
      }
    }

    // Pre-admission triage: cancelled or already-expired tickets retire
    // without ever building a session (their seeds were fixed at
    // submission, so skipping them shifts no other query's stream).
    std::vector<TicketPtr> build;
    for (TicketPtr& t : admit) {
      if (t->cancel.load(std::memory_order_acquire) || shutting_down) {
        Retire(t, QueryState::kCancelled, Status::OK(), AggregateResult{});
      } else if (t->deadline.expired()) {
        Retire(t, QueryState::kDeadlineExceeded, Status::OK(),
               AggregateResult{});
      } else {
        build.push_back(std::move(t));
      }
    }

    // Admission: build the new sessions as one parallel batch (TaskGroup's
    // helping Wait drains nested fork-join, so this is safe even when the
    // scheduler itself runs on a pool worker).
    if (!build.empty()) {
      // Admission is stamped BEFORE the session builds: queue_ms is pure
      // queue wait, and a query's own setup cost (candidate enumeration,
      // cold walk-core builds) bills to its run_ms.
      const auto admit_time = TicketState::Clock::now();
      std::vector<std::unique_ptr<QuerySession>> built(build.size());
      std::vector<Status> build_status(build.size());
      ParallelFor(pool, build.size(), [&](size_t j) {
        const TicketPtr& t = build[j];
        EngineOptions opts = options_.engine;
        opts.seed = t->seed_used;
        const QueryRequest& req = t->request;
        if (req.error_bound.has_value()) opts.error_bound = *req.error_bound;
        if (req.confidence_level.has_value()) {
          opts.confidence_level = *req.confidence_level;
        }
        if (req.max_rounds.has_value()) opts.max_rounds = *req.max_rounds;
        ApproxEngine engine(ctx_, opts);
        auto session = engine.CreateSession(req.query);
        if (session.ok()) {
          built[j] = std::move(*session);
          built[j]->SetStopControl(&t->cancel, t->deadline);
          built[j]->BeginRun(opts.error_bound);
        } else {
          build_status[j] = session.status();
        }
      });
      for (size_t j = 0; j < build.size(); ++j) {
        if (built[j] == nullptr) {
          Retire(build[j], QueryState::kFailed, build_status[j],
                 AggregateResult{});
          continue;
        }
        {
          std::lock_guard<std::mutex> lock(build[j]->mu);
          build[j]->state = QueryState::kRunning;
          build[j]->queue_ms = std::chrono::duration<double, std::milli>(
                                   admit_time - build[j]->submit_time)
                                   .count();
        }
        active.push_back(
            {std::move(build[j]), std::move(built[j]), admit_time});
      }
      std::lock_guard<std::mutex> lock(mu_);
      running_ = active.size();
    }

    if (active.empty()) continue;

    // Under Shedding, ask every in-flight session that already holds at
    // least one completed round to retire with its partial estimate at
    // the next round boundary. Zero-round sessions are left to finish a
    // first round so no admitted query ever returns without an answer.
    bool shedding = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      shedding = overload_ == OverloadState::kShedding;
    }
    if (shedding) {
      for (Active& a : active) {
        if (a.session->rounds_completed() >= 1) a.session->RequestShed();
      }
    }

    // One scheduling tick: every unfinished session advances exactly one
    // Algorithm-2 round, fanned out as a TaskGroup batch over the pool.
    // Sessions are fully independent (own Rng, own sample) and context
    // caches are synchronized memo tables over pure functions, so the
    // interleaving affects wall-clock only — per-query results stay
    // bitwise-identical to solo runs with the same seed. StepRound itself
    // re-checks each session's cancel flag and deadline before drawing.
    ParallelFor(pool, active.size(), [&](size_t a) {
      if (KGAQ_FAULT_POINT("serve.round.slow")) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      active[a].session->StepRound();
    });

    // Retire finished sessions; their slots free up for the next tick's
    // admission. running_ is updated BEFORE the retirements: Retire on
    // the last outstanding ticket wakes Drain(), and a drainer's stats()
    // snapshot must not see the retired sessions still counted running.
    size_t kept = 0;
    std::vector<Active> finished;
    for (Active& a : active) {
      if (!a.session->run_finished()) {
        active[kept++] = std::move(a);
      } else {
        finished.push_back(std::move(a));
      }
    }
    active.resize(kept);
    {
      std::lock_guard<std::mutex> lock(mu_);
      running_ = active.size();
    }
    for (Active& a : finished) {
      AggregateResult result = a.session->FinishRun();
      QueryState state = QueryState::kDone;
      bool degraded = false;
      switch (a.session->stop_cause()) {
        case StopCause::kCancelled:
          state = QueryState::kCancelled;
          break;
        case StopCause::kDeadlineExceeded:
          state = QueryState::kDeadlineExceeded;
          // A deadline that fired mid-run still hands back everything the
          // rounds so far earned; only 0-round expiries return empty.
          degraded = result.rounds >= 1;
          break;
        case StopCause::kShed:
          // Shed sessions complete with a partial answer: state kDone,
          // degraded flag set, error_bound rewritten to the achieved
          // bound in Retire.
          degraded = true;
          break;
        case StopCause::kShardLost:
          // Only federated coordinator sessions can lose a shard; a
          // QueryService session never installs a RemoteEvaluator. Treated
          // like shed if it ever fired: partial answer, degraded.
          degraded = result.rounds >= 1;
          if (result.rounds == 0) state = QueryState::kFailed;
          break;
        case StopCause::kNone:
          break;
      }
      // Critical memory pressure declined this session's cache builds:
      // it ran on ephemeral structures (identical estimate, nothing
      // cached for successors) — a degraded completion, same as a shed
      // run. Never fires for an ungoverned context.
      if (a.session->cache_builds_shed() && result.rounds >= 1) {
        degraded = true;
      }
      const double run_ms = std::chrono::duration<double, std::milli>(
                                TicketState::Clock::now() - a.admit_time)
                                .count();
      {
        std::lock_guard<std::mutex> lock(a.ticket->mu);
        a.ticket->run_ms = run_ms;
      }
      Retire(a.ticket, state, Status::OK(), std::move(result), degraded);
    }
  }
}

// ---------------------------------------------------- legacy wrapper API

size_t QueryService::Submit(AggregateQuery query) {
  QueryRequest request;
  request.query = std::move(query);
  QueryTicket ticket = SubmitAsync(std::move(request));
  std::lock_guard<std::mutex> lock(mu_);
  legacy_tickets_.push_back(ticket.state_);
  return legacy_tickets_.size() - 1;
}

const std::vector<Result<AggregateResult>>& QueryService::RunAll() {
  // Snapshot the tickets to wait on without holding the service lock
  // across the (potentially long) waits.
  std::vector<TicketPtr> pending;
  size_t already = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    already = legacy_results_.size();
    pending.assign(legacy_tickets_.begin() + already,
                   legacy_tickets_.end());
  }
  std::vector<Result<AggregateResult>> fresh;
  fresh.reserve(pending.size());
  for (const TicketPtr& t : pending) {
    QueryResponse resp = QueryTicket(t).Wait();
    switch (resp.state) {
      case QueryState::kDone:
        fresh.push_back(std::move(resp.result));
        break;
      case QueryState::kFailed:
        fresh.push_back(std::move(resp.status));
        break;
      case QueryState::kCancelled:
        fresh.push_back(Status::FailedPrecondition(
            "query cancelled before completion"));
        break;
      case QueryState::kDeadlineExceeded:
        fresh.push_back(Status::FailedPrecondition(
            "query deadline expired before completion"));
        break;
      default:
        fresh.push_back(Status::Internal("query not yet run"));
        break;
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  // A concurrent RunAll may have materialized some of `pending` already;
  // append only the tail this call still owns.
  for (size_t i = legacy_results_.size() - already; i < fresh.size(); ++i) {
    legacy_results_.push_back(std::move(fresh[i]));
  }
  return legacy_results_;
}

std::vector<Result<AggregateResult>> QueryService::RunBatch(
    std::shared_ptr<const EngineContext> context,
    const std::vector<AggregateQuery>& queries, ServiceOptions options) {
  QueryService service(std::move(context), options);
  for (const AggregateQuery& q : queries) service.Submit(q);
  service.RunAll();
  return std::move(service.legacy_results_);  // service is dying; steal
}

}  // namespace kgaq
