#include "serve/query_service.h"

#include <algorithm>
#include <utility>

#include "common/thread_pool.h"

namespace kgaq {

QueryService::QueryService(std::shared_ptr<const EngineContext> context,
                           ServiceOptions options)
    : ctx_(std::move(context)), options_(options) {}

uint64_t QueryService::QuerySeed(uint64_t base_seed, size_t index) {
  // splitmix64 over (base, index): well-separated per-query streams that
  // any solo run can reproduce from the same pair.
  uint64_t z = base_seed + 0x9E3779B97F4A7C15ULL * (index + 1);
  z ^= z >> 30;
  z *= 0xBF58476D1CE4E5B9ULL;
  z ^= z >> 27;
  z *= 0x94D049BB133111EBULL;
  z ^= z >> 31;
  return z;
}

size_t QueryService::Submit(AggregateQuery query) {
  queries_.push_back(std::move(query));
  return queries_.size() - 1;
}

const std::vector<Result<AggregateResult>>& QueryService::RunAll() {
  ThreadPool& pool = GlobalPool();
  while (results_.size() < queries_.size()) {
    results_.push_back(Status::Internal("query not yet run"));
  }

  struct Active {
    size_t index = 0;
    std::unique_ptr<QuerySession> session;
  };
  std::vector<Active> active;
  const size_t width = std::max<size_t>(1, options_.max_concurrent);
  size_t next = num_completed_;

  while (next < queries_.size() || !active.empty()) {
    // Admission: fill the free slots, building the new sessions as one
    // parallel batch (ParallelFor degrades to inline execution when the
    // service itself runs on a pool worker, so nesting cannot deadlock).
    if (active.size() < width && next < queries_.size()) {
      std::vector<size_t> admit;
      while (active.size() + admit.size() < width &&
             next < queries_.size()) {
        admit.push_back(next++);
      }
      std::vector<std::unique_ptr<QuerySession>> built(admit.size());
      std::vector<Status> build_status(admit.size());
      ParallelFor(pool, admit.size(), [&](size_t j) {
        const size_t i = admit[j];
        EngineOptions opts = options_.engine;
        opts.seed = QuerySeed(options_.base_seed, i);
        ApproxEngine engine(ctx_, opts);
        auto session = engine.CreateSession(queries_[i]);
        if (session.ok()) {
          built[j] = std::move(*session);
        } else {
          build_status[j] = session.status();
        }
      });
      for (size_t j = 0; j < admit.size(); ++j) {
        if (built[j] != nullptr) {
          built[j]->BeginRun(options_.engine.error_bound);
          active.push_back({admit[j], std::move(built[j])});
        } else {
          results_[admit[j]] = build_status[j];
        }
      }
    }

    // One scheduling tick: every unfinished session advances exactly one
    // Algorithm-2 round, fanned out as a TaskGroup batch over the pool.
    // Sessions are fully independent (own Rng, own sample) and context
    // caches are synchronized memo tables over pure functions, so the
    // interleaving affects wall-clock only — per-query results stay
    // bitwise-identical to solo runs with the same seed.
    ParallelFor(pool, active.size(),
                [&](size_t a) { active[a].session->StepRound(); });

    // Retire finished sessions; their slots free up for the next tick's
    // admission.
    size_t kept = 0;
    for (auto& a : active) {
      if (a.session->run_finished()) {
        results_[a.index] = a.session->FinishRun();
      } else {
        active[kept++] = std::move(a);
      }
    }
    active.resize(kept);
  }

  num_completed_ = queries_.size();
  return results_;
}

std::vector<Result<AggregateResult>> QueryService::RunBatch(
    std::shared_ptr<const EngineContext> context,
    const std::vector<AggregateQuery>& queries, ServiceOptions options) {
  QueryService service(std::move(context), options);
  for (const AggregateQuery& q : queries) service.Submit(q);
  service.RunAll();
  return std::move(service.results_);  // service is dying; steal, don't copy
}

}  // namespace kgaq
