#include "serve/query_service.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <utility>

#include "common/thread_pool.h"

namespace kgaq {

namespace serve_internal {

/// Shared state behind one QueryTicket: written by the scheduler, read by
/// any number of ticket copies. `cancel` is the flag QuerySession polls
/// between rounds (SetStopControl), so Cancel() needs no lock to reach a
/// running query; everything else is guarded by `mu`.
struct TicketState {
  using Clock = std::chrono::steady_clock;

  // Immutable after SubmitAsync publishes the ticket.
  uint64_t id = 0;
  uint64_t seed_used = 0;
  Deadline deadline;
  Clock::time_point submit_time;

  std::atomic<bool> cancel{false};
  /// Consumed by the scheduler at admission.
  QueryRequest request;

  mutable std::mutex mu;
  std::condition_variable cv;
  QueryState state = QueryState::kQueued;
  Status status;
  AggregateResult result;
  double queue_ms = 0.0;
  double run_ms = 0.0;

  QueryResponse Snapshot() const {
    std::lock_guard<std::mutex> lock(mu);
    QueryResponse out;
    out.id = id;
    out.state = state;
    out.status = status;
    out.result = result;
    out.seed_used = seed_used;
    out.queue_ms = queue_ms;
    out.run_ms = run_ms;
    return out;
  }
};

}  // namespace serve_internal

using serve_internal::TicketState;

const char* QueryStateToString(QueryState s) {
  switch (s) {
    case QueryState::kQueued:
      return "QUEUED";
    case QueryState::kRunning:
      return "RUNNING";
    case QueryState::kDone:
      return "DONE";
    case QueryState::kFailed:
      return "FAILED";
    case QueryState::kCancelled:
      return "CANCELLED";
    case QueryState::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

bool IsTerminalState(QueryState s) {
  return s != QueryState::kQueued && s != QueryState::kRunning;
}

// ---------------------------------------------------------------- ticket

uint64_t QueryTicket::id() const { return state_ != nullptr ? state_->id : 0; }

QueryResponse QueryTicket::Poll() const {
  if (state_ == nullptr) return QueryResponse{};
  return state_->Snapshot();
}

QueryResponse QueryTicket::Wait() const {
  if (state_ == nullptr) return QueryResponse{};
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [&] { return IsTerminalState(state_->state); });
  lock.unlock();
  return state_->Snapshot();
}

std::optional<QueryResponse> QueryTicket::WaitFor(double timeout_ms) const {
  if (state_ == nullptr) return QueryResponse{};
  std::unique_lock<std::mutex> lock(state_->mu);
  const bool terminal = state_->cv.wait_for(
      lock, std::chrono::duration<double, std::milli>(timeout_ms),
      [&] { return IsTerminalState(state_->state); });
  lock.unlock();
  if (!terminal) return std::nullopt;
  return state_->Snapshot();
}

void QueryTicket::Cancel() {
  if (state_ == nullptr) return;
  state_->cancel.store(true, std::memory_order_release);
}

// --------------------------------------------------------------- service

QueryService::QueryService(std::shared_ptr<const EngineContext> context,
                           ServiceOptions options)
    : ctx_(std::move(context)), options_(options) {}

QueryService::~QueryService() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    // Queued work is cancelled outright; the scheduler sets the cancel
    // flag on admitted sessions and drains them at their next round
    // boundary, so this join is bounded by one round per active query.
    for (const TicketPtr& t : queue_) {
      t->cancel.store(true, std::memory_order_release);
    }
    to_join = std::move(scheduler_);
  }
  wake_.notify_all();
  if (to_join.joinable()) to_join.join();
}

uint64_t QueryService::QuerySeed(uint64_t base_seed, size_t index) {
  // splitmix64 over (base, index): well-separated per-query streams that
  // any solo run can reproduce from the same pair.
  uint64_t z = base_seed + 0x9E3779B97F4A7C15ULL * (index + 1);
  z ^= z >> 30;
  z *= 0xBF58476D1CE4E5B9ULL;
  z ^= z >> 27;
  z *= 0x94D049BB133111EBULL;
  z ^= z >> 31;
  return z;
}

QueryTicket QueryService::SubmitAsync(QueryRequest request) {
  auto state = std::make_shared<TicketState>();
  state->submit_time = TicketState::Clock::now();
  state->deadline = request.deadline_ms > 0.0
                        ? Deadline::AfterMillis(request.deadline_ms)
                        : Deadline::Infinite();
  {
    std::lock_guard<std::mutex> lock(mu_);
    state->id = next_index_++;
    state->seed_used =
        request.seed.has_value()
            ? *request.seed
            : QuerySeed(options_.base_seed, static_cast<size_t>(state->id));
    state->request = std::move(request);
    queue_.push_back(state);
    ++outstanding_;
    ++stats_.submitted;
    if (!scheduler_.joinable()) {
      scheduler_ = std::thread([this] { SchedulerLoop(); });
    }
  }
  wake_.notify_all();
  return QueryTicket(std::move(state));
}

size_t QueryService::num_submitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_index_;
}

void QueryService::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drained_.wait(lock, [&] { return outstanding_ == 0; });
}

QueryService::ServiceStats QueryService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServiceStats out = stats_;
  out.queued = queue_.size();
  out.running = running_;
  return out;
}

void QueryService::Retire(const TicketPtr& t, QueryState state,
                          Status status, AggregateResult result) {
  const auto now = TicketState::Clock::now();
  {
    std::lock_guard<std::mutex> lock(t->mu);
    if (IsTerminalState(t->state)) return;  // first terminal wins
    if (t->state == QueryState::kQueued) {
      t->queue_ms = std::chrono::duration<double, std::milli>(
                        now - t->submit_time)
                        .count();
    }
    t->state = state;
    t->status = std::move(status);
    t->result = std::move(result);
  }
  t->cv.notify_all();
  {
    std::lock_guard<std::mutex> lock(mu_);
    --outstanding_;
    switch (state) {
      case QueryState::kDone:
        ++stats_.done;
        break;
      case QueryState::kFailed:
        ++stats_.failed;
        break;
      case QueryState::kCancelled:
        ++stats_.cancelled;
        break;
      case QueryState::kDeadlineExceeded:
        ++stats_.deadline_expired;
        break;
      default:
        break;
    }
  }
  drained_.notify_all();
}

void QueryService::SchedulerLoop() {
  ThreadPool& pool = GlobalPool();

  struct Active {
    TicketPtr ticket;
    std::unique_ptr<QuerySession> session;
    TicketState::Clock::time_point admit_time;
  };
  std::vector<Active> active;
  std::vector<TicketPtr> reap;

  for (;;) {
    // Collect this tick's admissions (and notice shutdown). The wait
    // predicate reads `active`, but that vector is only ever mutated by
    // this thread, so the read is race-free.
    std::vector<TicketPtr> admit;
    bool shutting_down = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_.wait(lock, [&] {
        return shutdown_ || !queue_.empty() || !active.empty();
      });
      shutting_down = shutdown_;
      if (shutdown_ && queue_.empty() && active.empty()) {
        running_ = 0;
        return;
      }
      const size_t width = std::max<size_t>(1, options_.max_concurrent);
      while (active.size() + admit.size() < width && !queue_.empty()) {
        admit.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      // Sweep the remaining queue for tickets that died waiting —
      // cancelled or deadline-expired before a slot freed up — so their
      // waiters unblock now rather than at some future admission.
      for (size_t i = 0; i < queue_.size();) {
        if (queue_[i]->cancel.load(std::memory_order_acquire) ||
            queue_[i]->deadline.expired()) {
          reap.push_back(std::move(queue_[i]));
          queue_.erase(queue_.begin() + static_cast<ptrdiff_t>(i));
        } else {
          ++i;
        }
      }
    }
    for (TicketPtr& t : reap) {
      Retire(t,
             t->cancel.load(std::memory_order_acquire)
                 ? QueryState::kCancelled
                 : QueryState::kDeadlineExceeded,
             Status::OK(), AggregateResult{});
    }
    reap.clear();
    if (shutting_down) {
      for (Active& a : active) {
        a.ticket->cancel.store(true, std::memory_order_release);
      }
    }

    // Pre-admission triage: cancelled or already-expired tickets retire
    // without ever building a session (their seeds were fixed at
    // submission, so skipping them shifts no other query's stream).
    std::vector<TicketPtr> build;
    for (TicketPtr& t : admit) {
      if (t->cancel.load(std::memory_order_acquire) || shutting_down) {
        Retire(t, QueryState::kCancelled, Status::OK(), AggregateResult{});
      } else if (t->deadline.expired()) {
        Retire(t, QueryState::kDeadlineExceeded, Status::OK(),
               AggregateResult{});
      } else {
        build.push_back(std::move(t));
      }
    }

    // Admission: build the new sessions as one parallel batch (TaskGroup's
    // helping Wait drains nested fork-join, so this is safe even when the
    // scheduler itself runs on a pool worker).
    if (!build.empty()) {
      // Admission is stamped BEFORE the session builds: queue_ms is pure
      // queue wait, and a query's own setup cost (candidate enumeration,
      // cold walk-core builds) bills to its run_ms.
      const auto admit_time = TicketState::Clock::now();
      std::vector<std::unique_ptr<QuerySession>> built(build.size());
      std::vector<Status> build_status(build.size());
      ParallelFor(pool, build.size(), [&](size_t j) {
        const TicketPtr& t = build[j];
        EngineOptions opts = options_.engine;
        opts.seed = t->seed_used;
        const QueryRequest& req = t->request;
        if (req.error_bound.has_value()) opts.error_bound = *req.error_bound;
        if (req.confidence_level.has_value()) {
          opts.confidence_level = *req.confidence_level;
        }
        if (req.max_rounds.has_value()) opts.max_rounds = *req.max_rounds;
        ApproxEngine engine(ctx_, opts);
        auto session = engine.CreateSession(req.query);
        if (session.ok()) {
          built[j] = std::move(*session);
          built[j]->SetStopControl(&t->cancel, t->deadline);
          built[j]->BeginRun(opts.error_bound);
        } else {
          build_status[j] = session.status();
        }
      });
      for (size_t j = 0; j < build.size(); ++j) {
        if (built[j] == nullptr) {
          Retire(build[j], QueryState::kFailed, build_status[j],
                 AggregateResult{});
          continue;
        }
        {
          std::lock_guard<std::mutex> lock(build[j]->mu);
          build[j]->state = QueryState::kRunning;
          build[j]->queue_ms = std::chrono::duration<double, std::milli>(
                                   admit_time - build[j]->submit_time)
                                   .count();
        }
        active.push_back(
            {std::move(build[j]), std::move(built[j]), admit_time});
      }
      std::lock_guard<std::mutex> lock(mu_);
      running_ = active.size();
    }

    if (active.empty()) continue;

    // One scheduling tick: every unfinished session advances exactly one
    // Algorithm-2 round, fanned out as a TaskGroup batch over the pool.
    // Sessions are fully independent (own Rng, own sample) and context
    // caches are synchronized memo tables over pure functions, so the
    // interleaving affects wall-clock only — per-query results stay
    // bitwise-identical to solo runs with the same seed. StepRound itself
    // re-checks each session's cancel flag and deadline before drawing.
    ParallelFor(pool, active.size(),
                [&](size_t a) { active[a].session->StepRound(); });

    // Retire finished sessions; their slots free up for the next tick's
    // admission.
    size_t kept = 0;
    for (Active& a : active) {
      if (!a.session->run_finished()) {
        active[kept++] = std::move(a);
        continue;
      }
      AggregateResult result = a.session->FinishRun();
      QueryState state = QueryState::kDone;
      switch (a.session->stop_cause()) {
        case StopCause::kCancelled:
          state = QueryState::kCancelled;
          break;
        case StopCause::kDeadlineExceeded:
          state = QueryState::kDeadlineExceeded;
          break;
        case StopCause::kNone:
          break;
      }
      const double run_ms = std::chrono::duration<double, std::milli>(
                                TicketState::Clock::now() - a.admit_time)
                                .count();
      {
        std::lock_guard<std::mutex> lock(a.ticket->mu);
        a.ticket->run_ms = run_ms;
      }
      Retire(a.ticket, state, Status::OK(), std::move(result));
    }
    active.resize(kept);
    {
      std::lock_guard<std::mutex> lock(mu_);
      running_ = active.size();
    }
  }
}

// ---------------------------------------------------- legacy wrapper API

size_t QueryService::Submit(AggregateQuery query) {
  QueryRequest request;
  request.query = std::move(query);
  QueryTicket ticket = SubmitAsync(std::move(request));
  std::lock_guard<std::mutex> lock(mu_);
  legacy_tickets_.push_back(ticket.state_);
  return legacy_tickets_.size() - 1;
}

const std::vector<Result<AggregateResult>>& QueryService::RunAll() {
  // Snapshot the tickets to wait on without holding the service lock
  // across the (potentially long) waits.
  std::vector<TicketPtr> pending;
  size_t already = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    already = legacy_results_.size();
    pending.assign(legacy_tickets_.begin() + already,
                   legacy_tickets_.end());
  }
  std::vector<Result<AggregateResult>> fresh;
  fresh.reserve(pending.size());
  for (const TicketPtr& t : pending) {
    QueryResponse resp = QueryTicket(t).Wait();
    switch (resp.state) {
      case QueryState::kDone:
        fresh.push_back(std::move(resp.result));
        break;
      case QueryState::kFailed:
        fresh.push_back(std::move(resp.status));
        break;
      case QueryState::kCancelled:
        fresh.push_back(Status::FailedPrecondition(
            "query cancelled before completion"));
        break;
      case QueryState::kDeadlineExceeded:
        fresh.push_back(Status::FailedPrecondition(
            "query deadline expired before completion"));
        break;
      default:
        fresh.push_back(Status::Internal("query not yet run"));
        break;
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  // A concurrent RunAll may have materialized some of `pending` already;
  // append only the tail this call still owns.
  for (size_t i = legacy_results_.size() - already; i < fresh.size(); ++i) {
    legacy_results_.push_back(std::move(fresh[i]));
  }
  return legacy_results_;
}

std::vector<Result<AggregateResult>> QueryService::RunBatch(
    std::shared_ptr<const EngineContext> context,
    const std::vector<AggregateQuery>& queries, ServiceOptions options) {
  QueryService service(std::move(context), options);
  for (const AggregateQuery& q : queries) service.Submit(q);
  service.RunAll();
  return std::move(service.legacy_results_);  // service is dying; steal
}

}  // namespace kgaq
