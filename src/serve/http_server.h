#ifndef KGAQ_SERVE_HTTP_SERVER_H_
#define KGAQ_SERVE_HTTP_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "serve/query_service.h"

namespace kgaq {

/// Connection-handling model of the HTTP front-end.
///
///   kEventLoop (default): an acceptor plus N event-loop threads own all
///   sockets via epoll (poll fallback). Connections are HTTP/1.1
///   keep-alive with pipelining; requests are parsed incrementally from
///   per-connection buffers, so no thread is ever parked per connection
///   and thousands of concurrent connections cost file descriptors, not
///   threads.
///
///   kBlockingThreads: the pre-event-loop model — accept thread plus a
///   small pool of blocking handler threads, one connection per request,
///   Connection: close on every response. Kept as the measured baseline
///   for the loadgen front-door comparison (examples/loadgen.cpp) and as
///   a conservative fallback.
enum class ServerModel : uint8_t { kEventLoop, kBlockingThreads };

/// Knobs of the HTTP front-end. Defaults bind an ephemeral loopback
/// port — ask `port()` after Start() for the one the kernel picked.
struct HttpServerOptions {
  std::string bind_address = "127.0.0.1";
  uint16_t port = 0;  ///< 0: ephemeral
  /// Listen backlog. A keep-alive front door sees connection bursts only
  /// at client start-up, but those bursts can be thousands deep.
  int backlog = 128;
  ServerModel model = ServerModel::kEventLoop;

  // --- event-loop model ---------------------------------------------
  /// Event-loop threads sharing the connection population (round-robin
  /// assignment at accept; a connection lives on one loop for life, so
  /// its state needs no locks).
  size_t event_threads = 2;
  /// Close a connection after this many requests (0 = unlimited). The
  /// final response carries `Connection: close`.
  size_t max_keepalive_requests = 0;
  /// Reap keep-alive connections idle (no partial request buffered)
  /// longer than this. Idle reaping closes silently — the client simply
  /// reconnects; a connection stalled MID-request is instead answered
  /// 408 after `connection_deadline_ms` (slow-loris defense, now driven
  /// by loop timers instead of per-socket timeouts). 0 disables.
  double idle_timeout_ms = 5000.0;
  /// A request head (everything before the blank line) larger than this
  /// answers 431 Request Header Fields Too Large and closes.
  size_t max_header_bytes = 16 << 10;
  /// Debug/portability escape hatch: use the poll(2) backend even where
  /// epoll is available (non-Linux builds always use poll).
  bool force_poll_backend = false;

  // --- blocking model (and shared limits) ---------------------------
  /// Handler threads draining accepted connections (kBlockingThreads
  /// only); requests are tiny, the heavy lifting stays on the query
  /// scheduler, so a handful suffices.
  size_t num_handler_threads = 4;
  /// Reject request bodies beyond this size (413).
  size_t max_request_bytes = 1 << 20;
  /// Per-recv socket read timeout (kBlockingThreads only).
  double read_timeout_ms = 5000.0;
  /// Per-send socket write timeout (kBlockingThreads only).
  double write_timeout_ms = 5000.0;
  /// Wall-clock budget for receiving one full request. Defeats
  /// slow-loris clients that trickle one byte at a time: exceeding it
  /// answers 408 and closes. Under kBlockingThreads this bounds the
  /// whole connection (read + dispatch + write), as before.
  double connection_deadline_ms = 15000.0;
  /// The /result registry keeps at most this many tickets; beyond it the
  /// oldest submissions are dropped (their ids answer 404) so a
  /// long-lived server's memory stays bounded. Fetch results promptly or
  /// raise the cap.
  size_t max_tracked_tickets = 4096;
};

/// A minimal dependency-free HTTP/1.1 front-end over QueryService — the
/// path a query takes from wire bytes to AggregateResult:
///
///   POST /query            body: textual query (query/query_text.h);
///                          optional URL params eb, conf, seed,
///                          max_rounds, deadline_ms override the
///                          service's engine defaults per query.
///                          -> 202 {"id":N,"state":"QUEUED",...}
///   GET  /result/<id>      -> 200 with state; terminal responses carry
///                          v_hat, moe, satisfied, rounds, draws, the
///                          seed used and queue/run timings. An optional
///                          ?wait=<ms> long-polls: the response is
///                          deferred until the query retires (completions
///                          are pushed to the owning event loop through
///                          an eventfd wakeup — no thread parks) or the
///                          wait expires, which answers with the live
///                          non-terminal snapshot.
///   GET|POST /cancel/<id>  cooperative cancel -> 200 with state.
///   GET  /healthz          -> 200 "ok" (Healthy), 200 "saturated"
///                          (Saturated), 503 "shedding" + Retry-After
///                          (Shedding) — load balancers can drain a
///                          shedding replica without parsing JSON.
///   GET  /stats            service counters (incl. overload state and
///                          retry_after_ms), a `server` object (open
///                          connections, keep-alive reuse, requests
///                          parsed, event-loop wakeups, per-loop queue
///                          depths) + EngineContext cache entries /
///                          approximate resident bytes.
///
/// Under the default event-loop model connections are keep-alive:
/// responses carry `Connection: keep-alive` and the socket serves any
/// number of requests (HttpServerOptions::max_keepalive_requests caps
/// it), including pipelined requests parsed back-to-back from one read.
/// All POST /query submissions that complete parsing within one loop
/// drain cycle are submitted to the QueryService as ONE admission wave
/// (QueryService::SubmitBatch), so a thousand connections submitting at
/// once cost one scheduler wakeup, not a thousand.
///
/// Overload: when the service rejects a submit (bounded queue full or
/// Shedding), POST /query answers 429 Too Many Requests — 503 while
/// shutting down — with a Retry-After header derived from the observed
/// queue drain rate. Clients honoring it (see serve/http_client.h)
/// converge instead of hammering a saturated replica.
///
/// The server owns the acceptor and event-loop (or handler) threads
/// only; queries run on the service's scheduler, so a slow query never
/// blocks the front-end. The service must outlive the server.
class HttpServer {
 public:
  explicit HttpServer(QueryService& service, HttpServerOptions options = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and spawns the accept + event-loop (or handler)
  /// threads.
  Status Start();

  /// Stops accepting, joins every thread, closes every socket. Idempotent.
  void Stop();

  /// The bound port (resolved for ephemeral binds); 0 before Start().
  uint16_t port() const { return port_; }

  struct Stats {
    uint64_t requests = 0;      ///< responses generated (any status)
    uint64_t bad_requests = 0;  ///< 4xx responses
    // --- event-loop model front-door counters -----------------------
    uint64_t connections_accepted = 0;
    size_t open_connections = 0;  ///< currently owned by the loops
    /// Requests served on a connection beyond its first — the keep-alive
    /// win. reuse / requests_parsed ~ 1 means churn is gone.
    uint64_t keepalive_reuses = 0;
    uint64_t requests_parsed = 0;  ///< complete requests framed
    uint64_t loop_wakeups = 0;     ///< poller returns with ready events
    /// Per-loop pending cross-thread work (new fds + long-poll
    /// completions not yet drained) — the per-stage queue-depth probe.
    std::vector<size_t> loop_queue_depths;
    std::vector<size_t> loop_connections;  ///< per-loop open connections
  };
  Stats stats() const;

  /// Extension seam for subsystems mounting extra routes on this front
  /// door (the shard RPC endpoints, shard/channel.h). Dispatch consults
  /// the handler after the built-in routes and before the 404
  /// fallthrough; returning a (status, body) pair answers the request
  /// (body goes out as text/plain), nullopt falls through to 404. The
  /// handler runs inline on event-loop (or handler) threads, so it must
  /// not block on this server's own routes. Install before Start();
  /// installation is not synchronized against in-flight requests.
  using ExtraHandler = std::function<std::optional<std::pair<int, std::string>>(
      const std::string& method, const std::string& path,
      const std::string& body)>;
  void SetExtraHandler(ExtraHandler handler) {
    extra_handler_ = std::move(handler);
  }

  /// Splices one extra top-level member into the GET /stats JSON object.
  /// The fn returns a complete `"key":{...}` fragment (or "" for none)
  /// and must be thread-safe — it runs inline on event-loop (or handler)
  /// threads. Used by the shard tier to surface breaker/failover/hedge
  /// counters (RenderShardTierJson, shard/coordinator.h) on the same
  /// /stats the flat service already serves. Install before Start().
  using StatsAugmenter = std::function<std::string()>;
  void SetStatsAugmenter(StatsAugmenter fn) {
    stats_augmenter_ = std::move(fn);
  }

  /// Appends a suffix to every /healthz body (e.g. " shards:degraded"
  /// when a replica set is running below full strength; "" for nothing).
  /// Same threading rules as the stats augmenter; the suffix never
  /// changes the status code — replica degradation is a capacity signal,
  /// not unavailability.
  using HealthAugmenter = std::function<std::string()>;
  void SetHealthAugmenter(HealthAugmenter fn) {
    health_augmenter_ = std::move(fn);
  }

 private:
  class EventLoop;

  // --- blocking model ------------------------------------------------
  void AcceptLoopBlocking(int listen_fd);
  void HandlerLoop();
  void HandleConnection(int fd);

  // --- event-loop model ----------------------------------------------
  void AcceptLoopEvented(int listen_fd);

  // --- shared dispatch ------------------------------------------------
  /// Everything needed to finish a POST /query after parsing: either the
  /// ready-to-send error response (parse/param failure) or the validated
  /// request plus its canonical echo, to be submitted — possibly as part
  /// of a batch — and finished by FinishSubmit.
  struct PreparedSubmit {
    bool ok = false;
    std::string error_response;  ///< complete response when !ok
    QueryRequest request;
    std::string canonical;
  };
  PreparedSubmit PrepareSubmit(const std::string& query_string,
                               const std::string& body);
  std::string FinishSubmit(const PreparedSubmit& prep, QueryTicket ticket,
                           bool keep_alive);
  /// Routes everything except the deferred paths (batched /query,
  /// long-poll /result) — and those too under kBlockingThreads, where
  /// blocking inline is fine.
  std::string Dispatch(const std::string& method, const std::string& target,
                       const std::string& body, bool keep_alive);
  /// Registry lookup; nullopt for unknown/evicted ids.
  std::optional<QueryTicket> FindTicket(const std::string& id_text);
  void RegisterTicket(const QueryTicket& ticket);

  QueryService& service_;
  HttpServerOptions options_;
  ExtraHandler extra_handler_;
  StatsAugmenter stats_augmenter_;
  HealthAugmenter health_augmenter_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::vector<std::thread> handlers_;
  std::vector<std::unique_ptr<EventLoop>> loops_;

  std::mutex conn_mu_;
  std::condition_variable conn_available_;
  std::deque<int> connections_;

  mutable std::mutex tickets_mu_;
  std::unordered_map<uint64_t, QueryTicket> tickets_;
  std::deque<uint64_t> ticket_order_;  ///< insertion order, for eviction

  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> bad_requests_{0};
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> keepalive_reuses_{0};
  std::atomic<uint64_t> requests_parsed_{0};
};

/// One HTTP response as the clients below parse it.
struct HttpResponse {
  int status_code = 0;
  std::string body;
  /// Parsed Retry-After header (seconds); 0 when absent. 429/503
  /// responses from HttpServer carry it so retrying clients can pace
  /// themselves to the server's drain rate.
  double retry_after_s = 0.0;
};

/// A blocking HTTP/1.1 client connection that speaks keep-alive: one
/// socket, any number of sequential RoundTrip calls, responses framed by
/// Content-Length (read-until-close only when the server says
/// `Connection: close` without a length). This is the transport under
/// HttpFetch, RetryingHttpClient's per-host connection pool, and the
/// loadgen/loopback tests. Not thread-safe; one thread per connection.
class HttpClientConnection {
 public:
  HttpClientConnection() = default;
  ~HttpClientConnection();
  HttpClientConnection(HttpClientConnection&& other) noexcept;
  HttpClientConnection& operator=(HttpClientConnection&& other) noexcept;
  HttpClientConnection(const HttpClientConnection&) = delete;
  HttpClientConnection& operator=(const HttpClientConnection&) = delete;

  /// Connects (numeric IPv4 only). kUnavailable on failure — no request
  /// bytes were sent, always safe to retry.
  Status Connect(const std::string& host, uint16_t port);
  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Bounds every subsequent socket operation (connect/send/recv) via
  /// SO_SNDTIMEO/SO_RCVTIMEO. Per-SYSCALL, not per-round-trip: a server
  /// trickling bytes can stretch a round trip past the nominal budget,
  /// but a dead or hung peer fails within one timeout. <= 0, NaN or
  /// +inf clears the bound (blocking forever, the historical behavior);
  /// sub-millisecond values round up to 1 ms (a zero timeval means
  /// "no timeout" to the kernel). Survives reconnects until reset. A
  /// timed-out operation surfaces from RoundTrip as kIoError
  /// ("timed out...") — the request MAY have executed, so retrying
  /// clients replay it only for idempotent methods.
  void SetTimeoutMs(double ms);

  /// Sends one request and reads one response. `keep_alive` picks the
  /// Connection header; after a `Connection: close` response (or
  /// keep_alive=false) the socket is closed and Connect must be called
  /// again. Error taxonomy, which RetryingHttpClient's replay rules rely
  /// on:
  ///   - kUnavailable: it is certain the server did no work — connect
  ///     failed, or a REUSED connection died before yielding a single
  ///     response byte (the server reaped it while idle; raced sends
  ///     land on a dead socket). Safe to retry for any method.
  ///   - kIoError: a FRESH connection died mid-flight — the request may
  ///     have executed. Retried only for idempotent methods.
  Result<HttpResponse> RoundTrip(const std::string& method,
                                 const std::string& target,
                                 const std::string& body = "",
                                 bool keep_alive = true);

  /// Requests completed on this transport connection since Connect.
  uint64_t requests_sent() const { return requests_sent_; }

 private:
  /// Applies the stored timeout to `fd` (0 clears it).
  void ApplyTimeout(int fd) const;

  int fd_ = -1;
  std::string host_;
  uint16_t port_ = 0;
  uint64_t requests_sent_ = 0;
  double timeout_ms_ = 0.0;  ///< 0 = unbounded
};

/// One-shot convenience for tests and smoke binaries: connect, send with
/// `Connection: close`, read the response, close. Same wire behavior as
/// before keep-alive existed; use HttpClientConnection to reuse sockets.
Result<HttpResponse> HttpFetch(const std::string& host, uint16_t port,
                               const std::string& method,
                               const std::string& target,
                               const std::string& body = "");

/// Scrapes the value after `"key":` from this server's flat JSON
/// responses — a quoted string is unescaped, anything else is returned
/// as its raw token, a missing key as "". A diagnostic helper for tests
/// and smoke binaries (shared so they agree), NOT a JSON parser: it
/// scans the flat text and does not understand nesting.
std::string ExtractJsonField(const std::string& body,
                             const std::string& key);

}  // namespace kgaq

#endif  // KGAQ_SERVE_HTTP_SERVER_H_
