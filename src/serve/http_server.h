#ifndef KGAQ_SERVE_HTTP_SERVER_H_
#define KGAQ_SERVE_HTTP_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "serve/query_service.h"

namespace kgaq {

/// Knobs of the HTTP front-end. Defaults bind an ephemeral loopback
/// port — ask `port()` after Start() for the one the kernel picked.
struct HttpServerOptions {
  std::string bind_address = "127.0.0.1";
  uint16_t port = 0;  ///< 0: ephemeral
  int backlog = 16;
  /// Handler threads draining accepted connections; requests are tiny
  /// (submit / poll / cancel), the heavy lifting stays on the query
  /// scheduler, so a handful suffices.
  size_t num_handler_threads = 4;
  /// Reject request heads/bodies beyond this size (413).
  size_t max_request_bytes = 1 << 20;
  /// Per-recv socket read timeout, so a stalled client cannot pin a
  /// handler thread forever.
  double read_timeout_ms = 5000.0;
  /// Per-send socket write timeout: a client that stops draining its
  /// receive window cannot wedge a handler in send().
  double write_timeout_ms = 5000.0;
  /// Total wall-clock budget for one connection (read + dispatch + write).
  /// Defeats slow-loris clients that trickle one byte per read_timeout:
  /// each recv may beat the per-recv clock, but the connection as a whole
  /// is still bounded. Exceeding it answers 408 and closes.
  double connection_deadline_ms = 15000.0;
  /// The /result registry keeps at most this many tickets; beyond it the
  /// oldest submissions are dropped (their ids answer 404) so a
  /// long-lived server's memory stays bounded. Fetch results promptly or
  /// raise the cap.
  size_t max_tracked_tickets = 4096;
};

/// A minimal dependency-free HTTP/1.1 front-end over QueryService — the
/// path a query takes from wire bytes to AggregateResult:
///
///   POST /query            body: textual query (query/query_text.h);
///                          optional URL params eb, conf, seed,
///                          max_rounds, deadline_ms override the
///                          service's engine defaults per query.
///                          -> 202 {"id":N,"state":"QUEUED",...}
///   GET  /result/<id>      -> 200 with state; terminal responses carry
///                          v_hat, moe, satisfied, rounds, draws, the
///                          seed used and queue/run timings.
///   GET|POST /cancel/<id>  cooperative cancel -> 200 with state.
///   GET  /healthz          -> 200 "ok" (Healthy), 200 "saturated"
///                          (Saturated), 503 "shedding" + Retry-After
///                          (Shedding) — load balancers can drain a
///                          shedding replica without parsing JSON.
///   GET  /stats            service counters (incl. overload state and
///                          retry_after_ms) + EngineContext cache
///                          entries / approximate resident bytes.
///
/// Overload: when the service rejects a submit (bounded queue full or
/// Shedding), POST /query answers 429 Too Many Requests — 503 while
/// shutting down — with a Retry-After header derived from the observed
/// queue drain rate. Clients honoring it (see serve/http_client.h)
/// converge instead of hammering a saturated replica.
///
/// One connection per request (responses close), bodies are read by
/// Content-Length. The server owns accept + handler threads only;
/// queries run on the service's scheduler, so a slow query never blocks
/// the front-end. The service must outlive the server.
class HttpServer {
 public:
  explicit HttpServer(QueryService& service, HttpServerOptions options = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and spawns the accept/handler threads.
  Status Start();

  /// Stops accepting, joins every thread, closes every socket. Idempotent.
  void Stop();

  /// The bound port (resolved for ephemeral binds); 0 before Start().
  uint16_t port() const { return port_; }

  struct Stats {
    uint64_t requests = 0;
    uint64_t bad_requests = 0;  ///< 4xx responses
  };
  Stats stats() const;

 private:
  void AcceptLoop(int listen_fd);
  void HandlerLoop();
  void HandleConnection(int fd);
  std::string Dispatch(const std::string& method, const std::string& target,
                       const std::string& body);

  QueryService& service_;
  HttpServerOptions options_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::vector<std::thread> handlers_;

  std::mutex conn_mu_;
  std::condition_variable conn_available_;
  std::deque<int> connections_;

  mutable std::mutex tickets_mu_;
  std::unordered_map<uint64_t, QueryTicket> tickets_;
  std::deque<uint64_t> ticket_order_;  ///< insertion order, for eviction

  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> bad_requests_{0};
};

/// Tiny blocking HTTP/1.1 client for loopback tests and smoke binaries:
/// one request per connection, reads until the peer closes.
struct HttpResponse {
  int status_code = 0;
  std::string body;
  /// Parsed Retry-After header (seconds); 0 when absent. 429/503
  /// responses from HttpServer carry it so retrying clients can pace
  /// themselves to the server's drain rate.
  double retry_after_s = 0.0;
};
Result<HttpResponse> HttpFetch(const std::string& host, uint16_t port,
                               const std::string& method,
                               const std::string& target,
                               const std::string& body = "");

/// Scrapes the value after `"key":` from this server's flat JSON
/// responses — a quoted string is unescaped, anything else is returned
/// as its raw token, a missing key as "". A diagnostic helper for tests
/// and smoke binaries (shared so they agree), NOT a JSON parser: it
/// scans the flat text and does not understand nesting.
std::string ExtractJsonField(const std::string& body,
                             const std::string& key);

}  // namespace kgaq

#endif  // KGAQ_SERVE_HTTP_SERVER_H_
