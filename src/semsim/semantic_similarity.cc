#include "semsim/semantic_similarity.h"

#include <cmath>
#include <vector>

namespace kgaq {

double PathSimilarity(std::span<const PredicateId> predicates,
                      const PredicateSimilarityCache& sims) {
  if (predicates.empty()) return 0.0;
  // Geometric mean computed in log space for numerical stability on long
  // paths of small similarities.
  double log_acc = 0.0;
  for (PredicateId p : predicates) {
    log_acc += std::log(sims.Similarity(p));
  }
  return std::exp(log_acc / static_cast<double>(predicates.size()));
}

double PathSimilarity(const Path& path,
                      const PredicateSimilarityCache& sims) {
  std::vector<PredicateId> preds;
  preds.reserve(path.steps.size());
  for (const PathStep& s : path.steps) preds.push_back(s.predicate);
  return PathSimilarity(preds, sims);
}

}  // namespace kgaq
