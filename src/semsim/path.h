#ifndef KGAQ_SEMSIM_PATH_H_
#define KGAQ_SEMSIM_PATH_H_

#include <string>
#include <vector>

#include "kg/knowledge_graph.h"
#include "kg/types.h"

namespace kgaq {

/// One step of a path: the predicate crossed and the node reached.
struct PathStep {
  PredicateId predicate;
  NodeId node;

  bool operator==(const PathStep&) const = default;
};

/// A concrete path u_s ~> u_t in the KG — the paper's edge-to-path
/// subgraph match M(u_t) for simple queries (Definition 5).
struct Path {
  NodeId start = kInvalidId;
  std::vector<PathStep> steps;

  size_t length() const { return steps.size(); }
  bool empty() const { return steps.empty(); }
  NodeId end() const { return steps.empty() ? start : steps.back().node; }

  bool operator==(const Path&) const = default;

  /// Debug rendering: "Germany -country-> Volkswagen -assembly-> Audi_TT".
  std::string ToString(const KnowledgeGraph& g) const;
};

}  // namespace kgaq

#endif  // KGAQ_SEMSIM_PATH_H_
