#ifndef KGAQ_SEMSIM_PATH_ENUMERATOR_H_
#define KGAQ_SEMSIM_PATH_ENUMERATOR_H_

#include <functional>
#include <unordered_map>
#include <vector>

#include "embedding/predicate_similarity.h"
#include "kg/knowledge_graph.h"
#include "semsim/path.h"

namespace kgaq {

/// Exhaustive enumeration of simple paths from a source within a hop bound.
///
/// Eq. 2's geometric mean is non-monotonic in path length, so finding the
/// best subgraph match requires enumerating all (simple) paths rather than
/// a Dijkstra-style expansion — this is why SSB is expensive: O(|A| * m^n)
/// per the paper's complexity analysis. This enumerator is shared by SSB
/// (exact ground truth) and by tests validating the greedy validator.
class PathEnumerator {
 public:
  /// Visits every simple path from `source` of length in [1, max_hops].
  /// The visitor receives the node sequence (excluding source) as a Path.
  /// Returning false from the visitor aborts the enumeration.
  static void EnumerateAll(const KnowledgeGraph& g, NodeId source,
                           int max_hops,
                           const std::function<bool(const Path&)>& visitor);

  /// Computes, for every node reachable within `max_hops` simple-path steps
  /// of `source`, the maximum Eq. 2 similarity over all simple paths
  /// (Eq. 3). Returns node -> best similarity. `source` itself is excluded.
  static std::unordered_map<NodeId, double> BestSimilarities(
      const KnowledgeGraph& g, NodeId source, int max_hops,
      const PredicateSimilarityCache& sims);

  /// For every node reachable within the bound, the maximum sum of log
  /// predicate similarities over simple paths of each exact length
  /// (index 1..max_hops; unused entries are -infinity). Because log-sums
  /// enter additively into any multi-stage geometric mean, per-(node,
  /// length) maxima suffice to combine chain stages *exactly* — unlike
  /// per-node best similarity alone, which Eq. 2's length mixing can beat.
  static std::unordered_map<NodeId, std::vector<double>> BestLogSumsByLength(
      const KnowledgeGraph& g, NodeId source, int max_hops,
      const PredicateSimilarityCache& sims);

  /// Best Eq. 3 similarity and witness path from `source` to one `target`.
  /// Returns similarity 0 and an empty path if unreachable within the bound.
  struct BestMatch {
    double similarity = 0.0;
    Path path;
  };
  static BestMatch BestMatchTo(const KnowledgeGraph& g, NodeId source,
                               NodeId target, int max_hops,
                               const PredicateSimilarityCache& sims);
};

}  // namespace kgaq

#endif  // KGAQ_SEMSIM_PATH_ENUMERATOR_H_
