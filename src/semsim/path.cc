#include "semsim/path.h"

namespace kgaq {

std::string Path::ToString(const KnowledgeGraph& g) const {
  std::string out = start == kInvalidId ? "?" : g.NodeName(start);
  for (const PathStep& s : steps) {
    out += " -";
    out += g.predicates().name(s.predicate);
    out += "-> ";
    out += g.NodeName(s.node);
  }
  return out;
}

}  // namespace kgaq
