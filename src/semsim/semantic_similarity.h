#ifndef KGAQ_SEMSIM_SEMANTIC_SIMILARITY_H_
#define KGAQ_SEMSIM_SEMANTIC_SIMILARITY_H_

#include <span>

#include "embedding/predicate_similarity.h"
#include "semsim/path.h"

namespace kgaq {

/// Semantic similarity of a subgraph match to the query edge (Eq. 2):
/// the geometric mean of the predicate similarities of the path's edges.
/// An empty path has similarity 0.
double PathSimilarity(std::span<const PredicateId> predicates,
                      const PredicateSimilarityCache& sims);

/// Eq. 2 applied to a concrete Path object.
double PathSimilarity(const Path& path, const PredicateSimilarityCache& sims);

}  // namespace kgaq

#endif  // KGAQ_SEMSIM_SEMANTIC_SIMILARITY_H_
