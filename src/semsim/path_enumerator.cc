#include "semsim/path_enumerator.h"

#include <cmath>
#include <limits>

namespace kgaq {

namespace {

struct DfsState {
  const KnowledgeGraph* g;
  int max_hops;
  const std::function<bool(const Path&)>* visitor;
  Path current;
  std::vector<bool> on_path;
  bool aborted = false;
};

void Dfs(DfsState& st, NodeId u) {
  if (st.aborted) return;
  if (static_cast<int>(st.current.length()) >= st.max_hops) return;
  for (const Neighbor& nb : st.g->Neighbors(u)) {
    if (st.on_path[nb.node]) continue;  // simple paths only
    st.current.steps.push_back({nb.predicate, nb.node});
    st.on_path[nb.node] = true;
    if (!(*st.visitor)(st.current)) {
      st.aborted = true;
    } else {
      Dfs(st, nb.node);
    }
    st.on_path[nb.node] = false;
    st.current.steps.pop_back();
    if (st.aborted) return;
  }
}

}  // namespace

void PathEnumerator::EnumerateAll(
    const KnowledgeGraph& g, NodeId source, int max_hops,
    const std::function<bool(const Path&)>& visitor) {
  if (source >= g.NumNodes() || max_hops <= 0) return;
  DfsState st;
  st.g = &g;
  st.max_hops = max_hops;
  st.visitor = &visitor;
  st.current.start = source;
  st.on_path.assign(g.NumNodes(), false);
  st.on_path[source] = true;
  Dfs(st, source);
}

std::unordered_map<NodeId, double> PathEnumerator::BestSimilarities(
    const KnowledgeGraph& g, NodeId source, int max_hops,
    const PredicateSimilarityCache& sims) {
  std::unordered_map<NodeId, double> best;
  // Incremental log-sum along the DFS path avoids recomputing Eq. 2 per
  // visited prefix.
  std::vector<double> log_prefix = {0.0};
  EnumerateAll(g, source, max_hops, [&](const Path& p) {
    const size_t len = p.length();
    // The enumerator extends/retracts one step at a time, so the prefix
    // stack is kept in lockstep with the visited path length.
    log_prefix.resize(len + 1);
    log_prefix[len] =
        log_prefix[len - 1] +
        std::log(sims.Similarity(p.steps.back().predicate));
    const double sim = std::exp(log_prefix[len] / static_cast<double>(len));
    auto [it, inserted] = best.emplace(p.end(), sim);
    if (!inserted && sim > it->second) it->second = sim;
    return true;
  });
  return best;
}

std::unordered_map<NodeId, std::vector<double>>
PathEnumerator::BestLogSumsByLength(const KnowledgeGraph& g, NodeId source,
                                    int max_hops,
                                    const PredicateSimilarityCache& sims) {
  std::unordered_map<NodeId, std::vector<double>> best;
  const double kNegInf = -std::numeric_limits<double>::infinity();
  std::vector<double> log_prefix = {0.0};
  EnumerateAll(g, source, max_hops, [&](const Path& p) {
    const size_t len = p.length();
    log_prefix.resize(len + 1);
    log_prefix[len] =
        log_prefix[len - 1] +
        std::log(sims.Similarity(p.steps.back().predicate));
    auto [it, inserted] = best.try_emplace(
        p.end(), static_cast<size_t>(max_hops) + 1, kNegInf);
    auto& row = it->second;
    if (log_prefix[len] > row[len]) row[len] = log_prefix[len];
    return true;
  });
  return best;
}

PathEnumerator::BestMatch PathEnumerator::BestMatchTo(
    const KnowledgeGraph& g, NodeId source, NodeId target, int max_hops,
    const PredicateSimilarityCache& sims) {
  BestMatch out;
  std::vector<double> log_prefix = {0.0};
  EnumerateAll(g, source, max_hops, [&](const Path& p) {
    const size_t len = p.length();
    log_prefix.resize(len + 1);
    log_prefix[len] =
        log_prefix[len - 1] +
        std::log(sims.Similarity(p.steps.back().predicate));
    if (p.end() == target) {
      const double sim =
          std::exp(log_prefix[len] / static_cast<double>(len));
      if (sim > out.similarity) {
        out.similarity = sim;
        out.path = p;
      }
    }
    return true;
  });
  return out;
}

}  // namespace kgaq
