#ifndef KGAQ_SAMPLING_RANDOM_WALK_H_
#define KGAQ_SAMPLING_RANDOM_WALK_H_

#include <vector>

#include "common/random.h"
#include "sampling/transition_model.h"

namespace kgaq {

/// Outcome of the "random walk until convergence" phase (§IV-A2(2)).
struct StationaryResult {
  /// Stationary visiting probability per scope-local node; sums to 1.
  std::vector<double> pi;
  /// Number of Eq. 6 sweeps performed.
  size_t iterations = 0;
  /// L1 change of pi in the final sweep.
  double final_delta = 0.0;
  /// Whether final_delta dropped below the tolerance before max_iterations.
  bool converged = false;
};

/// Options for the convergence computation. The paper observes Nws <= 500
/// walk steps in practice; we cap the deterministic sweeps the same way.
struct StationaryOptions {
  size_t max_iterations = 500;
  double tolerance = 1e-12;
  /// Allow blocked sweeps to fan out over GlobalPool(). Results are
  /// bitwise-identical either way: each task owns a disjoint block of
  /// target nodes and block-local L1 deltas are combined in block order,
  /// so neither thread count nor scheduling affects any float.
  bool parallel = true;
  /// Minimum model arc count before the pool engages; below it, fork-join
  /// overhead outweighs the sweep. Set to 0 to force the parallel path.
  size_t min_parallel_arcs = 1 << 15;
  /// Target nodes per sweep block. Part of the numeric contract: the block
  /// decomposition fixes the delta-combine order, so the same width gives
  /// the same bits at any thread count (tests shrink it to force many
  /// blocks on small scopes).
  size_t block_width = 2048;
};

/// Computes the stationary distribution of the chain by iterating Eq. 6
/// (pi <- pi P) from pi0 = {1 at the source} until the L1 change falls
/// under tolerance. The chain is irreducible (Lemma 1) and aperiodic
/// (Lemma 2, source self-loop), so the limit exists and is unique.
///
/// Each sweep gathers over the model's incoming-arc CSR (next[t] =
/// sum_u pi[u] * p_ut) in fixed-size blocks of target nodes with the L1
/// delta fused into the block loop; early sparse iterations skip rows whose
/// in-sources all carried zero mass in the previous sweep (the walk frontier
/// has not reached them, so their gather is exactly zero). Blocks run on
/// GlobalPool() when `options.parallel` allows and the model is large
/// enough; target ranges are disjoint, so no atomics are needed and the
/// result is bitwise-deterministic.
StationaryResult ComputeStationaryDistribution(
    const TransitionModel& model, const StationaryOptions& options = {});

/// Monte-Carlo cross-check used by tests and the micro bench: walks
/// `num_steps` steps from the source and returns empirical visit
/// frequencies per scope-local node (after `burn_in` discarded steps).
std::vector<double> SimulateWalkFrequencies(const TransitionModel& model,
                                            size_t num_steps, size_t burn_in,
                                            Rng& rng,
                                            bool use_rejection_policy = true);

}  // namespace kgaq

#endif  // KGAQ_SAMPLING_RANDOM_WALK_H_
