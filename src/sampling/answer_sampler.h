#ifndef KGAQ_SAMPLING_ANSWER_SAMPLER_H_
#define KGAQ_SAMPLING_ANSWER_SAMPLER_H_

#include <span>
#include <vector>

#include "common/random.h"
#include "kg/knowledge_graph.h"
#include "sampling/alias_table.h"
#include "sampling/transition_model.h"

namespace kgaq {

/// The "continuous sampling" phase (§IV-A2(3)).
///
/// Restricts the stationary distribution pi over the scope to the candidate
/// answers A (nodes whose types intersect the target types), renormalizes
/// to pi_A, and draws i.i.d. answers from pi_A — exactly the distribution
/// the continuous walk realizes per Theorem 1 (each visited answer is kept
/// with its stationary visiting probability, non-answers are skipped).
class AnswerSampler {
 public:
  /// `pi` is indexed by scope-local node id (ComputeStationaryDistribution
  /// output). Candidates with zero stationary mass are kept with the
  /// smallest positive candidate mass so every candidate stays reachable.
  AnswerSampler(const KnowledgeGraph& g, const TransitionModel& model,
                std::span<const double> pi,
                std::span<const TypeId> target_types);

  /// Number of candidate answers |A| in scope.
  size_t NumCandidates() const { return candidates_.size(); }

  NodeId CandidateNode(size_t i) const { return candidates_[i]; }

  /// Renormalized stationary probability pi'_i of candidate `i`
  /// (Sum over candidates == 1).
  double CandidateProbability(size_t i) const { return probabilities_[i]; }

  /// pi' for a node id; 0 when `u` is not a candidate.
  double ProbabilityOf(NodeId u) const;

  /// Draws `k` i.i.d. candidate indices from pi_A (O(1) per draw via the
  /// alias table).
  std::vector<size_t> Draw(size_t k, Rng& rng) const;

  /// Allocation-free variant: draws into `out` (resized to `k`).
  void Draw(size_t k, Rng& rng, std::vector<size_t>& out) const;

  /// Literal continuous-walk variant used to validate Theorem 1: walks the
  /// chain and collects the first `k` candidate visits (post burn-in).
  std::vector<size_t> DrawByWalking(size_t k, Rng& rng,
                                    size_t burn_in = 256,
                                    size_t max_steps = 1u << 22) const;

 private:
  const TransitionModel* model_;
  std::vector<NodeId> candidates_;        // global node ids
  std::vector<double> probabilities_;     // pi' per candidate
  AliasTable alias_;                      // O(1) weighted draws over pi'
  std::vector<uint32_t> local_to_candidate_;  // scope-local -> candidate idx
};

}  // namespace kgaq

#endif  // KGAQ_SAMPLING_ANSWER_SAMPLER_H_
