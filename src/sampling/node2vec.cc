#include "sampling/node2vec.h"

#include <algorithm>

namespace kgaq {

namespace {

bool HasAnyType(const KnowledgeGraph& g, NodeId u,
                const std::vector<TypeId>& types) {
  for (TypeId t : types) {
    if (g.HasType(u, t)) return true;
  }
  return false;
}

}  // namespace

Node2VecSampler::Node2VecSampler(const KnowledgeGraph& g,
                                 const BoundedSubgraph& scope,
                                 std::vector<TypeId> target_types,
                                 const Options& options, Rng& rng) {
  // The walk only ever stands on scope nodes, so the per-step structures
  // are cached per scope-local id up front: the in-scope arc targets of
  // each node (per arc, preserving multi-edge multiplicity and neighbor
  // order, so the step distribution is unchanged) and its sorted distinct
  // neighborhood for the O(log d) distance-1 test against `prev` — the
  // walk loop then allocates nothing and rebuilds no hash sets.
  std::vector<uint32_t> local(g.NumNodes(), kInvalidId);
  for (uint32_t i = 0; i < scope.nodes.size(); ++i) {
    local[scope.nodes[i]] = i;
  }
  std::vector<std::vector<NodeId>> step_targets(scope.nodes.size());
  std::vector<std::vector<NodeId>> sorted_neighbors(scope.nodes.size());
  for (uint32_t i = 0; i < scope.nodes.size(); ++i) {
    const NodeId u = scope.nodes[i];
    auto& targets = step_targets[i];
    auto& sorted = sorted_neighbors[i];
    targets.reserve(g.Degree(u));
    sorted.reserve(g.Degree(u));
    for (const Neighbor& nb : g.Neighbors(u)) {
      if (scope.Contains(nb.node)) targets.push_back(nb.node);
      sorted.push_back(nb.node);
    }
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  }

  // Visit counters over scope nodes (dense, by local id).
  std::vector<double> visits(scope.nodes.size(), 0.0);

  NodeId prev = kInvalidId;
  NodeId current = scope.source;
  std::vector<double> weights;

  const size_t total_steps = options.burn_in + options.walk_steps;
  for (size_t step = 0; step < total_steps; ++step) {
    const auto& targets = step_targets[local[current]];
    if (targets.empty()) {
      // Dead end within the scope; restart from the source.
      prev = kInvalidId;
      current = scope.source;
      continue;
    }
    // node2vec bias: alpha = 1/p when returning to prev, 1 when the
    // candidate is a neighbor of prev (distance 1), 1/q otherwise.
    weights.clear();
    const std::vector<NodeId>* prev_sorted =
        prev == kInvalidId ? nullptr : &sorted_neighbors[local[prev]];
    for (const NodeId v : targets) {
      double alpha = 1.0;
      if (prev != kInvalidId) {
        if (v == prev) {
          alpha = 1.0 / options.p;
        } else if (!std::binary_search(prev_sorted->begin(),
                                       prev_sorted->end(), v)) {
          alpha = 1.0 / options.q;
        }
      }
      weights.push_back(alpha);
    }
    const size_t pick = rng.NextWeighted(weights);
    prev = current;
    current = targets[pick];
    if (step >= options.burn_in) {
      visits[local[current]] += 1.0;
    }
  }

  // Restrict to candidate answers and renormalize; unvisited candidates get
  // the smallest observed positive mass (same convention as AnswerSampler).
  double min_positive = 1.0;
  for (NodeId u : scope.nodes) {
    if (u == scope.source || !HasAnyType(g, u, target_types)) continue;
    candidates_.push_back(u);
  }
  std::vector<double> raw(candidates_.size(), 0.0);
  for (size_t i = 0; i < candidates_.size(); ++i) {
    const double v = visits[local[candidates_[i]]];
    if (v > 0.0) {
      raw[i] = v;
      min_positive = std::min(min_positive, v);
    }
  }
  for (double& x : raw) {
    if (x <= 0.0) x = min_positive;
  }
  double total = 0.0;
  for (double x : raw) total += x;
  probabilities_.resize(raw.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    probabilities_[i] = total > 0.0
                            ? raw[i] / total
                            : 1.0 / static_cast<double>(raw.size());
  }
  alias_ = AliasTable(probabilities_);
}

std::vector<size_t> Node2VecSampler::Draw(size_t k, Rng& rng) const {
  std::vector<size_t> out;
  alias_.Draw(k, rng, out);
  return out;
}

}  // namespace kgaq
