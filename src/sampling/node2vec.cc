#include "sampling/node2vec.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace kgaq {

namespace {

bool HasAnyType(const KnowledgeGraph& g, NodeId u,
                const std::vector<TypeId>& types) {
  for (TypeId t : types) {
    if (g.HasType(u, t)) return true;
  }
  return false;
}

}  // namespace

Node2VecSampler::Node2VecSampler(const KnowledgeGraph& g,
                                 const BoundedSubgraph& scope,
                                 std::vector<TypeId> target_types,
                                 const Options& options, Rng& rng) {
  // Visit counters over scope nodes.
  std::unordered_map<NodeId, double> visits;

  NodeId prev = kInvalidId;
  NodeId current = scope.source;
  std::vector<double> weights;
  std::vector<NodeId> targets;
  std::unordered_set<NodeId> prev_neighbors;

  const size_t total_steps = options.burn_in + options.walk_steps;
  for (size_t step = 0; step < total_steps; ++step) {
    weights.clear();
    targets.clear();
    // node2vec bias: alpha = 1/p when returning to prev, 1 when the
    // candidate is a neighbor of prev (distance 1), 1/q otherwise.
    prev_neighbors.clear();
    if (prev != kInvalidId) {
      for (const Neighbor& nb : g.Neighbors(prev)) {
        prev_neighbors.insert(nb.node);
      }
    }
    for (const Neighbor& nb : g.Neighbors(current)) {
      if (!scope.Contains(nb.node)) continue;
      double alpha = 1.0;
      if (prev != kInvalidId) {
        if (nb.node == prev) {
          alpha = 1.0 / options.p;
        } else if (!prev_neighbors.count(nb.node)) {
          alpha = 1.0 / options.q;
        }
      }
      weights.push_back(alpha);
      targets.push_back(nb.node);
    }
    if (targets.empty()) {
      // Dead end within the scope; restart from the source.
      prev = kInvalidId;
      current = scope.source;
      continue;
    }
    const size_t pick = rng.NextWeighted(weights);
    prev = current;
    current = targets[pick];
    if (step >= options.burn_in) {
      visits[current] += 1.0;
    }
  }

  // Restrict to candidate answers and renormalize; unvisited candidates get
  // the smallest observed positive mass (same convention as AnswerSampler).
  double min_positive = 1.0;
  for (NodeId u : scope.nodes) {
    if (u == scope.source || !HasAnyType(g, u, target_types)) continue;
    candidates_.push_back(u);
  }
  std::vector<double> raw(candidates_.size(), 0.0);
  for (size_t i = 0; i < candidates_.size(); ++i) {
    auto it = visits.find(candidates_[i]);
    if (it != visits.end() && it->second > 0.0) {
      raw[i] = it->second;
      min_positive = std::min(min_positive, it->second);
    }
  }
  for (double& x : raw) {
    if (x <= 0.0) x = min_positive;
  }
  double total = 0.0;
  for (double x : raw) total += x;
  probabilities_.resize(raw.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    probabilities_[i] = total > 0.0
                            ? raw[i] / total
                            : 1.0 / static_cast<double>(raw.size());
  }
  alias_ = AliasTable(probabilities_);
}

std::vector<size_t> Node2VecSampler::Draw(size_t k, Rng& rng) const {
  std::vector<size_t> out;
  alias_.Draw(k, rng, out);
  return out;
}

}  // namespace kgaq
