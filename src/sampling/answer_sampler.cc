#include "sampling/answer_sampler.h"

#include <algorithm>

namespace kgaq {

AnswerSampler::AnswerSampler(const KnowledgeGraph& g,
                             const TransitionModel& model,
                             std::span<const double> pi,
                             std::span<const TypeId> target_types)
    : model_(&model) {
  const size_t n = model.NumScopeNodes();
  local_to_candidate_.assign(n, kInvalidId);

  double min_positive = 1.0;
  std::vector<double> raw;
  for (size_t local = 0; local < n; ++local) {
    const NodeId u = model.GlobalId(local);
    bool is_candidate = false;
    for (TypeId t : target_types) {
      if (g.HasType(u, t)) {
        is_candidate = true;
        break;
      }
    }
    // The source node is never its own answer.
    if (local == model.SourceLocal()) is_candidate = false;
    if (!is_candidate) continue;
    local_to_candidate_[local] = static_cast<uint32_t>(candidates_.size());
    candidates_.push_back(u);
    raw.push_back(pi[local]);
    if (pi[local] > 0.0) min_positive = std::min(min_positive, pi[local]);
  }

  // Zero-mass candidates (possible before full convergence) get the
  // smallest observed positive mass so they remain sampleable.
  for (double& p : raw) {
    if (p <= 0.0) p = min_positive;
  }
  double total = 0.0;
  for (double p : raw) total += p;
  probabilities_.resize(raw.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    probabilities_[i] = total > 0.0
                            ? raw[i] / total
                            : 1.0 / static_cast<double>(raw.size());
  }
  alias_ = AliasTable(probabilities_);
}

double AnswerSampler::ProbabilityOf(NodeId u) const {
  const uint32_t local = model_->LocalId(u);
  if (local == kInvalidId) return 0.0;
  const uint32_t c = local_to_candidate_[local];
  return c == kInvalidId ? 0.0 : probabilities_[c];
}

std::vector<size_t> AnswerSampler::Draw(size_t k, Rng& rng) const {
  std::vector<size_t> out;
  Draw(k, rng, out);
  return out;
}

void AnswerSampler::Draw(size_t k, Rng& rng,
                         std::vector<size_t>& out) const {
  alias_.Draw(k, rng, out);
}

std::vector<size_t> AnswerSampler::DrawByWalking(size_t k, Rng& rng,
                                                 size_t burn_in,
                                                 size_t max_steps) const {
  std::vector<size_t> out;
  if (candidates_.empty()) return out;
  out.reserve(k);
  size_t current = model_->SourceLocal();
  for (size_t step = 0; step < burn_in; ++step) {
    current = model_->SampleNextRejection(current, rng);
  }
  for (size_t step = 0; step < max_steps && out.size() < k; ++step) {
    current = model_->SampleNextRejection(current, rng);
    const uint32_t c = local_to_candidate_[current];
    if (c != kInvalidId) out.push_back(c);
  }
  return out;
}

}  // namespace kgaq
