#ifndef KGAQ_SAMPLING_CNARW_H_
#define KGAQ_SAMPLING_CNARW_H_

#include "kg/bfs.h"
#include "kg/knowledge_graph.h"
#include "sampling/transition_model.h"

namespace kgaq {

/// Common Neighbor Aware Random Walk (Li et al., ICDE'19) — a
/// topology-aware sampler used as the S1 ablation baseline (Fig. 5a).
///
/// CNARW biases the walker away from neighbors sharing many common
/// neighbors with the current node (they carry redundant information),
/// with arc weight w(u, v) = 1 - |N(u) ∩ N(v)| / min(|N(u)|, |N(v)|),
/// floored at a small positive value. It ignores predicate semantics
/// entirely — which is exactly the deficiency the paper's semantic-aware
/// walk fixes.
TransitionModel BuildCnarwTransitionModel(const KnowledgeGraph& g,
                                          const BoundedSubgraph& scope,
                                          double self_loop_similarity = 0.001);

/// Same, with explicit view gating: walk-only consumers (step sampling
/// without a stationary solve) can drop the incoming-arc CSR.
TransitionModel BuildCnarwTransitionModel(const KnowledgeGraph& g,
                                          const BoundedSubgraph& scope,
                                          const TransitionOptions& options);

}  // namespace kgaq

#endif  // KGAQ_SAMPLING_CNARW_H_
