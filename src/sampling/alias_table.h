#ifndef KGAQ_SAMPLING_ALIAS_TABLE_H_
#define KGAQ_SAMPLING_ALIAS_TABLE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/random.h"

namespace kgaq {

/// Builds one alias row (Vose's method) into caller-provided storage.
///
/// The builder owns only scratch worklists, reused across calls, so filling
/// a large pool of per-node rows (e.g. TransitionModel's flat per-node alias
/// structure, one row per CSR range) allocates nothing in steady state.
/// `prob[s]` is the probability that slot `s` resolves to itself rather
/// than to `alias[s]`; alias entries are row-local indices.
///
/// A row draw is then: slot = NextBounded(n); slot if NextDouble() <
/// prob[slot] else alias[slot] — O(1) regardless of the row width.
class AliasRowBuilder {
 public:
  /// Fills `prob`/`alias` (both sized `weights.size()`) from `weights`.
  /// Negative, NaN, and zero entries are treated as zero mass; if no entry
  /// carries positive mass the row falls back to uniform.
  void BuildRow(std::span<const double> weights, std::span<double> prob,
                std::span<uint32_t> alias);

 private:
  std::vector<double> scaled_;
  std::vector<uint32_t> small_, large_;
};

/// Walker alias table over a non-negative weight vector.
///
/// Construction is O(n) (Vose's stable two-worklist method); each draw is
/// O(1): one uniform slot pick plus one biased coin, independent of n.
/// This replaces the per-draw O(log n) binary search over a cumulative CDF
/// on every weighted-sampling hot path (branch draws, session draws,
/// answer extraction) — the draw cost of Algorithm 2 no longer grows with
/// the candidate-set size.
///
/// The table is immutable after construction and safe to share across
/// threads; each drawing thread brings its own Rng.
class AliasTable {
 public:
  AliasTable() = default;

  /// Builds the table from `weights`. Negative, NaN, and zero entries are
  /// treated as zero mass; if no entry carries positive mass the table
  /// falls back to uniform over all slots (mirroring Rng::NextWeighted).
  explicit AliasTable(std::span<const double> weights);

  /// Number of outcomes n (0 for an empty table).
  size_t size() const { return prob_.size(); }
  bool empty() const { return prob_.empty(); }

  /// Draws one outcome index in [0, n). Undefined on an empty table.
  size_t Draw(Rng& rng) const {
    const size_t slot = static_cast<size_t>(rng.NextBounded(prob_.size()));
    return rng.NextDouble() < prob_[slot] ? slot : alias_[slot];
  }

  /// Draws `k` outcomes into `out` (resized to exactly `k`; capacity is
  /// reused across calls so steady-state batches allocate nothing).
  /// On an empty table `out` is cleared.
  void Draw(size_t k, Rng& rng, std::vector<size_t>& out) const;

  /// Normalized probability of outcome `i` (for diagnostics/tests).
  double ProbabilityOf(size_t i) const;

 private:
  // prob_[s]: probability that slot s resolves to itself rather than to
  // alias_[s]. Every column of the table has total mass 1/n.
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
  std::vector<double> normalized_;  // input weights / total, for ProbabilityOf
};

}  // namespace kgaq

#endif  // KGAQ_SAMPLING_ALIAS_TABLE_H_
