#ifndef KGAQ_SAMPLING_TRANSITION_MODEL_H_
#define KGAQ_SAMPLING_TRANSITION_MODEL_H_

#include <functional>
#include <span>
#include <vector>

#include "common/random.h"
#include "embedding/predicate_similarity.h"
#include "kg/bfs.h"
#include "kg/knowledge_graph.h"

namespace kgaq {

/// Which derived per-arc views a TransitionModel materializes beyond the
/// outgoing CSR + alias rows (always built; they are the walk hot path).
///
/// The full set costs ~52 bytes/arc; walk-only models (pure sampling, no
/// stationary solve, no CDF baseline) get by with ~28 bytes/arc.
struct TransitionOptions {
  /// Lemma 2 self-loop similarity injected at the walk source.
  double self_loop_similarity = 0.001;
  /// Materialize the per-arc cumulative distribution behind SampleNextCdf
  /// (+8 bytes/arc). Off by default: the alias rows serve exact draws in
  /// O(1), so only the CDF-baseline benches/tests need this. Without it
  /// SampleNextCdf falls back to a linear row scan (same draws, slower).
  bool keep_cdf = false;
  /// Materialize the incoming-arc CSR (+16 bytes/arc) that the gather-based
  /// stationary solver sweeps. On by default; walk-only uses (step sampling
  /// without ComputeStationaryDistribution) can drop it — the solver then
  /// falls back to a bitwise-identical serial scatter sweep if called.
  bool build_in_csr = true;
};

/// Row-stochastic transition structure of the random walk, restricted to
/// an n-bounded subgraph scope (§IV-A2).
///
/// Nodes are renumbered to dense *local* ids (scope.nodes order, source at
/// local id 0). Arc weights come from a caller-supplied weight function;
/// the semantic-aware walk (Eq. 5) weights each arc by the predicate
/// similarity of its edge, while CNARW supplies topology-derived weights.
/// Per Lemma 2, a small self-loop is added at the source so the chain is
/// aperiodic.
///
/// Besides the outgoing CSR the model materializes two derived structures:
///  - a pooled per-node alias table (one flat prob/alias array sharing the
///    CSR offsets) making SampleNext O(1) per step instead of a binary
///    search over per-node cumulative sums; and
///  - an incoming-arc CSR (per target: the arcs reaching it, ordered by
///    source local id) that lets the stationary-distribution solver run
///    gather-based sweeps over disjoint target ranges without atomics.
class TransitionModel {
 public:
  /// Weight of one traversal arc out of node `u`; must be > 0 (Lemma 1).
  using ArcWeightFn =
      std::function<double(NodeId u, const Neighbor& neighbor)>;

  struct Arc {
    uint32_t target;     ///< Local id of the node this arc reaches.
    double probability;  ///< Normalized transition probability p_ij.
  };

  /// One incoming arc of a target node: the mirror view of Arc, used by the
  /// gather-based power iteration (next[t] = sum_u pi[u] * p_ut).
  struct InArc {
    uint32_t source;     ///< Local id of the node this arc leaves.
    double probability;  ///< Normalized transition probability p_ut.
  };

  /// Builds the semantic-aware model of Eq. 5: p_ij proportional to
  /// sim(L_G(e'), L_Q(e)).
  TransitionModel(const KnowledgeGraph& g, const BoundedSubgraph& scope,
                  const PredicateSimilarityCache& sims,
                  double self_loop_similarity = 0.001);
  TransitionModel(const KnowledgeGraph& g, const BoundedSubgraph& scope,
                  const PredicateSimilarityCache& sims,
                  const TransitionOptions& options);

  /// Builds a model with arbitrary positive arc weights (CNARW etc.).
  TransitionModel(const KnowledgeGraph& g, const BoundedSubgraph& scope,
                  const ArcWeightFn& weight_fn,
                  double self_loop_similarity = 0.001);
  TransitionModel(const KnowledgeGraph& g, const BoundedSubgraph& scope,
                  const ArcWeightFn& weight_fn,
                  const TransitionOptions& options);

  size_t NumScopeNodes() const { return globals_.size(); }

  /// Total number of arcs in the model (== incoming arcs).
  size_t NumArcs() const { return arcs_.size(); }

  /// Local id of the walk source (always 0).
  size_t SourceLocal() const { return 0; }

  NodeId GlobalId(size_t local) const { return globals_[local]; }

  /// Local id of `u` or kInvalidId when `u` is outside the scope (including
  /// NodeIds outside the graph entirely).
  uint32_t LocalId(NodeId u) const {
    return u < locals_.size() ? locals_[u] : kInvalidId;
  }

  /// Outgoing arcs (normalized probabilities summing to 1) of `local`.
  std::span<const Arc> Arcs(size_t local) const {
    return {arcs_.data() + offsets_[local],
            offsets_[local + 1] - offsets_[local]};
  }

  /// Incoming arcs of `local`, ordered by source local id — the order in
  /// which a push/scatter sweep would have accumulated into `local`, so a
  /// gather over this list is bitwise-identical to the scatter result.
  /// Empty when the model was built with TransitionOptions::build_in_csr
  /// off (check has_in_csr()).
  std::span<const InArc> InArcs(size_t local) const {
    if (in_offsets_.empty()) return {};
    return {in_arcs_.data() + in_offsets_[local],
            in_offsets_[local + 1] - in_offsets_[local]};
  }

  /// True when the incoming-arc CSR was materialized.
  bool has_in_csr() const { return !in_offsets_.empty(); }

  /// True when the per-arc cumulative distribution was materialized
  /// (TransitionOptions::keep_cdf).
  bool has_cdf() const { return !cumulative_.empty(); }

  /// Resident bytes of every materialized per-arc/per-node view; drives
  /// the ROADMAP memory audit (bytes/arc before vs after gating).
  size_t MemoryBytes() const;

  /// Draws the next node exactly from the categorical distribution of
  /// `local`'s arcs in O(1): one uniform slot pick plus one biased coin
  /// against the node's alias row (Walker/Vose), independent of degree.
  size_t SampleNext(size_t local, Rng& rng) const {
    const size_t begin = offsets_[local];
    const size_t slot = begin + rng.NextBounded(offsets_[local + 1] - begin);
    const size_t k = rng.NextDouble() < alias_prob_[slot]
                         ? slot
                         : begin + alias_index_[slot];
    return arcs_[k].target;
  }

  /// Reference draw via binary search over per-node cumulative sums — the
  /// pre-alias O(log degree) hot path, kept as the distribution baseline
  /// for tests and the micro bench. Requires TransitionOptions::keep_cdf
  /// for the O(log degree) path; without it a linear row scan over the
  /// same partial sums produces the identical draw.
  size_t SampleNextCdf(size_t local, Rng& rng) const;

  /// Draws the next node with the paper's walking-with-rejection policy:
  /// pick a uniform neighbor, accept with probability proportional to its
  /// transition weight; repeat until accepted. Distributionally equivalent
  /// to SampleNext; kept for fidelity and cross-checked in tests.
  size_t SampleNextRejection(size_t local, Rng& rng) const;

 private:
  void BuildArcs(const KnowledgeGraph& g, const BoundedSubgraph& scope,
                 const ArcWeightFn& weight_fn,
                 const TransitionOptions& options);

  std::vector<NodeId> globals_;    // local -> global
  std::vector<uint32_t> locals_;   // global -> local (kInvalidId outside)
  std::vector<size_t> offsets_;    // CSR offsets into arcs_
  std::vector<Arc> arcs_;
  std::vector<double> cumulative_;  // per-arc cumulative (keep_cdf only)
  std::vector<double> max_prob_;    // per-node max arc probability

  // Pooled per-node alias rows, sharing offsets_. alias_index_ entries are
  // row-local, so one uint32 suffices regardless of pool size.
  std::vector<double> alias_prob_;
  std::vector<uint32_t> alias_index_;

  // Incoming-arc CSR (gather view), sharing no storage with arcs_ but the
  // same total length. Empty unless TransitionOptions::build_in_csr.
  std::vector<size_t> in_offsets_;
  std::vector<InArc> in_arcs_;
};

}  // namespace kgaq

#endif  // KGAQ_SAMPLING_TRANSITION_MODEL_H_
