#ifndef KGAQ_SAMPLING_TRANSITION_MODEL_H_
#define KGAQ_SAMPLING_TRANSITION_MODEL_H_

#include <functional>
#include <span>
#include <vector>

#include "common/random.h"
#include "embedding/predicate_similarity.h"
#include "kg/bfs.h"
#include "kg/knowledge_graph.h"

namespace kgaq {

/// Row-stochastic transition structure of the random walk, restricted to
/// an n-bounded subgraph scope (§IV-A2).
///
/// Nodes are renumbered to dense *local* ids (scope.nodes order, source at
/// local id 0). Arc weights come from a caller-supplied weight function;
/// the semantic-aware walk (Eq. 5) weights each arc by the predicate
/// similarity of its edge, while CNARW supplies topology-derived weights.
/// Per Lemma 2, a small self-loop is added at the source so the chain is
/// aperiodic.
class TransitionModel {
 public:
  /// Weight of one traversal arc out of node `u`; must be > 0 (Lemma 1).
  using ArcWeightFn =
      std::function<double(NodeId u, const Neighbor& neighbor)>;

  struct Arc {
    uint32_t target;     ///< Local id of the node this arc reaches.
    double probability;  ///< Normalized transition probability p_ij.
  };

  /// Builds the semantic-aware model of Eq. 5: p_ij proportional to
  /// sim(L_G(e'), L_Q(e)).
  TransitionModel(const KnowledgeGraph& g, const BoundedSubgraph& scope,
                  const PredicateSimilarityCache& sims,
                  double self_loop_similarity = 0.001);

  /// Builds a model with arbitrary positive arc weights (CNARW etc.).
  TransitionModel(const KnowledgeGraph& g, const BoundedSubgraph& scope,
                  const ArcWeightFn& weight_fn,
                  double self_loop_similarity = 0.001);

  size_t NumScopeNodes() const { return globals_.size(); }

  /// Local id of the walk source (always 0).
  size_t SourceLocal() const { return 0; }

  NodeId GlobalId(size_t local) const { return globals_[local]; }

  /// Local id of `u` or kInvalidId when `u` is outside the scope.
  uint32_t LocalId(NodeId u) const { return locals_[u]; }

  /// Outgoing arcs (normalized probabilities summing to 1) of `local`.
  std::span<const Arc> Arcs(size_t local) const {
    return {arcs_.data() + offsets_[local],
            offsets_[local + 1] - offsets_[local]};
  }

  /// Draws the next node exactly from the categorical distribution of
  /// `local`'s arcs (binary search over per-node cumulative sums).
  size_t SampleNext(size_t local, Rng& rng) const;

  /// Draws the next node with the paper's walking-with-rejection policy:
  /// pick a uniform neighbor, accept with probability proportional to its
  /// transition weight; repeat until accepted. Distributionally equivalent
  /// to SampleNext; kept for fidelity and cross-checked in tests.
  size_t SampleNextRejection(size_t local, Rng& rng) const;

 private:
  void BuildArcs(const KnowledgeGraph& g, const BoundedSubgraph& scope,
                 const ArcWeightFn& weight_fn, double self_loop_similarity);

  std::vector<NodeId> globals_;    // local -> global
  std::vector<uint32_t> locals_;   // global -> local (kInvalidId outside)
  std::vector<size_t> offsets_;    // CSR offsets into arcs_
  std::vector<Arc> arcs_;
  std::vector<double> cumulative_;  // per-arc cumulative probability
  std::vector<double> max_prob_;    // per-node max arc probability
};

}  // namespace kgaq

#endif  // KGAQ_SAMPLING_TRANSITION_MODEL_H_
