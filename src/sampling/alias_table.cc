#include "sampling/alias_table.h"

#include <cmath>

namespace kgaq {

void AliasRowBuilder::BuildRow(std::span<const double> weights,
                               std::span<double> prob,
                               std::span<uint32_t> alias) {
  const size_t n = weights.size();
  if (n == 0) return;

  double total = 0.0;
  for (const double w : weights) {
    if (std::isfinite(w) && w > 0.0) total += w;
  }

  // Vose's method: scale to mean 1, split slots into under-/over-full
  // worklists, and repeatedly pair one of each — the under-full slot keeps
  // its own mass and borrows the remainder from the over-full one.
  scaled_.resize(n);
  small_.clear();
  large_.clear();
  for (size_t i = 0; i < n; ++i) {
    const double w = weights[i];
    const double mass = (std::isfinite(w) && w > 0.0) ? w : 0.0;
    // No positive mass anywhere: uniform fallback (every slot exactly full).
    scaled_[i] = total > 0.0 ? mass / total * static_cast<double>(n) : 1.0;
    prob[i] = 1.0;
    alias[i] = static_cast<uint32_t>(i);
    (scaled_[i] < 1.0 ? small_ : large_).push_back(static_cast<uint32_t>(i));
  }
  while (!small_.empty() && !large_.empty()) {
    const uint32_t s = small_.back();
    const uint32_t l = large_.back();
    small_.pop_back();
    large_.pop_back();
    prob[s] = scaled_[s];
    alias[s] = l;
    scaled_[l] -= 1.0 - scaled_[s];
    (scaled_[l] < 1.0 ? small_ : large_).push_back(l);
  }
  // Leftovers in either list sit at (numerically) exactly 1; their prob
  // entries were initialized to 1 already.
}

AliasTable::AliasTable(std::span<const double> weights) {
  const size_t n = weights.size();
  if (n == 0) return;

  normalized_.resize(n);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double w = weights[i];
    normalized_[i] = (std::isfinite(w) && w > 0.0) ? w : 0.0;
    total += normalized_[i];
  }
  if (total <= 0.0) {
    // No positive mass: uniform fallback.
    const double u = 1.0 / static_cast<double>(n);
    for (double& w : normalized_) w = u;
  } else {
    for (double& w : normalized_) w /= total;
  }

  prob_.resize(n);
  alias_.resize(n);
  AliasRowBuilder builder;
  // Build from the raw weights, not normalized_: BuildRow's (w/total)*n is
  // then bit-identical to the pre-builder construction, whereas summing the
  // already-normalized vector (total ~ 1.0 +- ulps) could flip a slot's
  // under/over-full classification and change fixed-seed draw streams.
  builder.BuildRow(weights, prob_, alias_);
}

void AliasTable::Draw(size_t k, Rng& rng, std::vector<size_t>& out) const {
  out.clear();
  if (prob_.empty()) return;
  out.reserve(k);
  for (size_t i = 0; i < k; ++i) out.push_back(Draw(rng));
}

double AliasTable::ProbabilityOf(size_t i) const {
  return i < normalized_.size() ? normalized_[i] : 0.0;
}

}  // namespace kgaq
