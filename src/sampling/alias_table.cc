#include "sampling/alias_table.h"

#include <cmath>

namespace kgaq {

AliasTable::AliasTable(std::span<const double> weights) {
  const size_t n = weights.size();
  if (n == 0) return;

  normalized_.resize(n);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double w = weights[i];
    normalized_[i] = (std::isfinite(w) && w > 0.0) ? w : 0.0;
    total += normalized_[i];
  }
  if (total <= 0.0) {
    // No positive mass: uniform fallback.
    const double u = 1.0 / static_cast<double>(n);
    for (double& w : normalized_) w = u;
    total = 1.0;
  } else {
    for (double& w : normalized_) w /= total;
  }

  // Vose's method: scale to mean 1, split slots into under-/over-full
  // worklists, and repeatedly pair one of each — the under-full slot keeps
  // its own mass and borrows the remainder from the over-full one.
  prob_.assign(n, 1.0);
  alias_.resize(n);
  std::vector<double> scaled(n);
  std::vector<uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = normalized_[i] * static_cast<double>(n);
    alias_[i] = static_cast<uint32_t>(i);
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    const uint32_t l = large.back();
    small.pop_back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] -= 1.0 - scaled[s];
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Leftovers in either list sit at (numerically) exactly 1.
  for (uint32_t i : small) prob_[i] = 1.0;
  for (uint32_t i : large) prob_[i] = 1.0;
}

void AliasTable::Draw(size_t k, Rng& rng, std::vector<size_t>& out) const {
  out.clear();
  if (prob_.empty()) return;
  out.reserve(k);
  for (size_t i = 0; i < k; ++i) out.push_back(Draw(rng));
}

double AliasTable::ProbabilityOf(size_t i) const {
  return i < normalized_.size() ? normalized_[i] : 0.0;
}

}  // namespace kgaq
