#include "sampling/cnarw.h"

#include <algorithm>
#include <memory>
#include <vector>

namespace kgaq {

namespace {

// Distinct-neighbor sets are materialized once as sorted vectors; the
// weight function is called once per (u, arc) during TransitionModel
// construction and intersects the two sorted lists with a linear merge —
// cache-friendly and allocation-free, unlike per-node hash sets.
class CommonNeighborOracle {
 public:
  explicit CommonNeighborOracle(const KnowledgeGraph& g) : g_(&g) {
    neighbor_sets_.resize(g.NumNodes());
  }

  double Weight(NodeId u, NodeId v) {
    const auto& nu = Set(u);
    const auto& nv = Set(v);
    size_t common = 0;
    for (size_t i = 0, j = 0; i < nu.size() && j < nv.size();) {
      if (nu[i] < nv[j]) {
        ++i;
      } else if (nv[j] < nu[i]) {
        ++j;
      } else {
        ++common;
        ++i;
        ++j;
      }
    }
    const size_t denom = std::min(nu.size(), nv.size());
    const double w =
        denom == 0 ? 1.0
                   : 1.0 - static_cast<double>(common) /
                               static_cast<double>(denom);
    return std::max(w, 0.05);
  }

 private:
  const std::vector<NodeId>& Set(NodeId u) {
    auto& s = neighbor_sets_[u];
    if (s.empty() && g_->Degree(u) > 0) {
      s.reserve(g_->Degree(u));
      for (const Neighbor& nb : g_->Neighbors(u)) s.push_back(nb.node);
      std::sort(s.begin(), s.end());
      s.erase(std::unique(s.begin(), s.end()), s.end());
    }
    return s;
  }

  const KnowledgeGraph* g_;
  std::vector<std::vector<NodeId>> neighbor_sets_;
};

}  // namespace

TransitionModel BuildCnarwTransitionModel(const KnowledgeGraph& g,
                                          const BoundedSubgraph& scope,
                                          double self_loop_similarity) {
  TransitionOptions options;
  options.self_loop_similarity = self_loop_similarity;
  return BuildCnarwTransitionModel(g, scope, options);
}

TransitionModel BuildCnarwTransitionModel(const KnowledgeGraph& g,
                                          const BoundedSubgraph& scope,
                                          const TransitionOptions& options) {
  auto oracle = std::make_shared<CommonNeighborOracle>(g);
  return TransitionModel(
      g, scope,
      [oracle](NodeId u, const Neighbor& nb) {
        return oracle->Weight(u, nb.node);
      },
      options);
}

}  // namespace kgaq
