#include "sampling/cnarw.h"

#include <algorithm>
#include <memory>
#include <unordered_set>
#include <vector>

namespace kgaq {

namespace {

// Distinct-neighbor sets are materialized once; the weight function is
// called once per (u, arc) during TransitionModel construction.
class CommonNeighborOracle {
 public:
  explicit CommonNeighborOracle(const KnowledgeGraph& g) : g_(&g) {
    neighbor_sets_.resize(g.NumNodes());
  }

  double Weight(NodeId u, NodeId v) {
    const auto& nu = Set(u);
    const auto& nv = Set(v);
    const auto& small = nu.size() <= nv.size() ? nu : nv;
    const auto& large = nu.size() <= nv.size() ? nv : nu;
    size_t common = 0;
    for (NodeId x : small) {
      if (large.count(x)) ++common;
    }
    const size_t denom = std::min(nu.size(), nv.size());
    const double w =
        denom == 0 ? 1.0
                   : 1.0 - static_cast<double>(common) /
                               static_cast<double>(denom);
    return std::max(w, 0.05);
  }

 private:
  const std::unordered_set<NodeId>& Set(NodeId u) {
    auto& s = neighbor_sets_[u];
    if (s.empty() && g_->Degree(u) > 0) {
      for (const Neighbor& nb : g_->Neighbors(u)) s.insert(nb.node);
    }
    return s;
  }

  const KnowledgeGraph* g_;
  std::vector<std::unordered_set<NodeId>> neighbor_sets_;
};

}  // namespace

TransitionModel BuildCnarwTransitionModel(const KnowledgeGraph& g,
                                          const BoundedSubgraph& scope,
                                          double self_loop_similarity) {
  auto oracle = std::make_shared<CommonNeighborOracle>(g);
  return TransitionModel(
      g, scope,
      [oracle](NodeId u, const Neighbor& nb) {
        return oracle->Weight(u, nb.node);
      },
      self_loop_similarity);
}

}  // namespace kgaq
