#include "sampling/random_walk.h"

#include <cmath>

namespace kgaq {

StationaryResult ComputeStationaryDistribution(
    const TransitionModel& model, const StationaryOptions& options) {
  const size_t n = model.NumScopeNodes();
  StationaryResult out;
  out.pi.assign(n, 0.0);
  if (n == 0) return out;
  out.pi[model.SourceLocal()] = 1.0;

  std::vector<double> next(n, 0.0);
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    for (size_t u = 0; u < n; ++u) {
      const double mass = out.pi[u];
      if (mass == 0.0) continue;
      for (const TransitionModel::Arc& a : model.Arcs(u)) {
        next[a.target] += mass * a.probability;
      }
    }
    double delta = 0.0;
    for (size_t u = 0; u < n; ++u) {
      delta += std::abs(next[u] - out.pi[u]);
    }
    out.pi.swap(next);
    out.iterations = iter + 1;
    out.final_delta = delta;
    if (delta < options.tolerance) {
      out.converged = true;
      break;
    }
  }
  return out;
}

std::vector<double> SimulateWalkFrequencies(const TransitionModel& model,
                                            size_t num_steps, size_t burn_in,
                                            Rng& rng,
                                            bool use_rejection_policy) {
  const size_t n = model.NumScopeNodes();
  std::vector<double> freq(n, 0.0);
  if (n == 0 || num_steps == 0) return freq;
  size_t current = model.SourceLocal();
  for (size_t step = 0; step < burn_in; ++step) {
    current = use_rejection_policy ? model.SampleNextRejection(current, rng)
                                   : model.SampleNext(current, rng);
  }
  for (size_t step = 0; step < num_steps; ++step) {
    current = use_rejection_policy ? model.SampleNextRejection(current, rng)
                                   : model.SampleNext(current, rng);
    freq[current] += 1.0;
  }
  for (double& f : freq) f /= static_cast<double>(num_steps);
  return freq;
}

}  // namespace kgaq
