#include "sampling/random_walk.h"

#include <algorithm>
#include <cmath>

#include "common/thread_pool.h"

namespace kgaq {

namespace {

// Gathers next[t] for t in [lo, hi) and returns the block's L1 delta and
// count of newly-active targets. `active` flags pi[u] != 0 from the
// previous sweep; while the walk frontier is still expanding, rows whose
// in-sources are all inactive gather exactly zero and are skipped.
struct BlockResult {
  double delta = 0.0;
  size_t num_active = 0;
};

BlockResult SweepBlock(const TransitionModel& model,
                       const std::vector<double>& pi,
                       std::vector<double>& next,
                       const std::vector<uint8_t>& active,
                       std::vector<uint8_t>& next_active, bool saturated,
                       size_t lo, size_t hi) {
  BlockResult out;
  for (size_t t = lo; t < hi; ++t) {
    double acc = 0.0;
    const auto in = model.InArcs(t);
    if (saturated) {
      for (const TransitionModel::InArc& a : in) {
        acc += pi[a.source] * a.probability;
      }
    } else {
      bool any = false;
      for (const TransitionModel::InArc& a : in) {
        if (active[a.source]) {
          any = true;
          break;
        }
      }
      if (any) {
        for (const TransitionModel::InArc& a : in) {
          acc += pi[a.source] * a.probability;
        }
      }
      next_active[t] = acc != 0.0;
      out.num_active += next_active[t];
    }
    next[t] = acc;
    out.delta += std::abs(acc - pi[t]);
  }
  return out;
}

// Serial push/scatter power iteration for models built without the
// incoming-arc CSR (TransitionOptions::build_in_csr off). Scatters in
// source order — the exact accumulation order of the gather view — and
// combines per-block L1 deltas in block order, so the result is
// bitwise-identical to the gather path at any thread count.
StationaryResult ComputeStationaryScatter(const TransitionModel& model,
                                          const StationaryOptions& options) {
  const size_t n = model.NumScopeNodes();
  StationaryResult out;
  out.pi.assign(n, 0.0);
  if (n == 0) return out;
  out.pi[model.SourceLocal()] = 1.0;

  const size_t block = std::max<size_t>(1, options.block_width);
  const size_t num_blocks = (n + block - 1) / block;
  std::vector<double> next(n, 0.0);
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    for (size_t u = 0; u < n; ++u) {
      const double mass = out.pi[u];
      if (mass == 0.0) continue;
      for (const TransitionModel::Arc& a : model.Arcs(u)) {
        next[a.target] += mass * a.probability;
      }
    }
    double delta = 0.0;
    for (size_t b = 0; b < num_blocks; ++b) {
      const size_t lo = b * block;
      const size_t hi = std::min(lo + block, n);
      double block_delta = 0.0;
      for (size_t t = lo; t < hi; ++t) {
        block_delta += std::abs(next[t] - out.pi[t]);
      }
      delta += block_delta;
    }
    out.pi.swap(next);
    out.iterations = iter + 1;
    out.final_delta = delta;
    if (delta < options.tolerance) {
      out.converged = true;
      break;
    }
  }
  return out;
}

}  // namespace

StationaryResult ComputeStationaryDistribution(
    const TransitionModel& model, const StationaryOptions& options) {
  if (!model.has_in_csr()) return ComputeStationaryScatter(model, options);
  const size_t n = model.NumScopeNodes();
  StationaryResult out;
  out.pi.assign(n, 0.0);
  if (n == 0) return out;
  out.pi[model.SourceLocal()] = 1.0;

  const size_t block = std::max<size_t>(1, options.block_width);
  const size_t num_blocks = (n + block - 1) / block;
  // Don't fork from a pool worker (TaskGroup::Wait now helps drain nested
  // groups, so this is a granularity choice, not a deadlock guard): chain
  // builds already parallelize at the stage-unit level, so per-unit serial
  // sweeps avoid oversubscribing the pool with tiny block tasks.
  const bool use_pool = options.parallel && num_blocks > 1 &&
                        model.NumArcs() >= options.min_parallel_arcs &&
                        !ThreadPool::OnPoolWorker() &&
                        GlobalPool().num_threads() > 1;

  std::vector<double> next(n, 0.0);
  std::vector<uint8_t> active(n, 0), next_active(n, 0);
  active[model.SourceLocal()] = 1;
  bool saturated = false;
  std::vector<BlockResult> blocks(num_blocks);

  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    auto sweep = [&](size_t b) {
      const size_t lo = b * block;
      const size_t hi = std::min(lo + block, n);
      blocks[b] = SweepBlock(model, out.pi, next, active, next_active,
                             saturated, lo, hi);
    };
    if (use_pool) {
      // Group blocks into a few strided tasks per worker: fewer queue
      // round-trips per sweep, and the grouping cannot change any result —
      // every block writes only its own slice and result slot, and the
      // combine below walks blocks in index order regardless.
      const size_t num_tasks =
          std::min(num_blocks, GlobalPool().num_threads() * 4);
      ParallelFor(GlobalPool(), num_tasks, [&](size_t task) {
        for (size_t b = task; b < num_blocks; b += num_tasks) sweep(b);
      });
    } else {
      for (size_t b = 0; b < num_blocks; ++b) sweep(b);
    }

    double delta = 0.0;
    size_t num_active = 0;
    for (const BlockResult& b : blocks) {
      delta += b.delta;
      num_active += b.num_active;
    }
    if (!saturated) {
      active.swap(next_active);
      if (num_active == n) saturated = true;  // frontier covers the scope
    }

    out.pi.swap(next);
    out.iterations = iter + 1;
    out.final_delta = delta;
    if (delta < options.tolerance) {
      out.converged = true;
      break;
    }
  }
  return out;
}

std::vector<double> SimulateWalkFrequencies(const TransitionModel& model,
                                            size_t num_steps, size_t burn_in,
                                            Rng& rng,
                                            bool use_rejection_policy) {
  const size_t n = model.NumScopeNodes();
  std::vector<double> freq(n, 0.0);
  if (n == 0 || num_steps == 0) return freq;
  size_t current = model.SourceLocal();
  for (size_t step = 0; step < burn_in; ++step) {
    current = use_rejection_policy ? model.SampleNextRejection(current, rng)
                                   : model.SampleNext(current, rng);
  }
  for (size_t step = 0; step < num_steps; ++step) {
    current = use_rejection_policy ? model.SampleNextRejection(current, rng)
                                   : model.SampleNext(current, rng);
    freq[current] += 1.0;
  }
  for (double& f : freq) f /= static_cast<double>(num_steps);
  return freq;
}

}  // namespace kgaq
