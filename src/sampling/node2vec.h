#ifndef KGAQ_SAMPLING_NODE2VEC_H_
#define KGAQ_SAMPLING_NODE2VEC_H_

#include <vector>

#include "common/random.h"
#include "kg/bfs.h"
#include "kg/knowledge_graph.h"
#include "kg/types.h"
#include "sampling/alias_table.h"

namespace kgaq {

/// Second-order node2vec random walk (Grover & Leskovec, KDD'16) restricted
/// to an n-bounded scope — the other S1 ablation baseline (Fig. 5a).
///
/// The walk biases transitions by the return parameter p and in-out
/// parameter q relative to the previous node; like CNARW it is purely
/// topological. Because the chain is second-order, there is no cheap exact
/// stationary distribution: the sampler runs the walk and reports empirical
/// visit frequencies as the answers' sampling probabilities — mirroring how
/// node2vec is used as a sampling baseline.
class Node2VecSampler {
 public:
  struct Options {
    double p = 1.0;          ///< Return parameter.
    double q = 2.0;          ///< In-out parameter (q > 1 keeps walks local).
    size_t walk_steps = 20000;
    size_t burn_in = 200;
  };

  Node2VecSampler(const KnowledgeGraph& g, const BoundedSubgraph& scope,
                  std::vector<TypeId> target_types, const Options& options,
                  Rng& rng);

  size_t NumCandidates() const { return candidates_.size(); }
  NodeId CandidateNode(size_t i) const { return candidates_[i]; }
  /// Empirical visiting probability (renormalized over candidates).
  double CandidateProbability(size_t i) const { return probabilities_[i]; }

  /// Draws `k` i.i.d. candidate indices from the empirical distribution.
  std::vector<size_t> Draw(size_t k, Rng& rng) const;

 private:
  std::vector<NodeId> candidates_;
  std::vector<double> probabilities_;
  AliasTable alias_;
};

}  // namespace kgaq

#endif  // KGAQ_SAMPLING_NODE2VEC_H_
