#include "sampling/transition_model.h"

#include <algorithm>

namespace kgaq {

TransitionModel::TransitionModel(const KnowledgeGraph& g,
                                 const BoundedSubgraph& scope,
                                 const PredicateSimilarityCache& sims,
                                 double self_loop_similarity) {
  BuildArcs(
      g, scope,
      [&sims](NodeId, const Neighbor& nb) {
        return sims.Similarity(nb.predicate);
      },
      self_loop_similarity);
}

TransitionModel::TransitionModel(const KnowledgeGraph& g,
                                 const BoundedSubgraph& scope,
                                 const ArcWeightFn& weight_fn,
                                 double self_loop_similarity) {
  BuildArcs(g, scope, weight_fn, self_loop_similarity);
}

void TransitionModel::BuildArcs(const KnowledgeGraph& g,
                                const BoundedSubgraph& scope,
                                const ArcWeightFn& weight_fn,
                                double self_loop_similarity) {
  globals_ = scope.nodes;  // BFS order; source first
  locals_.assign(g.NumNodes(), kInvalidId);
  for (uint32_t i = 0; i < globals_.size(); ++i) {
    locals_[globals_[i]] = i;
  }

  const size_t n = globals_.size();
  offsets_.assign(n + 1, 0);
  // First pass: count in-scope arcs (+1 self-loop at the source).
  for (size_t local = 0; local < n; ++local) {
    size_t count = local == 0 ? 1 : 0;
    for (const Neighbor& nb : g.Neighbors(globals_[local])) {
      if (locals_[nb.node] != kInvalidId) ++count;
    }
    offsets_[local + 1] = offsets_[local] + count;
  }
  arcs_.resize(offsets_[n]);
  cumulative_.resize(offsets_[n]);
  max_prob_.assign(n, 0.0);

  for (size_t local = 0; local < n; ++local) {
    const NodeId u = globals_[local];
    size_t cursor = offsets_[local];
    double total = 0.0;
    if (local == 0) {
      arcs_[cursor++] = {0u, self_loop_similarity};
      total += self_loop_similarity;
    }
    for (const Neighbor& nb : g.Neighbors(u)) {
      const uint32_t v = locals_[nb.node];
      if (v == kInvalidId) continue;
      double w = weight_fn(u, nb);
      if (w <= 0.0) w = 1e-12;  // Lemma 1: keep the chain irreducible.
      arcs_[cursor++] = {v, w};
      total += w;
    }
    // Normalize this row and build its cumulative distribution (Eq. 5's
    // constraint: probabilities out of u sum to one).
    double acc = 0.0;
    for (size_t k = offsets_[local]; k < offsets_[local + 1]; ++k) {
      arcs_[k].probability /= total;
      acc += arcs_[k].probability;
      cumulative_[k] = acc;
      max_prob_[local] = std::max(max_prob_[local], arcs_[k].probability);
    }
    if (offsets_[local + 1] > offsets_[local]) {
      cumulative_[offsets_[local + 1] - 1] = 1.0;  // guard rounding drift
    }
  }
}

size_t TransitionModel::SampleNext(size_t local, Rng& rng) const {
  const size_t begin = offsets_[local];
  const size_t end = offsets_[local + 1];
  const double target = rng.NextDouble();
  auto first = cumulative_.begin() + begin;
  auto last = cumulative_.begin() + end;
  auto it = std::lower_bound(first, last, target);
  if (it == last) --it;
  return arcs_[static_cast<size_t>(it - cumulative_.begin())].target;
}

size_t TransitionModel::SampleNextRejection(size_t local, Rng& rng) const {
  const size_t begin = offsets_[local];
  const size_t count = offsets_[local + 1] - begin;
  const double cap = max_prob_[local];
  // Uniform proposal, accept with probability p_ij / max_j p_ij. The
  // normalization by the row maximum keeps the acceptance rate usable on
  // high-degree nodes while preserving the target distribution.
  for (;;) {
    const size_t k = begin + rng.NextBounded(count);
    if (rng.NextDouble() * cap <= arcs_[k].probability) {
      return arcs_[k].target;
    }
  }
}

}  // namespace kgaq
