#include "sampling/transition_model.h"

#include <algorithm>

#include "sampling/alias_table.h"

namespace kgaq {

namespace {

TransitionOptions LegacyOptions(double self_loop_similarity) {
  TransitionOptions options;
  options.self_loop_similarity = self_loop_similarity;
  return options;
}

}  // namespace

TransitionModel::TransitionModel(const KnowledgeGraph& g,
                                 const BoundedSubgraph& scope,
                                 const PredicateSimilarityCache& sims,
                                 double self_loop_similarity)
    : TransitionModel(g, scope, sims, LegacyOptions(self_loop_similarity)) {}

TransitionModel::TransitionModel(const KnowledgeGraph& g,
                                 const BoundedSubgraph& scope,
                                 const PredicateSimilarityCache& sims,
                                 const TransitionOptions& options) {
  BuildArcs(
      g, scope,
      [&sims](NodeId, const Neighbor& nb) {
        return sims.Similarity(nb.predicate);
      },
      options);
}

TransitionModel::TransitionModel(const KnowledgeGraph& g,
                                 const BoundedSubgraph& scope,
                                 const ArcWeightFn& weight_fn,
                                 double self_loop_similarity)
    : TransitionModel(g, scope, weight_fn,
                      LegacyOptions(self_loop_similarity)) {}

TransitionModel::TransitionModel(const KnowledgeGraph& g,
                                 const BoundedSubgraph& scope,
                                 const ArcWeightFn& weight_fn,
                                 const TransitionOptions& options) {
  BuildArcs(g, scope, weight_fn, options);
}

void TransitionModel::BuildArcs(const KnowledgeGraph& g,
                                const BoundedSubgraph& scope,
                                const ArcWeightFn& weight_fn,
                                const TransitionOptions& options) {
  globals_ = scope.nodes;  // BFS order; source first
  locals_.assign(g.NumNodes(), kInvalidId);
  for (uint32_t i = 0; i < globals_.size(); ++i) {
    locals_[globals_[i]] = i;
  }

  const size_t n = globals_.size();
  offsets_.assign(n + 1, 0);
  // First pass: count in-scope arcs (+1 self-loop at the source).
  for (size_t local = 0; local < n; ++local) {
    size_t count = local == 0 ? 1 : 0;
    for (const Neighbor& nb : g.Neighbors(globals_[local])) {
      if (LocalId(nb.node) != kInvalidId) ++count;
    }
    offsets_[local + 1] = offsets_[local] + count;
  }
  const size_t num_arcs = offsets_[n];
  arcs_.resize(num_arcs);
  if (options.keep_cdf) cumulative_.resize(num_arcs);
  max_prob_.assign(n, 0.0);
  alias_prob_.resize(num_arcs);
  alias_index_.resize(num_arcs);
  if (options.build_in_csr) in_offsets_.assign(n + 1, 0);

  AliasRowBuilder row_builder;
  std::vector<double> row_weights;  // scratch: one row's probabilities
  for (size_t local = 0; local < n; ++local) {
    const NodeId u = globals_[local];
    size_t cursor = offsets_[local];
    double total = 0.0;
    if (local == 0) {
      arcs_[cursor++] = {0u, options.self_loop_similarity};
      total += options.self_loop_similarity;
    }
    for (const Neighbor& nb : g.Neighbors(u)) {
      const uint32_t v = LocalId(nb.node);
      if (v == kInvalidId) continue;
      double w = weight_fn(u, nb);
      if (w <= 0.0) w = 1e-12;  // Lemma 1: keep the chain irreducible.
      arcs_[cursor++] = {v, w};
      total += w;
    }
    // Normalize this row and build its cumulative distribution (Eq. 5's
    // constraint: probabilities out of u sum to one).
    const size_t begin = offsets_[local];
    const size_t end = offsets_[local + 1];
    double acc = 0.0;
    row_weights.clear();
    for (size_t k = begin; k < end; ++k) {
      arcs_[k].probability /= total;
      acc += arcs_[k].probability;
      if (options.keep_cdf) cumulative_[k] = acc;
      max_prob_[local] = std::max(max_prob_[local], arcs_[k].probability);
      row_weights.push_back(arcs_[k].probability);
      if (options.build_in_csr) {
        ++in_offsets_[arcs_[k].target + 1];  // in-degree count
      }
    }
    if (end > begin) {
      if (options.keep_cdf) cumulative_[end - 1] = 1.0;  // rounding guard
      row_builder.BuildRow(
          row_weights, std::span<double>(alias_prob_.data() + begin, end - begin),
          std::span<uint32_t>(alias_index_.data() + begin, end - begin));
    }
  }

  if (!options.build_in_csr) return;

  // Materialize the incoming-arc CSR. Rows are visited in source order, so
  // each target's in-arc list ends up sorted by source local id — a gather
  // over it accumulates in the exact order a scatter sweep would have.
  for (size_t t = 0; t < n; ++t) in_offsets_[t + 1] += in_offsets_[t];
  in_arcs_.resize(num_arcs);
  std::vector<size_t> in_cursor(in_offsets_.begin(), in_offsets_.end() - 1);
  for (size_t local = 0; local < n; ++local) {
    for (size_t k = offsets_[local]; k < offsets_[local + 1]; ++k) {
      in_arcs_[in_cursor[arcs_[k].target]++] = {static_cast<uint32_t>(local),
                                                arcs_[k].probability};
    }
  }
}

size_t TransitionModel::MemoryBytes() const {
  return globals_.capacity() * sizeof(NodeId) +
         locals_.capacity() * sizeof(uint32_t) +
         offsets_.capacity() * sizeof(size_t) +
         arcs_.capacity() * sizeof(Arc) +
         cumulative_.capacity() * sizeof(double) +
         max_prob_.capacity() * sizeof(double) +
         alias_prob_.capacity() * sizeof(double) +
         alias_index_.capacity() * sizeof(uint32_t) +
         in_offsets_.capacity() * sizeof(size_t) +
         in_arcs_.capacity() * sizeof(InArc);
}

size_t TransitionModel::SampleNextCdf(size_t local, Rng& rng) const {
  const size_t begin = offsets_[local];
  const size_t end = offsets_[local + 1];
  const double target = rng.NextDouble();
  if (cumulative_.empty()) {
    // keep_cdf off: walk the same partial sums the stored CDF would hold.
    // The stored version pins the row's final entry to exactly 1.0, so a
    // target past the accumulated total likewise lands on the last arc.
    double acc = 0.0;
    for (size_t k = begin; k < end; ++k) {
      acc += arcs_[k].probability;
      if (target <= acc || k + 1 == end) return arcs_[k].target;
    }
    return arcs_[end - 1].target;
  }
  auto first = cumulative_.begin() + begin;
  auto last = cumulative_.begin() + end;
  auto it = std::lower_bound(first, last, target);
  if (it == last) --it;
  return arcs_[static_cast<size_t>(it - cumulative_.begin())].target;
}

size_t TransitionModel::SampleNextRejection(size_t local, Rng& rng) const {
  const size_t begin = offsets_[local];
  const size_t count = offsets_[local + 1] - begin;
  const double cap = max_prob_[local];
  // Uniform proposal, accept with probability p_ij / max_j p_ij. The
  // normalization by the row maximum keeps the acceptance rate usable on
  // high-degree nodes while preserving the target distribution.
  for (;;) {
    const size_t k = begin + rng.NextBounded(count);
    if (rng.NextDouble() * cap <= arcs_[k].probability) {
      return arcs_[k].target;
    }
  }
}

}  // namespace kgaq
