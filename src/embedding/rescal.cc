#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/timer.h"
#include "embedding/embedding_model.h"
#include "embedding/trainer.h"
#include "embedding/trainer_internal.h"
#include "embedding/vector_ops.h"

namespace kgaq {

namespace {

using embedding_internal::CorruptTriple;
using embedding_internal::ExtractTriples;
using embedding_internal::GaussianInit;
using embedding_internal::Triple;

/// RESCAL: bilinear tensor-factorization model. Each relation is a dense
/// d x d matrix M_r and score(h, r, t) = h^T M_r t (higher = plausible).
/// The Eq. 4 predicate representation is the flattened matrix — the paper
/// observes this captures translation-style predicate semantics poorly
/// (Table XIII), which our reproduction preserves.
class RescalModel : public EmbeddingModel {
 public:
  RescalModel(size_t num_entities, size_t num_predicates, size_t dim)
      : num_entities_(num_entities),
        num_predicates_(num_predicates),
        dim_(dim),
        entities_(num_entities * dim, 0.0f),
        matrices_(num_predicates * dim * dim, 0.0f) {}

  const std::string& name() const override { return name_; }
  size_t entity_dim() const override { return dim_; }
  size_t predicate_dim() const override { return dim_ * dim_; }
  size_t num_entities() const override { return num_entities_; }
  size_t num_predicates() const override { return num_predicates_; }

  std::span<const float> PredicateVector(PredicateId p) const override {
    return {matrices_.data() + static_cast<size_t>(p) * dim_ * dim_,
            dim_ * dim_};
  }
  std::span<const float> EntityVector(NodeId u) const override {
    return {entities_.data() + static_cast<size_t>(u) * dim_, dim_};
  }

  std::span<float> Entity(NodeId u) {
    return {entities_.data() + static_cast<size_t>(u) * dim_, dim_};
  }
  std::span<float> Matrix(PredicateId p) {
    return {matrices_.data() + static_cast<size_t>(p) * dim_ * dim_,
            dim_ * dim_};
  }

  double ScoreTriple(NodeId h, PredicateId r, NodeId t) const override {
    auto hv = EntityVector(h);
    auto tv = EntityVector(t);
    auto m = PredicateVector(r);
    double acc = 0.0;
    for (size_t i = 0; i < dim_; ++i) {
      double row = 0.0;
      const float* mrow = m.data() + i * dim_;
      for (size_t j = 0; j < dim_; ++j) {
        row += static_cast<double>(mrow[j]) * tv[j];
      }
      acc += static_cast<double>(hv[i]) * row;
    }
    return acc;
  }

  size_t MemoryBytes() const override {
    return (entities_.size() + matrices_.size()) * sizeof(float);
  }

  std::vector<float>& entities() { return entities_; }
  std::vector<float>& matrices() { return matrices_; }

 private:
  std::string name_ = "RESCAL";
  size_t num_entities_;
  size_t num_predicates_;
  size_t dim_;
  std::vector<float> entities_;
  std::vector<float> matrices_;
};

// One SGD step; sign = +1 raises the triple's score, -1 lowers it.
void SgdStep(RescalModel& m, const Triple& t, double lr, double sign) {
  const size_t dim = m.entity_dim();
  auto h = m.Entity(t.head);
  auto tt = m.Entity(t.tail);
  auto mat = m.Matrix(t.relation);

  // Cache M t and M^T h before mutating.
  std::vector<double> mt(dim, 0.0), mth(dim, 0.0);
  for (size_t i = 0; i < dim; ++i) {
    const float* row = mat.data() + i * dim;
    for (size_t j = 0; j < dim; ++j) {
      mt[i] += static_cast<double>(row[j]) * tt[j];
      mth[j] += static_cast<double>(row[j]) * h[i];
    }
  }

  const double step = lr * sign;
  for (size_t i = 0; i < dim; ++i) {
    float* row = mat.data() + i * dim;
    for (size_t j = 0; j < dim; ++j) {
      row[j] += static_cast<float>(step * h[i] * tt[j]);  // dS/dM = h t^T
    }
  }
  for (size_t i = 0; i < dim; ++i) {
    h[i] += static_cast<float>(step * mt[i]);    // dS/dh = M t
    tt[i] += static_cast<float>(step * mth[i]);  // dS/dt = M^T h
  }
}

}  // namespace

Result<std::unique_ptr<EmbeddingModel>> TrainRescal(
    const KnowledgeGraph& g, const EmbeddingTrainConfig& config,
    EmbeddingTrainStats* stats) {
  if (config.dim == 0) return Status::InvalidArgument("dim must be > 0");
  auto triples = ExtractTriples(g);
  if (triples.empty()) {
    return Status::FailedPrecondition("graph has no edges to train on");
  }

  WallTimer timer;
  Rng rng(config.seed);
  auto model = std::make_unique<RescalModel>(g.NumNodes(), g.NumPredicates(),
                                             config.dim);
  GaussianInit(model->entities(), config.dim, rng);
  GaussianInit(model->matrices(), config.dim, rng);

  double avg_loss = 0.0;
  for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
    for (NodeId u = 0; u < g.NumNodes(); ++u) {
      NormalizeInPlace(model->Entity(u));
    }
    Shuffle(triples, rng);
    double epoch_loss = 0.0;
    size_t updates = 0;
    for (const Triple& pos : triples) {
      for (size_t k = 0; k < config.negatives_per_positive; ++k) {
        Triple neg = CorruptTriple(pos, g.NumNodes(), rng);
        const double sp = model->ScoreTriple(pos.head, pos.relation, pos.tail);
        const double sn = model->ScoreTriple(neg.head, neg.relation, neg.tail);
        const double loss = config.margin - sp + sn;
        if (loss > 0.0) {
          epoch_loss += loss;
          ++updates;
          SgdStep(*model, pos, config.learning_rate, +1.0);
          SgdStep(*model, neg, config.learning_rate, -1.0);
        }
      }
    }
    avg_loss = updates == 0 ? 0.0 : epoch_loss / static_cast<double>(updates);
  }

  if (stats != nullptr) {
    stats->final_avg_loss = avg_loss;
    stats->train_seconds = timer.ElapsedSeconds();
    stats->num_triples = triples.size();
    stats->memory_bytes = model->MemoryBytes();
  }
  return std::unique_ptr<EmbeddingModel>(std::move(model));
}

}  // namespace kgaq
