#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/random.h"
#include "embedding/embedding_model.h"
#include "embedding/trainer.h"
#include "embedding/trainer_internal.h"
#include "embedding/vector_ops.h"

namespace kgaq {

namespace {

using embedding_internal::DeltaStore;
using embedding_internal::GaussianInit;
using embedding_internal::Triple;

/// RESCAL: bilinear tensor-factorization model. Each relation is a dense
/// d x d matrix M_r and score(h, r, t) = h^T M_r t (higher = plausible).
/// The Eq. 4 predicate representation is the flattened matrix — the paper
/// observes this captures translation-style predicate semantics poorly
/// (Table XIII), which our reproduction preserves.
class RescalModel : public EmbeddingModel {
 public:
  RescalModel(size_t num_entities, size_t num_predicates, size_t dim)
      : num_entities_(num_entities),
        num_predicates_(num_predicates),
        dim_(dim),
        entities_(num_entities * dim, 0.0f),
        matrices_(num_predicates * dim * dim, 0.0f) {}

  const std::string& name() const override { return name_; }
  size_t entity_dim() const override { return dim_; }
  size_t predicate_dim() const override { return dim_ * dim_; }
  size_t num_entities() const override { return num_entities_; }
  size_t num_predicates() const override { return num_predicates_; }

  std::span<const float> PredicateVector(PredicateId p) const override {
    return {matrices_.data() + static_cast<size_t>(p) * dim_ * dim_,
            dim_ * dim_};
  }
  std::span<const float> EntityVector(NodeId u) const override {
    return {entities_.data() + static_cast<size_t>(u) * dim_, dim_};
  }

  std::span<float> Entity(NodeId u) {
    return {entities_.data() + static_cast<size_t>(u) * dim_, dim_};
  }
  std::span<float> Matrix(PredicateId p) {
    return {matrices_.data() + static_cast<size_t>(p) * dim_ * dim_,
            dim_ * dim_};
  }

  double ScoreTriple(NodeId h, PredicateId r, NodeId t) const override {
    auto hv = EntityVector(h);
    auto tv = EntityVector(t);
    auto m = PredicateVector(r);
    // h^T M t as batched row dots: acc_i h[i] * (row_i . t).
    double acc = 0.0;
    for (size_t i = 0; i < dim_; ++i) {
      acc += static_cast<double>(hv[i]) *
             Dot(m.subspan(i * dim_, dim_), tv);
    }
    return acc;
  }

  size_t MemoryBytes() const override {
    return (entities_.size() + matrices_.size()) * sizeof(float);
  }

  std::vector<float>& entities() { return entities_; }
  std::vector<float>& matrices() { return matrices_; }

 private:
  std::string name_ = "RESCAL";
  size_t num_entities_;
  size_t num_predicates_;
  size_t dim_;
  std::vector<float> entities_;
  std::vector<float> matrices_;
};

struct RescalPolicy {
  using Model = RescalModel;
  static constexpr size_t kEntities = 0;
  /// Matrix rows are addressed as delta row p * dim + i so a shard only
  /// accumulates the d-float rows its triples actually touch.
  static constexpr size_t kMatrixRows = 1;

  struct Ref {
    std::span<float> h, t, mat;
  };
  struct Scratch {
    explicit Scratch(size_t dim) : mt(dim), mth(dim) {}
    std::vector<double> mt;   // M t
    std::vector<double> mth;  // M^T h
  };

  static std::unique_ptr<Model> Init(const KnowledgeGraph& graph,
                                     const EmbeddingTrainConfig& config,
                                     Rng& rng) {
    auto model = std::make_unique<RescalModel>(
        graph.NumNodes(), graph.NumPredicates(), config.dim);
    GaussianInit(model->entities(), config.dim, rng);
    GaussianInit(model->matrices(), config.dim, rng);
    return model;
  }

  static std::span<float> EntityRow(Model& m, NodeId u) {
    return m.Entity(u);
  }

  static Ref Bind(Model& m, const Triple& t) {
    return {m.Entity(t.head), m.Entity(t.tail), m.Matrix(t.relation)};
  }

  /// RESCAL scores by plausibility, so the margin-ranking distance is the
  /// negated bilinear form.
  static double Distance(const Ref& ref) {
    const size_t dim = ref.h.size();
    double acc = 0.0;
    for (size_t i = 0; i < dim; ++i) {
      acc += static_cast<double>(ref.h[i]) *
             Dot(std::span<const float>(ref.mat).subspan(i * dim, dim),
                 ref.t);
    }
    return -acc;
  }

  static double DistancePos(const Ref& ref, Scratch&) {
    return Distance(ref);
  }

  static void StepPair(const Ref& pos, const Ref& neg, double lr,
                       Scratch& scratch) {
    Step(pos, lr, scratch);
    Step(neg, -lr, scratch);
  }

  static void Step(const Ref& ref, double lr_signed, Scratch& scratch) {
    const size_t dim = ref.h.size();
    // Gradient ascent on the score: dS/dM = h t^T, dS/dh = M t,
    // dS/dt = M^T h; cache the products before mutating. The driver's
    // +lr/-lr convention (distance descent) is exactly the legacy
    // step = lr * sign with score ascent.
    MatVecRows(ref.mat, ref.t, scratch.mt);
    MatTVecRows(ref.mat, ref.h, scratch.mth);
    const double s = lr_signed;
    for (size_t i = 0; i < dim; ++i) {
      AddScaled(ref.mat.subspan(i * dim, dim), ref.t, s * ref.h[i]);
    }
    for (size_t i = 0; i < dim; ++i) {
      ref.h[i] += static_cast<float>(s * scratch.mt[i]);
      ref.t[i] += static_cast<float>(s * scratch.mth[i]);
    }
  }

  static void RegisterDeltaArrays(Model& m, DeltaStore& store) {
    store.RegisterArray(m.entities().data(), m.entity_dim(),
                        m.num_entities());
    store.RegisterArray(m.matrices().data(), m.entity_dim(),
                        m.num_predicates() * m.entity_dim());
  }

  static void StepDelta(const Ref& ref, const Triple& t, double lr_signed,
                        DeltaStore& store, Scratch& scratch) {
    const size_t dim = ref.h.size();
    MatVecRows(ref.mat, ref.t, scratch.mt);
    MatTVecRows(ref.mat, ref.h, scratch.mth);
    const double s = lr_signed;
    for (size_t i = 0; i < dim; ++i) {
      auto drow = store.Row(kMatrixRows,
                            static_cast<size_t>(t.relation) * dim + i);
      const double sh = s * ref.h[i];
      for (size_t j = 0; j < dim; ++j) drow[j] += sh * ref.t[j];
    }
    auto dh = store.Row(kEntities, t.head);
    auto dt = store.Row(kEntities, t.tail);
    for (size_t i = 0; i < dim; ++i) {
      dh[i] += s * scratch.mt[i];
      dt[i] += s * scratch.mth[i];
    }
  }

  static void PostBatchApply(Model&, const std::vector<DeltaStore>&) {}
};

}  // namespace

Result<std::unique_ptr<EmbeddingModel>> TrainRescal(
    const KnowledgeGraph& g, const EmbeddingTrainConfig& config,
    EmbeddingTrainStats* stats) {
  return embedding_internal::TrainWithDriver<RescalPolicy>(g, config, stats);
}

}  // namespace kgaq
