#include "embedding/predicate_similarity.h"

#include <algorithm>

namespace kgaq {

PredicateSimilarityCache::PredicateSimilarityCache(
    const EmbeddingModel& model, PredicateId query_predicate, double floor)
    : query_predicate_(query_predicate) {
  const size_t n = model.num_predicates();
  sims_.resize(n);
  for (PredicateId p = 0; p < n; ++p) {
    const double cos = model.PredicateCosine(p, query_predicate);
    sims_[p] = std::clamp(cos, floor, 1.0);
  }
}

}  // namespace kgaq
