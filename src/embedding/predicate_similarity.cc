#include "embedding/predicate_similarity.h"

#include <algorithm>

#include "embedding/vector_ops.h"

namespace kgaq {

PredicateSimilarityCache::PredicateSimilarityCache(
    const EmbeddingModel& model, PredicateId query_predicate, double floor)
    : query_predicate_(query_predicate) {
  const size_t n = model.num_predicates();
  sims_.resize(n);
  const auto query = model.PredicateVector(query_predicate);
  const auto matrix = model.PredicateMatrix();
  if (!matrix.empty() && matrix.size() == n * query.size()) {
    // Contiguous storage: one streaming pass over the whole table.
    CosineSimilarityMany(query, matrix, sims_);
  } else {
    for (PredicateId p = 0; p < n; ++p) {
      sims_[p] = CosineSimilarity(model.PredicateVector(p), query);
    }
  }
  for (double& s : sims_) s = std::clamp(s, floor, 1.0);
}

}  // namespace kgaq
