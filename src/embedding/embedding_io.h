#ifndef KGAQ_EMBEDDING_EMBEDDING_IO_H_
#define KGAQ_EMBEDDING_EMBEDDING_IO_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "embedding/embedding_model.h"

namespace kgaq {

/// Persists any embedding model's vectors as a FixedEmbedding snapshot.
///
/// The paper's pipeline trains embeddings offline and loads them at query
/// time (Algorithm 2 line 1); these functions implement that handoff. The
/// format is a small text header followed by whitespace-separated floats:
///
///   kgaq-embedding <name> <num_entities> <num_predicates> <e_dim> <p_dim>
///   <entity vectors, one per line>
///   <predicate vectors, one per line>
///
/// Note: snapshots restore vectors (enough for Eq. 4 similarity and
/// TransE-style scoring) but not model-specific scoring parameters.
Status SaveEmbedding(const EmbeddingModel& model, const std::string& path);

/// Loads a snapshot previously written by SaveEmbedding.
Result<std::unique_ptr<FixedEmbedding>> LoadEmbedding(
    const std::string& path);

}  // namespace kgaq

#endif  // KGAQ_EMBEDDING_EMBEDDING_IO_H_
