#ifndef KGAQ_EMBEDDING_EMBEDDING_IO_H_
#define KGAQ_EMBEDDING_EMBEDDING_IO_H_

#include <iosfwd>
#include <memory>
#include <string>

#include "common/status.h"
#include "embedding/embedding_model.h"

namespace kgaq {

/// Persists any embedding model's vectors as a FixedEmbedding snapshot.
///
/// The paper's pipeline trains embeddings offline and loads them at query
/// time (Algorithm 2 line 1); these functions implement that handoff. The
/// format is a small text header followed by whitespace-separated floats:
///
///   kgaq-embedding <name> <num_entities> <num_predicates> <e_dim> <p_dim>
///   <entity vectors, one per line>
///   <predicate vectors, one per line>
///
/// Note: snapshots restore vectors (enough for Eq. 4 similarity and
/// TransE-style scoring) but not model-specific scoring parameters.
Status SaveEmbedding(const EmbeddingModel& model, const std::string& path);

/// Loads a snapshot previously written by SaveEmbedding.
Result<std::unique_ptr<FixedEmbedding>> LoadEmbedding(
    const std::string& path);

/// Binary embedding blob: the little-endian section embedded into the
/// engine snapshot container (see docs/snapshot_format.md). Unlike the
/// text format above, the raw IEEE-754 floats round-trip bit-exactly.
///
///   u32 name_len, name bytes
///   u64 num_entities, u64 num_predicates, u64 entity_dim, u64 pred_dim
///   f32 entity vectors  (num_entities * entity_dim)
///   f32 predicate vectors (num_predicates * predicate_dim)
Status WriteEmbeddingBlob(const EmbeddingModel& model, std::ostream& out);

/// Reads a blob previously written by WriteEmbeddingBlob.
Result<std::unique_ptr<FixedEmbedding>> ReadEmbeddingBlob(std::istream& in);

}  // namespace kgaq

#endif  // KGAQ_EMBEDDING_EMBEDDING_IO_H_
