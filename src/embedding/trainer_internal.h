#ifndef KGAQ_EMBEDDING_TRAINER_INTERNAL_H_
#define KGAQ_EMBEDDING_TRAINER_INTERNAL_H_

#include <vector>

#include "common/random.h"
#include "kg/knowledge_graph.h"
#include "kg/types.h"

namespace kgaq::embedding_internal {

/// A positive training triple extracted from the stored (forward) arcs.
struct Triple {
  NodeId head;
  PredicateId relation;
  NodeId tail;
};

/// Collects every stored triple of `g` once.
std::vector<Triple> ExtractTriples(const KnowledgeGraph& g);

/// Corrupts head or tail (uniformly) to draw a negative triple.
Triple CorruptTriple(const Triple& t, size_t num_entities, Rng& rng);

/// Fills `data` with N(0, 1/sqrt(dim)) noise.
void GaussianInit(std::vector<float>& data, size_t dim, Rng& rng);

}  // namespace kgaq::embedding_internal

#endif  // KGAQ_EMBEDDING_TRAINER_INTERNAL_H_
