#ifndef KGAQ_EMBEDDING_TRAINER_INTERNAL_H_
#define KGAQ_EMBEDDING_TRAINER_INTERNAL_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "embedding/embedding_model.h"
#include "embedding/trainer.h"
#include "embedding/vector_ops.h"
#include "kg/knowledge_graph.h"
#include "kg/types.h"

namespace kgaq::embedding_internal {

/// A positive training triple extracted from the stored (forward) arcs.
struct Triple {
  NodeId head;
  PredicateId relation;
  NodeId tail;
};

/// Collects every stored triple of `g` once.
std::vector<Triple> ExtractTriples(const KnowledgeGraph& g);

/// Corrupts head or tail (uniformly) to draw a negative triple.
Triple CorruptTriple(const Triple& t, size_t num_entities, Rng& rng);

/// Fills `data` with N(0, 1/sqrt(dim)) noise.
void GaussianInit(std::vector<float>& data, size_t dim, Rng& rng);

/// Sparse per-shard gradient accumulator for deterministic mini-batch
/// training.
///
/// A shard computes its pairs' gradients against the batch-start parameter
/// snapshot and accumulates them here (double precision, keyed by
/// (array, row)); after the fork-join the driver folds each shard's rows
/// back into the float parameters in shard order, then row-touch order —
/// both orders are fixed by the batch content, never by thread count, which
/// is what makes deterministic mode bitwise-reproducible on any pool.
///
/// Row storage is persistent across batches (entity rows recur constantly);
/// Clear() re-zeroes only the rows the last batch touched. Spans returned
/// by Row() stay valid until Clear(): slot vectors may be relocated as new
/// rows register, but each row's heap buffer is stable.
///
/// Memory bound: slots are never freed, so over a long run each shard's
/// store converges toward a double-precision copy of every parameter row
/// its pairs ever touch — worst case num_shards * 2x the float model size.
/// Fine for the entity/relation tables trained here; for very large
/// matrix-relation models prefer fewer shards (or hogwild mode, which
/// needs no delta storage).
class DeltaStore {
 public:
  /// Registers a parameter array (row-major, `num_rows` rows of `row_dim`
  /// floats). Returns the array id used by Row(). Call once per array, in
  /// a fixed order shared by every shard's store. The flat row->slot index
  /// is preallocated here so the hot Row() lookup is a single array load.
  size_t RegisterArray(float* base, size_t row_dim, size_t num_rows);

  /// The accumulation buffer for `row` of `array`, zeroed on first touch
  /// per batch. Touch order defines the apply order within this store.
  std::span<double> Row(size_t array, size_t row);

  /// Folds every touched row into its float array (double add, then
  /// truncate per element — one rounding per batch instead of one per
  /// pair). Touched-row bookkeeping survives until Clear() so
  /// PostBatchApply hooks can see what the batch updated.
  void Apply();

  /// Zeroes the touched rows' buffers and forgets the touch list, readying
  /// the store for the next batch.
  void Clear();

  /// Invokes fn(array, row) for every row the current batch touched, in
  /// touch order.
  template <typename Fn>
  void ForEachActive(Fn&& fn) const {
    for (size_t idx : active_) {
      fn(slots_[idx].array, slots_[idx].row);
    }
  }

  /// Touched rows in the current batch (test / introspection hook).
  size_t ActiveRows() const { return active_.size(); }

 private:
  static constexpr uint32_t kNoSlot = 0xffffffffu;

  struct ArrayInfo {
    float* base;
    size_t row_dim;
    std::vector<uint32_t> slot_of_row;
  };
  struct Slot {
    size_t array;
    size_t row;
    std::vector<double> delta;
    bool active = false;
  };

  std::vector<ArrayInfo> arrays_;
  std::vector<Slot> slots_;
  std::vector<size_t> active_;  // touch order of the current batch
};

/// One (positive, negative) hinge pair; negatives are pre-drawn serially
/// from the epoch Rng so the stream never depends on scheduling.
struct TrainPair {
  Triple pos;
  Triple neg;
};

// ---------------------------------------------------------------------------
// The shared epoch harness. Each model family plugs in as a Policy:
//
//   struct Policy {
//     using Model = ...;                       // concrete EmbeddingModel
//     struct Ref { std::span<float> ...; };    // one triple's param rows
//     struct Scratch { explicit Scratch(size_t dim); ... };
//     static std::unique_ptr<Model> Init(g, config, rng);
//     static std::span<float> EntityRow(Model&, NodeId);
//     static Ref Bind(Model&, const Triple&);  // row lookups, hoistable
//     static double Distance(const Ref&);      // margin-ranking distance
//     static double DistancePos(const Ref&, Scratch&);
//         // like Distance, but may cache per-pair state (e.g. the TransE
//         // residual) that StepPair reuses for the positive's update
//     static void StepPair(const Ref& pos, const Ref& neg, double lr,
//                          Scratch&);
//         // the hinge-active update: +lr on pos (rows still exactly as
//         // DistancePos saw them), then -lr on neg recomputed from the
//         // post-positive rows — the legacy sequential order
//     static void RegisterDeltaArrays(Model&, DeltaStore&);
//     static void StepDelta(const Ref&, const Triple&, double lr_signed,
//                           DeltaStore&, Scratch&);
//     static void PostBatchApply(Model&, const std::vector<DeltaStore>&);
//         // after the batch's deltas fold in, before the stores clear;
//         // the stores still enumerate the touched rows (e.g. TransH
//         // renormalizes exactly the updated hyperplane normals)
//   };
//
// StepDelta receives the signed learning rate (+lr tightens the positive,
// -lr loosens the negative), matching the legacy lr * sign product bit for
// bit. Distance and Bind only ever read the model; StepDelta reads the
// (frozen) model rows via Ref and writes the store.
// ---------------------------------------------------------------------------

/// Per-epoch entity renormalization (the Bordes et al. norm-growth guard),
/// fanned over the pool in fixed blocks. Each row only depends on itself,
/// so the partition cannot change any float: serial == parallel bitwise.
template <typename Policy>
void RenormalizeEntities(typename Policy::Model& model, size_t num_entities,
                         ThreadPool& pool, bool parallel) {
  constexpr size_t kBlock = 1024;
  if (!parallel || num_entities < 2 * kBlock) {
    for (NodeId u = 0; u < num_entities; ++u) {
      NormalizeInPlace(Policy::EntityRow(model, u));
    }
    return;
  }
  const size_t num_blocks = (num_entities + kBlock - 1) / kBlock;
  ParallelFor(pool, num_blocks, [&](size_t b) {
    const size_t lo = b * kBlock;
    const size_t hi = std::min(lo + kBlock, num_entities);
    for (size_t u = lo; u < hi; ++u) {
      NormalizeInPlace(Policy::EntityRow(model, static_cast<NodeId>(u)));
    }
  });
}

/// The classic sequential recipe (batch_size == 1): every update is visible
/// to the next distance computation, exactly the loop the five trainers
/// used to duplicate — golden-tested against the pre-refactor TransE.
/// The positive's rows are bound once per positive (they used to be
/// re-fetched for every negative).
template <typename Policy>
void SequentialEpoch(typename Policy::Model& model,
                     const std::vector<Triple>& triples,
                     const EmbeddingTrainConfig& config, size_t num_entities,
                     Rng& rng, typename Policy::Scratch& scratch,
                     double& epoch_loss, size_t& updates) {
  for (const Triple& pos : triples) {
    const typename Policy::Ref pos_ref = Policy::Bind(model, pos);
    for (size_t k = 0; k < config.negatives_per_positive; ++k) {
      const Triple neg = CorruptTriple(pos, num_entities, rng);
      const typename Policy::Ref neg_ref = Policy::Bind(model, neg);
      const double dp = Policy::DistancePos(pos_ref, scratch);
      const double dn = Policy::Distance(neg_ref);
      const double loss = config.margin + dp - dn;
      if (loss > 0.0) {
        epoch_loss += loss;
        ++updates;
        Policy::StepPair(pos_ref, neg_ref, config.learning_rate, scratch);
      }
    }
  }
}

/// Deterministic mini-batch epoch: negatives for the batch are pre-drawn
/// serially, the pair list is split into stores.size() contiguous shards
/// (a config constant), each shard accumulates hinge gradients against the
/// batch-start snapshot, and the driver applies the stores in shard order.
template <typename Policy>
void BatchedEpoch(typename Policy::Model& model,
                  const std::vector<Triple>& triples,
                  const EmbeddingTrainConfig& config, size_t num_entities,
                  ThreadPool& pool, bool fork, Rng& rng,
                  std::vector<DeltaStore>& stores,
                  std::vector<typename Policy::Scratch>& scratches,
                  std::vector<TrainPair>& pairs, double& epoch_loss,
                  size_t& updates) {
  const size_t batch = std::max<size_t>(1, config.minibatch.batch_size);
  const size_t num_shards = stores.size();
  std::vector<double> shard_loss(num_shards);
  std::vector<size_t> shard_updates(num_shards);
  for (size_t start = 0; start < triples.size(); start += batch) {
    const size_t end = std::min(start + batch, triples.size());
    pairs.clear();
    for (size_t i = start; i < end; ++i) {
      for (size_t k = 0; k < config.negatives_per_positive; ++k) {
        pairs.push_back(
            {triples[i], CorruptTriple(triples[i], num_entities, rng)});
      }
    }
    std::fill(shard_loss.begin(), shard_loss.end(), 0.0);
    std::fill(shard_updates.begin(), shard_updates.end(), size_t{0});
    auto run_shard = [&](size_t s) {
      const size_t lo = pairs.size() * s / num_shards;
      const size_t hi = pairs.size() * (s + 1) / num_shards;
      DeltaStore& store = stores[s];
      typename Policy::Scratch& scratch = scratches[s];
      for (size_t p = lo; p < hi; ++p) {
        const typename Policy::Ref pos_ref = Policy::Bind(model, pairs[p].pos);
        const typename Policy::Ref neg_ref = Policy::Bind(model, pairs[p].neg);
        const double dp = Policy::Distance(pos_ref);
        const double dn = Policy::Distance(neg_ref);
        const double loss = config.margin + dp - dn;
        if (loss > 0.0) {
          shard_loss[s] += loss;
          ++shard_updates[s];
          Policy::StepDelta(pos_ref, pairs[p].pos, config.learning_rate,
                            store, scratch);
          Policy::StepDelta(neg_ref, pairs[p].neg, -config.learning_rate,
                            store, scratch);
        }
      }
    };
    if (fork && num_shards > 1) {
      // Group the fixed shards into one strided task per worker: fewer
      // queue round-trips per batch, and the grouping cannot change any
      // result — each shard still writes only its own store and loss
      // slot, and the apply below walks shards in index order regardless.
      const size_t num_tasks = std::min(num_shards, pool.num_threads());
      ParallelFor(pool, num_tasks, [&](size_t task) {
        for (size_t s = task; s < num_shards; s += num_tasks) run_shard(s);
      });
    } else {
      for (size_t s = 0; s < num_shards; ++s) run_shard(s);
    }
    for (size_t s = 0; s < num_shards; ++s) {
      stores[s].Apply();
      epoch_loss += shard_loss[s];
      updates += shard_updates[s];
    }
    // Post-apply fixups run while the stores still know which rows the
    // batch touched (e.g. TransH renormalizes exactly the updated
    // hyperplane normals), then the stores reset for the next batch.
    Policy::PostBatchApply(model, stores);
    for (size_t s = 0; s < num_shards; ++s) stores[s].Clear();
  }
}

/// Hogwild! epoch: fixed contiguous chunks per worker, in-place lock-free
/// updates, one forked Rng per worker (seeds are deterministic; the final
/// floats are not — quality is gated statistically, not bitwise).
template <typename Policy>
void HogwildEpoch(typename Policy::Model& model,
                  const std::vector<Triple>& triples,
                  const EmbeddingTrainConfig& config, size_t num_entities,
                  ThreadPool& pool, Rng& rng, double& epoch_loss,
                  size_t& updates) {
  const size_t workers =
      std::min(pool.num_threads(), std::max<size_t>(1, triples.size()));
  std::vector<Rng> rngs;
  rngs.reserve(workers);
  for (size_t w = 0; w < workers; ++w) rngs.push_back(rng.Fork());
  std::vector<double> worker_loss(workers, 0.0);
  std::vector<size_t> worker_updates(workers, 0);
  const size_t chunk = (triples.size() + workers - 1) / workers;
  TaskGroup group(pool);
  for (size_t w = 0; w < workers; ++w) {
    group.Submit([&, w] {
      typename Policy::Scratch scratch(config.dim);
      Rng& wrng = rngs[w];
      const size_t lo = w * chunk;
      const size_t hi = std::min(lo + chunk, triples.size());
      for (size_t i = lo; i < hi; ++i) {
        const Triple& pos = triples[i];
        const typename Policy::Ref pos_ref = Policy::Bind(model, pos);
        for (size_t k = 0; k < config.negatives_per_positive; ++k) {
          const Triple neg = CorruptTriple(pos, num_entities, wrng);
          const typename Policy::Ref neg_ref = Policy::Bind(model, neg);
          const double dp = Policy::DistancePos(pos_ref, scratch);
          const double dn = Policy::Distance(neg_ref);
          const double loss = config.margin + dp - dn;
          if (loss > 0.0) {
            worker_loss[w] += loss;
            ++worker_updates[w];
            Policy::StepPair(pos_ref, neg_ref, config.learning_rate,
                             scratch);
          }
        }
      }
    });
  }
  group.Wait();
  for (size_t w = 0; w < workers; ++w) {
    epoch_loss += worker_loss[w];
    updates += worker_updates[w];
  }
}

/// The driver owning everything the five trainers used to duplicate:
/// validation, triple extraction, init, per-epoch renormalization +
/// shuffle + scheduling mode dispatch, loss accounting, and stats.
template <typename Policy>
Result<std::unique_ptr<EmbeddingModel>> TrainWithDriver(
    const KnowledgeGraph& g, const EmbeddingTrainConfig& config,
    EmbeddingTrainStats* stats) {
  if (config.dim == 0) return Status::InvalidArgument("dim must be > 0");
  auto triples = ExtractTriples(g);
  if (triples.empty()) {
    return Status::FailedPrecondition("graph has no edges to train on");
  }

  WallTimer timer;
  Rng rng(config.seed);
  std::unique_ptr<typename Policy::Model> model =
      Policy::Init(g, config, rng);

  const MiniBatchOptions& mb = config.minibatch;
  ThreadPool& pool = mb.pool != nullptr ? *mb.pool : GlobalPool();
  const size_t pairs_per_epoch =
      triples.size() * config.negatives_per_positive;
  const bool parallel = pairs_per_epoch >= mb.min_parallel_triples &&
                        pool.num_threads() > 1;
  const bool batched =
      mb.mode == TrainMode::kDeterministic && mb.batch_size > 1;
  const bool hogwild = mb.mode == TrainMode::kHogwild && parallel;
  // A mini-batch forks only when it carries enough pairs to amortize the
  // fork-join; the decision depends on config alone, so it cannot differ
  // between machines with different pools.
  const bool batched_forks =
      batched && pool.num_threads() > 1 &&
      mb.batch_size * config.negatives_per_positive >=
          mb.min_parallel_triples;

  // Per-shard state for deterministic batched mode, allocated once.
  std::vector<DeltaStore> stores;
  std::vector<typename Policy::Scratch> scratches;
  std::vector<TrainPair> pairs;
  if (batched) {
    const size_t max_pairs =
        std::max<size_t>(1, mb.batch_size * config.negatives_per_positive);
    const size_t num_shards = std::max<size_t>(
        1, std::min(mb.shards != 0 ? mb.shards : size_t{8}, max_pairs));
    stores.resize(num_shards);
    scratches.reserve(num_shards);
    for (size_t s = 0; s < num_shards; ++s) {
      Policy::RegisterDeltaArrays(*model, stores[s]);
      scratches.emplace_back(config.dim);
    }
    pairs.reserve(max_pairs);
  }
  typename Policy::Scratch sequential_scratch(config.dim);

  double avg_loss = 0.0;
  for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
    // Entity vectors are re-normalized each epoch (the Bordes et al. trick
    // preventing trivial loss minimization by norm growth).
    RenormalizeEntities<Policy>(*model, g.NumNodes(), pool, parallel);
    Shuffle(triples, rng);
    double epoch_loss = 0.0;
    size_t updates = 0;
    if (hogwild) {
      HogwildEpoch<Policy>(*model, triples, config, g.NumNodes(), pool, rng,
                           epoch_loss, updates);
    } else if (batched) {
      BatchedEpoch<Policy>(*model, triples, config, g.NumNodes(), pool,
                           batched_forks, rng, stores, scratches, pairs,
                           epoch_loss, updates);
    } else {
      SequentialEpoch<Policy>(*model, triples, config, g.NumNodes(), rng,
                              sequential_scratch, epoch_loss, updates);
    }
    avg_loss = updates == 0 ? 0.0 : epoch_loss / static_cast<double>(updates);
  }

  if (stats != nullptr) {
    stats->final_avg_loss = avg_loss;
    stats->train_seconds = timer.ElapsedSeconds();
    stats->num_triples = triples.size();
    stats->memory_bytes = model->MemoryBytes();
    const double pairs_total = static_cast<double>(config.epochs) *
                               static_cast<double>(pairs_per_epoch);
    stats->triples_per_second =
        stats->train_seconds > 0.0 ? pairs_total / stats->train_seconds : 0.0;
    // The fan-out actually used, not the pool width: hogwild runs one
    // worker per chunk, batched mode one strided task per shard at most.
    if (hogwild) {
      stats->threads_used =
          std::min(pool.num_threads(), std::max<size_t>(1, triples.size()));
    } else if (batched_forks) {
      stats->threads_used = std::min(stores.size(), pool.num_threads());
    } else {
      stats->threads_used = 1;
    }
  }
  return std::unique_ptr<EmbeddingModel>(std::move(model));
}

}  // namespace kgaq::embedding_internal

#endif  // KGAQ_EMBEDDING_TRAINER_INTERNAL_H_
