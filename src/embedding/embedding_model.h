#ifndef KGAQ_EMBEDDING_EMBEDDING_MODEL_H_
#define KGAQ_EMBEDDING_EMBEDDING_MODEL_H_

#include <span>
#include <string>
#include <vector>

#include "kg/types.h"

namespace kgaq {

/// Abstract KG-embedding model (the paper's offline phase, §III / Table
/// XIII).
///
/// The sampling-estimation pipeline only consumes two things from a model:
///  * PredicateVector(p): a vector whose cosine against another predicate's
///    vector implements Eq. 4 (predicate similarity). For matrix-valued
///    relation parameterizations (RESCAL, SE) this is the flattened matrix.
///  * ScoreTriple(h, r, t): plausibility of a triple; higher = more
///    plausible. Used by the EAQ link-prediction baseline.
class EmbeddingModel {
 public:
  virtual ~EmbeddingModel() = default;

  /// Model family name ("TransE", "RESCAL", ...).
  virtual const std::string& name() const = 0;

  /// Entity embedding dimensionality d.
  virtual size_t entity_dim() const = 0;

  /// Length of the predicate representation (d for translation models,
  /// d*d for RESCAL, 2*d*d for SE).
  virtual size_t predicate_dim() const = 0;

  virtual size_t num_entities() const = 0;
  virtual size_t num_predicates() const = 0;

  /// Vector representation of predicate `p` used for Eq. 4 cosine.
  virtual std::span<const float> PredicateVector(PredicateId p) const = 0;

  /// All predicate vectors as one contiguous row-major matrix
  /// (num_predicates() rows of predicate_dim() floats), when the model
  /// stores them that way; empty otherwise. Lets batched kernels
  /// (CosineSimilarityMany) stream the table in one pass instead of
  /// issuing a virtual call per row.
  virtual std::span<const float> PredicateMatrix() const { return {}; }

  /// Entity vector of node `u`.
  virtual std::span<const float> EntityVector(NodeId u) const = 0;

  /// Plausibility score of triple (h, r, t); higher = more plausible.
  virtual double ScoreTriple(NodeId h, PredicateId r, NodeId t) const = 0;

  /// Approximate resident size of the learned parameters, for Table XIII.
  virtual size_t MemoryBytes() const = 0;

  /// Cosine predicate similarity (Eq. 4), in [-1, 1].
  double PredicateCosine(PredicateId a, PredicateId b) const;
};

/// A concrete embedding holding explicit entity / predicate vectors with
/// TransE-style triple scoring (-||h + r - t||^2).
///
/// Used for (a) planted "reference" embeddings from the data generator,
/// (b) embeddings loaded from disk, and (c) as the storage backend for the
/// translation-family trainers.
class FixedEmbedding : public EmbeddingModel {
 public:
  /// Creates a zero-initialized embedding table.
  FixedEmbedding(std::string name, size_t num_entities, size_t num_predicates,
                 size_t entity_dim, size_t predicate_dim);

  const std::string& name() const override { return name_; }
  size_t entity_dim() const override { return entity_dim_; }
  size_t predicate_dim() const override { return predicate_dim_; }
  size_t num_entities() const override { return num_entities_; }
  size_t num_predicates() const override { return num_predicates_; }

  std::span<const float> PredicateVector(PredicateId p) const override {
    return {predicate_data_.data() + static_cast<size_t>(p) * predicate_dim_,
            predicate_dim_};
  }
  std::span<const float> PredicateMatrix() const override {
    return predicate_data_;
  }
  std::span<const float> EntityVector(NodeId u) const override {
    return {entity_data_.data() + static_cast<size_t>(u) * entity_dim_,
            entity_dim_};
  }

  /// Mutable accessors for trainers and generators.
  std::span<float> MutablePredicateVector(PredicateId p) {
    return {predicate_data_.data() + static_cast<size_t>(p) * predicate_dim_,
            predicate_dim_};
  }
  std::span<float> MutableEntityVector(NodeId u) {
    return {entity_data_.data() + static_cast<size_t>(u) * entity_dim_,
            entity_dim_};
  }

  double ScoreTriple(NodeId h, PredicateId r, NodeId t) const override;

  size_t MemoryBytes() const override {
    return (entity_data_.size() + predicate_data_.size()) * sizeof(float);
  }

 private:
  std::string name_;
  size_t num_entities_;
  size_t num_predicates_;
  size_t entity_dim_;
  size_t predicate_dim_;
  std::vector<float> entity_data_;
  std::vector<float> predicate_data_;
};

}  // namespace kgaq

#endif  // KGAQ_EMBEDDING_EMBEDDING_MODEL_H_
