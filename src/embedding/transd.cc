#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/timer.h"
#include "embedding/embedding_model.h"
#include "embedding/trainer.h"
#include "embedding/trainer_internal.h"
#include "embedding/vector_ops.h"

namespace kgaq {

namespace {

using embedding_internal::CorruptTriple;
using embedding_internal::ExtractTriples;
using embedding_internal::GaussianInit;
using embedding_internal::Triple;

/// TransD (equal entity/relation dims): each entity e and relation r carry a
/// projection vector (e_p, r_p); the dynamic mapping is
/// e_perp = e + (e_p . e) r_p, and scoring is ||h_perp + r - t_perp||^2.
/// The Eq. 4 predicate representation is the translation vector r.
class TransDModel : public EmbeddingModel {
 public:
  TransDModel(size_t num_entities, size_t num_predicates, size_t dim)
      : num_entities_(num_entities),
        num_predicates_(num_predicates),
        dim_(dim),
        entities_(num_entities * dim, 0.0f),
        entity_proj_(num_entities * dim, 0.0f),
        relations_(num_predicates * dim, 0.0f),
        relation_proj_(num_predicates * dim, 0.0f) {}

  const std::string& name() const override { return name_; }
  size_t entity_dim() const override { return dim_; }
  size_t predicate_dim() const override { return dim_; }
  size_t num_entities() const override { return num_entities_; }
  size_t num_predicates() const override { return num_predicates_; }

  std::span<const float> PredicateVector(PredicateId p) const override {
    return {relations_.data() + static_cast<size_t>(p) * dim_, dim_};
  }
  std::span<const float> EntityVector(NodeId u) const override {
    return {entities_.data() + static_cast<size_t>(u) * dim_, dim_};
  }

  std::span<float> Entity(NodeId u) {
    return {entities_.data() + static_cast<size_t>(u) * dim_, dim_};
  }
  std::span<float> EntityProj(NodeId u) {
    return {entity_proj_.data() + static_cast<size_t>(u) * dim_, dim_};
  }
  std::span<float> Relation(PredicateId p) {
    return {relations_.data() + static_cast<size_t>(p) * dim_, dim_};
  }
  std::span<float> RelationProj(PredicateId p) {
    return {relation_proj_.data() + static_cast<size_t>(p) * dim_, dim_};
  }
  std::span<const float> EntityProj(NodeId u) const {
    return {entity_proj_.data() + static_cast<size_t>(u) * dim_, dim_};
  }
  std::span<const float> RelationProj(PredicateId p) const {
    return {relation_proj_.data() + static_cast<size_t>(p) * dim_, dim_};
  }

  double ScoreTriple(NodeId h, PredicateId r, NodeId t) const override {
    auto hv = EntityVector(h);
    auto tv = EntityVector(t);
    auto rv = PredicateVector(r);
    auto hp = EntityProj(h);
    auto tp = EntityProj(t);
    auto rp = RelationProj(r);
    const double ch = Dot(hp, hv);
    const double ct = Dot(tp, tv);
    double acc = 0.0;
    for (size_t i = 0; i < dim_; ++i) {
      const double hperp = hv[i] + ch * rp[i];
      const double tperp = tv[i] + ct * rp[i];
      const double d = hperp + rv[i] - tperp;
      acc += d * d;
    }
    return -acc;
  }

  size_t MemoryBytes() const override {
    return (entities_.size() + entity_proj_.size() + relations_.size() +
            relation_proj_.size()) *
           sizeof(float);
  }

  std::vector<float>& entities() { return entities_; }
  std::vector<float>& entity_proj() { return entity_proj_; }
  std::vector<float>& relations() { return relations_; }
  std::vector<float>& relation_proj() { return relation_proj_; }

 private:
  std::string name_ = "TransD";
  size_t num_entities_;
  size_t num_predicates_;
  size_t dim_;
  std::vector<float> entities_;
  std::vector<float> entity_proj_;
  std::vector<float> relations_;
  std::vector<float> relation_proj_;
};

double Distance(const TransDModel& m, const Triple& t) {
  return -m.ScoreTriple(t.head, t.relation, t.tail);
}

void SgdStep(TransDModel& m, const Triple& t, double lr, double sign) {
  const size_t dim = m.entity_dim();
  auto h = m.Entity(t.head);
  auto tt = m.Entity(t.tail);
  auto hp = m.EntityProj(t.head);
  auto tp = m.EntityProj(t.tail);
  auto r = m.Relation(t.relation);
  auto rp = m.RelationProj(t.relation);
  const double ch = Dot(std::span<const float>(hp), h);
  const double ct = Dot(std::span<const float>(tp), tt);

  std::vector<double> g(dim);
  for (size_t i = 0; i < dim; ++i) {
    const double hperp = h[i] + ch * rp[i];
    const double tperp = tt[i] + ct * rp[i];
    g[i] = 2.0 * (hperp + r[i] - tperp);
  }
  double grp = 0.0;  // g . r_p
  for (size_t i = 0; i < dim; ++i) grp += g[i] * rp[i];

  const double step = lr * sign;
  for (size_t i = 0; i < dim; ++i) {
    const double grad_h = g[i] + grp * hp[i];
    const double grad_t = -(g[i] + grp * tp[i]);
    const double grad_hp = grp * h[i];
    const double grad_tp = -grp * tt[i];
    const double grad_rp = ch * g[i] - ct * g[i];
    h[i] -= static_cast<float>(step * grad_h);
    tt[i] -= static_cast<float>(step * grad_t);
    hp[i] -= static_cast<float>(step * grad_hp);
    tp[i] -= static_cast<float>(step * grad_tp);
    r[i] -= static_cast<float>(step * g[i]);
    rp[i] -= static_cast<float>(step * grad_rp);
  }
}

}  // namespace

Result<std::unique_ptr<EmbeddingModel>> TrainTransD(
    const KnowledgeGraph& g, const EmbeddingTrainConfig& config,
    EmbeddingTrainStats* stats) {
  if (config.dim == 0) return Status::InvalidArgument("dim must be > 0");
  auto triples = ExtractTriples(g);
  if (triples.empty()) {
    return Status::FailedPrecondition("graph has no edges to train on");
  }

  WallTimer timer;
  Rng rng(config.seed);
  auto model = std::make_unique<TransDModel>(g.NumNodes(), g.NumPredicates(),
                                             config.dim);
  GaussianInit(model->entities(), config.dim, rng);
  GaussianInit(model->entity_proj(), config.dim, rng);
  GaussianInit(model->relations(), config.dim, rng);
  GaussianInit(model->relation_proj(), config.dim, rng);

  double avg_loss = 0.0;
  for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
    for (NodeId u = 0; u < g.NumNodes(); ++u) {
      NormalizeInPlace(model->Entity(u));
    }
    Shuffle(triples, rng);
    double epoch_loss = 0.0;
    size_t updates = 0;
    for (const Triple& pos : triples) {
      for (size_t k = 0; k < config.negatives_per_positive; ++k) {
        Triple neg = CorruptTriple(pos, g.NumNodes(), rng);
        const double loss =
            config.margin + Distance(*model, pos) - Distance(*model, neg);
        if (loss > 0.0) {
          epoch_loss += loss;
          ++updates;
          SgdStep(*model, pos, config.learning_rate, +1.0);
          SgdStep(*model, neg, config.learning_rate, -1.0);
        }
      }
    }
    avg_loss = updates == 0 ? 0.0 : epoch_loss / static_cast<double>(updates);
  }

  if (stats != nullptr) {
    stats->final_avg_loss = avg_loss;
    stats->train_seconds = timer.ElapsedSeconds();
    stats->num_triples = triples.size();
    stats->memory_bytes = model->MemoryBytes();
  }
  return std::unique_ptr<EmbeddingModel>(std::move(model));
}

}  // namespace kgaq
