#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/random.h"
#include "embedding/embedding_model.h"
#include "embedding/trainer.h"
#include "embedding/trainer_internal.h"
#include "embedding/vector_ops.h"

namespace kgaq {

namespace {

using embedding_internal::DeltaStore;
using embedding_internal::GaussianInit;
using embedding_internal::Triple;

/// TransD (equal entity/relation dims): each entity e and relation r carry a
/// projection vector (e_p, r_p); the dynamic mapping is
/// e_perp = e + (e_p . e) r_p, and scoring is ||h_perp + r - t_perp||^2.
/// The Eq. 4 predicate representation is the translation vector r.
class TransDModel : public EmbeddingModel {
 public:
  TransDModel(size_t num_entities, size_t num_predicates, size_t dim)
      : num_entities_(num_entities),
        num_predicates_(num_predicates),
        dim_(dim),
        entities_(num_entities * dim, 0.0f),
        entity_proj_(num_entities * dim, 0.0f),
        relations_(num_predicates * dim, 0.0f),
        relation_proj_(num_predicates * dim, 0.0f) {}

  const std::string& name() const override { return name_; }
  size_t entity_dim() const override { return dim_; }
  size_t predicate_dim() const override { return dim_; }
  size_t num_entities() const override { return num_entities_; }
  size_t num_predicates() const override { return num_predicates_; }

  std::span<const float> PredicateVector(PredicateId p) const override {
    return {relations_.data() + static_cast<size_t>(p) * dim_, dim_};
  }
  std::span<const float> EntityVector(NodeId u) const override {
    return {entities_.data() + static_cast<size_t>(u) * dim_, dim_};
  }

  std::span<float> Entity(NodeId u) {
    return {entities_.data() + static_cast<size_t>(u) * dim_, dim_};
  }
  std::span<float> EntityProj(NodeId u) {
    return {entity_proj_.data() + static_cast<size_t>(u) * dim_, dim_};
  }
  std::span<float> Relation(PredicateId p) {
    return {relations_.data() + static_cast<size_t>(p) * dim_, dim_};
  }
  std::span<float> RelationProj(PredicateId p) {
    return {relation_proj_.data() + static_cast<size_t>(p) * dim_, dim_};
  }
  std::span<const float> EntityProj(NodeId u) const {
    return {entity_proj_.data() + static_cast<size_t>(u) * dim_, dim_};
  }
  std::span<const float> RelationProj(PredicateId p) const {
    return {relation_proj_.data() + static_cast<size_t>(p) * dim_, dim_};
  }

  double ScoreTriple(NodeId h, PredicateId r, NodeId t) const override {
    auto hv = EntityVector(h);
    auto tv = EntityVector(t);
    auto rv = PredicateVector(r);
    auto hp = EntityProj(h);
    auto tp = EntityProj(t);
    auto rp = RelationProj(r);
    const double ch = Dot(hp, hv);
    const double ct = Dot(tp, tv);
    double acc = 0.0;
    for (size_t i = 0; i < dim_; ++i) {
      const double hperp = hv[i] + ch * rp[i];
      const double tperp = tv[i] + ct * rp[i];
      const double d = hperp + rv[i] - tperp;
      acc += d * d;
    }
    return -acc;
  }

  size_t MemoryBytes() const override {
    return (entities_.size() + entity_proj_.size() + relations_.size() +
            relation_proj_.size()) *
           sizeof(float);
  }

  std::vector<float>& entities() { return entities_; }
  std::vector<float>& entity_proj() { return entity_proj_; }
  std::vector<float>& relations() { return relations_; }
  std::vector<float>& relation_proj() { return relation_proj_; }

 private:
  std::string name_ = "TransD";
  size_t num_entities_;
  size_t num_predicates_;
  size_t dim_;
  std::vector<float> entities_;
  std::vector<float> entity_proj_;
  std::vector<float> relations_;
  std::vector<float> relation_proj_;
};

struct TransDPolicy {
  using Model = TransDModel;
  static constexpr size_t kEntities = 0;
  static constexpr size_t kEntityProj = 1;
  static constexpr size_t kRelations = 2;
  static constexpr size_t kRelationProj = 3;

  struct Ref {
    std::span<float> h, t, hp, tp, r, rp;
  };
  struct Scratch {
    explicit Scratch(size_t dim) : g(dim) {}
    std::vector<double> g;
  };

  static std::unique_ptr<Model> Init(const KnowledgeGraph& graph,
                                     const EmbeddingTrainConfig& config,
                                     Rng& rng) {
    auto model = std::make_unique<TransDModel>(
        graph.NumNodes(), graph.NumPredicates(), config.dim);
    GaussianInit(model->entities(), config.dim, rng);
    GaussianInit(model->entity_proj(), config.dim, rng);
    GaussianInit(model->relations(), config.dim, rng);
    GaussianInit(model->relation_proj(), config.dim, rng);
    return model;
  }

  static std::span<float> EntityRow(Model& m, NodeId u) {
    return m.Entity(u);
  }

  static Ref Bind(Model& m, const Triple& t) {
    return {m.Entity(t.head),        m.Entity(t.tail),
            m.EntityProj(t.head),    m.EntityProj(t.tail),
            m.Relation(t.relation),  m.RelationProj(t.relation)};
  }

  static double Distance(const Ref& ref) {
    const double ch = Dot(ref.hp, ref.h);
    const double ct = Dot(ref.tp, ref.t);
    const size_t dim = ref.h.size();
    double acc = 0.0;
    for (size_t i = 0; i < dim; ++i) {
      const double hperp = ref.h[i] + ch * ref.rp[i];
      const double tperp = ref.t[i] + ct * ref.rp[i];
      const double d = hperp + ref.r[i] - tperp;
      acc += d * d;
    }
    return acc;
  }

  // g = 2 * (h_perp + r - t_perp); returns (g . r_p, c_h, c_t).
  struct Grad {
    double grp, ch, ct;
  };
  static Grad Gradient(const Ref& ref, Scratch& scratch) {
    const size_t dim = ref.h.size();
    const double ch = Dot(ref.hp, ref.h);
    const double ct = Dot(ref.tp, ref.t);
    for (size_t i = 0; i < dim; ++i) {
      const double hperp = ref.h[i] + ch * ref.rp[i];
      const double tperp = ref.t[i] + ct * ref.rp[i];
      scratch.g[i] = 2.0 * (hperp + ref.r[i] - tperp);
    }
    double grp = 0.0;
    for (size_t i = 0; i < dim; ++i) grp += scratch.g[i] * ref.rp[i];
    return {grp, ch, ct};
  }

  static double DistancePos(const Ref& ref, Scratch&) {
    return Distance(ref);
  }

  static void StepPair(const Ref& pos, const Ref& neg, double lr,
                       Scratch& scratch) {
    Step(pos, lr, scratch);
    Step(neg, -lr, scratch);
  }

  static void Step(const Ref& ref, double lr_signed, Scratch& scratch) {
    const Grad gr = Gradient(ref, scratch);
    const size_t dim = ref.h.size();
    for (size_t i = 0; i < dim; ++i) {
      const double grad_h = scratch.g[i] + gr.grp * ref.hp[i];
      const double grad_t = -(scratch.g[i] + gr.grp * ref.tp[i]);
      const double grad_hp = gr.grp * ref.h[i];
      const double grad_tp = -gr.grp * ref.t[i];
      const double grad_rp = gr.ch * scratch.g[i] - gr.ct * scratch.g[i];
      ref.h[i] -= static_cast<float>(lr_signed * grad_h);
      ref.t[i] -= static_cast<float>(lr_signed * grad_t);
      ref.hp[i] -= static_cast<float>(lr_signed * grad_hp);
      ref.tp[i] -= static_cast<float>(lr_signed * grad_tp);
      ref.r[i] -= static_cast<float>(lr_signed * scratch.g[i]);
      ref.rp[i] -= static_cast<float>(lr_signed * grad_rp);
    }
  }

  static void RegisterDeltaArrays(Model& m, DeltaStore& store) {
    store.RegisterArray(m.entities().data(), m.entity_dim(),
                        m.num_entities());
    store.RegisterArray(m.entity_proj().data(), m.entity_dim(),
                        m.num_entities());
    store.RegisterArray(m.relations().data(), m.entity_dim(),
                        m.num_predicates());
    store.RegisterArray(m.relation_proj().data(), m.entity_dim(),
                        m.num_predicates());
  }

  static void StepDelta(const Ref& ref, const Triple& t, double lr_signed,
                        DeltaStore& store, Scratch& scratch) {
    const Grad gr = Gradient(ref, scratch);
    auto dh = store.Row(kEntities, t.head);
    auto dt = store.Row(kEntities, t.tail);
    auto dhp = store.Row(kEntityProj, t.head);
    auto dtp = store.Row(kEntityProj, t.tail);
    auto dr = store.Row(kRelations, t.relation);
    auto drp = store.Row(kRelationProj, t.relation);
    const size_t dim = ref.h.size();
    for (size_t i = 0; i < dim; ++i) {
      const double grad_h = scratch.g[i] + gr.grp * ref.hp[i];
      const double grad_t = -(scratch.g[i] + gr.grp * ref.tp[i]);
      const double grad_hp = gr.grp * ref.h[i];
      const double grad_tp = -gr.grp * ref.t[i];
      const double grad_rp = gr.ch * scratch.g[i] - gr.ct * scratch.g[i];
      dh[i] -= lr_signed * grad_h;
      dt[i] -= lr_signed * grad_t;
      dhp[i] -= lr_signed * grad_hp;
      dtp[i] -= lr_signed * grad_tp;
      dr[i] -= lr_signed * scratch.g[i];
      drp[i] -= lr_signed * grad_rp;
    }
  }

  static void PostBatchApply(Model&, const std::vector<DeltaStore>&) {}
};

}  // namespace

Result<std::unique_ptr<EmbeddingModel>> TrainTransD(
    const KnowledgeGraph& g, const EmbeddingTrainConfig& config,
    EmbeddingTrainStats* stats) {
  return embedding_internal::TrainWithDriver<TransDPolicy>(g, config, stats);
}

}  // namespace kgaq
