#include <cmath>
#include <memory>
#include <span>
#include <vector>

#include "common/random.h"
#include "embedding/embedding_model.h"
#include "embedding/trainer.h"
#include "embedding/trainer_internal.h"
#include "embedding/vector_ops.h"

namespace kgaq {

namespace {

using embedding_internal::DeltaStore;
using embedding_internal::Triple;

/// TransE (Bordes et al., NIPS'13): d(h, r, t) = ||h + r - t||^2 on a
/// FixedEmbedding. The epoch loop lives in TrainWithDriver; this policy is
/// only the init recipe and the distance / step kernels. The sequential
/// path is golden-tested against the pre-refactor trainer, so Step must
/// stay bitwise-equal to the legacy per-element recipe (SaxpyTriple is).
struct TransEPolicy {
  using Model = FixedEmbedding;
  static constexpr size_t kEntities = 0;
  static constexpr size_t kPredicates = 1;

  struct Ref {
    std::span<float> h, r, t;
  };
  struct Scratch {
    explicit Scratch(size_t dim) : resid(dim) {}
    // Residual h + r - t cached by DistancePos, reused by StepPair for
    // the positive's update (rows are unchanged in between).
    std::vector<double> resid;
  };

  static std::unique_ptr<Model> Init(const KnowledgeGraph& g,
                                     const EmbeddingTrainConfig& config,
                                     Rng& rng) {
    auto model = std::make_unique<FixedEmbedding>(
        "TransE", g.NumNodes(), g.NumPredicates(), config.dim, config.dim);
    // Uniform(-6/sqrt(d), 6/sqrt(d)) init per Bordes et al.
    const double b = 6.0 / std::sqrt(static_cast<double>(config.dim));
    for (NodeId u = 0; u < g.NumNodes(); ++u) {
      for (auto& x : model->MutableEntityVector(u)) {
        x = static_cast<float>((2.0 * rng.NextDouble() - 1.0) * b);
      }
    }
    for (PredicateId p = 0; p < g.NumPredicates(); ++p) {
      auto r = model->MutablePredicateVector(p);
      for (auto& x : r) {
        x = static_cast<float>((2.0 * rng.NextDouble() - 1.0) * b);
      }
      NormalizeInPlace(r);
    }
    return model;
  }

  static std::span<float> EntityRow(Model& m, NodeId u) {
    return m.MutableEntityVector(u);
  }

  static Ref Bind(Model& m, const Triple& t) {
    return {m.MutableEntityVector(t.head),
            m.MutablePredicateVector(t.relation),
            m.MutableEntityVector(t.tail)};
  }

  static double Distance(const Ref& ref) {
    return SquaredL2Diff(ref.h, ref.r, ref.t);
  }

  static double DistancePos(const Ref& ref, Scratch& scratch) {
    return SquaredL2DiffResidual(ref.h, ref.r, ref.t, scratch.resid);
  }

  static void StepPair(const Ref& pos, const Ref& neg, double lr,
                       Scratch& scratch) {
    SaxpyTripleFromResidual(pos.h, pos.r, pos.t, scratch.resid, lr);
    SaxpyTriple(neg.h, neg.r, neg.t, -lr);
  }

  static void RegisterDeltaArrays(Model& m, DeltaStore& store) {
    store.RegisterArray(m.MutableEntityVector(0).data(), m.entity_dim(),
                        m.num_entities());
    store.RegisterArray(m.MutablePredicateVector(0).data(),
                        m.predicate_dim(), m.num_predicates());
  }

  static void StepDelta(const Ref& ref, const Triple& t, double lr_signed,
                        DeltaStore& store, Scratch&) {
    auto dh = store.Row(kEntities, t.head);
    auto dr = store.Row(kPredicates, t.relation);
    auto dt = store.Row(kEntities, t.tail);
    for (size_t i = 0; i < ref.h.size(); ++i) {
      const double g =
          2.0 * (static_cast<double>(ref.h[i]) + ref.r[i] - ref.t[i]);
      const double s = lr_signed * g;
      dh[i] -= s;
      dr[i] -= s;
      dt[i] += s;
    }
  }

  static void PostBatchApply(Model&, const std::vector<DeltaStore>&) {}
};

}  // namespace

Result<std::unique_ptr<EmbeddingModel>> TrainTransE(
    const KnowledgeGraph& g, const EmbeddingTrainConfig& config,
    EmbeddingTrainStats* stats) {
  return embedding_internal::TrainWithDriver<TransEPolicy>(g, config, stats);
}

}  // namespace kgaq
