#include <cmath>
#include <memory>

#include "common/random.h"
#include "common/timer.h"
#include "embedding/embedding_model.h"
#include "embedding/trainer.h"
#include "embedding/trainer_internal.h"
#include "embedding/vector_ops.h"

namespace kgaq {

namespace {

using embedding_internal::CorruptTriple;
using embedding_internal::ExtractTriples;
using embedding_internal::Triple;

// d(h, r, t) = ||h + r - t||^2, lower = more plausible.
double TripleDistance(FixedEmbedding& m, const Triple& t) {
  auto h = m.EntityVector(t.head);
  auto r = m.PredicateVector(t.relation);
  auto tt = m.EntityVector(t.tail);
  double acc = 0.0;
  for (size_t i = 0; i < h.size(); ++i) {
    const double d = static_cast<double>(h[i]) + r[i] - tt[i];
    acc += d * d;
  }
  return acc;
}

// Applies a single SGD step on (h, r, t) with sign: -1 pulls the triple
// together (positive), +1 pushes it apart (negative).
void SgdStep(FixedEmbedding& m, const Triple& t, double lr, double sign) {
  auto h = m.MutableEntityVector(t.head);
  auto r = m.MutablePredicateVector(t.relation);
  auto tt = m.MutableEntityVector(t.tail);
  const size_t d = h.size();
  for (size_t i = 0; i < d; ++i) {
    const double g = 2.0 * (static_cast<double>(h[i]) + r[i] - tt[i]);
    const double step = lr * sign * g;
    h[i] -= static_cast<float>(step);
    r[i] -= static_cast<float>(step);
    tt[i] += static_cast<float>(step);
  }
}

}  // namespace

Result<std::unique_ptr<EmbeddingModel>> TrainTransE(
    const KnowledgeGraph& g, const EmbeddingTrainConfig& config,
    EmbeddingTrainStats* stats) {
  if (config.dim == 0) return Status::InvalidArgument("dim must be > 0");
  auto triples = ExtractTriples(g);
  if (triples.empty()) {
    return Status::FailedPrecondition("graph has no edges to train on");
  }

  WallTimer timer;
  Rng rng(config.seed);
  auto model = std::make_unique<FixedEmbedding>(
      "TransE", g.NumNodes(), g.NumPredicates(), config.dim, config.dim);

  // Uniform(-6/sqrt(d), 6/sqrt(d)) init per Bordes et al.
  {
    const double b = 6.0 / std::sqrt(static_cast<double>(config.dim));
    for (NodeId u = 0; u < g.NumNodes(); ++u) {
      for (auto& x : model->MutableEntityVector(u)) {
        x = static_cast<float>((2.0 * rng.NextDouble() - 1.0) * b);
      }
    }
    for (PredicateId p = 0; p < g.NumPredicates(); ++p) {
      auto r = model->MutablePredicateVector(p);
      for (auto& x : r) {
        x = static_cast<float>((2.0 * rng.NextDouble() - 1.0) * b);
      }
      NormalizeInPlace(r);
    }
  }

  double avg_loss = 0.0;
  for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
    // Entity vectors are re-normalized each epoch (the Bordes et al. trick
    // preventing trivial loss minimization by norm growth).
    for (NodeId u = 0; u < g.NumNodes(); ++u) {
      NormalizeInPlace(model->MutableEntityVector(u));
    }
    Shuffle(triples, rng);
    double epoch_loss = 0.0;
    size_t updates = 0;
    for (const Triple& pos : triples) {
      for (size_t k = 0; k < config.negatives_per_positive; ++k) {
        Triple neg = CorruptTriple(pos, g.NumNodes(), rng);
        const double dp = TripleDistance(*model, pos);
        const double dn = TripleDistance(*model, neg);
        const double loss = config.margin + dp - dn;
        if (loss > 0.0) {
          epoch_loss += loss;
          ++updates;
          SgdStep(*model, pos, config.learning_rate, +1.0);
          SgdStep(*model, neg, config.learning_rate, -1.0);
        }
      }
    }
    avg_loss = updates == 0 ? 0.0 : epoch_loss / static_cast<double>(updates);
  }

  if (stats != nullptr) {
    stats->final_avg_loss = avg_loss;
    stats->train_seconds = timer.ElapsedSeconds();
    stats->num_triples = triples.size();
    stats->memory_bytes = model->MemoryBytes();
  }
  return std::unique_ptr<EmbeddingModel>(std::move(model));
}

}  // namespace kgaq
