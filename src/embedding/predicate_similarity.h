#ifndef KGAQ_EMBEDDING_PREDICATE_SIMILARITY_H_
#define KGAQ_EMBEDDING_PREDICATE_SIMILARITY_H_

#include <vector>

#include "embedding/embedding_model.h"
#include "kg/types.h"

namespace kgaq {

/// Per-query cache of Eq. 4 predicate similarities.
///
/// For a query edge with predicate q, every algorithm downstream (semantic
/// similarity Eq. 2, transition probabilities Eq. 5) needs sim(p, q) for KG
/// predicates p. Cosine can be negative while the paper's similarities live
/// in [0, 1] and Lemma 1 (irreducibility) requires them strictly positive,
/// so raw cosines are clamped to [floor, 1].
class PredicateSimilarityCache {
 public:
  /// Default positivity floor; 0.001 matches the self-loop similarity the
  /// paper injects, keeping every transition probability nonzero.
  static constexpr double kDefaultFloor = 1e-3;

  /// Precomputes sim(p, query_predicate) for all p in one pass — O(|P| * d),
  /// independent of |E|.
  PredicateSimilarityCache(const EmbeddingModel& model,
                           PredicateId query_predicate,
                           double floor = kDefaultFloor);

  /// Clamped similarity of predicate `p` to the query predicate, in
  /// [floor, 1].
  double Similarity(PredicateId p) const { return sims_[p]; }

  PredicateId query_predicate() const { return query_predicate_; }
  size_t size() const { return sims_.size(); }

 private:
  PredicateId query_predicate_;
  std::vector<double> sims_;
};

}  // namespace kgaq

#endif  // KGAQ_EMBEDDING_PREDICATE_SIMILARITY_H_
