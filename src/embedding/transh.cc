#include <cmath>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/random.h"
#include "embedding/embedding_model.h"
#include "embedding/trainer.h"
#include "embedding/trainer_internal.h"
#include "embedding/vector_ops.h"

namespace kgaq {

namespace {

using embedding_internal::DeltaStore;
using embedding_internal::GaussianInit;
using embedding_internal::Triple;

/// TransH: entities are projected onto a relation-specific hyperplane with
/// unit normal w_r before translation by d_r. The Eq. 4 predicate
/// representation is the translation vector d_r.
class TransHModel : public EmbeddingModel {
 public:
  TransHModel(size_t num_entities, size_t num_predicates, size_t dim)
      : num_entities_(num_entities),
        num_predicates_(num_predicates),
        dim_(dim),
        entities_(num_entities * dim, 0.0f),
        translations_(num_predicates * dim, 0.0f),
        normals_(num_predicates * dim, 0.0f) {}

  const std::string& name() const override { return name_; }
  size_t entity_dim() const override { return dim_; }
  size_t predicate_dim() const override { return dim_; }
  size_t num_entities() const override { return num_entities_; }
  size_t num_predicates() const override { return num_predicates_; }

  std::span<const float> PredicateVector(PredicateId p) const override {
    return {translations_.data() + static_cast<size_t>(p) * dim_, dim_};
  }
  std::span<const float> EntityVector(NodeId u) const override {
    return {entities_.data() + static_cast<size_t>(u) * dim_, dim_};
  }

  std::span<float> Entity(NodeId u) {
    return {entities_.data() + static_cast<size_t>(u) * dim_, dim_};
  }
  std::span<float> Translation(PredicateId p) {
    return {translations_.data() + static_cast<size_t>(p) * dim_, dim_};
  }
  std::span<float> Normal(PredicateId p) {
    return {normals_.data() + static_cast<size_t>(p) * dim_, dim_};
  }
  std::span<const float> Normal(PredicateId p) const {
    return {normals_.data() + static_cast<size_t>(p) * dim_, dim_};
  }

  double ScoreTriple(NodeId h, PredicateId r, NodeId t) const override {
    auto hv = EntityVector(h);
    auto tv = EntityVector(t);
    auto dv = PredicateVector(r);
    auto wv = Normal(r);
    const double wh = Dot(wv, hv);
    const double wt = Dot(wv, tv);
    double acc = 0.0;
    for (size_t i = 0; i < dim_; ++i) {
      const double hp = hv[i] - wh * wv[i];
      const double tp = tv[i] - wt * wv[i];
      const double d = hp + dv[i] - tp;
      acc += d * d;
    }
    return -acc;
  }

  size_t MemoryBytes() const override {
    return (entities_.size() + translations_.size() + normals_.size()) *
           sizeof(float);
  }

  std::vector<float>& entities() { return entities_; }
  std::vector<float>& translations() { return translations_; }
  std::vector<float>& normals() { return normals_; }

 private:
  std::string name_ = "TransH";
  size_t num_entities_;
  size_t num_predicates_;
  size_t dim_;
  std::vector<float> entities_;
  std::vector<float> translations_;
  std::vector<float> normals_;
};

struct TransHPolicy {
  using Model = TransHModel;
  static constexpr size_t kEntities = 0;
  static constexpr size_t kTranslations = 1;
  static constexpr size_t kNormals = 2;

  struct Ref {
    std::span<float> h, t, d, w;
  };
  struct Scratch {
    explicit Scratch(size_t dim) : g(dim) {}
    std::vector<double> g;
  };

  static std::unique_ptr<Model> Init(const KnowledgeGraph& graph,
                                     const EmbeddingTrainConfig& config,
                                     Rng& rng) {
    auto model = std::make_unique<TransHModel>(
        graph.NumNodes(), graph.NumPredicates(), config.dim);
    GaussianInit(model->entities(), config.dim, rng);
    GaussianInit(model->translations(), config.dim, rng);
    GaussianInit(model->normals(), config.dim, rng);
    for (PredicateId p = 0; p < graph.NumPredicates(); ++p) {
      NormalizeInPlace(model->Normal(p));
    }
    return model;
  }

  static std::span<float> EntityRow(Model& m, NodeId u) {
    return m.Entity(u);
  }

  static Ref Bind(Model& m, const Triple& t) {
    return {m.Entity(t.head), m.Entity(t.tail), m.Translation(t.relation),
            m.Normal(t.relation)};
  }

  static double Distance(const Ref& ref) {
    const double wh = Dot(ref.w, ref.h);
    const double wt = Dot(ref.w, ref.t);
    const size_t dim = ref.h.size();
    double acc = 0.0;
    for (size_t i = 0; i < dim; ++i) {
      const double hp = ref.h[i] - wh * ref.w[i];
      const double tp = ref.t[i] - wt * ref.w[i];
      const double d = hp + ref.d[i] - tp;
      acc += d * d;
    }
    return acc;
  }

  // g = 2 * (proj(h) + d - proj(t)); shared by Step and StepDelta. Returns
  // (g . w, wh - wt) needed for the normal's gradient.
  static std::pair<double, double> Gradient(const Ref& ref, Scratch& scratch) {
    const size_t dim = ref.h.size();
    const double wh = Dot(ref.w, ref.h);
    const double wt = Dot(ref.w, ref.t);
    for (size_t i = 0; i < dim; ++i) {
      const double hp = ref.h[i] - wh * ref.w[i];
      const double tp = ref.t[i] - wt * ref.w[i];
      scratch.g[i] = 2.0 * (hp + ref.d[i] - tp);
    }
    double gw = 0.0;
    for (size_t i = 0; i < dim; ++i) gw += scratch.g[i] * ref.w[i];
    return {gw, wh - wt};
  }

  static double DistancePos(const Ref& ref, Scratch&) {
    return Distance(ref);
  }

  static void StepPair(const Ref& pos, const Ref& neg, double lr,
                       Scratch& scratch) {
    Step(pos, lr, scratch);
    Step(neg, -lr, scratch);
  }

  static void Step(const Ref& ref, double lr_signed, Scratch& scratch) {
    const auto [gw, wu] = Gradient(ref, scratch);
    const size_t dim = ref.h.size();
    for (size_t i = 0; i < dim; ++i) {
      const double u = static_cast<double>(ref.h[i]) - ref.t[i];
      const double grad_h = scratch.g[i] - gw * ref.w[i];
      const double grad_w = -(gw * u + wu * scratch.g[i]);
      ref.h[i] -= static_cast<float>(lr_signed * grad_h);
      ref.t[i] += static_cast<float>(lr_signed * grad_h);
      ref.d[i] -= static_cast<float>(lr_signed * scratch.g[i]);
      ref.w[i] -= static_cast<float>(lr_signed * grad_w);
    }
    NormalizeInPlace(ref.w);
  }

  static void RegisterDeltaArrays(Model& m, DeltaStore& store) {
    store.RegisterArray(m.entities().data(), m.entity_dim(),
                        m.num_entities());
    store.RegisterArray(m.translations().data(), m.entity_dim(),
                        m.num_predicates());
    store.RegisterArray(m.normals().data(), m.entity_dim(),
                        m.num_predicates());
  }

  static void StepDelta(const Ref& ref, const Triple& t, double lr_signed,
                        DeltaStore& store, Scratch& scratch) {
    const auto [gw, wu] = Gradient(ref, scratch);
    auto dh = store.Row(kEntities, t.head);
    auto dt = store.Row(kEntities, t.tail);
    auto dd = store.Row(kTranslations, t.relation);
    auto dw = store.Row(kNormals, t.relation);
    const size_t dim = ref.h.size();
    for (size_t i = 0; i < dim; ++i) {
      const double u = static_cast<double>(ref.h[i]) - ref.t[i];
      const double grad_h = scratch.g[i] - gw * ref.w[i];
      const double grad_w = -(gw * u + wu * scratch.g[i]);
      dh[i] -= lr_signed * grad_h;
      dt[i] += lr_signed * grad_h;
      dd[i] -= lr_signed * scratch.g[i];
      dw[i] -= lr_signed * grad_w;
    }
  }

  // Hyperplane normals must stay unit; the sequential step renormalizes
  // after every update, the batched recipe once per batch apply — but only
  // the normals the batch actually touched (renormalizing an untouched
  // near-unit vector would still perturb its low bits, and a full
  // num_predicates pass per batch is pure overhead). Rows are deduped and
  // sorted, so the order is fixed by batch content, never by threads.
  static void PostBatchApply(Model& m, const std::vector<DeltaStore>& stores) {
    std::vector<size_t> touched;
    for (const DeltaStore& store : stores) {
      store.ForEachActive([&](size_t array, size_t row) {
        if (array == kNormals) touched.push_back(row);
      });
    }
    std::sort(touched.begin(), touched.end());
    touched.erase(std::unique(touched.begin(), touched.end()),
                  touched.end());
    for (size_t row : touched) {
      NormalizeInPlace(m.Normal(static_cast<PredicateId>(row)));
    }
  }
};

}  // namespace

Result<std::unique_ptr<EmbeddingModel>> TrainTransH(
    const KnowledgeGraph& g, const EmbeddingTrainConfig& config,
    EmbeddingTrainStats* stats) {
  return embedding_internal::TrainWithDriver<TransHPolicy>(g, config, stats);
}

}  // namespace kgaq
