#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/timer.h"
#include "embedding/embedding_model.h"
#include "embedding/trainer.h"
#include "embedding/trainer_internal.h"
#include "embedding/vector_ops.h"

namespace kgaq {

namespace {

using embedding_internal::CorruptTriple;
using embedding_internal::ExtractTriples;
using embedding_internal::GaussianInit;
using embedding_internal::Triple;

/// TransH: entities are projected onto a relation-specific hyperplane with
/// unit normal w_r before translation by d_r. The Eq. 4 predicate
/// representation is the translation vector d_r.
class TransHModel : public EmbeddingModel {
 public:
  TransHModel(size_t num_entities, size_t num_predicates, size_t dim)
      : num_entities_(num_entities),
        num_predicates_(num_predicates),
        dim_(dim),
        entities_(num_entities * dim, 0.0f),
        translations_(num_predicates * dim, 0.0f),
        normals_(num_predicates * dim, 0.0f) {}

  const std::string& name() const override { return name_; }
  size_t entity_dim() const override { return dim_; }
  size_t predicate_dim() const override { return dim_; }
  size_t num_entities() const override { return num_entities_; }
  size_t num_predicates() const override { return num_predicates_; }

  std::span<const float> PredicateVector(PredicateId p) const override {
    return {translations_.data() + static_cast<size_t>(p) * dim_, dim_};
  }
  std::span<const float> EntityVector(NodeId u) const override {
    return {entities_.data() + static_cast<size_t>(u) * dim_, dim_};
  }

  std::span<float> Entity(NodeId u) {
    return {entities_.data() + static_cast<size_t>(u) * dim_, dim_};
  }
  std::span<float> Translation(PredicateId p) {
    return {translations_.data() + static_cast<size_t>(p) * dim_, dim_};
  }
  std::span<float> Normal(PredicateId p) {
    return {normals_.data() + static_cast<size_t>(p) * dim_, dim_};
  }
  std::span<const float> Normal(PredicateId p) const {
    return {normals_.data() + static_cast<size_t>(p) * dim_, dim_};
  }

  double ScoreTriple(NodeId h, PredicateId r, NodeId t) const override {
    auto hv = EntityVector(h);
    auto tv = EntityVector(t);
    auto dv = PredicateVector(r);
    auto wv = Normal(r);
    const double wh = Dot(wv, hv);
    const double wt = Dot(wv, tv);
    double acc = 0.0;
    for (size_t i = 0; i < dim_; ++i) {
      const double hp = hv[i] - wh * wv[i];
      const double tp = tv[i] - wt * wv[i];
      const double d = hp + dv[i] - tp;
      acc += d * d;
    }
    return -acc;
  }

  size_t MemoryBytes() const override {
    return (entities_.size() + translations_.size() + normals_.size()) *
           sizeof(float);
  }

  std::vector<float>& entities() { return entities_; }
  std::vector<float>& translations() { return translations_; }
  std::vector<float>& normals() { return normals_; }

 private:
  std::string name_ = "TransH";
  size_t num_entities_;
  size_t num_predicates_;
  size_t dim_;
  std::vector<float> entities_;
  std::vector<float> translations_;
  std::vector<float> normals_;
};

double Distance(const TransHModel& m, const Triple& t) {
  return -m.ScoreTriple(t.head, t.relation, t.tail);
}

// One SGD step; sign = +1 tightens a positive triple, -1 loosens a negative.
void SgdStep(TransHModel& m, const Triple& t, double lr, double sign) {
  const size_t dim = m.entity_dim();
  auto h = m.Entity(t.head);
  auto tt = m.Entity(t.tail);
  auto d = m.Translation(t.relation);
  auto w = m.Normal(t.relation);
  const double wh = Dot(w, h);
  const double wt = Dot(w, tt);

  // g = 2 * (proj(h) + d - proj(t)); u = h - t.
  std::vector<double> g(dim);
  for (size_t i = 0; i < dim; ++i) {
    const double hp = h[i] - wh * w[i];
    const double tp = tt[i] - wt * w[i];
    g[i] = 2.0 * (hp + d[i] - tp);
  }
  const double gw = [&] {
    double acc = 0.0;
    for (size_t i = 0; i < dim; ++i) acc += g[i] * w[i];
    return acc;
  }();
  const double wu = wh - wt;

  for (size_t i = 0; i < dim; ++i) {
    const double u = static_cast<double>(h[i]) - tt[i];
    const double grad_h = g[i] - gw * w[i];
    const double grad_w = -(gw * u + wu * g[i]);
    const double step = lr * sign;
    h[i] -= static_cast<float>(step * grad_h);
    tt[i] += static_cast<float>(step * grad_h);
    d[i] -= static_cast<float>(step * g[i]);
    w[i] -= static_cast<float>(step * grad_w);
  }
  NormalizeInPlace(w);
}

}  // namespace

Result<std::unique_ptr<EmbeddingModel>> TrainTransH(
    const KnowledgeGraph& g, const EmbeddingTrainConfig& config,
    EmbeddingTrainStats* stats) {
  if (config.dim == 0) return Status::InvalidArgument("dim must be > 0");
  auto triples = ExtractTriples(g);
  if (triples.empty()) {
    return Status::FailedPrecondition("graph has no edges to train on");
  }

  WallTimer timer;
  Rng rng(config.seed);
  auto model = std::make_unique<TransHModel>(g.NumNodes(), g.NumPredicates(),
                                             config.dim);
  GaussianInit(model->entities(), config.dim, rng);
  GaussianInit(model->translations(), config.dim, rng);
  GaussianInit(model->normals(), config.dim, rng);
  for (PredicateId p = 0; p < g.NumPredicates(); ++p) {
    NormalizeInPlace(model->Normal(p));
  }

  double avg_loss = 0.0;
  for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
    for (NodeId u = 0; u < g.NumNodes(); ++u) {
      NormalizeInPlace(model->Entity(u));
    }
    Shuffle(triples, rng);
    double epoch_loss = 0.0;
    size_t updates = 0;
    for (const Triple& pos : triples) {
      for (size_t k = 0; k < config.negatives_per_positive; ++k) {
        Triple neg = CorruptTriple(pos, g.NumNodes(), rng);
        const double loss =
            config.margin + Distance(*model, pos) - Distance(*model, neg);
        if (loss > 0.0) {
          epoch_loss += loss;
          ++updates;
          SgdStep(*model, pos, config.learning_rate, +1.0);
          SgdStep(*model, neg, config.learning_rate, -1.0);
        }
      }
    }
    avg_loss = updates == 0 ? 0.0 : epoch_loss / static_cast<double>(updates);
  }

  if (stats != nullptr) {
    stats->final_avg_loss = avg_loss;
    stats->train_seconds = timer.ElapsedSeconds();
    stats->num_triples = triples.size();
    stats->memory_bytes = model->MemoryBytes();
  }
  return std::unique_ptr<EmbeddingModel>(std::move(model));
}

}  // namespace kgaq
