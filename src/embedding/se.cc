#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/random.h"
#include "embedding/embedding_model.h"
#include "embedding/trainer.h"
#include "embedding/trainer_internal.h"
#include "embedding/vector_ops.h"

namespace kgaq {

namespace {

using embedding_internal::DeltaStore;
using embedding_internal::GaussianInit;
using embedding_internal::Triple;

/// SE (Structured Embeddings): each relation has two projection matrices
/// (M1 for heads, M2 for tails); distance = ||M1 h - M2 t||^2. The Eq. 4
/// predicate representation is both matrices flattened and concatenated.
class SeModel : public EmbeddingModel {
 public:
  SeModel(size_t num_entities, size_t num_predicates, size_t dim)
      : num_entities_(num_entities),
        num_predicates_(num_predicates),
        dim_(dim),
        entities_(num_entities * dim, 0.0f),
        matrices_(num_predicates * 2 * dim * dim, 0.0f) {}

  const std::string& name() const override { return name_; }
  size_t entity_dim() const override { return dim_; }
  size_t predicate_dim() const override { return 2 * dim_ * dim_; }
  size_t num_entities() const override { return num_entities_; }
  size_t num_predicates() const override { return num_predicates_; }

  std::span<const float> PredicateVector(PredicateId p) const override {
    return {matrices_.data() + static_cast<size_t>(p) * 2 * dim_ * dim_,
            2 * dim_ * dim_};
  }
  std::span<const float> EntityVector(NodeId u) const override {
    return {entities_.data() + static_cast<size_t>(u) * dim_, dim_};
  }

  std::span<float> Entity(NodeId u) {
    return {entities_.data() + static_cast<size_t>(u) * dim_, dim_};
  }
  /// which = 0 for the head matrix M1, 1 for the tail matrix M2.
  std::span<float> Matrix(PredicateId p, int which) {
    return {matrices_.data() +
                (static_cast<size_t>(p) * 2 + which) * dim_ * dim_,
            dim_ * dim_};
  }
  std::span<const float> Matrix(PredicateId p, int which) const {
    return {matrices_.data() +
                (static_cast<size_t>(p) * 2 + which) * dim_ * dim_,
            dim_ * dim_};
  }

  double ScoreTriple(NodeId h, PredicateId r, NodeId t) const override {
    auto hv = EntityVector(h);
    auto tv = EntityVector(t);
    auto m1 = Matrix(r, 0);
    auto m2 = Matrix(r, 1);
    // ||M1 h - M2 t||^2 as batched row dots.
    double acc = 0.0;
    for (size_t i = 0; i < dim_; ++i) {
      const double a = Dot(m1.subspan(i * dim_, dim_), hv);
      const double b = Dot(m2.subspan(i * dim_, dim_), tv);
      const double d = a - b;
      acc += d * d;
    }
    return -acc;
  }

  size_t MemoryBytes() const override {
    return (entities_.size() + matrices_.size()) * sizeof(float);
  }

  std::vector<float>& entities() { return entities_; }
  std::vector<float>& matrices() { return matrices_; }

 private:
  std::string name_ = "SE";
  size_t num_entities_;
  size_t num_predicates_;
  size_t dim_;
  std::vector<float> entities_;
  std::vector<float> matrices_;
};

struct SePolicy {
  using Model = SeModel;
  static constexpr size_t kEntities = 0;
  /// Delta row (p * 2 + which) * dim + i addresses row i of relation p's
  /// head (which=0) / tail (which=1) matrix.
  static constexpr size_t kMatrixRows = 1;

  struct Ref {
    std::span<float> h, t, m1, m2;
  };
  struct Scratch {
    explicit Scratch(size_t dim) : g(dim), m1tg(dim), m2tg(dim) {}
    std::vector<double> g;     // 2 (M1 h - M2 t)
    std::vector<double> m1tg;  // M1^T g
    std::vector<double> m2tg;  // M2^T g
  };

  static std::unique_ptr<Model> Init(const KnowledgeGraph& graph,
                                     const EmbeddingTrainConfig& config,
                                     Rng& rng) {
    auto model = std::make_unique<SeModel>(graph.NumNodes(),
                                           graph.NumPredicates(), config.dim);
    GaussianInit(model->entities(), config.dim, rng);
    GaussianInit(model->matrices(), config.dim, rng);
    return model;
  }

  static std::span<float> EntityRow(Model& m, NodeId u) {
    return m.Entity(u);
  }

  static Ref Bind(Model& m, const Triple& t) {
    return {m.Entity(t.head), m.Entity(t.tail), m.Matrix(t.relation, 0),
            m.Matrix(t.relation, 1)};
  }

  static double Distance(const Ref& ref) {
    const size_t dim = ref.h.size();
    double acc = 0.0;
    for (size_t i = 0; i < dim; ++i) {
      const double a =
          Dot(std::span<const float>(ref.m1).subspan(i * dim, dim), ref.h);
      const double b =
          Dot(std::span<const float>(ref.m2).subspan(i * dim, dim), ref.t);
      const double d = a - b;
      acc += d * d;
    }
    return acc;
  }

  // g = 2 (M1 h - M2 t); m1tg = M1^T g, m2tg = M2^T g, all cached before
  // any parameter mutates.
  static void Gradient(const Ref& ref, Scratch& scratch) {
    const size_t dim = ref.h.size();
    for (size_t i = 0; i < dim; ++i) {
      const double a =
          Dot(std::span<const float>(ref.m1).subspan(i * dim, dim), ref.h);
      const double b =
          Dot(std::span<const float>(ref.m2).subspan(i * dim, dim), ref.t);
      scratch.g[i] = 2.0 * (a - b);
    }
    for (size_t j = 0; j < dim; ++j) {
      scratch.m1tg[j] = 0.0;
      scratch.m2tg[j] = 0.0;
    }
    for (size_t i = 0; i < dim; ++i) {
      const float* r1 = ref.m1.data() + i * dim;
      const float* r2 = ref.m2.data() + i * dim;
      const double gi = scratch.g[i];
      for (size_t j = 0; j < dim; ++j) {
        scratch.m1tg[j] += gi * r1[j];
        scratch.m2tg[j] += gi * r2[j];
      }
    }
  }

  static double DistancePos(const Ref& ref, Scratch&) {
    return Distance(ref);
  }

  static void StepPair(const Ref& pos, const Ref& neg, double lr,
                       Scratch& scratch) {
    Step(pos, lr, scratch);
    Step(neg, -lr, scratch);
  }

  static void Step(const Ref& ref, double lr_signed, Scratch& scratch) {
    Gradient(ref, scratch);
    const size_t dim = ref.h.size();
    const double s = lr_signed;
    for (size_t i = 0; i < dim; ++i) {
      // d/dM1 = g h^T (descent), d/dM2 = -g t^T.
      AddScaled(ref.m1.subspan(i * dim, dim), ref.h, -(s * scratch.g[i]));
      AddScaled(ref.m2.subspan(i * dim, dim), ref.t, s * scratch.g[i]);
    }
    for (size_t j = 0; j < dim; ++j) {
      ref.h[j] -= static_cast<float>(s * scratch.m1tg[j]);
      ref.t[j] += static_cast<float>(s * scratch.m2tg[j]);
    }
  }

  static void RegisterDeltaArrays(Model& m, DeltaStore& store) {
    store.RegisterArray(m.entities().data(), m.entity_dim(),
                        m.num_entities());
    store.RegisterArray(m.matrices().data(), m.entity_dim(),
                        m.num_predicates() * 2 * m.entity_dim());
  }

  static void StepDelta(const Ref& ref, const Triple& t, double lr_signed,
                        DeltaStore& store, Scratch& scratch) {
    Gradient(ref, scratch);
    const size_t dim = ref.h.size();
    const double s = lr_signed;
    const size_t base1 = static_cast<size_t>(t.relation) * 2 * dim;
    const size_t base2 = base1 + dim;
    for (size_t i = 0; i < dim; ++i) {
      auto d1 = store.Row(kMatrixRows, base1 + i);
      auto d2 = store.Row(kMatrixRows, base2 + i);
      const double sg = s * scratch.g[i];
      for (size_t j = 0; j < dim; ++j) {
        d1[j] -= sg * ref.h[j];
        d2[j] += sg * ref.t[j];
      }
    }
    auto dh = store.Row(kEntities, t.head);
    auto dt = store.Row(kEntities, t.tail);
    for (size_t j = 0; j < dim; ++j) {
      dh[j] -= s * scratch.m1tg[j];
      dt[j] += s * scratch.m2tg[j];
    }
  }

  static void PostBatchApply(Model&, const std::vector<DeltaStore>&) {}
};

}  // namespace

Result<std::unique_ptr<EmbeddingModel>> TrainSe(
    const KnowledgeGraph& g, const EmbeddingTrainConfig& config,
    EmbeddingTrainStats* stats) {
  return embedding_internal::TrainWithDriver<SePolicy>(g, config, stats);
}

Result<std::unique_ptr<EmbeddingModel>> TrainModelByName(
    std::string_view model_name, const KnowledgeGraph& g,
    const EmbeddingTrainConfig& config, EmbeddingTrainStats* stats) {
  if (model_name == "TransE") return TrainTransE(g, config, stats);
  if (model_name == "TransH") return TrainTransH(g, config, stats);
  if (model_name == "TransD") return TrainTransD(g, config, stats);
  if (model_name == "RESCAL") return TrainRescal(g, config, stats);
  if (model_name == "SE") return TrainSe(g, config, stats);
  return Status::InvalidArgument("unknown embedding model '" +
                                 std::string(model_name) + "'");
}

}  // namespace kgaq
