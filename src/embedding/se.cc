#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/timer.h"
#include "embedding/embedding_model.h"
#include "embedding/trainer.h"
#include "embedding/trainer_internal.h"
#include "embedding/vector_ops.h"

namespace kgaq {

namespace {

using embedding_internal::CorruptTriple;
using embedding_internal::ExtractTriples;
using embedding_internal::GaussianInit;
using embedding_internal::Triple;

/// SE (Structured Embeddings): each relation has two projection matrices
/// (M1 for heads, M2 for tails); distance = ||M1 h - M2 t||^2. The Eq. 4
/// predicate representation is both matrices flattened and concatenated.
class SeModel : public EmbeddingModel {
 public:
  SeModel(size_t num_entities, size_t num_predicates, size_t dim)
      : num_entities_(num_entities),
        num_predicates_(num_predicates),
        dim_(dim),
        entities_(num_entities * dim, 0.0f),
        matrices_(num_predicates * 2 * dim * dim, 0.0f) {}

  const std::string& name() const override { return name_; }
  size_t entity_dim() const override { return dim_; }
  size_t predicate_dim() const override { return 2 * dim_ * dim_; }
  size_t num_entities() const override { return num_entities_; }
  size_t num_predicates() const override { return num_predicates_; }

  std::span<const float> PredicateVector(PredicateId p) const override {
    return {matrices_.data() + static_cast<size_t>(p) * 2 * dim_ * dim_,
            2 * dim_ * dim_};
  }
  std::span<const float> EntityVector(NodeId u) const override {
    return {entities_.data() + static_cast<size_t>(u) * dim_, dim_};
  }

  std::span<float> Entity(NodeId u) {
    return {entities_.data() + static_cast<size_t>(u) * dim_, dim_};
  }
  /// which = 0 for the head matrix M1, 1 for the tail matrix M2.
  std::span<float> Matrix(PredicateId p, int which) {
    return {matrices_.data() +
                (static_cast<size_t>(p) * 2 + which) * dim_ * dim_,
            dim_ * dim_};
  }
  std::span<const float> Matrix(PredicateId p, int which) const {
    return {matrices_.data() +
                (static_cast<size_t>(p) * 2 + which) * dim_ * dim_,
            dim_ * dim_};
  }

  double ScoreTriple(NodeId h, PredicateId r, NodeId t) const override {
    auto hv = EntityVector(h);
    auto tv = EntityVector(t);
    auto m1 = Matrix(r, 0);
    auto m2 = Matrix(r, 1);
    double acc = 0.0;
    for (size_t i = 0; i < dim_; ++i) {
      double a = 0.0, b = 0.0;
      const float* r1 = m1.data() + i * dim_;
      const float* r2 = m2.data() + i * dim_;
      for (size_t j = 0; j < dim_; ++j) {
        a += static_cast<double>(r1[j]) * hv[j];
        b += static_cast<double>(r2[j]) * tv[j];
      }
      const double d = a - b;
      acc += d * d;
    }
    return -acc;
  }

  size_t MemoryBytes() const override {
    return (entities_.size() + matrices_.size()) * sizeof(float);
  }

  std::vector<float>& entities() { return entities_; }
  std::vector<float>& matrices() { return matrices_; }

 private:
  std::string name_ = "SE";
  size_t num_entities_;
  size_t num_predicates_;
  size_t dim_;
  std::vector<float> entities_;
  std::vector<float> matrices_;
};

double Distance(const SeModel& m, const Triple& t) {
  return -m.ScoreTriple(t.head, t.relation, t.tail);
}

void SgdStep(SeModel& m, const Triple& t, double lr, double sign) {
  const size_t dim = m.entity_dim();
  auto h = m.Entity(t.head);
  auto tt = m.Entity(t.tail);
  auto m1 = m.Matrix(t.relation, 0);
  auto m2 = m.Matrix(t.relation, 1);

  // g = 2 (M1 h - M2 t).
  std::vector<double> g(dim, 0.0);
  for (size_t i = 0; i < dim; ++i) {
    double a = 0.0, b = 0.0;
    const float* r1 = m1.data() + i * dim;
    const float* r2 = m2.data() + i * dim;
    for (size_t j = 0; j < dim; ++j) {
      a += static_cast<double>(r1[j]) * h[j];
      b += static_cast<double>(r2[j]) * tt[j];
    }
    g[i] = 2.0 * (a - b);
  }

  // Cache M1^T g and M2^T g before mutating the matrices.
  std::vector<double> m1tg(dim, 0.0), m2tg(dim, 0.0);
  for (size_t i = 0; i < dim; ++i) {
    const float* r1 = m1.data() + i * dim;
    const float* r2 = m2.data() + i * dim;
    for (size_t j = 0; j < dim; ++j) {
      m1tg[j] += static_cast<double>(r1[j]) * g[i];
      m2tg[j] += static_cast<double>(r2[j]) * g[i];
    }
  }

  const double step = lr * sign;
  for (size_t i = 0; i < dim; ++i) {
    float* r1 = m1.data() + i * dim;
    float* r2 = m2.data() + i * dim;
    for (size_t j = 0; j < dim; ++j) {
      r1[j] -= static_cast<float>(step * g[i] * h[j]);   // d/dM1 = g h^T
      r2[j] += static_cast<float>(step * g[i] * tt[j]);  // d/dM2 = -g t^T
    }
  }
  for (size_t j = 0; j < dim; ++j) {
    h[j] -= static_cast<float>(step * m1tg[j]);   // d/dh = M1^T g
    tt[j] += static_cast<float>(step * m2tg[j]);  // d/dt = -M2^T g
  }
}

}  // namespace

Result<std::unique_ptr<EmbeddingModel>> TrainSe(
    const KnowledgeGraph& g, const EmbeddingTrainConfig& config,
    EmbeddingTrainStats* stats) {
  if (config.dim == 0) return Status::InvalidArgument("dim must be > 0");
  auto triples = ExtractTriples(g);
  if (triples.empty()) {
    return Status::FailedPrecondition("graph has no edges to train on");
  }

  WallTimer timer;
  Rng rng(config.seed);
  auto model =
      std::make_unique<SeModel>(g.NumNodes(), g.NumPredicates(), config.dim);
  GaussianInit(model->entities(), config.dim, rng);
  GaussianInit(model->matrices(), config.dim, rng);

  double avg_loss = 0.0;
  for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
    for (NodeId u = 0; u < g.NumNodes(); ++u) {
      NormalizeInPlace(model->Entity(u));
    }
    Shuffle(triples, rng);
    double epoch_loss = 0.0;
    size_t updates = 0;
    for (const Triple& pos : triples) {
      for (size_t k = 0; k < config.negatives_per_positive; ++k) {
        Triple neg = CorruptTriple(pos, g.NumNodes(), rng);
        const double loss =
            config.margin + Distance(*model, pos) - Distance(*model, neg);
        if (loss > 0.0) {
          epoch_loss += loss;
          ++updates;
          SgdStep(*model, pos, config.learning_rate, +1.0);
          SgdStep(*model, neg, config.learning_rate, -1.0);
        }
      }
    }
    avg_loss = updates == 0 ? 0.0 : epoch_loss / static_cast<double>(updates);
  }

  if (stats != nullptr) {
    stats->final_avg_loss = avg_loss;
    stats->train_seconds = timer.ElapsedSeconds();
    stats->num_triples = triples.size();
    stats->memory_bytes = model->MemoryBytes();
  }
  return std::unique_ptr<EmbeddingModel>(std::move(model));
}

Result<std::unique_ptr<EmbeddingModel>> TrainModelByName(
    std::string_view model_name, const KnowledgeGraph& g,
    const EmbeddingTrainConfig& config, EmbeddingTrainStats* stats) {
  if (model_name == "TransE") return TrainTransE(g, config, stats);
  if (model_name == "TransH") return TrainTransH(g, config, stats);
  if (model_name == "TransD") return TrainTransD(g, config, stats);
  if (model_name == "RESCAL") return TrainRescal(g, config, stats);
  if (model_name == "SE") return TrainSe(g, config, stats);
  return Status::InvalidArgument("unknown embedding model '" +
                                 std::string(model_name) + "'");
}

}  // namespace kgaq
