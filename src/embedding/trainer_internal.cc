#include "embedding/trainer_internal.h"

#include <cmath>

namespace kgaq::embedding_internal {

std::vector<Triple> ExtractTriples(const KnowledgeGraph& g) {
  std::vector<Triple> triples;
  triples.reserve(g.NumEdges());
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (const Neighbor& nb : g.Neighbors(u)) {
      if (nb.forward) triples.push_back({u, nb.predicate, nb.node});
    }
  }
  return triples;
}

Triple CorruptTriple(const Triple& t, size_t num_entities, Rng& rng) {
  Triple neg = t;
  NodeId random_entity =
      static_cast<NodeId>(rng.NextBounded(num_entities));
  if (rng.NextBernoulli(0.5)) {
    neg.head = random_entity;
  } else {
    neg.tail = random_entity;
  }
  return neg;
}

void GaussianInit(std::vector<float>& data, size_t dim, Rng& rng) {
  const double scale = 1.0 / std::sqrt(static_cast<double>(dim));
  for (auto& x : data) {
    x = static_cast<float>(rng.NextGaussian() * scale);
  }
}

size_t DeltaStore::RegisterArray(float* base, size_t row_dim,
                                 size_t num_rows) {
  arrays_.push_back(
      ArrayInfo{base, row_dim, std::vector<uint32_t>(num_rows, kNoSlot)});
  return arrays_.size() - 1;
}

std::span<double> DeltaStore::Row(size_t array, size_t row) {
  ArrayInfo& info = arrays_[array];
  uint32_t& slot_id = info.slot_of_row[row];
  if (slot_id == kNoSlot) {
    slot_id = static_cast<uint32_t>(slots_.size());
    slots_.push_back(Slot{array, row, std::vector<double>(info.row_dim, 0.0),
                          /*active=*/false});
  }
  Slot& slot = slots_[slot_id];
  if (!slot.active) {
    slot.active = true;
    active_.push_back(slot_id);
  }
  return slot.delta;
}

void DeltaStore::Apply() {
  for (size_t idx : active_) {
    Slot& slot = slots_[idx];
    const ArrayInfo& info = arrays_[slot.array];
    float* out = info.base + slot.row * info.row_dim;
    for (size_t i = 0; i < info.row_dim; ++i) {
      out[i] = static_cast<float>(static_cast<double>(out[i]) +
                                  slot.delta[i]);
    }
  }
}

void DeltaStore::Clear() {
  for (size_t idx : active_) {
    Slot& slot = slots_[idx];
    for (double& d : slot.delta) d = 0.0;
    slot.active = false;
  }
  active_.clear();
}

}  // namespace kgaq::embedding_internal
