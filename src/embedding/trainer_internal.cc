#include "embedding/trainer_internal.h"

#include <cmath>

namespace kgaq::embedding_internal {

std::vector<Triple> ExtractTriples(const KnowledgeGraph& g) {
  std::vector<Triple> triples;
  triples.reserve(g.NumEdges());
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (const Neighbor& nb : g.Neighbors(u)) {
      if (nb.forward) triples.push_back({u, nb.predicate, nb.node});
    }
  }
  return triples;
}

Triple CorruptTriple(const Triple& t, size_t num_entities, Rng& rng) {
  Triple neg = t;
  NodeId random_entity =
      static_cast<NodeId>(rng.NextBounded(num_entities));
  if (rng.NextBernoulli(0.5)) {
    neg.head = random_entity;
  } else {
    neg.tail = random_entity;
  }
  return neg;
}

void GaussianInit(std::vector<float>& data, size_t dim, Rng& rng) {
  const double scale = 1.0 / std::sqrt(static_cast<double>(dim));
  for (auto& x : data) {
    x = static_cast<float>(rng.NextGaussian() * scale);
  }
}

}  // namespace kgaq::embedding_internal
