#include "embedding/vector_ops.h"

#include <cmath>

namespace kgaq {

double Dot(std::span<const float> a, std::span<const float> b) {
  double acc = 0.0;
  const size_t n = a.size() < b.size() ? a.size() : b.size();
  for (size_t i = 0; i < n; ++i) acc += static_cast<double>(a[i]) * b[i];
  return acc;
}

double Norm2(std::span<const float> a) { return std::sqrt(Dot(a, a)); }

double SquaredDistance(std::span<const float> a, std::span<const float> b) {
  double acc = 0.0;
  const size_t n = a.size() < b.size() ? a.size() : b.size();
  for (size_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    acc += d * d;
  }
  return acc;
}

double CosineSimilarity(std::span<const float> a, std::span<const float> b) {
  const double na = Norm2(a);
  const double nb = Norm2(b);
  if (na < 1e-12 || nb < 1e-12) return 0.0;
  return Dot(a, b) / (na * nb);
}

void NormalizeInPlace(std::span<float> a) {
  const double n = Norm2(a);
  if (n < 1e-12) return;
  const float inv = static_cast<float>(1.0 / n);
  for (auto& x : a) x *= inv;
}

void AddScaled(std::span<float> a, std::span<const float> b, double scale) {
  const size_t n = a.size() < b.size() ? a.size() : b.size();
  for (size_t i = 0; i < n; ++i) {
    a[i] += static_cast<float>(scale * b[i]);
  }
}

}  // namespace kgaq
