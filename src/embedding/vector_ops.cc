#include "embedding/vector_ops.h"

#include <cmath>

#ifdef __AVX2__
#include <immintrin.h>
#endif

namespace kgaq {

namespace {

// All kernels accumulate in double across 4 independent lanes: the float
// loads are widened before multiplying, so precision matches the scalar
// reference while the broken dependency chain keeps the FPU pipelines full
// (and maps directly onto 4-wide double FMA under AVX2).

#ifdef __AVX2__

// Widens 8 floats into two 4-double vectors and feeds two accumulators.
inline void DotStep(const float* a, const float* b, __m256d& acc0,
                    __m256d& acc1) {
  const __m256 af = _mm256_loadu_ps(a);
  const __m256 bf = _mm256_loadu_ps(b);
  const __m256d alo = _mm256_cvtps_pd(_mm256_castps256_ps128(af));
  const __m256d ahi = _mm256_cvtps_pd(_mm256_extractf128_ps(af, 1));
  const __m256d blo = _mm256_cvtps_pd(_mm256_castps256_ps128(bf));
  const __m256d bhi = _mm256_cvtps_pd(_mm256_extractf128_ps(bf, 1));
#ifdef __FMA__
  acc0 = _mm256_fmadd_pd(alo, blo, acc0);
  acc1 = _mm256_fmadd_pd(ahi, bhi, acc1);
#else
  acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(alo, blo));
  acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(ahi, bhi));
#endif
}

inline double HorizontalSum(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d sum2 = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_add_sd(sum2, _mm_unpackhi_pd(sum2, sum2)));
}

#endif  // __AVX2__

inline double DotN(const float* a, const float* b, size_t n) {
  size_t i = 0;
  double acc = 0.0;
#ifdef __AVX2__
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  for (; i + 8 <= n; i += 8) DotStep(a + i, b + i, acc0, acc1);
  acc = HorizontalSum(_mm256_add_pd(acc0, acc1));
#else
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  for (; i + 4 <= n; i += 4) {
    s0 += static_cast<double>(a[i]) * b[i];
    s1 += static_cast<double>(a[i + 1]) * b[i + 1];
    s2 += static_cast<double>(a[i + 2]) * b[i + 2];
    s3 += static_cast<double>(a[i + 3]) * b[i + 3];
  }
  acc = (s0 + s1) + (s2 + s3);
#endif
  for (; i < n; ++i) acc += static_cast<double>(a[i]) * b[i];
  return acc;
}

// dot(a,b), dot(a,a), dot(b,b) in one pass.
inline void DotAndNormsN(const float* a, const float* b, size_t n,
                         double& dot, double& na2, double& nb2) {
  size_t i = 0;
  double d0 = 0.0, d1 = 0.0, a0 = 0.0, a1 = 0.0, b0 = 0.0, b1 = 0.0;
  for (; i + 2 <= n; i += 2) {
    const double x0 = a[i], y0 = b[i];
    const double x1 = a[i + 1], y1 = b[i + 1];
    d0 += x0 * y0;
    a0 += x0 * x0;
    b0 += y0 * y0;
    d1 += x1 * y1;
    a1 += x1 * x1;
    b1 += y1 * y1;
  }
  for (; i < n; ++i) {
    const double x = a[i], y = b[i];
    d0 += x * y;
    a0 += x * x;
    b0 += y * y;
  }
  dot = d0 + d1;
  na2 = a0 + a1;
  nb2 = b0 + b1;
}

// dot(a,b) and dot(a,a) in one pass — for batched cosine against one
// query whose norm is hoisted: same lane structure (and therefore the
// same bits) as DotAndNormsN, minus the redundant b-norm accumulators.
inline void DotAndNormAN(const float* a, const float* b, size_t n,
                         double& dot, double& na2) {
  size_t i = 0;
  double d0 = 0.0, d1 = 0.0, a0 = 0.0, a1 = 0.0;
  for (; i + 2 <= n; i += 2) {
    const double x0 = a[i], y0 = b[i];
    const double x1 = a[i + 1], y1 = b[i + 1];
    d0 += x0 * y0;
    a0 += x0 * x0;
    d1 += x1 * y1;
    a1 += x1 * x1;
  }
  for (; i < n; ++i) {
    const double x = a[i], y = b[i];
    d0 += x * y;
    a0 += x * x;
  }
  dot = d0 + d1;
  na2 = a0 + a1;
}

}  // namespace

double Dot(std::span<const float> a, std::span<const float> b) {
  const size_t n = a.size() < b.size() ? a.size() : b.size();
  return DotN(a.data(), b.data(), n);
}

double Norm2(std::span<const float> a) {
  return std::sqrt(DotN(a.data(), a.data(), a.size()));
}

double SquaredDistance(std::span<const float> a, std::span<const float> b) {
  const size_t n = a.size() < b.size() ? a.size() : b.size();
  size_t i = 0;
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  for (; i + 4 <= n; i += 4) {
    const double d0 = static_cast<double>(a[i]) - b[i];
    const double d1 = static_cast<double>(a[i + 1]) - b[i + 1];
    const double d2 = static_cast<double>(a[i + 2]) - b[i + 2];
    const double d3 = static_cast<double>(a[i + 3]) - b[i + 3];
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
  }
  double acc = (s0 + s1) + (s2 + s3);
  for (; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    acc += d * d;
  }
  return acc;
}

double CosineSimilarity(std::span<const float> a, std::span<const float> b) {
  const size_t n = a.size() < b.size() ? a.size() : b.size();
  double dot, na2, nb2;
  DotAndNormsN(a.data(), b.data(), n, dot, na2, nb2);
  // Vectors shorter than the other operand contribute trailing zeros to
  // their own norm, matching the pre-batched semantics only when sizes
  // agree; all call sites pass equal sizes.
  if (a.size() > n) na2 += DotN(a.data() + n, a.data() + n, a.size() - n);
  if (b.size() > n) nb2 += DotN(b.data() + n, b.data() + n, b.size() - n);
  const double na = std::sqrt(na2);
  const double nb = std::sqrt(nb2);
  if (na < 1e-12 || nb < 1e-12) return 0.0;
  return dot / (na * nb);
}

void CosineSimilarityMany(std::span<const float> query,
                          std::span<const float> matrix,
                          std::span<double> out) {
  const size_t dim = query.size();
  const double qn = std::sqrt(DotN(query.data(), query.data(), dim));
  for (size_t r = 0; r < out.size(); ++r) {
    const float* row = matrix.data() + r * dim;
    double dot, rn2;
    DotAndNormAN(row, query.data(), dim, dot, rn2);
    const double rn = std::sqrt(rn2);
    out[r] = (qn < 1e-12 || rn < 1e-12) ? 0.0 : dot / (rn * qn);
  }
}

void NormalizeInPlace(std::span<float> a) {
  const double n = Norm2(a);
  if (n < 1e-12) return;
  const float inv = static_cast<float>(1.0 / n);
  for (auto& x : a) x *= inv;
}

void AddScaled(std::span<float> a, std::span<const float> b, double scale) {
  const size_t n = a.size() < b.size() ? a.size() : b.size();
  size_t i = 0;
  // Per-element math stays double-then-truncate (identical results to the
  // scalar reference); unrolling only removes loop overhead.
  for (; i + 4 <= n; i += 4) {
    a[i] += static_cast<float>(scale * b[i]);
    a[i + 1] += static_cast<float>(scale * b[i + 1]);
    a[i + 2] += static_cast<float>(scale * b[i + 2]);
    a[i + 3] += static_cast<float>(scale * b[i + 3]);
  }
  for (; i < n; ++i) {
    a[i] += static_cast<float>(scale * b[i]);
  }
}

void MatVecRows(std::span<const float> m, std::span<const float> x,
                std::span<double> out) {
  const size_t dim = x.size();
  for (size_t r = 0; r < out.size(); ++r) {
    out[r] = DotN(m.data() + r * dim, x.data(), dim);
  }
}

void MatTVecRows(std::span<const float> m, std::span<const float> x,
                 std::span<double> out) {
  const size_t dim = out.size();
  for (double& v : out) v = 0.0;
  for (size_t r = 0; r < x.size(); ++r) {
    const float* row = m.data() + r * dim;
    const double xr = x[r];
    size_t j = 0;
    for (; j + 4 <= dim; j += 4) {
      out[j] += xr * row[j];
      out[j + 1] += xr * row[j + 1];
      out[j + 2] += xr * row[j + 2];
      out[j + 3] += xr * row[j + 3];
    }
    for (; j < dim; ++j) out[j] += xr * row[j];
  }
}

namespace scalar {

double Dot(std::span<const float> a, std::span<const float> b) {
  double acc = 0.0;
  const size_t n = a.size() < b.size() ? a.size() : b.size();
  for (size_t i = 0; i < n; ++i) acc += static_cast<double>(a[i]) * b[i];
  return acc;
}

double SquaredDistance(std::span<const float> a, std::span<const float> b) {
  double acc = 0.0;
  const size_t n = a.size() < b.size() ? a.size() : b.size();
  for (size_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    acc += d * d;
  }
  return acc;
}

double CosineSimilarity(std::span<const float> a, std::span<const float> b) {
  const double na = std::sqrt(Dot(a, a));
  const double nb = std::sqrt(Dot(b, b));
  if (na < 1e-12 || nb < 1e-12) return 0.0;
  return Dot(a, b) / (na * nb);
}

double SquaredL2Diff(std::span<const float> a, std::span<const float> b,
                     std::span<const float> c) {
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) + b[i] - c[i];
    acc += d * d;
  }
  return acc;
}

void SaxpyTriple(std::span<float> a, std::span<float> b, std::span<float> c,
                 double scale) {
  for (size_t i = 0; i < a.size(); ++i) {
    const double g = 2.0 * (static_cast<double>(a[i]) + b[i] - c[i]);
    const double s = scale * g;
    a[i] -= static_cast<float>(s);
    b[i] -= static_cast<float>(s);
    c[i] += static_cast<float>(s);
  }
}

void MatVecRows(std::span<const float> m, std::span<const float> x,
                std::span<double> out) {
  const size_t dim = x.size();
  for (size_t r = 0; r < out.size(); ++r) {
    double acc = 0.0;
    const float* row = m.data() + r * dim;
    for (size_t j = 0; j < dim; ++j) {
      acc += static_cast<double>(row[j]) * x[j];
    }
    out[r] = acc;
  }
}

void MatTVecRows(std::span<const float> m, std::span<const float> x,
                 std::span<double> out) {
  const size_t dim = out.size();
  for (double& v : out) v = 0.0;
  for (size_t r = 0; r < x.size(); ++r) {
    const float* row = m.data() + r * dim;
    for (size_t j = 0; j < dim; ++j) {
      out[j] += static_cast<double>(x[r]) * row[j];
    }
  }
}

}  // namespace scalar

}  // namespace kgaq
