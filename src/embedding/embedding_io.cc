#include "embedding/embedding_io.h"

#include <cstdint>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>

#include "common/binary_io.h"

namespace kgaq {

Status SaveEmbedding(const EmbeddingModel& model, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open '" + path + "' for write");
  out << "kgaq-embedding " << model.name() << ' ' << model.num_entities()
      << ' ' << model.num_predicates() << ' ' << model.entity_dim() << ' '
      << model.predicate_dim() << '\n';
  out.precision(9);
  for (NodeId u = 0; u < model.num_entities(); ++u) {
    auto v = model.EntityVector(u);
    for (size_t i = 0; i < v.size(); ++i) {
      if (i) out << ' ';
      out << v[i];
    }
    out << '\n';
  }
  for (PredicateId p = 0; p < model.num_predicates(); ++p) {
    auto v = model.PredicateVector(p);
    for (size_t i = 0; i < v.size(); ++i) {
      if (i) out << ' ';
      out << v[i];
    }
    out << '\n';
  }
  if (!out) return Status::IoError("write failed for '" + path + "'");
  return Status::OK();
}

Result<std::unique_ptr<FixedEmbedding>> LoadEmbedding(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  std::string magic, name;
  size_t num_entities = 0, num_predicates = 0, e_dim = 0, p_dim = 0;
  in >> magic >> name >> num_entities >> num_predicates >> e_dim >> p_dim;
  if (!in || magic != "kgaq-embedding") {
    return Status::InvalidArgument("'" + path +
                                   "' is not a kgaq embedding snapshot");
  }
  if (e_dim == 0 || p_dim == 0) {
    return Status::InvalidArgument("snapshot header has zero dimensions");
  }
  auto model = std::make_unique<FixedEmbedding>(name, num_entities,
                                                num_predicates, e_dim, p_dim);
  for (NodeId u = 0; u < num_entities; ++u) {
    for (auto& x : model->MutableEntityVector(u)) in >> x;
  }
  for (PredicateId p = 0; p < num_predicates; ++p) {
    for (auto& x : model->MutablePredicateVector(p)) in >> x;
  }
  if (!in) return Status::InvalidArgument("snapshot truncated: '" + path + "'");
  return model;
}

Status WriteEmbeddingBlob(const EmbeddingModel& model, std::ostream& out) {
  const std::string& name = model.name();
  WritePod<uint32_t>(out, static_cast<uint32_t>(name.size()));
  out.write(name.data(), static_cast<std::streamsize>(name.size()));
  WritePod<uint64_t>(out, model.num_entities());
  WritePod<uint64_t>(out, model.num_predicates());
  WritePod<uint64_t>(out, model.entity_dim());
  WritePod<uint64_t>(out, model.predicate_dim());
  for (NodeId u = 0; u < model.num_entities(); ++u) {
    auto v = model.EntityVector(u);
    out.write(reinterpret_cast<const char*>(v.data()),
              static_cast<std::streamsize>(v.size() * sizeof(float)));
  }
  for (PredicateId p = 0; p < model.num_predicates(); ++p) {
    auto v = model.PredicateVector(p);
    out.write(reinterpret_cast<const char*>(v.data()),
              static_cast<std::streamsize>(v.size() * sizeof(float)));
  }
  if (!out) return Status::IoError("embedding blob write failed");
  return Status::OK();
}

Result<std::unique_ptr<FixedEmbedding>> ReadEmbeddingBlob(std::istream& in) {
  // Bytes left in the stream, when it is seekable: the cheap upper bound
  // on every size field a corrupt header could claim.
  uint64_t remaining = std::numeric_limits<uint64_t>::max();
  const std::istream::pos_type cur = in.tellg();
  if (cur != std::istream::pos_type(-1)) {
    in.seekg(0, std::ios::end);
    const std::istream::pos_type end = in.tellg();
    in.seekg(cur);
    if (end != std::istream::pos_type(-1) && end >= cur) {
      remaining = static_cast<uint64_t>(end - cur);
    }
  }

  uint32_t name_len = 0;
  if (!ReadPod(in, name_len) || name_len > (1u << 20) ||
      name_len > remaining) {
    return Status::InvalidArgument("embedding blob: bad name length");
  }
  std::string name(name_len, '\0');
  in.read(name.data(), name_len);
  uint64_t num_entities = 0, num_predicates = 0, e_dim = 0, p_dim = 0;
  if (!ReadPod(in, num_entities) || !ReadPod(in, num_predicates) ||
      !ReadPod(in, e_dim) || !ReadPod(in, p_dim)) {
    return Status::InvalidArgument("embedding blob: truncated header");
  }
  if (e_dim == 0 || p_dim == 0) {
    return Status::InvalidArgument("embedding blob: zero dimensions");
  }
  // Reject absurd sizes before allocating or multiplying: individual caps
  // first (ids are 32-bit; dims bounded), so the products below cannot
  // wrap 64 bits, then the stream-length bound catches anything a
  // truncated or corrupt header still claims.
  if (num_entities > (1ull << 31) || num_predicates > (1ull << 31) ||
      e_dim > (1ull << 24) || p_dim > (1ull << 24)) {
    return Status::InvalidArgument("embedding blob: implausible dimensions");
  }
  const uint64_t total_floats = num_entities * e_dim + num_predicates * p_dim;
  if (total_floats > remaining / sizeof(float)) {
    return Status::InvalidArgument(
        "embedding blob: header claims more data than the stream holds");
  }
  auto model = std::make_unique<FixedEmbedding>(
      name, num_entities, num_predicates, e_dim, p_dim);
  for (NodeId u = 0; u < num_entities; ++u) {
    auto v = model->MutableEntityVector(u);
    in.read(reinterpret_cast<char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(float)));
  }
  for (PredicateId p = 0; p < num_predicates; ++p) {
    auto v = model->MutablePredicateVector(p);
    in.read(reinterpret_cast<char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(float)));
  }
  if (!in) return Status::InvalidArgument("embedding blob: truncated data");
  return model;
}

}  // namespace kgaq
