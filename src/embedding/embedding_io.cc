#include "embedding/embedding_io.h"

#include <fstream>

namespace kgaq {

Status SaveEmbedding(const EmbeddingModel& model, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open '" + path + "' for write");
  out << "kgaq-embedding " << model.name() << ' ' << model.num_entities()
      << ' ' << model.num_predicates() << ' ' << model.entity_dim() << ' '
      << model.predicate_dim() << '\n';
  out.precision(9);
  for (NodeId u = 0; u < model.num_entities(); ++u) {
    auto v = model.EntityVector(u);
    for (size_t i = 0; i < v.size(); ++i) {
      if (i) out << ' ';
      out << v[i];
    }
    out << '\n';
  }
  for (PredicateId p = 0; p < model.num_predicates(); ++p) {
    auto v = model.PredicateVector(p);
    for (size_t i = 0; i < v.size(); ++i) {
      if (i) out << ' ';
      out << v[i];
    }
    out << '\n';
  }
  if (!out) return Status::IoError("write failed for '" + path + "'");
  return Status::OK();
}

Result<std::unique_ptr<FixedEmbedding>> LoadEmbedding(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  std::string magic, name;
  size_t num_entities = 0, num_predicates = 0, e_dim = 0, p_dim = 0;
  in >> magic >> name >> num_entities >> num_predicates >> e_dim >> p_dim;
  if (!in || magic != "kgaq-embedding") {
    return Status::InvalidArgument("'" + path +
                                   "' is not a kgaq embedding snapshot");
  }
  if (e_dim == 0 || p_dim == 0) {
    return Status::InvalidArgument("snapshot header has zero dimensions");
  }
  auto model = std::make_unique<FixedEmbedding>(name, num_entities,
                                                num_predicates, e_dim, p_dim);
  for (NodeId u = 0; u < num_entities; ++u) {
    for (auto& x : model->MutableEntityVector(u)) in >> x;
  }
  for (PredicateId p = 0; p < num_predicates; ++p) {
    for (auto& x : model->MutablePredicateVector(p)) in >> x;
  }
  if (!in) return Status::InvalidArgument("snapshot truncated: '" + path + "'");
  return model;
}

}  // namespace kgaq
