#include "embedding/embedding_model.h"

#include "embedding/vector_ops.h"

namespace kgaq {

double EmbeddingModel::PredicateCosine(PredicateId a, PredicateId b) const {
  return CosineSimilarity(PredicateVector(a), PredicateVector(b));
}

FixedEmbedding::FixedEmbedding(std::string name, size_t num_entities,
                               size_t num_predicates, size_t entity_dim,
                               size_t predicate_dim)
    : name_(std::move(name)),
      num_entities_(num_entities),
      num_predicates_(num_predicates),
      entity_dim_(entity_dim),
      predicate_dim_(predicate_dim),
      entity_data_(num_entities * entity_dim, 0.0f),
      predicate_data_(num_predicates * predicate_dim, 0.0f) {}

double FixedEmbedding::ScoreTriple(NodeId h, PredicateId r, NodeId t) const {
  // TransE-style: plausible triples have h + r ~ t.
  auto hv = EntityVector(h);
  auto rv = PredicateVector(r);
  auto tv = EntityVector(t);
  double acc = 0.0;
  const size_t n = entity_dim_ < predicate_dim_ ? entity_dim_ : predicate_dim_;
  for (size_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(hv[i]) + rv[i] - tv[i];
    acc += d * d;
  }
  return -acc;
}

}  // namespace kgaq
