#ifndef KGAQ_EMBEDDING_VECTOR_OPS_H_
#define KGAQ_EMBEDDING_VECTOR_OPS_H_

#include <cstddef>
#include <span>

namespace kgaq {

/// Dot product with double accumulation.
double Dot(std::span<const float> a, std::span<const float> b);

/// Euclidean norm.
double Norm2(std::span<const float> a);

/// Squared Euclidean distance between `a` and `b`.
double SquaredDistance(std::span<const float> a, std::span<const float> b);

/// Cosine similarity in [-1, 1]; returns 0 when either vector is ~zero.
double CosineSimilarity(std::span<const float> a, std::span<const float> b);

/// Scales `a` in place to unit norm (no-op for ~zero vectors).
void NormalizeInPlace(std::span<float> a);

/// a += scale * b (element-wise, sizes must match).
void AddScaled(std::span<float> a, std::span<const float> b, double scale);

}  // namespace kgaq

#endif  // KGAQ_EMBEDDING_VECTOR_OPS_H_
