#ifndef KGAQ_EMBEDDING_VECTOR_OPS_H_
#define KGAQ_EMBEDDING_VECTOR_OPS_H_

#include <cstddef>
#include <span>

namespace kgaq {

/// Dot product with double accumulation. 4-way unrolled (AVX2 when the
/// build enables it); accumulator order is fixed, so results are
/// deterministic for a given binary.
double Dot(std::span<const float> a, std::span<const float> b);

/// Euclidean norm.
double Norm2(std::span<const float> a);

/// Squared Euclidean distance between `a` and `b`.
double SquaredDistance(std::span<const float> a, std::span<const float> b);

/// Cosine similarity in [-1, 1]; returns 0 when either vector is ~zero.
/// Single pass: dot and both norms accumulate together.
double CosineSimilarity(std::span<const float> a, std::span<const float> b);

/// Batched cosine: `matrix` holds out.size() contiguous rows of
/// query.size() floats each; out[i] = CosineSimilarity(query, row i).
/// One pass over the matrix, with the query norm hoisted out of the loop —
/// this is the O(|P| * d) kernel behind PredicateSimilarityCache.
void CosineSimilarityMany(std::span<const float> query,
                          std::span<const float> matrix,
                          std::span<double> out);

/// Scales `a` in place to unit norm (no-op for ~zero vectors).
void NormalizeInPlace(std::span<float> a);

/// a += scale * b (element-wise, sizes must match).
void AddScaled(std::span<float> a, std::span<const float> b, double scale);

/// Straight-line reference implementations, kept for parity tests and the
/// scalar-vs-vectorized microbenchmarks. Not for hot paths.
namespace scalar {
double Dot(std::span<const float> a, std::span<const float> b);
double SquaredDistance(std::span<const float> a, std::span<const float> b);
double CosineSimilarity(std::span<const float> a, std::span<const float> b);
}  // namespace scalar

}  // namespace kgaq

#endif  // KGAQ_EMBEDDING_VECTOR_OPS_H_
