#ifndef KGAQ_EMBEDDING_VECTOR_OPS_H_
#define KGAQ_EMBEDDING_VECTOR_OPS_H_

#include <cstddef>
#include <span>

#ifdef __AVX2__
#include <immintrin.h>
#endif

namespace kgaq {

/// Dot product with double accumulation. 4-way unrolled (AVX2 when the
/// build enables it); accumulator order is fixed, so results are
/// deterministic for a given binary.
double Dot(std::span<const float> a, std::span<const float> b);

/// Euclidean norm.
double Norm2(std::span<const float> a);

/// Squared Euclidean distance between `a` and `b`.
double SquaredDistance(std::span<const float> a, std::span<const float> b);

/// Cosine similarity in [-1, 1]; returns 0 when either vector is ~zero.
/// Single pass: dot and both norms accumulate together.
double CosineSimilarity(std::span<const float> a, std::span<const float> b);

/// Batched cosine: `matrix` holds out.size() contiguous rows of
/// query.size() floats each; out[i] = CosineSimilarity(query, row i).
/// One pass over the matrix, with the query norm hoisted out of the loop —
/// this is the O(|P| * d) kernel behind PredicateSimilarityCache.
void CosineSimilarityMany(std::span<const float> query,
                          std::span<const float> matrix,
                          std::span<double> out);

/// Scales `a` in place to unit norm (no-op for ~zero vectors).
void NormalizeInPlace(std::span<float> a);

/// a += scale * b (element-wise, sizes must match).
void AddScaled(std::span<float> a, std::span<const float> b, double scale);

// The fused TransE-step kernels below are defined inline: they sit on the
// innermost SGD loop (two distances + up to two updates per pair), where a
// call through the TU boundary costs a measurable fraction of the kernel
// itself. See BM_TransEStep{Scalar,Vectorized}.

#ifdef __AVX2__
namespace vector_ops_detail {
inline double HorizontalSumPd(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d sum2 = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_add_sd(sum2, _mm_unpackhi_pd(sum2, sum2)));
}
}  // namespace vector_ops_detail
#endif

/// Fused margin-ranking distance for translation models:
/// sum_i ((double)a[i] + b[i] - c[i])^2 — the TransE ||h + r - t||^2 in one
/// pass over the three rows. Lane-split double accumulation (AVX2-gated
/// like Dot); per-element math matches the scalar reference exactly, only
/// the accumulation order differs.
inline double SquaredL2Diff(std::span<const float> a,
                            std::span<const float> b,
                            std::span<const float> c) {
  const size_t n = a.size();
  size_t i = 0;
  double acc = 0.0;
#ifdef __AVX2__
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  for (; i + 8 <= n; i += 8) {
    const __m256 af = _mm256_loadu_ps(a.data() + i);
    const __m256 bf = _mm256_loadu_ps(b.data() + i);
    const __m256 cf = _mm256_loadu_ps(c.data() + i);
    const __m256d dlo = _mm256_sub_pd(
        _mm256_add_pd(_mm256_cvtps_pd(_mm256_castps256_ps128(af)),
                      _mm256_cvtps_pd(_mm256_castps256_ps128(bf))),
        _mm256_cvtps_pd(_mm256_castps256_ps128(cf)));
    const __m256d dhi = _mm256_sub_pd(
        _mm256_add_pd(_mm256_cvtps_pd(_mm256_extractf128_ps(af, 1)),
                      _mm256_cvtps_pd(_mm256_extractf128_ps(bf, 1))),
        _mm256_cvtps_pd(_mm256_extractf128_ps(cf, 1)));
#ifdef __FMA__
    acc0 = _mm256_fmadd_pd(dlo, dlo, acc0);
    acc1 = _mm256_fmadd_pd(dhi, dhi, acc1);
#else
    acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(dlo, dlo));
    acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(dhi, dhi));
#endif
  }
  acc = vector_ops_detail::HorizontalSumPd(_mm256_add_pd(acc0, acc1));
#else
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  for (; i + 4 <= n; i += 4) {
    const double d0 = static_cast<double>(a[i]) + b[i] - c[i];
    const double d1 = static_cast<double>(a[i + 1]) + b[i + 1] - c[i + 1];
    const double d2 = static_cast<double>(a[i + 2]) + b[i + 2] - c[i + 2];
    const double d3 = static_cast<double>(a[i + 3]) + b[i + 3] - c[i + 3];
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
  }
  acc = (s0 + s1) + (s2 + s3);
#endif
  for (; i < n; ++i) {
    const double d = static_cast<double>(a[i]) + b[i] - c[i];
    acc += d * d;
  }
  return acc;
}

/// SquaredL2Diff that also stores the residual d_i = (double)a[i] + b[i] -
/// c[i] into `resid` (same length as a). Accumulates with the 4-lane
/// unrolled structure (bitwise-equal to SquaredL2Diff in non-AVX2 builds);
/// the residual lets the following SGD step on the SAME, still-unchanged
/// rows skip recomputing the difference (SaxpyTripleFromResidual).
inline double SquaredL2DiffResidual(std::span<const float> a,
                                    std::span<const float> b,
                                    std::span<const float> c,
                                    std::span<double> resid) {
  const size_t n = a.size();
  size_t i = 0;
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  for (; i + 4 <= n; i += 4) {
    const double d0 = static_cast<double>(a[i]) + b[i] - c[i];
    const double d1 = static_cast<double>(a[i + 1]) + b[i + 1] - c[i + 1];
    const double d2 = static_cast<double>(a[i + 2]) + b[i + 2] - c[i + 2];
    const double d3 = static_cast<double>(a[i + 3]) + b[i + 3] - c[i + 3];
    resid[i] = d0;
    resid[i + 1] = d1;
    resid[i + 2] = d2;
    resid[i + 3] = d3;
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
  }
  double acc = (s0 + s1) + (s2 + s3);
  for (; i < n; ++i) {
    const double d = static_cast<double>(a[i]) + b[i] - c[i];
    resid[i] = d;
    acc += d * d;
  }
  return acc;
}

/// Fused TransE SGD step: per element g = 2 * ((double)a[i] + b[i] - c[i]),
/// step = scale * g, then a[i] -= step, b[i] -= step, c[i] += step (each
/// truncated to float). Deliberately NOT manually unrolled: this loop is
/// store-bound, and batching four elements' loads ahead of their stores
/// forces the compiler to assume the float rows alias, serializing the
/// schedule (measured ~2x slower). The straight-line form is also exactly
/// the legacy recipe, including the read-modify-write order when `a` and
/// `c` are the same row (a corrupted triple with head == tail) — which is
/// what keeps the refactored trainer on the pinned golden loss.
inline void SaxpyTriple(std::span<float> a, std::span<float> b,
                        std::span<float> c, double scale) {
  const size_t n = a.size();
  for (size_t i = 0; i < n; ++i) {
    const double s =
        scale * (2.0 * (static_cast<double>(a[i]) + b[i] - c[i]));
    a[i] -= static_cast<float>(s);
    b[i] -= static_cast<float>(s);
    c[i] += static_cast<float>(s);
  }
}

/// SaxpyTriple with the residual already computed by SquaredL2DiffResidual
/// over the same (unchanged) rows: step = scale * (2 * resid[i]).
/// Bitwise-identical to SaxpyTriple under that precondition (resid holds
/// the same pre-update differences the direct kernel would recompute), and
/// ~2x faster: the double residual loads cannot alias the float stores, so
/// the loop pipelines freely.
inline void SaxpyTripleFromResidual(std::span<float> a, std::span<float> b,
                                    std::span<float> c,
                                    std::span<const double> resid,
                                    double scale) {
  const size_t n = a.size();
  for (size_t i = 0; i < n; ++i) {
    const double s = scale * (2.0 * resid[i]);
    a[i] -= static_cast<float>(s);
    b[i] -= static_cast<float>(s);
    c[i] += static_cast<float>(s);
  }
}

/// Row-major matrix-vector product as batched row dots:
/// out[r] = Dot(row r of m, x) where m holds out.size() contiguous rows of
/// x.size() floats. The RESCAL / SE "M v" building block.
void MatVecRows(std::span<const float> m, std::span<const float> x,
                std::span<double> out);

/// Transposed product out[j] = sum_r x[r] * m[r][j] (m row-major,
/// x.size() rows of out.size() floats). Overwrites `out`. One unrolled
/// axpy pass per row — the RESCAL / SE "M^T v" building block.
void MatTVecRows(std::span<const float> m, std::span<const float> x,
                 std::span<double> out);

/// Straight-line reference implementations, kept for parity tests and the
/// scalar-vs-vectorized microbenchmarks. Not for hot paths.
namespace scalar {
double Dot(std::span<const float> a, std::span<const float> b);
double SquaredDistance(std::span<const float> a, std::span<const float> b);
double CosineSimilarity(std::span<const float> a, std::span<const float> b);
double SquaredL2Diff(std::span<const float> a, std::span<const float> b,
                     std::span<const float> c);
void SaxpyTriple(std::span<float> a, std::span<float> b, std::span<float> c,
                 double scale);
void MatVecRows(std::span<const float> m, std::span<const float> x,
                std::span<double> out);
void MatTVecRows(std::span<const float> m, std::span<const float> x,
                 std::span<double> out);
}  // namespace scalar

}  // namespace kgaq

#endif  // KGAQ_EMBEDDING_VECTOR_OPS_H_
