#ifndef KGAQ_EMBEDDING_TRAINER_H_
#define KGAQ_EMBEDDING_TRAINER_H_

#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"
#include "embedding/embedding_model.h"
#include "kg/knowledge_graph.h"

namespace kgaq {

class ThreadPool;

/// How the shared epoch harness schedules SGD updates across the pool
/// (see docs/embedding_training.md for the determinism contract).
enum class TrainMode {
  /// Mini-batch gradient descent: each shuffled mini-batch is split into a
  /// config-fixed number of shards, every shard accumulates gradient
  /// deltas against the batch-start parameter snapshot into preallocated
  /// scratch, and deltas apply in shard order. Bitwise-reproducible at any
  /// thread count. batch_size == 1 degenerates to the classic sequential
  /// recipe of Bordes et al.: the same update arithmetic bit for bit, with
  /// only the distance accumulation lane-reordered (so a hinge decision an
  /// ulp from zero could in principle flip) — golden-tested against the
  /// pre-refactor trainer.
  kDeterministic,
  /// Hogwild! (Recht et al., NIPS'11): workers update the shared
  /// parameters in place, lock-free, each from a forked Rng. Fastest on
  /// real cores, but the final embedding depends on thread interleaving —
  /// statistically validated only, never bitwise-reproducible.
  kHogwild,
};

/// Mini-batch scheduling knobs for the shared training engine.
struct MiniBatchOptions {
  /// Positive triples per mini-batch. 1 (the default) is classic
  /// sequential SGD — every update sees all previous ones, the legacy
  /// recipe; larger values trade per-update freshness for sharded
  /// parallel gradient accumulation.
  size_t batch_size = 1;
  TrainMode mode = TrainMode::kDeterministic;
  /// Minimum (positive, negative) pairs a unit of work needs before it is
  /// fanned over the pool: a deterministic mini-batch below this runs on
  /// the submitting thread, and a hogwild epoch below this stays serial —
  /// fork-join overhead dominates under it.
  size_t min_parallel_triples = 4096;
  /// Shards per mini-batch in deterministic mode. Fixed by config, never
  /// derived from the pool width, so results are bitwise-stable on any
  /// thread count. 0 = auto (8, capped by the batch's pair count).
  size_t shards = 0;
  /// Pool override, mainly for thread-count parity tests; nullptr uses
  /// the process-wide GlobalPool().
  ThreadPool* pool = nullptr;
};

/// Hyper-parameters shared by all embedding trainers.
///
/// Defaults are scaled to the synthetic datasets (d=32 vs the paper's
/// 50-100 on multi-million-node KGs); all trainers use margin-ranking loss
/// with uniform negative sampling (corrupting head or tail), the standard
/// recipe of Bordes et al. that the paper builds on.
struct EmbeddingTrainConfig {
  size_t dim = 32;
  size_t epochs = 60;
  double learning_rate = 0.05;
  double margin = 1.0;
  /// Negative triples sampled per positive per epoch.
  size_t negatives_per_positive = 1;
  uint64_t seed = 42;
  MiniBatchOptions minibatch;
};

/// Training telemetry reported by the trainers (Table XIII columns).
struct EmbeddingTrainStats {
  double final_avg_loss = 0.0;
  double train_seconds = 0.0;
  size_t num_triples = 0;
  size_t memory_bytes = 0;
  /// (positive, negative) pairs processed per wall-clock second across the
  /// whole run: epochs * num_triples * negatives_per_positive / seconds.
  double triples_per_second = 0.0;
  /// Worker threads the epoch loop actually fanned out over (1 when the
  /// run stayed serial).
  size_t threads_used = 1;
};

/// Trains a TransE model (Bordes et al., NIPS'13): h + r ~ t.
Result<std::unique_ptr<EmbeddingModel>> TrainTransE(
    const KnowledgeGraph& g, const EmbeddingTrainConfig& config,
    EmbeddingTrainStats* stats = nullptr);

/// Trains a TransH model (Wang et al., AAAI'14): translation on a
/// relation-specific hyperplane.
Result<std::unique_ptr<EmbeddingModel>> TrainTransH(
    const KnowledgeGraph& g, const EmbeddingTrainConfig& config,
    EmbeddingTrainStats* stats = nullptr);

/// Trains a TransD model (Ji et al., ACL'15): dynamic mapping matrices
/// built from entity and relation projection vectors.
Result<std::unique_ptr<EmbeddingModel>> TrainTransD(
    const KnowledgeGraph& g, const EmbeddingTrainConfig& config,
    EmbeddingTrainStats* stats = nullptr);

/// Trains a RESCAL model (Nickel et al., ICML'11): bilinear d x d relation
/// matrices. The predicate representation for Eq. 4 is the flattened matrix.
Result<std::unique_ptr<EmbeddingModel>> TrainRescal(
    const KnowledgeGraph& g, const EmbeddingTrainConfig& config,
    EmbeddingTrainStats* stats = nullptr);

/// Trains an SE model (Bordes et al., AAAI'11): two relation-specific
/// projection matrices. Predicate representation = both matrices flattened.
Result<std::unique_ptr<EmbeddingModel>> TrainSe(
    const KnowledgeGraph& g, const EmbeddingTrainConfig& config,
    EmbeddingTrainStats* stats = nullptr);

/// Dispatches by model family name: "TransE", "TransH", "TransD",
/// "RESCAL", "SE" (case-sensitive, as printed in Table XIII).
Result<std::unique_ptr<EmbeddingModel>> TrainModelByName(
    std::string_view model_name, const KnowledgeGraph& g,
    const EmbeddingTrainConfig& config,
    EmbeddingTrainStats* stats = nullptr);

}  // namespace kgaq

#endif  // KGAQ_EMBEDDING_TRAINER_H_
