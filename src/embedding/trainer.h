#ifndef KGAQ_EMBEDDING_TRAINER_H_
#define KGAQ_EMBEDDING_TRAINER_H_

#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"
#include "embedding/embedding_model.h"
#include "kg/knowledge_graph.h"

namespace kgaq {

/// Hyper-parameters shared by all embedding trainers.
///
/// Defaults are scaled to the synthetic datasets (d=32 vs the paper's
/// 50-100 on multi-million-node KGs); all trainers use margin-ranking loss
/// with uniform negative sampling (corrupting head or tail), the standard
/// recipe of Bordes et al. that the paper builds on.
struct EmbeddingTrainConfig {
  size_t dim = 32;
  size_t epochs = 60;
  double learning_rate = 0.05;
  double margin = 1.0;
  /// Negative triples sampled per positive per epoch.
  size_t negatives_per_positive = 1;
  uint64_t seed = 42;
};

/// Training telemetry reported by the trainers (Table XIII columns).
struct EmbeddingTrainStats {
  double final_avg_loss = 0.0;
  double train_seconds = 0.0;
  size_t num_triples = 0;
  size_t memory_bytes = 0;
};

/// Trains a TransE model (Bordes et al., NIPS'13): h + r ~ t.
Result<std::unique_ptr<EmbeddingModel>> TrainTransE(
    const KnowledgeGraph& g, const EmbeddingTrainConfig& config,
    EmbeddingTrainStats* stats = nullptr);

/// Trains a TransH model (Wang et al., AAAI'14): translation on a
/// relation-specific hyperplane.
Result<std::unique_ptr<EmbeddingModel>> TrainTransH(
    const KnowledgeGraph& g, const EmbeddingTrainConfig& config,
    EmbeddingTrainStats* stats = nullptr);

/// Trains a TransD model (Ji et al., ACL'15): dynamic mapping matrices
/// built from entity and relation projection vectors.
Result<std::unique_ptr<EmbeddingModel>> TrainTransD(
    const KnowledgeGraph& g, const EmbeddingTrainConfig& config,
    EmbeddingTrainStats* stats = nullptr);

/// Trains a RESCAL model (Nickel et al., ICML'11): bilinear d x d relation
/// matrices. The predicate representation for Eq. 4 is the flattened matrix.
Result<std::unique_ptr<EmbeddingModel>> TrainRescal(
    const KnowledgeGraph& g, const EmbeddingTrainConfig& config,
    EmbeddingTrainStats* stats = nullptr);

/// Trains an SE model (Bordes et al., AAAI'11): two relation-specific
/// projection matrices. Predicate representation = both matrices flattened.
Result<std::unique_ptr<EmbeddingModel>> TrainSe(
    const KnowledgeGraph& g, const EmbeddingTrainConfig& config,
    EmbeddingTrainStats* stats = nullptr);

/// Dispatches by model family name: "TransE", "TransH", "TransD",
/// "RESCAL", "SE" (case-sensitive, as printed in Table XIII).
Result<std::unique_ptr<EmbeddingModel>> TrainModelByName(
    std::string_view model_name, const KnowledgeGraph& g,
    const EmbeddingTrainConfig& config,
    EmbeddingTrainStats* stats = nullptr);

}  // namespace kgaq

#endif  // KGAQ_EMBEDDING_TRAINER_H_
