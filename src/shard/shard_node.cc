#include "shard/shard_node.h"

#include <utility>

#include "common/shard_hash.h"
#include "kg/snapshot.h"

namespace kgaq {

ShardNode::ShardNode(std::shared_ptr<const EngineContext> context,
                     KgPartitionInfo info, ServiceOptions service_options)
    : ctx_(std::move(context)), info_(info) {
  // The shard's public query surface only ever samples what it owns; the
  // restriction lives in the service's engine options so every sub-query
  // (whatever overrides it carries) inherits it.
  service_options.engine.shard.num_shards = info_.num_shards;
  service_options.engine.shard.shard_index = info_.shard_index;
  service_ = std::make_unique<QueryService>(ctx_, service_options);
}

Result<std::unique_ptr<ShardNode>> ShardNode::Create(
    std::shared_ptr<const EngineContext> context, KgPartitionInfo info,
    ServiceOptions service_options) {
  if (context == nullptr) {
    return Status::InvalidArgument("shard node needs an engine context");
  }
  if (info.num_shards == 0 || info.shard_index >= info.num_shards) {
    return Status::InvalidArgument("inconsistent shard partition info");
  }
  return std::unique_ptr<ShardNode>(
      new ShardNode(std::move(context), info, std::move(service_options)));
}

Result<std::unique_ptr<ShardNode>> ShardNode::FromSnapshot(
    const std::string& path, ServiceOptions service_options) {
  auto snap = LoadEngineSnapshot(path);
  if (!snap.ok()) return snap.status();
  if (!snap->partition.has_value()) {
    return Status::InvalidArgument(
        "'" + path + "' carries no partition section (not a shard snapshot)");
  }
  if (snap->embedding == nullptr) {
    return Status::InvalidArgument(
        "'" + path + "' carries no embedding; a shard node cannot serve");
  }
  const KgPartitionInfo info = *snap->partition;
  auto ctx = std::make_shared<EngineContext>(std::move(snap->graph),
                                             std::move(snap->embedding));
  return Create(std::move(ctx), info, std::move(service_options));
}

Result<ShardPlanResult> ShardNode::Plan(const AggregateQuery& query,
                                        const EngineOptions& options) {
  // The plan session is UNRESTRICTED (options.shard cleared): it must
  // reproduce the global candidate array exactly, because the wire
  // references candidates by their position in it.
  EngineOptions plan_options = options;
  plan_options.shard = ShardSelector{};
  ApproxEngine engine(ctx_, plan_options);
  auto session = engine.CreateSession(query);
  if (!session.ok()) return session.status();

  ShardPlanResult out;
  out.group_by_enabled = query.group_by.enabled();
  const auto nodes = (*session)->candidate_nodes();
  const auto probs = (*session)->candidate_probabilities();
  out.num_candidates = nodes.size();
  const KnowledgeGraph& g = ctx_->graph();
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (ShardOfName(g.NodeName(nodes[i]), info_.num_shards) ==
        info_.shard_index) {
      out.indices.push_back(i);
      out.nodes.push_back(nodes[i]);
      out.probs.push_back(probs[i]);
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.token = next_token_++;
    sessions_.emplace(out.token,
                      std::shared_ptr<QuerySession>(std::move(*session)));
  }
  return out;
}

Result<std::vector<NodeOutcome>> ShardNode::Validate(
    uint64_t token, std::span<const size_t> indices) {
  std::shared_ptr<QuerySession> session;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(token);
    if (it == sessions_.end()) {
      return Status::NotFound("unknown shard plan token " +
                              std::to_string(token));
    }
    session = it->second;
  }
  for (size_t idx : indices) {
    if (idx >= session->num_candidates()) {
      return Status::OutOfRange("candidate index " + std::to_string(idx) +
                                " out of range");
    }
  }
  std::vector<NodeOutcome> outcomes;
  session->EvaluateBatch(indices, outcomes);
  return outcomes;
}

void ShardNode::Release(uint64_t token) {
  std::lock_guard<std::mutex> lock(mu_);
  sessions_.erase(token);
}

QueryResponse ShardNode::SubQuery(const QueryRequest& request) {
  return service_->SubmitAsync(request).Wait();
}

size_t ShardNode::live_plan_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

}  // namespace kgaq
