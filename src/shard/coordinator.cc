#include "shard/coordinator.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <numeric>
#include <utility>

#include "common/fault_injection.h"
#include "common/thread_pool.h"
#include "query/aggregate.h"

namespace kgaq {

const char* ShardModeToString(ShardMode mode) {
  switch (mode) {
    case ShardMode::kDeterministicMerge:
      return "deterministic_merge";
    case ShardMode::kFederated:
      return "federated";
  }
  return "unknown";
}

Coordinator::Coordinator(std::vector<std::unique_ptr<ShardChannel>> channels,
                         CoordinatorOptions options)
    : channels_(std::move(channels)), options_(std::move(options)) {}

CoordinatorStats Coordinator::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::vector<ChannelHealth> Coordinator::channel_health() const {
  std::vector<ChannelHealth> out;
  out.reserve(channels_.size());
  for (const auto& ch : channels_) out.push_back(ch->health());
  return out;
}

QueryResponse Coordinator::Execute(const QueryRequest& request) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto started = std::chrono::steady_clock::now();
  const uint64_t id = next_index_++;
  ++stats_.submitted;

  // Same effective-options assembly as QueryService's admit path, so a
  // coordinator and an unsharded service given the same request sequence
  // run identical engine configurations (the parity tests rely on it).
  const uint64_t seed = request.seed.has_value()
                            ? *request.seed
                            : QueryService::QuerySeed(options_.base_seed, id);
  EngineOptions opts = options_.engine;
  opts.seed = seed;
  opts.shard = ShardSelector{};  // the coordinator replays the GLOBAL run
  if (request.error_bound.has_value()) opts.error_bound = *request.error_bound;
  if (request.confidence_level.has_value()) {
    opts.confidence_level = *request.confidence_level;
  }
  if (request.max_rounds.has_value()) opts.max_rounds = *request.max_rounds;
  const Deadline deadline = request.deadline_ms > 0.0
                                ? Deadline::AfterMillis(request.deadline_ms)
                                : Deadline::Infinite();

  QueryResponse response;
  if (channels_.empty()) {
    response.state = QueryState::kFailed;
    response.status = Status::FailedPrecondition("coordinator has no shards");
  } else if (options_.mode == ShardMode::kDeterministicMerge) {
    response = ExecuteDeterministic(request.query, opts, deadline);
  } else {
    response = ExecuteFederated(request, opts, seed, deadline);
  }
  response.id = id;
  response.seed_used = seed;
  response.run_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - started)
                        .count();

  switch (response.state) {
    case QueryState::kDone:
      ++stats_.done;
      break;
    case QueryState::kFailed:
      ++stats_.failed;
      break;
    case QueryState::kDeadlineExceeded:
      ++stats_.deadline_expired;
      break;
    case QueryState::kCancelled:
      ++stats_.cancelled;
      break;
    case QueryState::kQueued:
    case QueryState::kRunning:
      // Execute only returns terminal states; count defensively as done.
      ++stats_.done;
      break;
  }
  if (response.degraded) ++stats_.degraded;
  return response;
}

Result<Coordinator::MergedPlan> Coordinator::ScatterPlan(
    const AggregateQuery& query, const EngineOptions& options,
    Deadline deadline) {
  const size_t n = channels_.size();
  std::vector<Result<ShardPlanResult>> plans(
      n, Result<ShardPlanResult>(ShardPlanResult{}));
  ParallelFor(GlobalPool(), n, [&](size_t s) {
    plans[s] = channels_[s]->Plan(ShardPlanRequest{query, options, deadline});
  });

  MergedPlan merged;
  merged.tokens.assign(n, 0);
  merged.shard_live.assign(n, false);
  size_t live = 0;
  Status last_error;
  for (size_t s = 0; s < n; ++s) {
    if (!plans[s].ok()) {
      last_error = plans[s].status();
      continue;
    }
    merged.shard_live[s] = true;
    merged.tokens[s] = plans[s]->token;
    ++live;
  }
  if (live == 0) {
    return Status::Unavailable("all " + std::to_string(n) +
                               " shards failed at plan; last error: " +
                               last_error.ToString());
  }

  if (KGAQ_FAULT_POINT("shard.merge")) {
    // Release what we planned before failing, or shards leak sessions.
    for (size_t s = 0; s < n; ++s) {
      if (merged.shard_live[s]) channels_[s]->Release(merged.tokens[s]);
    }
    return Status::Internal("injected: shard merge failed");
  }

  // Cross-shard consistency: every live shard must have planned the same
  // global candidate array (same size, same GROUP-BY shape). A mismatch
  // means the shards disagree about the query or the partition — an
  // internal error, never silently a wrong answer.
  bool first = true;
  for (size_t s = 0; s < n; ++s) {
    if (!merged.shard_live[s]) continue;
    if (first) {
      merged.num_candidates = plans[s]->num_candidates;
      merged.group_by_enabled = plans[s]->group_by_enabled;
      first = false;
    } else if (plans[s]->num_candidates != merged.num_candidates ||
               plans[s]->group_by_enabled != merged.group_by_enabled) {
      return Status::Internal(
          "shards disagree on the global candidate array (nc " +
          std::to_string(plans[s]->num_candidates) + " vs " +
          std::to_string(merged.num_candidates) + ")");
    }
  }

  // k-way merge by ascending global index. Each shard's slice is already
  // ascending, so a sort of the concatenation is deterministic and cheap
  // relative to planning.
  struct Entry {
    uint64_t index;
    NodeId node;
    double prob;
    uint32_t owner;
  };
  std::vector<Entry> entries;
  for (size_t s = 0; s < n; ++s) {
    if (!merged.shard_live[s]) continue;
    const ShardPlanResult& plan = *plans[s];
    for (size_t i = 0; i < plan.indices.size(); ++i) {
      entries.push_back(Entry{plan.indices[i], plan.nodes[i], plan.probs[i],
                              static_cast<uint32_t>(s)});
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.index < b.index; });
  for (size_t i = 0; i + 1 < entries.size(); ++i) {
    if (entries[i].index == entries[i + 1].index) {
      return Status::Internal("two shards both claim candidate index " +
                              std::to_string(entries[i].index));
    }
  }

  merged.full_coverage = (live == n);
  if (merged.full_coverage) {
    // Coverage check: the union of owned slices must be EXACTLY the
    // global array — then merged position i IS global index i and the
    // distribution needs (and gets) no renormalization, preserving
    // bitwise parity with the unsharded run.
    if (entries.size() != merged.num_candidates) {
      return Status::Internal(
          "owned slices cover " + std::to_string(entries.size()) + " of " +
          std::to_string(merged.num_candidates) +
          " global candidates (halo too small?)");
    }
    for (size_t i = 0; i < entries.size(); ++i) {
      if (entries[i].index != i) {
        return Status::Internal("candidate index " + std::to_string(i) +
                                " missing from every shard's owned slice");
      }
    }
  } else if (entries.empty()) {
    return Status::Unavailable(
        "the shards lost at plan time owned every candidate");
  }

  merged.nodes.reserve(entries.size());
  merged.probs.reserve(entries.size());
  merged.owner.reserve(entries.size());
  merged.global_index.reserve(entries.size());
  double prob_sum = 0.0;
  for (const Entry& e : entries) {
    merged.nodes.push_back(e.node);
    merged.probs.push_back(e.prob);
    merged.owner.push_back(e.owner);
    merged.global_index.push_back(e.index);
    prob_sum += e.prob;
  }
  if (!merged.full_coverage) {
    // Partial coverage: the draw distribution is the merged probs
    // renormalized by their own sum, so each item's recorded draw
    // probability equals its actual draw probability and the HT estimate
    // over the surviving shards stays unbiased FOR THE SURVIVING
    // CANDIDATES. The answer is marked degraded upstream.
    if (prob_sum <= 0.0) {
      return Status::Unavailable("surviving candidates carry no draw mass");
    }
    for (double& p : merged.probs) p /= prob_sum;
  }
  return merged;
}

void Coordinator::ReleasePlans(const MergedPlan& plan) {
  for (size_t s = 0; s < channels_.size(); ++s) {
    // Best-effort: a shard that died keeps nothing worth releasing, and
    // ShardNode::Release is idempotent.
    if (plan.shard_live[s]) channels_[s]->Release(plan.tokens[s]);
  }
}

QueryResponse Coordinator::ExecuteDeterministic(const AggregateQuery& query,
                                                const EngineOptions& options,
                                                Deadline deadline) {
  QueryResponse response;
  auto merged = ScatterPlan(query, options, deadline);
  if (!merged.ok()) {
    response.state = QueryState::kFailed;
    response.status = merged.status();
    return response;
  }
  const MergedPlan& plan = *merged;
  const size_t n = channels_.size();

  // The outsourced per-draw fold: map merged positions back to (owner
  // shard, global index), batch per shard, validate in parallel, scatter
  // the outcomes back into draw order. Any shard failure fails the whole
  // round — the session retires with kShardLost and its completed rounds
  // intact.
  std::vector<std::vector<size_t>> positions_by_shard(n);
  std::vector<std::vector<size_t>> indices_by_shard(n);
  RemoteEvaluator evaluator = [&](std::span<const size_t> draws,
                                  std::vector<NodeOutcome>& out) -> Status {
    for (auto& v : positions_by_shard) v.clear();
    for (auto& v : indices_by_shard) v.clear();
    for (size_t j = 0; j < draws.size(); ++j) {
      const size_t position = draws[j];
      const uint32_t owner = plan.owner[position];
      positions_by_shard[owner].push_back(j);
      indices_by_shard[owner].push_back(
          static_cast<size_t>(plan.global_index[position]));
    }
    out.assign(draws.size(), NodeOutcome{});
    std::vector<Status> statuses(n);
    ParallelFor(GlobalPool(), n, [&](size_t s) {
      if (indices_by_shard[s].empty()) return;
      ShardValidateRequest req;
      req.token = plan.tokens[s];
      req.indices = indices_by_shard[s];
      req.deadline = deadline;
      auto outcomes = channels_[s]->Validate(req);
      if (!outcomes.ok()) {
        statuses[s] = outcomes.status();
        return;
      }
      if (outcomes->size() != positions_by_shard[s].size()) {
        statuses[s] = Status::Internal("shard returned " +
                                       std::to_string(outcomes->size()) +
                                       " outcomes for " +
                                       std::to_string(indices_by_shard[s].size()) +
                                       " draws");
        return;
      }
      for (size_t j = 0; j < outcomes->size(); ++j) {
        out[positions_by_shard[s][j]] = (*outcomes)[j];
      }
    });
    for (const Status& s : statuses) {
      if (!s.ok()) return s;
    }
    return Status::OK();
  };

  FederatedSessionSpec spec;
  spec.options = options;
  spec.query = query;
  spec.candidates = plan.nodes;
  spec.probabilities = plan.probs;
  spec.group_by_enabled = plan.group_by_enabled;
  spec.evaluator = evaluator;
  std::unique_ptr<QuerySession> session =
      QuerySession::CreateFederated(std::move(spec));
  session->SetStopControl(nullptr, deadline);
  session->BeginRun(options.error_bound);
  while (!session->StepRound()) {
  }
  response.result = session->FinishRun();
  const StopCause cause = session->stop_cause();
  ReleasePlans(plan);

  switch (cause) {
    case StopCause::kNone:
      response.state = QueryState::kDone;
      response.degraded = !plan.full_coverage;
      break;
    case StopCause::kDeadlineExceeded:
      response.state = QueryState::kDeadlineExceeded;
      response.degraded = response.result.rounds >= 1;
      break;
    case StopCause::kShardLost:
      if (deadline.expired()) {
        // The "lost" shard was almost certainly a casualty of the query
        // deadline: channels clamp per-RPC timeouts to the remaining
        // budget, so once it hits zero every shard looks dead. Attribute
        // to the deadline, like an unsharded engine would.
        response.state = QueryState::kDeadlineExceeded;
        response.degraded = response.result.rounds >= 1;
      } else if (response.result.rounds >= 1) {
        // Completed rounds stand: a valid (if wider) estimate over the
        // full pre-loss schedule. An answer, not an error.
        response.state = QueryState::kDone;
        response.degraded = true;
      } else {
        response.state = QueryState::kFailed;
        response.status = Status::Unavailable(
            "a shard was lost before the first round completed");
      }
      break;
    case StopCause::kCancelled:
    case StopCause::kShed:
      // Unreachable: the coordinator installs no cancel flag and never
      // requests shedding. Treat as done defensively.
      response.state = QueryState::kDone;
      break;
  }
  if (response.degraded && response.result.rounds > 0 &&
      std::abs(response.result.v_hat) > 0.0) {
    // Same contract as QueryService::Retire: a degraded answer reports
    // the relative CI half-width it actually achieved.
    response.result.error_bound =
        response.result.moe / std::abs(response.result.v_hat);
  }
  return response;
}

QueryResponse Coordinator::ExecuteFederated(const QueryRequest& request,
                                            const EngineOptions& options,
                                            uint64_t seed, Deadline deadline) {
  QueryResponse response;
  const size_t n = channels_.size();
  const AggregateFunction fn = request.query.function;
  const bool is_avg = fn == AggregateFunction::kAvg;
  const bool is_extreme =
      fn == AggregateFunction::kMax || fn == AggregateFunction::kMin;

  if (is_avg && request.query.group_by.enabled()) {
    response.state = QueryState::kFailed;
    response.status = Status::Unimplemented(
        "AVG GROUP-BY is not combinable in federated mode; use "
        "deterministic-merge");
    return response;
  }

  // Per-shard sub-requests. AVG decomposes into a SUM leg and a COUNT
  // leg per shard (AVG of a union is not the sum of AVGs); the legs draw
  // from distinct derived seed streams so they are independent.
  struct Leg {
    size_t shard;
    QueryRequest request;
  };
  std::vector<Leg> legs;
  for (size_t s = 0; s < n; ++s) {
    QueryRequest sub = request;
    if (request.deadline_ms > 0.0) {
      // Clamp each leg to the REMAINING query budget: admission work
      // (and, on retries higher up, earlier legs) may already have spent
      // part of it, and a sub-query given the original full deadline
      // could overshoot the coordinator's own.
      sub.deadline_ms = std::min(request.deadline_ms,
                                 std::max(0.0, deadline.remaining_millis()));
    }
    sub.error_bound = options.error_bound;
    sub.confidence_level = options.confidence_level;
    sub.max_rounds = options.max_rounds;
    if (is_avg) {
      QueryRequest sum_leg = sub;
      sum_leg.query.function = AggregateFunction::kSum;
      sum_leg.seed = QueryService::QuerySeed(seed ^ 0x5353u, s);
      legs.push_back(Leg{s, std::move(sum_leg)});
      QueryRequest count_leg = sub;
      count_leg.query.function = AggregateFunction::kCount;
      count_leg.seed = QueryService::QuerySeed(seed ^ 0xC0C0u, s);
      legs.push_back(Leg{s, std::move(count_leg)});
    } else {
      sub.seed = QueryService::QuerySeed(seed, s);
      legs.push_back(Leg{s, std::move(sub)});
    }
  }

  std::vector<Result<QueryResponse>> replies(
      legs.size(), Result<QueryResponse>(QueryResponse{}));
  ParallelFor(GlobalPool(), legs.size(), [&](size_t i) {
    replies[i] = channels_[legs[i].shard]->SubQuery(legs[i].request);
  });

  // A leg is usable when it reached the shard AND came back with an
  // estimate: done, or deadline-expired after at least one round.
  auto usable = [](const Result<QueryResponse>& r) {
    if (!r.ok()) return false;
    if (r->state == QueryState::kDone) return true;
    return r->state == QueryState::kDeadlineExceeded && r->result.rounds > 0;
  };

  // Per-shard usability: an AVG shard needs BOTH legs.
  std::vector<bool> shard_usable(n, true);
  for (size_t i = 0; i < legs.size(); ++i) {
    if (!usable(replies[i])) shard_usable[legs[i].shard] = false;
  }
  size_t usable_shards = 0;
  for (size_t s = 0; s < n; ++s) {
    if (shard_usable[s]) ++usable_shards;
  }
  if (usable_shards == 0) {
    Status last = Status::Unavailable("no shard produced a usable answer");
    for (const auto& r : replies) {
      if (!r.ok()) last = r.status();
      else if (r->state == QueryState::kFailed) last = r->status;
    }
    response.state = QueryState::kFailed;
    response.status = std::move(last);
    return response;
  }

  AggregateResult& out = response.result;
  out.confidence_level = options.confidence_level;
  out.error_bound = options.error_bound;
  bool all_satisfied = true;
  bool any_deadline = false;
  bool any_sub_degraded = false;
  double sum_v = 0.0, sum_var = 0.0;
  double avg_sum = 0.0, avg_sum_var = 0.0, avg_count = 0.0,
         avg_count_var = 0.0;
  double extreme = 0.0;
  bool extreme_seen = false;
  std::map<double, GroupEstimate> groups;
  for (size_t i = 0; i < legs.size(); ++i) {
    const size_t s = legs[i].shard;
    if (!shard_usable[s]) continue;
    const QueryResponse& r = *replies[i];
    const AggregateResult& sub = r.result;
    all_satisfied = all_satisfied && sub.satisfied;
    any_deadline = any_deadline || r.state == QueryState::kDeadlineExceeded;
    any_sub_degraded = any_sub_degraded || r.degraded;
    out.rounds = std::max(out.rounds, sub.rounds);
    out.total_draws += sub.total_draws;
    out.correct_draws += sub.correct_draws;
    if (is_avg) {
      // num_candidates is identical across a shard's two legs; count once.
      if (legs[i].request.query.function == AggregateFunction::kSum) {
        out.num_candidates += sub.num_candidates;
        avg_sum += sub.v_hat;
        avg_sum_var += sub.moe * sub.moe;
      } else {
        avg_count += sub.v_hat;
        avg_count_var += sub.moe * sub.moe;
      }
      continue;
    }
    out.num_candidates += sub.num_candidates;
    if (is_extreme) {
      if (!extreme_seen) {
        extreme = sub.v_hat;
        extreme_seen = true;
      } else {
        extreme = fn == AggregateFunction::kMax
                      ? std::max(extreme, sub.v_hat)
                      : std::min(extreme, sub.v_hat);
      }
      continue;
    }
    sum_v += sub.v_hat;
    sum_var += sub.moe * sub.moe;
    for (const GroupEstimate& g : sub.groups) {
      // bucket_lower is key * bucket_width computed identically on every
      // shard, so exact double equality is the right join key.
      GroupEstimate& acc = groups[g.bucket_lower];
      acc.bucket_lower = g.bucket_lower;
      acc.v_hat += g.v_hat;
      acc.moe = std::sqrt(acc.moe * acc.moe + g.moe * g.moe);
      acc.support += g.support;
      acc.satisfied = (acc.support == g.support) ? g.satisfied
                                                 : (acc.satisfied &&
                                                    g.satisfied);
    }
  }

  if (is_avg) {
    if (avg_count <= 0.0) {
      response.state = QueryState::kFailed;
      response.status =
          Status::Internal("federated AVG combined a zero COUNT estimate");
      return response;
    }
    out.v_hat = avg_sum / avg_count;
    // First-order (delta-method) propagation of the two legs' relative
    // errors; conservative because the legs are independent streams.
    const double rel_sum =
        avg_sum != 0.0 ? std::sqrt(avg_sum_var) / std::abs(avg_sum) : 0.0;
    const double rel_count = std::sqrt(avg_count_var) / avg_count;
    out.moe = std::abs(out.v_hat) *
              std::sqrt(rel_sum * rel_sum + rel_count * rel_count);
    if (avg_sum == 0.0) out.moe = std::sqrt(avg_sum_var) / avg_count;
  } else if (is_extreme) {
    out.v_hat = extreme;
    out.moe = 0.0;  // MAX/MIN carry no guarantee, sharded or not
  } else {
    out.v_hat = sum_v;
    out.moe = std::sqrt(sum_var);
    out.groups.reserve(groups.size());
    for (auto& [lower, g] : groups) out.groups.push_back(g);
  }

  const bool all_usable = usable_shards == n;
  out.satisfied = all_usable && all_satisfied && !is_extreme &&
                  (std::abs(out.v_hat) > 0.0
                       ? out.moe <= options.error_bound * std::abs(out.v_hat)
                       : out.moe == 0.0);
  response.degraded = !all_usable || any_deadline || any_sub_degraded;
  response.state =
      any_deadline ? QueryState::kDeadlineExceeded : QueryState::kDone;
  if (response.degraded && out.rounds > 0 && std::abs(out.v_hat) > 0.0) {
    out.error_bound = out.moe / std::abs(out.v_hat);
  }
  return response;
}

std::string RenderShardTierJson(const Coordinator& coordinator) {
  const CoordinatorStats stats = coordinator.stats();
  const std::vector<ChannelHealth> health = coordinator.channel_health();
  std::string out = "\"shard_tier\":{\"mode\":\"";
  out += ShardModeToString(coordinator.options().mode);
  out += "\",\"shards\":[";
  for (size_t s = 0; s < health.size(); ++s) {
    const ChannelHealth& h = health[s];
    if (s > 0) out += ',';
    out += "{\"replicas\":" + std::to_string(h.replicas) +
           ",\"healthy\":" + std::to_string(h.healthy) +
           ",\"failovers\":" + std::to_string(h.failovers) +
           ",\"failed_rpcs\":" + std::to_string(h.failed_rpcs) +
           ",\"breaker_opens\":" + std::to_string(h.breaker_opens) +
           ",\"breaker_rejected\":" + std::to_string(h.breaker_rejected) +
           ",\"hedges_launched\":" + std::to_string(h.hedges_launched) +
           ",\"hedges_won\":" + std::to_string(h.hedges_won) +
           ",\"budget_denied\":" + std::to_string(h.budget_denied) +
           ",\"probes\":" + std::to_string(h.probes) +
           ",\"probe_failures\":" + std::to_string(h.probe_failures) +
           ",\"divergent_plans\":" + std::to_string(h.divergent_plans) +
           ",\"breakers\":[";
    for (size_t r = 0; r < h.states.size(); ++r) {
      if (r > 0) out += ',';
      out += '"';
      out += BreakerStateToString(h.states[r]);
      out += '"';
    }
    out += "]}";
  }
  out += "],\"coordinator\":{\"submitted\":" + std::to_string(stats.submitted) +
         ",\"done\":" + std::to_string(stats.done) +
         ",\"failed\":" + std::to_string(stats.failed) +
         ",\"deadline_expired\":" + std::to_string(stats.deadline_expired) +
         ",\"degraded\":" + std::to_string(stats.degraded) + "}}";
  return out;
}

}  // namespace kgaq
