#include "shard/partitioner.h"

#include <deque>
#include <limits>

#include "common/shard_hash.h"

namespace kgaq {

namespace {

constexpr uint32_t kUnreached = std::numeric_limits<uint32_t>::max();

/// Multi-source BFS distance (in hops) from the owned set, capped at
/// `max_depth`; kUnreached beyond the cap.
std::vector<uint32_t> HaloDistances(const KnowledgeGraph& g,
                                    const std::vector<NodeId>& sources,
                                    uint32_t max_depth) {
  std::vector<uint32_t> dist(g.NumNodes(), kUnreached);
  std::deque<NodeId> frontier;
  for (NodeId u : sources) {
    dist[u] = 0;
    frontier.push_back(u);
  }
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    if (dist[u] >= max_depth) continue;
    for (const Neighbor& nb : g.Neighbors(u)) {
      if (dist[nb.node] == kUnreached) {
        dist[nb.node] = dist[u] + 1;
        frontier.push_back(nb.node);
      }
    }
  }
  return dist;
}

}  // namespace

uint32_t KgPartitioner::OwnerOf(const KnowledgeGraph& g, NodeId u,
                                uint32_t num_shards) {
  return ShardOfName(g.NodeName(u), num_shards);
}

Result<std::vector<ShardCut>> KgPartitioner::Partition(
    const KnowledgeGraph& g, const Options& options) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (options.halo_hops == 0) {
    return Status::InvalidArgument("halo_hops must be >= 1");
  }
  const size_t n = g.NumNodes();
  const uint32_t num_shards = options.num_shards;

  // Ownership is a pure function of the node name — computed once, reused
  // per shard.
  std::vector<uint32_t> owner(n);
  for (NodeId u = 0; u < n; ++u) {
    owner[u] = ShardOfName(g.NodeName(u), num_shards);
  }

  std::vector<ShardCut> shards;
  shards.reserve(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    ShardCut cut;
    for (NodeId u = 0; u < n; ++u) {
      if (owner[u] == s) cut.owned.push_back(u);
    }

    // A triple is kept iff >= 1 endpoint is within halo_hops-1 of the
    // owned set. The predicate is symmetric in the endpoints, so a
    // triple's two arcs (forward at the subject, reversed at the object)
    // are kept or dropped together and the arcs/2 == triples invariant
    // survives the cut.
    const std::vector<uint32_t> dist =
        HaloDistances(g, cut.owned, options.halo_hops - 1);
    auto inner = [&dist](NodeId u) { return dist[u] != kUnreached; };

    KnowledgeGraph& sg = cut.graph;
    // Everything except the adjacency is copied verbatim: identical
    // dictionaries, node table, type/attr CSRs and name index mean
    // identical id assignment and iteration order on every shard.
    sg.names_ = g.names_;
    sg.types_ = g.types_;
    sg.predicates_ = g.predicates_;
    sg.attributes_ = g.attributes_;
    sg.node_names_ = g.node_names_;
    sg.type_offsets_ = g.type_offsets_;
    sg.type_ids_ = g.type_ids_;
    sg.type_index_offsets_ = g.type_index_offsets_;
    sg.type_index_members_ = g.type_index_members_;
    sg.attr_offsets_ = g.attr_offsets_;
    sg.attr_ids_ = g.attr_ids_;
    sg.attr_values_ = g.attr_values_;
    sg.name_to_node_ = g.name_to_node_;

    sg.adj_offsets_.assign(n + 1, 0);
    size_t kept_arcs = 0;
    for (NodeId u = 0; u < n; ++u) {
      sg.adj_offsets_[u] = kept_arcs;
      for (const Neighbor& nb : g.Neighbors(u)) {
        if (inner(u) || inner(nb.node)) ++kept_arcs;
      }
    }
    sg.adj_offsets_[n] = kept_arcs;
    sg.adjacency_.reserve(kept_arcs);
    for (NodeId u = 0; u < n; ++u) {
      for (const Neighbor& nb : g.Neighbors(u)) {
        if (inner(u) || inner(nb.node)) sg.adjacency_.push_back(nb);
      }
    }
    sg.num_triples_ = kept_arcs / 2;

    cut.info.scheme = 0;
    cut.info.num_shards = num_shards;
    cut.info.shard_index = s;
    cut.info.halo_hops = options.halo_hops;
    cut.info.owned_nodes = cut.owned.size();
    cut.info.global_triples = g.NumEdges();
    shards.push_back(std::move(cut));
  }
  return shards;
}

Status KgPartitioner::WriteShardSnapshots(const KnowledgeGraph& g,
                                          const EmbeddingModel* model,
                                          const Options& options,
                                          const std::string& path_prefix,
                                          std::vector<std::string>* paths_out) {
  auto shards = Partition(g, options);
  if (!shards.ok()) return shards.status();
  for (const ShardCut& cut : *shards) {
    const std::string path = path_prefix + ".shard" +
                             std::to_string(cut.info.shard_index) + "-of" +
                             std::to_string(cut.info.num_shards) + ".kgsnap";
    KGAQ_RETURN_IF_ERROR(
        SaveEngineSnapshot(cut.graph, model, &cut.info, path));
    if (paths_out != nullptr) paths_out->push_back(path);
  }
  return Status::OK();
}

}  // namespace kgaq
