#include "shard/health.h"

#include <algorithm>

namespace kgaq {

const char* BreakerStateToString(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker(BreakerOptions options) : options_(options) {
  options_.failure_threshold = std::max(1, options_.failure_threshold);
  if (options_.open_cooldown_ms < 0.0) options_.open_cooldown_ms = 0.0;
}

CircuitBreaker::Gate CircuitBreaker::Admit() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case BreakerState::kClosed:
      return Gate::kProceed;
    case BreakerState::kOpen: {
      const auto cooldown = std::chrono::duration<double, std::milli>(
          options_.open_cooldown_ms);
      if (Clock::now() - opened_at_ < cooldown) {
        ++rejected_;
        return Gate::kReject;
      }
      state_ = BreakerState::kHalfOpen;
      probe_in_flight_ = true;
      return Gate::kProbe;
    }
    case BreakerState::kHalfOpen:
      if (probe_in_flight_) {
        ++rejected_;
        return Gate::kReject;
      }
      probe_in_flight_ = true;
      return Gate::kProbe;
  }
  return Gate::kReject;
}

void CircuitBreaker::OnSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  state_ = BreakerState::kClosed;
  consecutive_failures_ = 0;
  probe_in_flight_ = false;
}

bool CircuitBreaker::OnFailure() {
  std::lock_guard<std::mutex> lock(mu_);
  probe_in_flight_ = false;
  if (state_ == BreakerState::kHalfOpen) {
    // The probe failed: back to Open, cooldown restarts.
    state_ = BreakerState::kOpen;
    opened_at_ = Clock::now();
    ++opens_;
    return true;
  }
  if (state_ == BreakerState::kOpen) return false;
  if (++consecutive_failures_ >= options_.failure_threshold) {
    state_ = BreakerState::kOpen;
    opened_at_ = Clock::now();
    ++opens_;
    return true;
  }
  return false;
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

uint64_t CircuitBreaker::opens() const {
  std::lock_guard<std::mutex> lock(mu_);
  return opens_;
}

uint64_t CircuitBreaker::rejected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejected_;
}

RetryBudget::RetryBudget(RetryBudgetOptions options) : options_(options) {
  options_.max_tokens = std::max(0.0, options_.max_tokens);
  options_.tokens_per_success = std::max(0.0, options_.tokens_per_success);
  tokens_ = options_.max_tokens;
}

bool RetryBudget::TryAcquire() {
  std::lock_guard<std::mutex> lock(mu_);
  if (tokens_ < 1.0) {
    ++denied_;
    return false;
  }
  tokens_ -= 1.0;
  ++acquired_;
  return true;
}

void RetryBudget::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  tokens_ = std::min(options_.max_tokens, tokens_ + options_.tokens_per_success);
}

RetryBudget::Stats RetryBudget::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return Stats{tokens_, acquired_, denied_};
}

}  // namespace kgaq
