#ifndef KGAQ_SHARD_SHARD_NODE_H_
#define KGAQ_SHARD_SHARD_NODE_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "core/engine_context.h"
#include "serve/query_service.h"
#include "shard/wire.h"

namespace kgaq {

/// One shard's serving state: an EngineContext over the shard-local
/// (halo-replicated) graph, a QueryService whose engine is permanently
/// restricted to the shard's owned candidates (federated mode), and a
/// cache of live plan sessions (deterministic-merge mode).
///
/// Both coordinator modes terminate here — the LocalShardChannel calls
/// these methods in-process, the HTTP shard endpoints
/// (MakeShardHttpHandler, shard/channel.h) decode the wire format into
/// the same calls. The SamGraph dist_engine analogy: this is the
/// per-worker engine; the coordinator is the message loop.
class ShardNode {
 public:
  /// `context` must be built over a shard-cut graph consistent with
  /// `info` (the context's graph/model stay shared-owned here).
  static Result<std::unique_ptr<ShardNode>> Create(
      std::shared_ptr<const EngineContext> context, KgPartitionInfo info,
      ServiceOptions service_options);

  /// Loads a per-shard v2 snapshot (KgPartitioner::WriteShardSnapshots
  /// output); the snapshot must carry both a partition section and an
  /// embedding.
  static Result<std::unique_ptr<ShardNode>> FromSnapshot(
      const std::string& path, ServiceOptions service_options);

  // --- deterministic-merge surface (docs/sharding.md) -----------------

  /// Builds the FULL unrestricted plan for the query on the shard-local
  /// graph (identical candidate array to the global engine's, by the
  /// partitioner's id-preserving construction) and reports the owned
  /// slice. The session stays resident under the returned token until
  /// Release.
  Result<ShardPlanResult> Plan(const AggregateQuery& query,
                               const EngineOptions& options);

  /// Validates a round's draws (global candidate indices, duplicates
  /// allowed) against the plan session `token`; one outcome per index.
  Result<std::vector<NodeOutcome>> Validate(uint64_t token,
                                            std::span<const size_t> indices);

  /// Drops the plan session `token` (idempotent).
  void Release(uint64_t token);

  // --- federated surface ----------------------------------------------

  /// Runs one sub-query on the shard-restricted QueryService and blocks
  /// for the terminal response. Request overrides (seed, error bound,
  /// deadline) apply exactly as at a standalone service.
  QueryResponse SubQuery(const QueryRequest& request);

  const KgPartitionInfo& info() const { return info_; }
  QueryService& service() { return *service_; }
  QueryService::ServiceStats service_stats() const {
    return service_->stats();
  }
  /// Live plan sessions (leak check for tests).
  size_t live_plan_sessions() const;

 private:
  ShardNode(std::shared_ptr<const EngineContext> context,
            KgPartitionInfo info, ServiceOptions service_options);

  std::shared_ptr<const EngineContext> ctx_;
  KgPartitionInfo info_;
  std::unique_ptr<QueryService> service_;

  mutable std::mutex mu_;
  uint64_t next_token_ = 1;
  std::unordered_map<uint64_t, std::shared_ptr<QuerySession>> sessions_;
};

}  // namespace kgaq

#endif  // KGAQ_SHARD_SHARD_NODE_H_
