#include "shard/sharded_engine.h"

#include <algorithm>
#include <utility>

namespace kgaq {

std::vector<QueryService::ServiceStats> ShardedEngine::shard_stats() const {
  std::vector<QueryService::ServiceStats> out;
  for (const auto& replicas : nodes_) {
    for (const auto& node : replicas) out.push_back(node->service_stats());
  }
  return out;
}

Result<std::unique_ptr<ShardedEngine>> ShardedEngine::Assemble(
    std::unique_ptr<ShardedEngine> engine,
    const ShardedEngineOptions& options) {
  // One retry budget for the whole engine: failover on shard 0 and a
  // hedge on shard 3 drain the same bucket, which is the point.
  auto budget = std::make_shared<RetryBudget>(options.retry_budget);
  std::vector<std::unique_ptr<ShardChannel>> channels;
  channels.reserve(engine->nodes_.size());
  for (uint32_t s = 0; s < engine->nodes_.size(); ++s) {
    auto& replicas = engine->nodes_[s];
    std::vector<std::unique_ptr<ShardChannel>> members;
    members.reserve(replicas.size());
    for (uint32_t r = 0; r < replicas.size(); ++r) {
      std::unique_ptr<ShardChannel> ch =
          std::make_unique<LocalShardChannel>(replicas[r].get());
      if (options.wrap_channel) ch = options.wrap_channel(std::move(ch), s, r);
      members.push_back(std::move(ch));
    }
    if (members.size() == 1) {
      // Unreplicated shards keep the plain channel — byte-for-byte the
      // pre-replication wiring, no breaker or lease layer in the path.
      channels.push_back(std::move(members[0]));
    } else {
      channels.push_back(std::make_unique<ShardReplicaSet>(
          std::move(members), options.replica, budget));
    }
  }
  CoordinatorOptions coordinator_options;
  coordinator_options.mode = options.mode;
  coordinator_options.base_seed = options.base_seed;
  coordinator_options.engine = options.service.engine;
  engine->coordinator_ = std::make_unique<Coordinator>(
      std::move(channels), std::move(coordinator_options));
  return engine;
}

Result<std::unique_ptr<ShardedEngine>> ShardedEngine::Create(
    const KnowledgeGraph& graph, const EmbeddingModel& model,
    ShardedEngineOptions options) {
  KgPartitioner::Options part_options;
  part_options.num_shards = options.num_shards;
  part_options.halo_hops = options.halo_hops;
  auto cuts = KgPartitioner::Partition(graph, part_options);
  if (!cuts.ok()) return cuts.status();

  const uint32_t replicas = std::max<uint32_t>(1, options.replicas_per_shard);
  std::unique_ptr<ShardedEngine> engine(new ShardedEngine());
  // The cuts vector is moved in whole and never touched again: contexts
  // below borrow references INTO it, so it must stay at its final
  // addresses for the engine's lifetime.
  engine->cuts_ = std::move(*cuts);
  for (const ShardCut& cut : engine->cuts_) {
    // Replicas share one immutable context (snapshot, embeddings); each
    // gets its own ShardNode, i.e. its own session/service state.
    engine->contexts_.push_back(
        std::make_shared<EngineContext>(cut.graph, model));
    engine->nodes_.emplace_back();
    for (uint32_t r = 0; r < replicas; ++r) {
      auto node = ShardNode::Create(engine->contexts_.back(), cut.info,
                                    options.service);
      if (!node.ok()) return node.status();
      engine->nodes_.back().push_back(std::move(*node));
    }
  }
  return Assemble(std::move(engine), options);
}

Result<std::unique_ptr<ShardedEngine>> ShardedEngine::FromShardSnapshots(
    const std::vector<std::string>& paths, ShardedEngineOptions options) {
  if (paths.empty()) {
    return Status::InvalidArgument("no shard snapshot paths given");
  }
  const uint32_t replicas = std::max<uint32_t>(1, options.replicas_per_shard);
  std::unique_ptr<ShardedEngine> engine(new ShardedEngine());
  for (size_t s = 0; s < paths.size(); ++s) {
    engine->nodes_.emplace_back();
    // Each replica loads the snapshot independently — honest about the
    // memory cost of replication from files (Create shares contexts
    // because it builds them in-process).
    for (uint32_t r = 0; r < replicas; ++r) {
      auto node = ShardNode::FromSnapshot(paths[s], options.service);
      if (!node.ok()) return node.status();
      if (r == 0) {
        const KgPartitionInfo& info = (*node)->info();
        if (info.num_shards != paths.size() || info.shard_index != s) {
          return Status::InvalidArgument(
              "'" + paths[s] + "' is shard " +
              std::to_string(info.shard_index) + " of " +
              std::to_string(info.num_shards) + ", expected shard " +
              std::to_string(s) + " of " + std::to_string(paths.size()));
        }
      }
      engine->nodes_.back().push_back(std::move(*node));
    }
  }
  return Assemble(std::move(engine), options);
}

}  // namespace kgaq
