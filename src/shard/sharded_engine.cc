#include "shard/sharded_engine.h"

#include <utility>

namespace kgaq {

std::vector<QueryService::ServiceStats> ShardedEngine::shard_stats() const {
  std::vector<QueryService::ServiceStats> out;
  out.reserve(nodes_.size());
  for (const auto& node : nodes_) out.push_back(node->service_stats());
  return out;
}

Result<std::unique_ptr<ShardedEngine>> ShardedEngine::Assemble(
    std::unique_ptr<ShardedEngine> engine,
    const ShardedEngineOptions& options) {
  std::vector<std::unique_ptr<ShardChannel>> channels;
  channels.reserve(engine->nodes_.size());
  for (auto& node : engine->nodes_) {
    channels.push_back(std::make_unique<LocalShardChannel>(node.get()));
  }
  CoordinatorOptions coordinator_options;
  coordinator_options.mode = options.mode;
  coordinator_options.base_seed = options.base_seed;
  coordinator_options.engine = options.service.engine;
  engine->coordinator_ = std::make_unique<Coordinator>(
      std::move(channels), std::move(coordinator_options));
  return engine;
}

Result<std::unique_ptr<ShardedEngine>> ShardedEngine::Create(
    const KnowledgeGraph& graph, const EmbeddingModel& model,
    ShardedEngineOptions options) {
  KgPartitioner::Options part_options;
  part_options.num_shards = options.num_shards;
  part_options.halo_hops = options.halo_hops;
  auto cuts = KgPartitioner::Partition(graph, part_options);
  if (!cuts.ok()) return cuts.status();

  std::unique_ptr<ShardedEngine> engine(new ShardedEngine());
  // The cuts vector is moved in whole and never touched again: contexts
  // below borrow references INTO it, so it must stay at its final
  // addresses for the engine's lifetime.
  engine->cuts_ = std::move(*cuts);
  for (const ShardCut& cut : engine->cuts_) {
    engine->contexts_.push_back(
        std::make_shared<EngineContext>(cut.graph, model));
    auto node = ShardNode::Create(engine->contexts_.back(), cut.info,
                                  options.service);
    if (!node.ok()) return node.status();
    engine->nodes_.push_back(std::move(*node));
  }
  return Assemble(std::move(engine), options);
}

Result<std::unique_ptr<ShardedEngine>> ShardedEngine::FromShardSnapshots(
    const std::vector<std::string>& paths, ShardedEngineOptions options) {
  if (paths.empty()) {
    return Status::InvalidArgument("no shard snapshot paths given");
  }
  std::unique_ptr<ShardedEngine> engine(new ShardedEngine());
  for (size_t s = 0; s < paths.size(); ++s) {
    auto node = ShardNode::FromSnapshot(paths[s], options.service);
    if (!node.ok()) return node.status();
    const KgPartitionInfo& info = (*node)->info();
    if (info.num_shards != paths.size() || info.shard_index != s) {
      return Status::InvalidArgument(
          "'" + paths[s] + "' is shard " + std::to_string(info.shard_index) +
          " of " + std::to_string(info.num_shards) + ", expected shard " +
          std::to_string(s) + " of " + std::to_string(paths.size()));
    }
    engine->nodes_.push_back(std::move(*node));
  }
  return Assemble(std::move(engine), options);
}

}  // namespace kgaq
