#ifndef KGAQ_SHARD_PARTITIONER_H_
#define KGAQ_SHARD_PARTITIONER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "embedding/embedding_model.h"
#include "kg/knowledge_graph.h"
#include "kg/snapshot.h"

namespace kgaq {

/// One shard cut from a global KG.
///
/// The shard graph keeps the global graph's FULL node table, dictionaries,
/// type and attribute arrays verbatim — only the adjacency CSR is
/// restricted to the shard's triple subset. That means shard-local
/// NodeId/PredicateId/TypeId/AttributeId assignments equal the global
/// ones, which is the foundation of the bitwise-parity contract in
/// docs/sharding.md: a per-shard engine builds the same candidate ids and
/// iteration orders a global engine would.
struct ShardCut {
  KnowledgeGraph graph;
  KgPartitionInfo info;
  /// The nodes this shard owns (hash-assigned), ascending NodeId order.
  std::vector<NodeId> owned;
};

/// Splits a KG into N shards by node-name hash (common/shard_hash.h,
/// partition scheme 0) with halo replication around the owned set.
///
/// Ownership: node u belongs to shard ShardOfName(name(u), N). Edge
/// placement: a triple is kept on shard s iff at least one endpoint lies
/// within BFS distance halo_hops-1 of s's owned set. halo_hops = 1 is
/// the minimal cut — every arc incident to an owned node, i.e. cut edges
/// replicated onto both endpoint owners (the owner of any replicated
/// node is recomputable from the partition scheme, which is the "owner
/// annotation"). Larger halos buy unbiased longer random walks from
/// owned candidates at the cost of more replication; see docs/sharding.md
/// for the trade-off.
class KgPartitioner {
 public:
  struct Options {
    uint32_t num_shards = 2;
    /// BFS halo depth. Deterministic-merge parity needs the halo to
    /// cover the query's walk reach from every owned candidate; the
    /// default is effectively "whole component" on bench-scale KGs.
    uint32_t halo_hops = 16;
  };

  /// Cuts the graph into `options.num_shards` in-memory shards.
  static Result<std::vector<ShardCut>> Partition(const KnowledgeGraph& g,
                                                 const Options& options);

  /// Cuts the graph and writes one v2 snapshot per shard at
  /// `<path_prefix>.shard<i>-of<N>.kgsnap` (embedding included when
  /// `model` is non-null). Appends the written paths to `paths_out` when
  /// non-null.
  static Status WriteShardSnapshots(const KnowledgeGraph& g,
                                    const EmbeddingModel* model,
                                    const Options& options,
                                    const std::string& path_prefix,
                                    std::vector<std::string>* paths_out);

  /// Owner shard of `u` under partition scheme 0.
  static uint32_t OwnerOf(const KnowledgeGraph& g, NodeId u,
                          uint32_t num_shards);
};

}  // namespace kgaq

#endif  // KGAQ_SHARD_PARTITIONER_H_
