#include "shard/replica_set.h"

#include <chrono>
#include <utility>

#include "common/fault_injection.h"
#include "common/thread_pool.h"

namespace kgaq {

namespace {

/// The wire arrays that must match bit-for-bit across replicas of one
/// shard: everything except the session token, which is per-replica by
/// nature. double comparison is intentional and exact — replicas run the
/// same code over the same snapshot, so any difference at all means the
/// "bit-identical replicas" premise is broken for that replica.
bool PlansBitIdentical(const ShardPlanResult& a, const ShardPlanResult& b) {
  return a.num_candidates == b.num_candidates &&
         a.group_by_enabled == b.group_by_enabled && a.indices == b.indices &&
         a.nodes == b.nodes && a.probs == b.probs;
}

}  // namespace

ShardReplicaSet::ShardReplicaSet(
    std::vector<std::unique_ptr<ShardChannel>> replicas,
    ReplicaSetOptions options, std::shared_ptr<RetryBudget> budget)
    : options_(options), budget_(std::move(budget)) {
  replicas_.reserve(replicas.size());
  for (auto& ch : replicas) {
    replicas_.push_back(
        std::make_unique<Replica>(std::move(ch), options_.breaker));
  }
  if (options_.probe_interval_ms > 0.0) {
    prober_ = std::thread([this] { ProberLoop(); });
  }
}

ShardReplicaSet::~ShardReplicaSet() {
  if (prober_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(prober_mu_);
      stop_prober_ = true;
    }
    prober_cv_.notify_all();
    prober_.join();
  }
  // Outlive every racer: a hedge loser still holds `this` and a channel
  // pointer until its RPC returns.
  std::unique_lock<std::mutex> lock(inflight_mu_);
  inflight_cv_.wait(lock, [this] { return inflight_ == 0; });
}

void ShardReplicaSet::RecordOutcome(size_t r, bool ok) {
  if (ok) {
    replicas_[r]->breaker.OnSuccess();
    if (budget_) budget_->RecordSuccess();
    return;
  }
  failed_rpcs_.fetch_add(1, std::memory_order_relaxed);
  if (replicas_[r]->breaker.OnFailure()) {
    // This call tripped the breaker open: the replica is presumed dead,
    // so let its transport drop cached connections.
    replicas_[r]->channel->OnQuarantined();
  }
}

Result<ShardPlanResult> ShardReplicaSet::Plan(const ShardPlanRequest& request) {
  const size_t n = replicas_.size();
  if (n == 0) return Status::InvalidArgument("replica set is empty");

  // Admit on the calling thread (breaker state changes must not race the
  // fan-out), then plan every admitted replica in parallel. Planning on
  // ALL healthy replicas up front is what buys transparent mid-run
  // failover: by the time a validate fails over, the surviving replica
  // already holds an identical plan session.
  std::vector<char> admitted(n, 0);
  for (size_t r = 0; r < n; ++r) {
    admitted[r] = replicas_[r]->breaker.Admit() != CircuitBreaker::Gate::kReject;
  }

  std::vector<Result<ShardPlanResult>> results(
      n, Result<ShardPlanResult>(Status::Unavailable("replica breaker open")));
  ParallelFor(GlobalPool(), n, [&](size_t r) {
    if (!admitted[r]) return;
    results[r] = replicas_[r]->channel->Plan(request);
    RecordOutcome(r, results[r].ok());
  });

  // First success is the canonical plan; every other success must match
  // it bit-for-bit or it is dropped from the lease (a diverging replica
  // would break parity on failover, which is worse than losing a spare).
  size_t primary = n;
  for (size_t r = 0; r < n; ++r) {
    if (results[r].ok()) {
      primary = r;
      break;
    }
  }
  if (primary == n) {
    for (size_t r = n; r-- > 0;) {
      if (admitted[r]) return results[r].status();
    }
    return results[n - 1].status();
  }

  PlanLease lease;
  lease.tokens.assign(n, 0);
  lease.has.assign(n, false);
  lease.tokens[primary] = results[primary]->token;
  lease.has[primary] = true;
  for (size_t r = primary + 1; r < n; ++r) {
    if (!results[r].ok()) continue;
    if (!PlansBitIdentical(*results[primary], *results[r])) {
      divergent_plans_.fetch_add(1, std::memory_order_relaxed);
      replicas_[r]->channel->Release(results[r]->token);
      continue;
    }
    lease.tokens[r] = results[r]->token;
    lease.has[r] = true;
  }

  ShardPlanResult out = std::move(*results[primary]);
  {
    std::lock_guard<std::mutex> lock(lease_mu_);
    out.token = next_token_++;
    leases_.emplace(out.token, std::move(lease));
  }
  return out;
}

Result<std::vector<NodeOutcome>> ShardReplicaSet::Validate(
    const ShardValidateRequest& request) {
  PlanLease lease;
  {
    std::lock_guard<std::mutex> lock(lease_mu_);
    auto it = leases_.find(request.token);
    if (it == leases_.end()) {
      return Status::FailedPrecondition("unknown replica-set plan token");
    }
    lease = it->second;
  }

  // Candidates: replicas holding a live plan session, preferred order.
  std::vector<size_t> candidates;
  for (size_t r = 0; r < replicas_.size(); ++r) {
    if (lease.has[r]) candidates.push_back(r);
  }

  Status last =
      Status::Unavailable("no live replica holds a plan session for this shard");
  std::vector<bool> used(candidates.size(), false);
  bool first = true;
  for (;;) {
    if (!first) {
      // Failover attempts (beyond the first) are gated twice: no retry
      // outlives the query's deadline, and each costs a budget token so
      // a fleet-wide brownout cannot turn into a retry storm.
      if (request.deadline.expired()) {
        last = Status::Unavailable("failover abandoned: query deadline expired");
        break;
      }
      if (budget_ && !budget_->TryAcquire()) {
        budget_denied_.fetch_add(1, std::memory_order_relaxed);
        break;
      }
    }
    // Next unused candidate whose breaker admits; a rejection consumes
    // the candidate for this call (the breaker said no — asking again
    // microseconds later would only burn the HalfOpen probe slot).
    size_t pos = candidates.size();
    for (size_t k = 0; k < candidates.size(); ++k) {
      if (used[k]) continue;
      used[k] = true;
      if (replicas_[candidates[k]]->breaker.Admit() !=
          CircuitBreaker::Gate::kReject) {
        pos = k;
        break;
      }
    }
    if (pos == candidates.size()) break;
    if (!first) failovers_.fetch_add(1, std::memory_order_relaxed);

    const size_t r = candidates[pos];
    if (first && options_.hedge_after_ms > 0.0 && candidates.size() > 1) {
      auto out = HedgedValidate(request, candidates, used, pos, lease);
      if (out.ok()) return out;
      last = out.status();
    } else {
      ShardValidateRequest req = request;
      req.token = lease.tokens[r];
      auto out = replicas_[r]->channel->Validate(req);
      RecordOutcome(r, out.ok());
      if (out.ok()) return out;
      last = out.status();
    }
    first = false;
  }
  return last;
}

void ShardReplicaSet::LaunchAttempt(const std::shared_ptr<RaceState>& state,
                                    size_t r, ShardValidateRequest request) {
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    ++inflight_;
  }
  {
    std::lock_guard<std::mutex> lock(state->mu);
    ++state->outstanding;
  }
  // Detached rather than pooled: a racer may block for a full RPC
  // timeout, and parking a pool worker under it could deadlock the very
  // ParallelFor the coordinator is running this validate from. The
  // inflight_ counter (waited in the destructor) bounds their lifetime.
  std::thread([this, state, r, req = std::move(request)]() {
    auto out = replicas_[r]->channel->Validate(req);
    RecordOutcome(r, out.ok());
    {
      std::lock_guard<std::mutex> lock(state->mu);
      if (out.ok() && !state->winner_set) {
        state->winner_set = true;
        state->winner_replica = r;
        state->winner = std::move(out);
      } else if (!out.ok()) {
        state->last_error = out.status();
      }
      --state->outstanding;
    }
    state->cv.notify_all();
    {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      --inflight_;
    }
    inflight_cv_.notify_all();
  }).detach();
}

Result<std::vector<NodeOutcome>> ShardReplicaSet::HedgedValidate(
    const ShardValidateRequest& request, const std::vector<size_t>& candidates,
    std::vector<bool>& used, size_t primary_pos, const PlanLease& lease) {
  auto state = std::make_shared<RaceState>();
  const size_t primary = candidates[primary_pos];
  {
    ShardValidateRequest req = request;
    req.token = lease.tokens[primary];
    LaunchAttempt(state, primary, std::move(req));
  }

  const auto hedge_wait =
      std::chrono::duration<double, std::milli>(options_.hedge_after_ms);
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait_for(lock, hedge_wait, [&] {
    return state->winner_set || state->outstanding == 0;
  });

  if (!state->winner_set && state->outstanding > 0) {
    // Primary is slow. Hedge: race the identical validate against the
    // next healthy session-holding replica — validation is read-only, so
    // whichever answer loses is simply discarded. Budget-gated (a hedge
    // is a speculative retry) and fault-injectable at the launch
    // decision.
    if (!budget_ || budget_->TryAcquire()) {
      hedges_launched_.fetch_add(1, std::memory_order_relaxed);
      if (!KGAQ_FAULT_POINT("shard.rpc.hedge")) {
        size_t hedge_pos = candidates.size();
        for (size_t k = 0; k < candidates.size(); ++k) {
          if (used[k]) continue;
          used[k] = true;
          if (replicas_[candidates[k]]->breaker.Admit() !=
              CircuitBreaker::Gate::kReject) {
            hedge_pos = k;
            break;
          }
        }
        if (hedge_pos != candidates.size()) {
          const size_t r = candidates[hedge_pos];
          ShardValidateRequest req = request;
          req.token = lease.tokens[r];
          lock.unlock();
          LaunchAttempt(state, r, std::move(req));
          lock.lock();
        }
      }
    } else {
      budget_denied_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  state->cv.wait(lock,
                 [&] { return state->winner_set || state->outstanding == 0; });
  if (!state->winner_set) return state->last_error;
  if (state->winner_replica != primary) {
    hedges_won_.fetch_add(1, std::memory_order_relaxed);
  }
  // The loser (if still running) finishes on its racer thread, feeds its
  // breaker, and its result is dropped — safe because validation holds
  // no per-call state on the shard.
  return state->winner;
}

Status ShardReplicaSet::Release(uint64_t token) {
  PlanLease lease;
  {
    std::lock_guard<std::mutex> lock(lease_mu_);
    auto it = leases_.find(token);
    if (it == leases_.end()) return Status::OK();  // idempotent, like ShardNode
    lease = std::move(it->second);
    leases_.erase(it);
  }
  // Every replica that holds a session gets the release, breakers
  // notwithstanding: Release is best-effort cleanup, and routing it
  // through Admit could burn a HalfOpen probe slot on a call whose
  // failure is benign. Failures are swallowed (a dead replica keeps
  // nothing to drop) and deliberately NOT fed to the breaker — cleanup
  // outcomes should not flap health state.
  Status out = Status::OK();
  for (size_t r = 0; r < replicas_.size(); ++r) {
    if (!lease.has[r]) continue;
    Status st = replicas_[r]->channel->Release(lease.tokens[r]);
    if (!st.ok()) out = st;
  }
  return out;
}

Result<QueryResponse> ShardReplicaSet::SubQuery(const QueryRequest& request) {
  Status last = Status::Unavailable("no replica available for sub-query");
  std::vector<bool> used(replicas_.size(), false);
  bool first = true;
  for (;;) {
    if (!first) {
      if (budget_ && !budget_->TryAcquire()) {
        budget_denied_.fetch_add(1, std::memory_order_relaxed);
        break;
      }
    }
    size_t r = replicas_.size();
    for (size_t k = 0; k < replicas_.size(); ++k) {
      if (used[k]) continue;
      used[k] = true;
      if (replicas_[k]->breaker.Admit() != CircuitBreaker::Gate::kReject) {
        r = k;
        break;
      }
    }
    if (r == replicas_.size()) break;
    if (!first) failovers_.fetch_add(1, std::memory_order_relaxed);
    auto out = replicas_[r]->channel->SubQuery(request);
    RecordOutcome(r, out.ok());
    if (out.ok()) return out;
    last = out.status();
    first = false;
  }
  return last;
}

Status ShardReplicaSet::Probe() {
  Status last = Status::Unavailable("replica set is empty");
  for (auto& rep : replicas_) {
    Status st = rep->channel->Probe();
    if (st.ok()) return st;
    last = st;
  }
  return last;
}

BreakerState ShardReplicaSet::replica_state(size_t r) const {
  return replicas_[r]->breaker.state();
}

void ShardReplicaSet::ProbeOnce() {
  for (size_t r = 0; r < replicas_.size(); ++r) {
    CircuitBreaker& breaker = replicas_[r]->breaker;
    if (breaker.state() == BreakerState::kClosed) continue;
    // Route the probe through the breaker's own gate so an active probe
    // and a live-traffic HalfOpen trial can never double-book the slot.
    if (breaker.Admit() == CircuitBreaker::Gate::kReject) continue;
    probes_.fetch_add(1, std::memory_order_relaxed);
    const bool ok = !KGAQ_FAULT_POINT("shard.replica.probe") &&
                    replicas_[r]->channel->Probe().ok();
    if (!ok) probe_failures_.fetch_add(1, std::memory_order_relaxed);
    RecordOutcome(r, ok);
  }
}

void ShardReplicaSet::ProberLoop() {
  const auto interval =
      std::chrono::duration<double, std::milli>(options_.probe_interval_ms);
  std::unique_lock<std::mutex> lock(prober_mu_);
  while (!stop_prober_) {
    if (prober_cv_.wait_for(lock, interval, [this] { return stop_prober_; })) {
      return;
    }
    lock.unlock();
    ProbeOnce();
    lock.lock();
  }
}

ChannelHealth ShardReplicaSet::health() const {
  ChannelHealth h;
  h.replicas = replicas_.size();
  h.healthy = 0;
  h.states.reserve(replicas_.size());
  uint64_t opens = 0;
  uint64_t rejected = 0;
  for (const auto& rep : replicas_) {
    const BreakerState s = rep->breaker.state();
    h.states.push_back(s);
    if (s == BreakerState::kClosed) ++h.healthy;
    opens += rep->breaker.opens();
    rejected += rep->breaker.rejected();
  }
  h.breaker_opens = opens;
  h.breaker_rejected = rejected;
  h.failovers = failovers_.load(std::memory_order_relaxed);
  h.failed_rpcs = failed_rpcs_.load(std::memory_order_relaxed);
  h.hedges_launched = hedges_launched_.load(std::memory_order_relaxed);
  h.hedges_won = hedges_won_.load(std::memory_order_relaxed);
  h.budget_denied = budget_denied_.load(std::memory_order_relaxed);
  h.probes = probes_.load(std::memory_order_relaxed);
  h.probe_failures = probe_failures_.load(std::memory_order_relaxed);
  h.divergent_plans = divergent_plans_.load(std::memory_order_relaxed);
  return h;
}

}  // namespace kgaq
