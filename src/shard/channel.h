#ifndef KGAQ_SHARD_CHANNEL_H_
#define KGAQ_SHARD_CHANNEL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "serve/http_client.h"
#include "serve/http_server.h"
#include "shard/health.h"
#include "shard/shard_node.h"
#include "shard/wire.h"

namespace kgaq {

/// Transport abstraction between the coordinator and one shard. The
/// coordinator never talks to a ShardNode directly; it speaks this
/// interface, so swapping in-process shards for remote ones — or a
/// ShardReplicaSet fanning over R of either — is a construction-time
/// choice, not a code path.
///
/// Every implementation evaluates the `shard.rpc.send` fault point at
/// the entry of every call (returning kUnavailable when it fires), so
/// chaos tests exercise the coordinator's degradation paths — degraded
/// partial answers, kShardLost round abort — without real networks.
///
/// Thread-safety: Plan/Validate/Release/SubQuery may be called from the
/// coordinator's scatter threads concurrently with calls for OTHER
/// channels, but a single channel instance is only ever driven by one
/// in-flight query at a time per method (the coordinator serializes
/// queries; a replica set's hedged validates race DIFFERENT replicas'
/// channels, never the same one). Probe() is the exception: the replica
/// tier's background prober may call it concurrently with anything, so
/// implementations keep Probe thread-safe. LocalShardChannel is fully
/// thread-safe; HttpShardChannel serializes its transport internally.
class ShardChannel {
 public:
  virtual ~ShardChannel() = default;

  /// Scatter-phase: full unrestricted plan, owned slice back.
  virtual Result<ShardPlanResult> Plan(const ShardPlanRequest& request) = 0;

  /// Per-round validation of draws against a live plan token.
  virtual Result<std::vector<NodeOutcome>> Validate(
      const ShardValidateRequest& request) = 0;

  /// Drops the plan session behind `token`. Best-effort (a shard that
  /// died keeps nothing to drop); failures are reported but benign.
  virtual Status Release(uint64_t token) = 0;

  /// Federated-mode sub-query, blocking until terminal.
  virtual Result<QueryResponse> SubQuery(const QueryRequest& request) = 0;

  /// Active liveness check, driven by the replica tier's background
  /// prober to close an open breaker. Cheap and side-effect-free: OK
  /// means "the replica answers", not "the replica is idle". Must be
  /// thread-safe. Default: an in-process channel is alive by definition.
  virtual Status Probe() { return Status::OK(); }

  /// Hook invoked by the replica tier when this channel's circuit
  /// breaker trips open: the replica is presumed dead, so transports
  /// drop cached state (HttpShardChannel evicts its host's pooled
  /// connections — failback reconnects fresh instead of reusing
  /// half-dead sockets). Default: nothing to drop.
  virtual void OnQuarantined() {}

  /// Health snapshot for the /stats shard_tier rows. Plain channels
  /// report the default single-healthy-replica row; ShardReplicaSet
  /// reports real breaker states and failover/hedge counters.
  virtual ChannelHealth health() const { return ChannelHealth{}; }
};

/// In-process channel: calls straight into a ShardNode the caller owns
/// elsewhere (ShardedEngine keeps node and channel side by side). Still
/// passes through the `shard.rpc.send` fault point so in-process
/// deployments rehearse the same failures as remote ones.
class LocalShardChannel final : public ShardChannel {
 public:
  explicit LocalShardChannel(ShardNode* node) : node_(node) {}

  Result<ShardPlanResult> Plan(const ShardPlanRequest& request) override;
  Result<std::vector<NodeOutcome>> Validate(
      const ShardValidateRequest& request) override;
  Status Release(uint64_t token) override;
  Result<QueryResponse> SubQuery(const QueryRequest& request) override;

 private:
  ShardNode* node_;  ///< not owned; must outlive the channel
};

struct HttpShardChannelOptions {
  /// Wall-clock ceiling on each plan/validate/release RPC attempt's
  /// socket operations. The EFFECTIVE timeout of a plan/validate RPC is
  /// min(rpc_timeout_ms, the query's remaining deadline) — a failover
  /// retry can never outlive the query's budget. <= 0 disables the
  /// ceiling (the query deadline alone bounds the RPC).
  double rpc_timeout_ms = 5000.0;
  /// Timeout for the /healthz probe RPC; probes should fail fast.
  double probe_timeout_ms = 1000.0;
};

/// Remote channel over the existing HTTP front door: wire.h bodies
/// POSTed to /shard/* routes served by MakeShardHttpHandler on the
/// remote server. Rides RetryingHttpClient, so connect failures and
/// server-side idle reaps retry transparently; non-200 responses decode
/// the `error=` envelope back into a Status. Probe() GETs /healthz (any
/// HTTP answer — even a shedding 503 — counts as alive); OnQuarantined()
/// evicts the client's pooled connections to this host so failback after
/// recovery reconnects fresh.
class HttpShardChannel final : public ShardChannel {
 public:
  /// `client` is borrowed and must outlive the channel. The client is
  /// thread-safe (per-host pooling), so one client can back every
  /// shard's channel.
  HttpShardChannel(std::string host, uint16_t port,
                   RetryingHttpClient* client,
                   HttpShardChannelOptions options = {})
      : host_(std::move(host)),
        port_(port),
        client_(client),
        options_(options) {}

  Result<ShardPlanResult> Plan(const ShardPlanRequest& request) override;
  Result<std::vector<NodeOutcome>> Validate(
      const ShardValidateRequest& request) override;
  Status Release(uint64_t token) override;
  Result<QueryResponse> SubQuery(const QueryRequest& request) override;
  Status Probe() override;
  void OnQuarantined() override;

  /// The deadline-clamp rule, exposed for tests: min(per-RPC ceiling,
  /// remaining query budget), where a <= 0 ceiling and an infinite
  /// deadline both mean "unbounded" (+inf). 0 means already expired.
  static double EffectiveTimeoutMs(const Deadline& deadline,
                                   double rpc_timeout_ms);

 private:
  /// POST one wire body; 200 yields the response body, non-200 decodes
  /// the error envelope. `timeout_ms` bounds each attempt's socket
  /// operations (+inf = unbounded).
  Result<std::string> Post(const std::string& path, const std::string& body,
                           double timeout_ms);

  std::string host_;
  uint16_t port_;
  RetryingHttpClient* client_;  ///< not owned
  HttpShardChannelOptions options_;
};

/// Builds the HttpServer extra-route handler exposing `node` as the
/// remote end of HttpShardChannel:
///
///   POST /shard/plan      EncodePlanRequest  -> EncodePlanResult
///   POST /shard/validate  EncodeValidateRequest -> EncodeOutcomes
///   POST /shard/release   decimal token      -> "ok"
///   POST /shard/subquery  EncodeQueryRequest -> EncodeQueryResponse
///
/// Handlers run inline on the server's event-loop threads — fine for
/// plan/validate/release (bounded CPU work), and SubQuery blocks the
/// loop thread for the sub-query's duration, a documented v0 limitation
/// (dedicate a server to shard traffic, or size event_threads for it).
/// `node` must outlive the server the handler is installed on.
HttpServer::ExtraHandler MakeShardHttpHandler(ShardNode& node);

}  // namespace kgaq

#endif  // KGAQ_SHARD_CHANNEL_H_
