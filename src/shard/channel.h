#ifndef KGAQ_SHARD_CHANNEL_H_
#define KGAQ_SHARD_CHANNEL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "serve/http_client.h"
#include "serve/http_server.h"
#include "shard/shard_node.h"
#include "shard/wire.h"

namespace kgaq {

/// Transport abstraction between the coordinator and one shard. The
/// coordinator never talks to a ShardNode directly; it speaks this
/// interface, so swapping in-process shards for remote ones is a
/// construction-time choice, not a code path.
///
/// Every implementation evaluates the `shard.rpc.send` fault point at
/// the entry of every call (returning kUnavailable when it fires), so
/// chaos tests exercise the coordinator's degradation paths — degraded
/// partial answers, kShardLost round abort — without real networks.
///
/// Thread-safety: Plan/Validate/Release/SubQuery may be called from the
/// coordinator's scatter threads concurrently with calls for OTHER
/// channels, but a single channel instance is only ever driven by one
/// in-flight query at a time per method (the coordinator serializes
/// queries). LocalShardChannel is fully thread-safe; HttpShardChannel
/// serializes its transport internally.
class ShardChannel {
 public:
  virtual ~ShardChannel() = default;

  /// Scatter-phase: full unrestricted plan, owned slice back.
  virtual Result<ShardPlanResult> Plan(const ShardPlanRequest& request) = 0;

  /// Per-round validation of draws against a live plan token.
  virtual Result<std::vector<NodeOutcome>> Validate(
      const ShardValidateRequest& request) = 0;

  /// Drops the plan session behind `token`. Best-effort (a shard that
  /// died keeps nothing to drop); failures are reported but benign.
  virtual Status Release(uint64_t token) = 0;

  /// Federated-mode sub-query, blocking until terminal.
  virtual Result<QueryResponse> SubQuery(const QueryRequest& request) = 0;
};

/// In-process channel: calls straight into a ShardNode the caller owns
/// elsewhere (ShardedEngine keeps node and channel side by side). Still
/// passes through the `shard.rpc.send` fault point so in-process
/// deployments rehearse the same failures as remote ones.
class LocalShardChannel final : public ShardChannel {
 public:
  explicit LocalShardChannel(ShardNode* node) : node_(node) {}

  Result<ShardPlanResult> Plan(const ShardPlanRequest& request) override;
  Result<std::vector<NodeOutcome>> Validate(
      const ShardValidateRequest& request) override;
  Status Release(uint64_t token) override;
  Result<QueryResponse> SubQuery(const QueryRequest& request) override;

 private:
  ShardNode* node_;  ///< not owned; must outlive the channel
};

/// Remote channel over the existing HTTP front door: wire.h bodies
/// POSTed to /shard/* routes served by MakeShardHttpHandler on the
/// remote server. Rides RetryingHttpClient, so connect failures and
/// server-side idle reaps retry transparently; non-200 responses decode
/// the `error=` envelope back into a Status.
class HttpShardChannel final : public ShardChannel {
 public:
  /// `client` is borrowed and must outlive the channel. The client is
  /// thread-safe (per-host pooling), so one client can back every
  /// shard's channel.
  HttpShardChannel(std::string host, uint16_t port,
                   RetryingHttpClient* client)
      : host_(std::move(host)), port_(port), client_(client) {}

  Result<ShardPlanResult> Plan(const ShardPlanRequest& request) override;
  Result<std::vector<NodeOutcome>> Validate(
      const ShardValidateRequest& request) override;
  Status Release(uint64_t token) override;
  Result<QueryResponse> SubQuery(const QueryRequest& request) override;

 private:
  /// POST one wire body; 200 yields the response body, non-200 decodes
  /// the error envelope.
  Result<std::string> Post(const std::string& path, const std::string& body);

  std::string host_;
  uint16_t port_;
  RetryingHttpClient* client_;  ///< not owned
};

/// Builds the HttpServer extra-route handler exposing `node` as the
/// remote end of HttpShardChannel:
///
///   POST /shard/plan      EncodePlanRequest  -> EncodePlanResult
///   POST /shard/validate  EncodeValidateRequest -> EncodeOutcomes
///   POST /shard/release   decimal token      -> "ok"
///   POST /shard/subquery  EncodeQueryRequest -> EncodeQueryResponse
///
/// Handlers run inline on the server's event-loop threads — fine for
/// plan/validate/release (bounded CPU work), and SubQuery blocks the
/// loop thread for the sub-query's duration, a documented v0 limitation
/// (dedicate a server to shard traffic, or size event_threads for it).
/// `node` must outlive the server the handler is installed on.
HttpServer::ExtraHandler MakeShardHttpHandler(ShardNode& node);

}  // namespace kgaq

#endif  // KGAQ_SHARD_CHANNEL_H_
