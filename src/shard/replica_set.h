#ifndef KGAQ_SHARD_REPLICA_SET_H_
#define KGAQ_SHARD_REPLICA_SET_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "shard/channel.h"
#include "shard/health.h"

namespace kgaq {

struct ReplicaSetOptions {
  /// Per-replica circuit-breaker tuning (shard/health.h).
  BreakerOptions breaker;
  /// Hedged validate RPCs: when > 0 and the primary replica has not
  /// answered within this many milliseconds, the same (read-only, hence
  /// idempotent) validate is raced against a second healthy replica and
  /// the first response wins; the loser is simply ignored — validation
  /// mutates nothing, so "cancellation" is free. Off by default; every
  /// hedge costs a retry-budget token so tail-chasing cannot amplify an
  /// outage. Evaluated through the `shard.rpc.hedge` fault point.
  double hedge_after_ms = 0.0;
  /// Active health probing: when > 0, a background thread wakes at this
  /// interval and probes every replica whose breaker is not Closed
  /// (through the breaker's HalfOpen gate and the `shard.replica.probe`
  /// fault point), so a recovered replica rejoins without waiting for
  /// live traffic to trial it. 0 = passive-only recovery (real traffic
  /// serves as the HalfOpen probe).
  double probe_interval_ms = 0.0;
};

/// R bit-identical replicas behind one logical shard, themselves a
/// ShardChannel — the coordinator cannot tell a replica set from a plain
/// channel, so replication is a construction-time wiring choice exactly
/// like local-vs-HTTP.
///
/// The parity-preserving trick: shard snapshots are immutable and every
/// shard-side computation (plan, per-draw validation) is a pure function
/// of the snapshot, so replicas built over the SAME snapshot give
/// bit-identical answers. Plan() therefore fans out to every admitted
/// replica and leases one plan session PER replica under a single
/// virtual token (verifying the replica plans really are bit-identical);
/// Validate() routes each batch to the first healthy replica holding a
/// session and fails over transparently to the next on error — the
/// surviving replica's session replays the identical validation, so a
/// mid-run failover is invisible in the answer (`degraded` stays false).
/// Only when the ENTIRE set is down does a call fail, and only then does
/// the coordinator see StopCause::kShardLost.
///
/// Health: every RPC outcome feeds the target replica's circuit breaker
/// (Closed -> Open stops traffic to a dead replica; the open hook calls
/// ShardChannel::OnQuarantined so HTTP transports evict pooled sockets),
/// and an optional background prober closes breakers when replicas
/// recover. Every failover retry and every hedge draws on a retry
/// budget — shared across all of a coordinator's replica sets — so a
/// partial outage degrades to single-attempt behavior instead of
/// amplifying load.
///
/// Thread-safety: same contract as any ShardChannel (one in-flight query
/// per method), plus internal threads (prober, hedge racers) that the
/// destructor joins/waits out. Safe to destroy at any point after the
/// last public call returns.
class ShardReplicaSet final : public ShardChannel {
 public:
  /// `budget` may be shared across sets (the per-coordinator bucket) or
  /// null for unbudgeted failover (tests).
  ShardReplicaSet(std::vector<std::unique_ptr<ShardChannel>> replicas,
                  ReplicaSetOptions options = {},
                  std::shared_ptr<RetryBudget> budget = nullptr);
  ~ShardReplicaSet() override;

  Result<ShardPlanResult> Plan(const ShardPlanRequest& request) override;
  Result<std::vector<NodeOutcome>> Validate(
      const ShardValidateRequest& request) override;
  Status Release(uint64_t token) override;
  Result<QueryResponse> SubQuery(const QueryRequest& request) override;
  /// OK while any replica answers its probe.
  Status Probe() override;
  ChannelHealth health() const override;

  size_t num_replicas() const { return replicas_.size(); }
  BreakerState replica_state(size_t r) const;
  /// Runs one active probe sweep synchronously (what the background
  /// prober does per tick) — deterministic recovery for tests and the
  /// chaos soak's kill/restart schedule.
  void ProbeOnce();

 private:
  struct Replica {
    Replica(std::unique_ptr<ShardChannel> ch, const BreakerOptions& breaker_options)
        : channel(std::move(ch)), breaker(breaker_options) {}
    std::unique_ptr<ShardChannel> channel;
    CircuitBreaker breaker;
  };
  /// Per-query session map: virtual token -> the per-replica plan tokens
  /// backing it.
  struct PlanLease {
    std::vector<uint64_t> tokens;
    std::vector<bool> has;
  };
  /// Shared scoreboard of one primary-vs-hedge validate race.
  struct RaceState {
    std::mutex mu;
    std::condition_variable cv;
    int outstanding = 0;
    bool winner_set = false;
    size_t winner_replica = 0;
    Result<std::vector<NodeOutcome>> winner{
        Status::Internal("race not finished")};
    Status last_error = Status::Unavailable("no attempt completed");
  };

  /// Feeds the breaker (and the open-time quarantine hook) with one RPC
  /// outcome. Thread-safe; called from traffic, hedge and probe paths.
  void RecordOutcome(size_t r, bool ok);
  /// Fire-and-record one validate on a detached racer thread.
  void LaunchAttempt(const std::shared_ptr<RaceState>& state, size_t r,
                     ShardValidateRequest request);
  /// First-attempt validate with optional hedging; consumes candidate
  /// positions from `used`. Returns the winner or an error once every
  /// launched attempt failed.
  Result<std::vector<NodeOutcome>> HedgedValidate(
      const ShardValidateRequest& request,
      const std::vector<size_t>& candidates, std::vector<bool>& used,
      size_t primary_pos, const PlanLease& lease);
  void ProberLoop();

  /// Heap-allocated: CircuitBreaker owns a mutex, so Replica cannot move.
  std::vector<std::unique_ptr<Replica>> replicas_;
  ReplicaSetOptions options_;
  std::shared_ptr<RetryBudget> budget_;

  std::mutex lease_mu_;
  uint64_t next_token_ = 1;
  std::unordered_map<uint64_t, PlanLease> leases_;

  // Counters are atomics: hedge racer threads and the prober bump them
  // concurrently with traffic.
  std::atomic<uint64_t> failovers_{0};
  std::atomic<uint64_t> failed_rpcs_{0};
  std::atomic<uint64_t> hedges_launched_{0};
  std::atomic<uint64_t> hedges_won_{0};
  std::atomic<uint64_t> budget_denied_{0};
  std::atomic<uint64_t> probes_{0};
  std::atomic<uint64_t> probe_failures_{0};
  std::atomic<uint64_t> divergent_plans_{0};

  /// In-flight racer threads; the destructor waits for zero so a loser
  /// thread can never outlive the channels it borrows.
  std::mutex inflight_mu_;
  std::condition_variable inflight_cv_;
  size_t inflight_ = 0;

  std::mutex prober_mu_;
  std::condition_variable prober_cv_;
  bool stop_prober_ = false;
  std::thread prober_;
};

/// Test/chaos wrapper: one atomic switch that makes a replica "die" and
/// "restart" on demand — the deterministic kill/restart schedule in
/// examples/chaos_soak.cpp and the failover tests flip it between (and
/// during) queries. While dead, Plan/Validate/SubQuery/Probe fail
/// kUnavailable without touching the inner channel. Release passes
/// through regardless: a real restarted process holds no plan sessions
/// (its memory was wiped), and forwarding the release models that wipe
/// on the long-lived in-process node, keeping the plan-session leak
/// gates meaningful.
class KillSwitchChannel final : public ShardChannel {
 public:
  explicit KillSwitchChannel(std::unique_ptr<ShardChannel> inner)
      : inner_(std::move(inner)) {}

  void Kill() { dead_.store(true, std::memory_order_relaxed); }
  void Restart() { dead_.store(false, std::memory_order_relaxed); }
  bool dead() const { return dead_.load(std::memory_order_relaxed); }

  Result<ShardPlanResult> Plan(const ShardPlanRequest& request) override {
    if (dead()) return Down();
    return inner_->Plan(request);
  }
  Result<std::vector<NodeOutcome>> Validate(
      const ShardValidateRequest& request) override {
    if (dead()) return Down();
    return inner_->Validate(request);
  }
  Status Release(uint64_t token) override { return inner_->Release(token); }
  Result<QueryResponse> SubQuery(const QueryRequest& request) override {
    if (dead()) return Down();
    return inner_->SubQuery(request);
  }
  Status Probe() override { return dead() ? Down() : inner_->Probe(); }
  void OnQuarantined() override { inner_->OnQuarantined(); }

 private:
  static Status Down() {
    return Status::Unavailable("replica killed by test switch");
  }

  std::unique_ptr<ShardChannel> inner_;
  std::atomic<bool> dead_{false};
};

}  // namespace kgaq

#endif  // KGAQ_SHARD_REPLICA_SET_H_
