#include "shard/wire.h"

#include <charconv>
#include <cstdlib>

#include "query/query_text.h"

namespace kgaq {

namespace {

void AppendU64(std::string& out, uint64_t v) { out += std::to_string(v); }

void AppendI64(std::string& out, int64_t v) { out += std::to_string(v); }

bool ParseU64(std::string_view s, uint64_t& v) {
  auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  return ec == std::errc() && p == s.data() + s.size();
}

bool ParseI64(std::string_view s, int64_t& v) {
  auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  return ec == std::errc() && p == s.data() + s.size();
}

bool ParseF64(std::string_view s, double& v) {
  auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  return ec == std::errc() && p == s.data() + s.size();
}

/// Splits off the first space-separated field of `s`.
std::string_view TakeField(std::string_view& s) {
  const size_t sp = s.find(' ');
  std::string_view field = s.substr(0, sp);
  s = sp == std::string_view::npos ? std::string_view{} : s.substr(sp + 1);
  return field;
}

/// Calls `fn(key, value)` for every non-empty line; stops on false.
template <typename Fn>
bool ForEachLine(std::string_view body, Fn&& fn) {
  while (!body.empty()) {
    const size_t nl = body.find('\n');
    std::string_view line = body.substr(0, nl);
    body = nl == std::string_view::npos ? std::string_view{}
                                        : body.substr(nl + 1);
    if (line.empty()) continue;
    const size_t eq = line.find('=');
    if (eq == std::string_view::npos) return false;
    if (!fn(line.substr(0, eq), line.substr(eq + 1))) return false;
  }
  return true;
}

Status Malformed(const char* what) {
  return Status::InvalidArgument(std::string("malformed shard wire body: ") +
                                 what);
}

// --- EngineOptions, field by field (schema in docs/sharding.md) --------

void AppendEngineOptions(std::string& out, const EngineOptions& o) {
  auto d = [&out](const char* key, double v) {
    out += key;
    out += '=';
    AppendRoundTripDouble(out, v);
    out += '\n';
  };
  auto u = [&out](const char* key, uint64_t v) {
    out += key;
    out += '=';
    AppendU64(out, v);
    out += '\n';
  };
  d("o.error_bound", o.error_bound);
  d("o.confidence_level", o.confidence_level);
  d("o.tau", o.tau);
  d("o.sample_ratio", o.sample_ratio);
  u("o.blb.t", o.blb.t);
  d("o.blb.m", o.blb.m);
  u("o.blb.num_resamples", o.blb.num_resamples);
  u("o.branch.n_hops", static_cast<uint64_t>(o.branch.n_hops));
  d("o.branch.self_loop_similarity", o.branch.self_loop_similarity);
  u("o.branch.repeat_factor", static_cast<uint64_t>(o.branch.repeat_factor));
  u("o.branch.chain_branch_width", o.branch.chain_branch_width);
  u("o.branch.chain_validation_max_expansions",
    o.branch.chain_validation_max_expansions);
  u("o.branch.stationary_max_iterations",
    o.branch.stationary_max_iterations);
  u("o.branch.chain_memo", o.branch.chain_memo ? 1 : 0);
  u("o.max_rounds", o.max_rounds);
  u("o.min_initial_draws", o.min_initial_draws);
  u("o.min_correct_draws", o.min_correct_draws);
  u("o.max_total_draws", o.max_total_draws);
  u("o.extreme_rounds", o.extreme_rounds);
  d("o.extreme_sample_fraction", o.extreme_sample_fraction);
  u("o.use_evt_for_extremes", o.use_evt_for_extremes ? 1 : 0);
  u("o.group_min_support", o.group_min_support);
  u("o.validate_correctness", o.validate_correctness ? 1 : 0);
  u("o.fixed_increment", o.fixed_increment);
  u("o.shard.num_shards", o.shard.num_shards);
  u("o.shard.shard_index", o.shard.shard_index);
  u("o.seed", o.seed);
}

/// Applies one `o.*` line onto `o`; unknown keys are ignored (forward
/// compatibility: an older shard keeps its defaults for fields it does
/// not know). Returns false only on an unparsable value.
bool ApplyEngineOption(std::string_view key, std::string_view val,
                       EngineOptions& o) {
  auto d = [&val](double& field) { return ParseF64(val, field); };
  auto u = [&val](auto& field) {
    uint64_t v = 0;
    if (!ParseU64(val, v)) return false;
    field = static_cast<std::remove_reference_t<decltype(field)>>(v);
    return true;
  };
  auto b = [&val](bool& field) {
    uint64_t v = 0;
    if (!ParseU64(val, v)) return false;
    field = v != 0;
    return true;
  };
  if (key == "o.error_bound") return d(o.error_bound);
  if (key == "o.confidence_level") return d(o.confidence_level);
  if (key == "o.tau") return d(o.tau);
  if (key == "o.sample_ratio") return d(o.sample_ratio);
  if (key == "o.blb.t") return u(o.blb.t);
  if (key == "o.blb.m") return d(o.blb.m);
  if (key == "o.blb.num_resamples") return u(o.blb.num_resamples);
  if (key == "o.branch.n_hops") return u(o.branch.n_hops);
  if (key == "o.branch.self_loop_similarity") {
    return d(o.branch.self_loop_similarity);
  }
  if (key == "o.branch.repeat_factor") return u(o.branch.repeat_factor);
  if (key == "o.branch.chain_branch_width") {
    return u(o.branch.chain_branch_width);
  }
  if (key == "o.branch.chain_validation_max_expansions") {
    return u(o.branch.chain_validation_max_expansions);
  }
  if (key == "o.branch.stationary_max_iterations") {
    return u(o.branch.stationary_max_iterations);
  }
  if (key == "o.branch.chain_memo") return b(o.branch.chain_memo);
  if (key == "o.max_rounds") return u(o.max_rounds);
  if (key == "o.min_initial_draws") return u(o.min_initial_draws);
  if (key == "o.min_correct_draws") return u(o.min_correct_draws);
  if (key == "o.max_total_draws") return u(o.max_total_draws);
  if (key == "o.extreme_rounds") return u(o.extreme_rounds);
  if (key == "o.extreme_sample_fraction") {
    return d(o.extreme_sample_fraction);
  }
  if (key == "o.use_evt_for_extremes") return b(o.use_evt_for_extremes);
  if (key == "o.group_min_support") return u(o.group_min_support);
  if (key == "o.validate_correctness") return b(o.validate_correctness);
  if (key == "o.fixed_increment") return u(o.fixed_increment);
  if (key == "o.shard.num_shards") return u(o.shard.num_shards);
  if (key == "o.shard.shard_index") return u(o.shard.shard_index);
  if (key == "o.seed") return u(o.seed);
  return true;  // unknown o.* key: ignore
}

}  // namespace

// --- plan ---------------------------------------------------------------

std::string EncodePlanRequest(const ShardPlanRequest& req) {
  std::string out = "query=";
  out += FormatAggregateQuery(req.query);
  out += '\n';
  AppendEngineOptions(out, req.options);
  return out;
}

Result<ShardPlanRequest> DecodePlanRequest(std::string_view body) {
  ShardPlanRequest req;
  bool have_query = false;
  Status query_error = Status::OK();
  const bool ok = ForEachLine(body, [&](std::string_view key,
                                        std::string_view val) {
    if (key == "query") {
      auto q = ParseAggregateQuery(val);
      if (!q.ok()) {
        query_error = q.status();
        return false;
      }
      req.query = std::move(*q);
      have_query = true;
      return true;
    }
    return ApplyEngineOption(key, val, req.options);
  });
  if (!query_error.ok()) return query_error;
  if (!ok || !have_query) return Malformed("plan request");
  return req;
}

std::string EncodePlanResult(const ShardPlanResult& res) {
  std::string out = "token=";
  AppendU64(out, res.token);
  out += "\nnc=";
  AppendU64(out, res.num_candidates);
  out += "\ngroup_by=";
  out += res.group_by_enabled ? '1' : '0';
  out += "\ncount=";
  AppendU64(out, res.indices.size());
  out += '\n';
  for (size_t i = 0; i < res.indices.size(); ++i) {
    out += "c=";
    AppendU64(out, res.indices[i]);
    out += ' ';
    AppendU64(out, res.nodes[i]);
    out += ' ';
    AppendRoundTripDouble(out, res.probs[i]);
    out += '\n';
  }
  return out;
}

Result<ShardPlanResult> DecodePlanResult(std::string_view body) {
  ShardPlanResult res;
  uint64_t count = 0;
  const bool ok = ForEachLine(body, [&](std::string_view key,
                                        std::string_view val) {
    if (key == "token") return ParseU64(val, res.token);
    if (key == "nc") return ParseU64(val, res.num_candidates);
    if (key == "group_by") {
      uint64_t v = 0;
      if (!ParseU64(val, v)) return false;
      res.group_by_enabled = v != 0;
      return true;
    }
    if (key == "count") return ParseU64(val, count);
    if (key == "c") {
      uint64_t index = 0, node = 0;
      double prob = 0.0;
      if (!ParseU64(TakeField(val), index) ||
          !ParseU64(TakeField(val), node) || !ParseF64(val, prob)) {
        return false;
      }
      res.indices.push_back(index);
      res.nodes.push_back(static_cast<NodeId>(node));
      res.probs.push_back(prob);
      return true;
    }
    return true;
  });
  if (!ok || res.indices.size() != count) return Malformed("plan result");
  return res;
}

// --- validate -----------------------------------------------------------

std::string EncodeValidateRequest(const ShardValidateRequest& req) {
  std::string out = "token=";
  AppendU64(out, req.token);
  out += "\ncount=";
  AppendU64(out, req.indices.size());
  out += '\n';
  for (size_t idx : req.indices) {
    out += "i=";
    AppendU64(out, idx);
    out += '\n';
  }
  return out;
}

Result<ShardValidateRequest> DecodeValidateRequest(std::string_view body) {
  ShardValidateRequest req;
  uint64_t count = 0;
  const bool ok = ForEachLine(body, [&](std::string_view key,
                                        std::string_view val) {
    if (key == "token") return ParseU64(val, req.token);
    if (key == "count") return ParseU64(val, count);
    if (key == "i") {
      uint64_t v = 0;
      if (!ParseU64(val, v)) return false;
      req.indices.push_back(static_cast<size_t>(v));
      return true;
    }
    return true;
  });
  if (!ok || req.indices.size() != count) {
    return Malformed("validate request");
  }
  return req;
}

std::string EncodeOutcomes(std::span<const NodeOutcome> outcomes) {
  std::string out = "count=";
  AppendU64(out, outcomes.size());
  out += '\n';
  for (const NodeOutcome& o : outcomes) {
    out += "o=";
    out += o.correct ? '1' : '0';
    out += ' ';
    AppendRoundTripDouble(out, o.value);
    out += ' ';
    AppendI64(out, o.group_key);
    out += '\n';
  }
  return out;
}

Result<std::vector<NodeOutcome>> DecodeOutcomes(std::string_view body) {
  std::vector<NodeOutcome> outcomes;
  uint64_t count = 0;
  const bool ok = ForEachLine(body, [&](std::string_view key,
                                        std::string_view val) {
    if (key == "count") return ParseU64(val, count);
    if (key == "o") {
      NodeOutcome o;
      uint64_t correct = 0;
      if (!ParseU64(TakeField(val), correct) ||
          !ParseF64(TakeField(val), o.value) || !ParseI64(val, o.group_key)) {
        return false;
      }
      o.correct = correct != 0;
      outcomes.push_back(o);
      return true;
    }
    return true;
  });
  if (!ok || outcomes.size() != count) return Malformed("outcomes");
  return outcomes;
}

// --- federated sub-query ------------------------------------------------

std::string EncodeQueryRequest(const QueryRequest& req) {
  std::string out = "query=";
  out += FormatAggregateQuery(req.query);
  out += '\n';
  if (req.error_bound.has_value()) {
    out += "eb=";
    AppendRoundTripDouble(out, *req.error_bound);
    out += '\n';
  }
  if (req.confidence_level.has_value()) {
    out += "conf=";
    AppendRoundTripDouble(out, *req.confidence_level);
    out += '\n';
  }
  if (req.seed.has_value()) {
    out += "seed=";
    AppendU64(out, *req.seed);
    out += '\n';
  }
  if (req.max_rounds.has_value()) {
    out += "max_rounds=";
    AppendU64(out, *req.max_rounds);
    out += '\n';
  }
  if (req.deadline_ms > 0.0) {
    out += "deadline_ms=";
    AppendRoundTripDouble(out, req.deadline_ms);
    out += '\n';
  }
  return out;
}

Result<QueryRequest> DecodeQueryRequest(std::string_view body) {
  QueryRequest req;
  bool have_query = false;
  Status query_error = Status::OK();
  const bool ok = ForEachLine(body, [&](std::string_view key,
                                        std::string_view val) {
    if (key == "query") {
      auto q = ParseAggregateQuery(val);
      if (!q.ok()) {
        query_error = q.status();
        return false;
      }
      req.query = std::move(*q);
      have_query = true;
      return true;
    }
    if (key == "eb") {
      double v = 0.0;
      if (!ParseF64(val, v)) return false;
      req.error_bound = v;
      return true;
    }
    if (key == "conf") {
      double v = 0.0;
      if (!ParseF64(val, v)) return false;
      req.confidence_level = v;
      return true;
    }
    if (key == "seed") {
      uint64_t v = 0;
      if (!ParseU64(val, v)) return false;
      req.seed = v;
      return true;
    }
    if (key == "max_rounds") {
      uint64_t v = 0;
      if (!ParseU64(val, v)) return false;
      req.max_rounds = static_cast<size_t>(v);
      return true;
    }
    if (key == "deadline_ms") return ParseF64(val, req.deadline_ms);
    return true;
  });
  if (!query_error.ok()) return query_error;
  if (!ok || !have_query) return Malformed("query request");
  return req;
}

std::string EncodeQueryResponse(const QueryResponse& resp) {
  std::string out = "id=";
  AppendU64(out, resp.id);
  out += "\nstate=";
  AppendU64(out, static_cast<uint64_t>(resp.state));
  out += "\nstatus_code=";
  AppendU64(out, static_cast<uint64_t>(resp.status.code()));
  out += "\nstatus_msg=";
  // Messages are single-line by construction everywhere in the library;
  // a stray newline would truncate here, never corrupt the frame.
  for (char c : resp.status.message()) out += c == '\n' ? ' ' : c;
  out += "\nseed_used=";
  AppendU64(out, resp.seed_used);
  out += "\ndegraded=";
  out += resp.degraded ? '1' : '0';
  out += "\nqueue_ms=";
  AppendRoundTripDouble(out, resp.queue_ms);
  out += "\nrun_ms=";
  AppendRoundTripDouble(out, resp.run_ms);
  const AggregateResult& r = resp.result;
  out += "\nr.v_hat=";
  AppendRoundTripDouble(out, r.v_hat);
  out += "\nr.moe=";
  AppendRoundTripDouble(out, r.moe);
  out += "\nr.confidence_level=";
  AppendRoundTripDouble(out, r.confidence_level);
  out += "\nr.error_bound=";
  AppendRoundTripDouble(out, r.error_bound);
  out += "\nr.satisfied=";
  out += r.satisfied ? '1' : '0';
  out += "\nr.rounds=";
  AppendU64(out, r.rounds);
  out += "\nr.total_draws=";
  AppendU64(out, r.total_draws);
  out += "\nr.num_candidates=";
  AppendU64(out, r.num_candidates);
  out += "\nr.correct_draws=";
  AppendU64(out, r.correct_draws);
  out += "\nngroups=";
  AppendU64(out, r.groups.size());
  out += '\n';
  for (const GroupEstimate& ge : r.groups) {
    out += "g=";
    AppendRoundTripDouble(out, ge.bucket_lower);
    out += ' ';
    AppendRoundTripDouble(out, ge.v_hat);
    out += ' ';
    AppendRoundTripDouble(out, ge.moe);
    out += ' ';
    AppendU64(out, ge.support);
    out += ' ';
    out += ge.satisfied ? '1' : '0';
    out += '\n';
  }
  return out;
}

Result<QueryResponse> DecodeQueryResponse(std::string_view body) {
  QueryResponse resp;
  uint64_t ngroups = 0;
  StatusCode code = StatusCode::kOk;
  std::string message;
  const bool ok = ForEachLine(body, [&](std::string_view key,
                                        std::string_view val) {
    auto u64 = [&val](auto& field) {
      uint64_t v = 0;
      if (!ParseU64(val, v)) return false;
      field = static_cast<std::remove_reference_t<decltype(field)>>(v);
      return true;
    };
    auto f64 = [&val](double& field) { return ParseF64(val, field); };
    auto flag = [&val](bool& field) {
      uint64_t v = 0;
      if (!ParseU64(val, v)) return false;
      field = v != 0;
      return true;
    };
    if (key == "id") return u64(resp.id);
    if (key == "state") {
      uint64_t v = 0;
      if (!ParseU64(val, v) ||
          v > static_cast<uint64_t>(QueryState::kDeadlineExceeded)) {
        return false;
      }
      resp.state = static_cast<QueryState>(v);
      return true;
    }
    if (key == "status_code") {
      uint64_t v = 0;
      if (!ParseU64(val, v) ||
          v > static_cast<uint64_t>(StatusCode::kUnavailable)) {
        return false;
      }
      code = static_cast<StatusCode>(v);
      return true;
    }
    if (key == "status_msg") {
      message.assign(val);
      return true;
    }
    if (key == "seed_used") return u64(resp.seed_used);
    if (key == "degraded") return flag(resp.degraded);
    if (key == "queue_ms") return f64(resp.queue_ms);
    if (key == "run_ms") return f64(resp.run_ms);
    if (key == "r.v_hat") return f64(resp.result.v_hat);
    if (key == "r.moe") return f64(resp.result.moe);
    if (key == "r.confidence_level") {
      return f64(resp.result.confidence_level);
    }
    if (key == "r.error_bound") return f64(resp.result.error_bound);
    if (key == "r.satisfied") return flag(resp.result.satisfied);
    if (key == "r.rounds") return u64(resp.result.rounds);
    if (key == "r.total_draws") return u64(resp.result.total_draws);
    if (key == "r.num_candidates") return u64(resp.result.num_candidates);
    if (key == "r.correct_draws") return u64(resp.result.correct_draws);
    if (key == "ngroups") return ParseU64(val, ngroups);
    if (key == "g") {
      GroupEstimate ge;
      uint64_t support = 0, satisfied = 0;
      if (!ParseF64(TakeField(val), ge.bucket_lower) ||
          !ParseF64(TakeField(val), ge.v_hat) ||
          !ParseF64(TakeField(val), ge.moe) ||
          !ParseU64(TakeField(val), support) || !ParseU64(val, satisfied)) {
        return false;
      }
      ge.support = static_cast<size_t>(support);
      ge.satisfied = satisfied != 0;
      resp.result.groups.push_back(ge);
      return true;
    }
    return true;
  });
  if (!ok || resp.result.groups.size() != ngroups) {
    return Malformed("query response");
  }
  resp.status = Status(code, std::move(message));
  return resp;
}

// --- error envelope -----------------------------------------------------

std::string EncodeError(const Status& status) {
  std::string out = "error=";
  AppendU64(out, static_cast<uint64_t>(status.code()));
  out += ' ';
  for (char c : status.message()) out += c == '\n' ? ' ' : c;
  out += '\n';
  return out;
}

Status DecodeError(std::string_view body) {
  Status decoded = Status::Unavailable("shard error (unparsable body)");
  ForEachLine(body, [&](std::string_view key, std::string_view val) {
    if (key == "error") {
      uint64_t code = 0;
      const std::string_view code_field = TakeField(val);
      if (ParseU64(code_field, code) &&
          code <= static_cast<uint64_t>(StatusCode::kUnavailable) &&
          code != 0) {
        decoded = Status(static_cast<StatusCode>(code), std::string(val));
      }
      return false;  // first error line wins
    }
    return true;
  });
  return decoded;
}

}  // namespace kgaq
