#include "shard/channel.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <limits>
#include <utility>

#include "common/fault_injection.h"

namespace kgaq {

namespace {

Status InjectedSendFault() {
  return Status::Unavailable("injected: shard rpc send failed");
}

}  // namespace

// --- LocalShardChannel -----------------------------------------------

Result<ShardPlanResult> LocalShardChannel::Plan(
    const ShardPlanRequest& request) {
  if (KGAQ_FAULT_POINT("shard.rpc.send")) return InjectedSendFault();
  return node_->Plan(request.query, request.options);
}

Result<std::vector<NodeOutcome>> LocalShardChannel::Validate(
    const ShardValidateRequest& request) {
  if (KGAQ_FAULT_POINT("shard.rpc.send")) return InjectedSendFault();
  return node_->Validate(request.token, request.indices);
}

Status LocalShardChannel::Release(uint64_t token) {
  if (KGAQ_FAULT_POINT("shard.rpc.send")) return InjectedSendFault();
  node_->Release(token);
  return Status::OK();
}

Result<QueryResponse> LocalShardChannel::SubQuery(
    const QueryRequest& request) {
  if (KGAQ_FAULT_POINT("shard.rpc.send")) return InjectedSendFault();
  return node_->SubQuery(request);
}

// --- HttpShardChannel ------------------------------------------------

double HttpShardChannel::EffectiveTimeoutMs(const Deadline& deadline,
                                            double rpc_timeout_ms) {
  const double ceiling = rpc_timeout_ms > 0.0
                             ? rpc_timeout_ms
                             : std::numeric_limits<double>::infinity();
  // remaining_millis() is +inf for an infinite deadline and exactly 0
  // once expired — the clamp therefore fails an expired query fast
  // without ever touching the transport.
  return std::min(ceiling, deadline.remaining_millis());
}

Result<std::string> HttpShardChannel::Post(const std::string& path,
                                           const std::string& body,
                                           double timeout_ms) {
  if (KGAQ_FAULT_POINT("shard.rpc.send")) return InjectedSendFault();
  if (timeout_ms <= 0.0) {
    // The query's budget is already spent; don't burn a socket on an RPC
    // whose answer nobody can use. kUnavailable: nothing was sent.
    return Status::Unavailable("shard rpc not sent: query deadline expired");
  }
  const double fetch_timeout = std::isinf(timeout_ms) ? 0.0 : timeout_ms;
  auto response =
      client_->Fetch(host_, port_, "POST", path, body, fetch_timeout);
  if (!response.ok()) return response.status();
  if (response->status_code != 200) return DecodeError(response->body);
  return response->body;
}

Result<ShardPlanResult> HttpShardChannel::Plan(
    const ShardPlanRequest& request) {
  auto body = Post("/shard/plan", EncodePlanRequest(request),
                   EffectiveTimeoutMs(request.deadline,
                                      options_.rpc_timeout_ms));
  if (!body.ok()) return body.status();
  return DecodePlanResult(*body);
}

Result<std::vector<NodeOutcome>> HttpShardChannel::Validate(
    const ShardValidateRequest& request) {
  auto body = Post("/shard/validate", EncodeValidateRequest(request),
                   EffectiveTimeoutMs(request.deadline,
                                      options_.rpc_timeout_ms));
  if (!body.ok()) return body.status();
  return DecodeOutcomes(*body);
}

Status HttpShardChannel::Release(uint64_t token) {
  // Release is cleanup, not query work: it gets the full per-RPC ceiling
  // rather than the (possibly spent) query deadline, or leases would
  // leak on every deadline expiry.
  auto body = Post("/shard/release", std::to_string(token),
                   EffectiveTimeoutMs(Deadline::Infinite(),
                                      options_.rpc_timeout_ms));
  return body.ok() ? Status::OK() : body.status();
}

Result<QueryResponse> HttpShardChannel::SubQuery(
    const QueryRequest& request) {
  // The sub-query legitimately runs for its whole deadline on the shard;
  // the RPC must outwait it, so the ceiling is deadline + rpc_timeout
  // slack (unbounded when the request carries no deadline).
  const double timeout =
      request.deadline_ms > 0.0 && options_.rpc_timeout_ms > 0.0
          ? request.deadline_ms + options_.rpc_timeout_ms
          : std::numeric_limits<double>::infinity();
  auto body = Post("/shard/subquery", EncodeQueryRequest(request), timeout);
  if (!body.ok()) return body.status();
  return DecodeQueryResponse(*body);
}

Status HttpShardChannel::Probe() {
  // Any HTTP answer — including a shedding 503 — proves the process is
  // alive and reachable; only transport failures count as dead.
  auto response = client_->Fetch(host_, port_, "GET", "/healthz", "",
                                 std::max(1.0, options_.probe_timeout_ms));
  return response.ok() ? Status::OK() : response.status();
}

void HttpShardChannel::OnQuarantined() {
  client_->EvictHost(host_, port_);
}

// --- server-side routes ----------------------------------------------

HttpServer::ExtraHandler MakeShardHttpHandler(ShardNode& node) {
  return [&node](const std::string& method, const std::string& path,
                 const std::string& body)
             -> std::optional<std::pair<int, std::string>> {
    if (path.rfind("/shard/", 0) != 0) return std::nullopt;
    if (method != "POST") {
      return std::make_pair(
          405, EncodeError(Status::InvalidArgument(
                   "shard routes are POST-only")));
    }
    auto fail = [](const Status& status) {
      return std::make_pair(HttpStatusForCode(status.code()),
                            EncodeError(status));
    };

    if (path == "/shard/plan") {
      auto request = DecodePlanRequest(body);
      if (!request.ok()) return fail(request.status());
      auto result = node.Plan(request->query, request->options);
      if (!result.ok()) return fail(result.status());
      return std::make_pair(200, EncodePlanResult(*result));
    }
    if (path == "/shard/validate") {
      auto request = DecodeValidateRequest(body);
      if (!request.ok()) return fail(request.status());
      auto outcomes = node.Validate(request->token, request->indices);
      if (!outcomes.ok()) return fail(outcomes.status());
      return std::make_pair(200, EncodeOutcomes(*outcomes));
    }
    if (path == "/shard/release") {
      uint64_t token = 0;
      auto [end, ec] =
          std::from_chars(body.data(), body.data() + body.size(), token);
      // Tolerate a trailing newline from hand-driven curls.
      if (ec != std::errc{} ||
          (end != body.data() + body.size() &&
           std::string_view(end, body.data() + body.size() - end) != "\n")) {
        return fail(Status::InvalidArgument(
            "release body must be a decimal token"));
      }
      node.Release(token);
      return std::make_pair(200, std::string("ok\n"));
    }
    if (path == "/shard/subquery") {
      auto request = DecodeQueryRequest(body);
      if (!request.ok()) return fail(request.status());
      return std::make_pair(200, EncodeQueryResponse(node.SubQuery(*request)));
    }
    return fail(Status::NotFound("no shard route for '" + path + "'"));
  };
}

}  // namespace kgaq
