#ifndef KGAQ_SHARD_WIRE_H_
#define KGAQ_SHARD_WIRE_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "core/approx_engine.h"
#include "kg/types.h"
#include "serve/query_service.h"

namespace kgaq {

/// Text wire format for the shard RPC surface (docs/sharding.md).
///
/// Line-based `key=value` bodies carried over the existing HTTP front
/// door: queries travel as ParseAggregateQuery/FormatAggregateQuery
/// canonical text (single-line, byte-stable) and every double goes
/// through AppendRoundTripDouble, whose shortest-round-trip rendering
/// parses back bit-exact — the deterministic-merge parity contract rides
/// on that. Candidates are referenced by *global candidate index* (the
/// position in the shard's full unrestricted candidate array, identical
/// on every shard by construction), so no node names cross the wire on
/// the hot validate path.

/// Scatter-phase request: build the full unrestricted plan for `query`
/// under `options` and report the candidates this shard owns.
struct ShardPlanRequest {
  AggregateQuery query;
  EngineOptions options;
  /// The QUERY's deadline, not a per-RPC one: channels clamp their own
  /// per-RPC timeout to whatever budget remains, so a failover retry can
  /// never outlive the query. Channel-local — never serialized (the
  /// server side has its own connection timeouts).
  Deadline deadline = Deadline::Infinite();
};

/// One shard's slice of the global candidate distribution.
struct ShardPlanResult {
  /// Session handle for subsequent Validate/Release calls.
  uint64_t token = 0;
  /// Size of the FULL candidate array (identical across shards); the
  /// coordinator's merge coverage check compares against this.
  uint64_t num_candidates = 0;
  bool group_by_enabled = false;
  /// Owned candidates, ascending global index. Parallel arrays.
  std::vector<uint64_t> indices;
  std::vector<NodeId> nodes;
  std::vector<double> probs;
};

/// Per-round validation batch: global candidate indices, duplicates
/// allowed; the response is one NodeOutcome per index, aligned.
struct ShardValidateRequest {
  uint64_t token = 0;
  std::vector<size_t> indices;
  /// Query deadline; see ShardPlanRequest::deadline. Channel-local.
  Deadline deadline = Deadline::Infinite();
};

std::string EncodePlanRequest(const ShardPlanRequest& req);
Result<ShardPlanRequest> DecodePlanRequest(std::string_view body);

std::string EncodePlanResult(const ShardPlanResult& res);
Result<ShardPlanResult> DecodePlanResult(std::string_view body);

std::string EncodeValidateRequest(const ShardValidateRequest& req);
Result<ShardValidateRequest> DecodeValidateRequest(std::string_view body);

std::string EncodeOutcomes(std::span<const NodeOutcome> outcomes);
Result<std::vector<NodeOutcome>> DecodeOutcomes(std::string_view body);

/// Federated-mode sub-query: the QueryRequest surface, minus nothing the
/// combiner needs (trace and step timings stay shard-local).
std::string EncodeQueryRequest(const QueryRequest& req);
Result<QueryRequest> DecodeQueryRequest(std::string_view body);

std::string EncodeQueryResponse(const QueryResponse& resp);
Result<QueryResponse> DecodeQueryResponse(std::string_view body);

/// Non-200 shard responses carry `error=<code> <message>`; these round-
/// trip a Status through that line.
std::string EncodeError(const Status& status);
Status DecodeError(std::string_view body);

}  // namespace kgaq

#endif  // KGAQ_SHARD_WIRE_H_
