#ifndef KGAQ_SHARD_COORDINATOR_H_
#define KGAQ_SHARD_COORDINATOR_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "serve/query_service.h"
#include "shard/channel.h"

namespace kgaq {

/// How the coordinator turns one query into shard work (docs/sharding.md
/// states both contracts in full).
enum class ShardMode : uint8_t {
  /// Scatter a plan, merge the shards' owned candidate slices into the
  /// GLOBAL candidate distribution (no renormalization when coverage is
  /// full), then replay the unsharded engine's exact draw schedule on
  /// the coordinator — same alias table, same Rng stream, same BLB
  /// estimator calls — outsourcing only per-draw validation to the
  /// owning shards. Answers are BITWISE-IDENTICAL to the unsharded
  /// engine for the same seed; per-round validation batches are the
  /// scaling axis.
  kDeterministicMerge,
  /// Scatter independent sub-queries over each shard's owned candidate
  /// subset and combine (v_hat sums, MoE adds in quadrature; AVG runs a
  /// SUM and a COUNT leg per shard). One round trip per query, no
  /// per-round chatter — but the combined answer is its own estimator,
  /// NOT bitwise-equal to the unsharded one.
  kFederated,
};

const char* ShardModeToString(ShardMode mode);

struct CoordinatorOptions {
  ShardMode mode = ShardMode::kDeterministicMerge;
  /// Seed derivation matches QueryService: the id-th executed query
  /// draws with QueryService::QuerySeed(base_seed, id) unless its
  /// request pins a seed — so a coordinator and an unsharded service
  /// fed the same request sequence use the same per-query seeds.
  uint64_t base_seed = 7;
  /// Engine defaults; request overrides apply on top, exactly as at a
  /// QueryService.
  EngineOptions engine;
};

/// Coordinator-level counters, mirroring QueryService::ServiceStats'
/// accounting identity — every Execute lands in exactly one bucket:
///   submitted == done + failed + cancelled + deadline_expired
///                + rejected + shed
/// The coordinator never queues (Execute is synchronous), so cancelled /
/// rejected / shed stay zero today; they exist so shard and coordinator
/// tiers satisfy the SAME identity and tests can assert it uniformly.
struct CoordinatorStats {
  uint64_t submitted = 0;
  uint64_t done = 0;
  uint64_t failed = 0;
  uint64_t cancelled = 0;
  uint64_t deadline_expired = 0;
  uint64_t rejected = 0;
  uint64_t shed = 0;
  uint64_t degraded = 0;  ///< overlay: done/deadline with partial answer
};

/// The scatter-gather tier over N ShardChannels: one Execute call takes
/// a QueryRequest through plan-scatter, deterministic merge, the
/// coordinator-side replay loop (or the federated sub-query fan-out)
/// and back to a QueryResponse with the same surface a QueryService
/// returns.
///
/// Failure semantics (PR 6 taxonomy): a shard lost at PLAN time shrinks
/// coverage — the merged distribution is renormalized over the live
/// shards and the answer comes back degraded=true (an answer, not an
/// error). A shard lost MID-RUN retires the session at the round
/// boundary with StopCause::kShardLost: completed rounds stand, the
/// response is a degraded partial with the ACHIEVED error bound; only a
/// query that lost a shard before its first round completes fails
/// (kUnavailable). Deadlines propagate per round exactly as at a
/// QueryService. Execute never hangs and never crashes on shard loss.
///
/// Execute is serialized (one query at a time): the scatter layer
/// parallelizes ACROSS shards per round, which is where the scaling
/// lives; cross-query concurrency belongs to the caller (front doors
/// put a QueryService-like queue in front).
class Coordinator {
 public:
  Coordinator(std::vector<std::unique_ptr<ShardChannel>> channels,
              CoordinatorOptions options = {});

  /// Runs one query to a terminal QueryResponse (kDone, kFailed or
  /// kDeadlineExceeded; the coordinator has no queue, so kQueued /
  /// kRunning / kCancelled never surface).
  QueryResponse Execute(const QueryRequest& request);

  CoordinatorStats stats() const;
  size_t num_shards() const { return channels_.size(); }
  const CoordinatorOptions& options() const { return options_; }

  /// Per-channel replica-health snapshots, index-aligned with shards.
  /// Deliberately does NOT take the Execute lock: channels_ is immutable
  /// after construction and ChannelHealth snapshots are internally
  /// synchronized, so /stats stays responsive mid-query.
  std::vector<ChannelHealth> channel_health() const;

 private:
  /// One live shard's contribution to the merged global distribution.
  struct MergedPlan {
    /// Parallel arrays over merged positions, ascending global index.
    std::vector<NodeId> nodes;
    std::vector<double> probs;
    std::vector<uint32_t> owner;          ///< shard per position
    std::vector<uint64_t> global_index;   ///< global index per position
    std::vector<uint64_t> tokens;         ///< live plan token per shard
    std::vector<bool> shard_live;         ///< plan succeeded per shard
    uint64_t num_candidates = 0;          ///< full (global) array size
    bool group_by_enabled = false;
    bool full_coverage = false;
  };

  QueryResponse ExecuteDeterministic(const AggregateQuery& query,
                                     const EngineOptions& options,
                                     Deadline deadline);
  QueryResponse ExecuteFederated(const QueryRequest& request,
                                 const EngineOptions& options, uint64_t seed,
                                 Deadline deadline);
  /// Scatters Plan to every shard and merges the owned slices; non-OK
  /// when no shard answered or the merge found an inconsistency. The
  /// query deadline rides on every plan RPC so remote channels clamp
  /// their per-RPC timeouts to the remaining budget.
  Result<MergedPlan> ScatterPlan(const AggregateQuery& query,
                                 const EngineOptions& options,
                                 Deadline deadline);
  void ReleasePlans(const MergedPlan& plan);

  std::vector<std::unique_ptr<ShardChannel>> channels_;
  CoordinatorOptions options_;

  mutable std::mutex mu_;
  uint64_t next_index_ = 0;
  CoordinatorStats stats_;
};

/// Renders the shard tier's health as a `"shard_tier":{...}` JSON
/// fragment for HttpServer::SetStatsAugmenter: the coordinator's
/// accounting buckets plus one row per shard with replica counts,
/// breaker states, and failover/hedge/budget counters.
std::string RenderShardTierJson(const Coordinator& coordinator);

}  // namespace kgaq

#endif  // KGAQ_SHARD_COORDINATOR_H_
