#ifndef KGAQ_SHARD_HEALTH_H_
#define KGAQ_SHARD_HEALTH_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/status.h"

namespace kgaq {

/// Health machinery for the replicated shard tier (docs/sharding.md,
/// "Replication & failover"): a per-channel circuit breaker driven by
/// passive per-RPC outcomes plus active probing, and a shared retry
/// budget that keeps failover/hedging from amplifying load during a
/// partial outage. Both are small, self-contained state machines in the
/// lineage of OverloadState / MemoryPressure: explicit states, hysteresis
/// against flapping, every transition observable through counters.

/// Circuit breaker states, the classic three:
///   Closed   — traffic flows; consecutive failures are counted.
///   Open     — traffic is rejected without touching the transport, so a
///              dead replica stops eating connect timeouts. After
///              `open_cooldown_ms` the next admission becomes a probe.
///   HalfOpen — exactly one trial call is in flight; its outcome decides
///              Closed (success) or Open again (failure, cooldown
///              restarts).
enum class BreakerState : uint8_t { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

const char* BreakerStateToString(BreakerState state);

struct BreakerOptions {
  /// Consecutive failures that trip Closed -> Open. 1 opens on the first
  /// failure (aggressive, right for tests and fast-failover HTTP tiers);
  /// higher values tolerate blips.
  int failure_threshold = 3;
  /// Time spent Open before the next admission is allowed through as the
  /// HalfOpen probe. 0 means a failed replica is re-probed by the very
  /// next call — deterministic for tests.
  double open_cooldown_ms = 250.0;
};

/// One channel's breaker. Thread-safe: the replica set's traffic threads,
/// hedge threads, and the background prober all drive the same instance.
///
/// Usage per call: `Admit()` before the RPC — kReject means skip this
/// replica, kProceed/kProbe mean call it — then exactly one of
/// `OnSuccess()` / `OnFailure()` with the outcome. (A kProbe admission
/// holds the single HalfOpen slot; concurrent admissions are rejected
/// until the outcome lands.)
class CircuitBreaker {
 public:
  enum class Gate : uint8_t { kProceed, kProbe, kReject };

  explicit CircuitBreaker(BreakerOptions options = {});

  /// Gate one call. Open -> HalfOpen happens here once the cooldown has
  /// elapsed (the caller becomes the probe).
  Gate Admit();

  void OnSuccess();
  /// Records a failure. Returns true when THIS call tripped the breaker
  /// Closed/HalfOpen -> Open — the caller's hook for open-time actions
  /// (connection-pool eviction, logging).
  bool OnFailure();

  BreakerState state() const;
  uint64_t opens() const;     ///< total Closed/HalfOpen -> Open trips
  uint64_t rejected() const;  ///< admissions denied while Open/HalfOpen

 private:
  using Clock = std::chrono::steady_clock;

  BreakerOptions options_;
  mutable std::mutex mu_;
  BreakerState state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  bool probe_in_flight_ = false;
  Clock::time_point opened_at_{};
  uint64_t opens_ = 0;
  uint64_t rejected_ = 0;
};

struct RetryBudgetOptions {
  /// Bucket capacity; also the initial fill, so cold-start failover is
  /// never starved.
  double max_tokens = 10.0;
  /// Tokens earned back per successful RPC, capped at max_tokens. 0.5
  /// means sustained failover is held to one extra attempt per two
  /// successes — a storm decays instead of amplifying.
  double tokens_per_success = 0.5;
};

/// Token bucket shared by every replica set under one coordinator: each
/// failover retry and each hedged RPC costs one token, each successful
/// RPC earns a fraction back. When the bucket is dry the tier returns
/// the primary's error instead of fanning more load onto whatever is
/// still alive — the load-amplification guard for partial outages.
/// Thread-safe.
class RetryBudget {
 public:
  explicit RetryBudget(RetryBudgetOptions options = {});

  /// Takes one token; false (and a `denied` tick) when the bucket is dry.
  bool TryAcquire();
  void RecordSuccess();

  struct Stats {
    double tokens = 0.0;
    uint64_t acquired = 0;
    uint64_t denied = 0;
  };
  Stats stats() const;

 private:
  RetryBudgetOptions options_;
  mutable std::mutex mu_;
  double tokens_;
  uint64_t acquired_ = 0;
  uint64_t denied_ = 0;
};

/// Snapshot of one coordinator channel's replica health, rendered at
/// /stats (RenderShardTierJson). Plain single-channel shards report the
/// default: one permanently-healthy replica, all counters zero.
struct ChannelHealth {
  size_t replicas = 1;
  size_t healthy = 1;  ///< breakers currently Closed
  uint64_t failovers = 0;
  uint64_t failed_rpcs = 0;
  uint64_t breaker_opens = 0;
  uint64_t breaker_rejected = 0;
  uint64_t hedges_launched = 0;
  uint64_t hedges_won = 0;  ///< races the hedged call won outright
  uint64_t budget_denied = 0;
  uint64_t probes = 0;
  uint64_t probe_failures = 0;
  uint64_t divergent_plans = 0;  ///< replica plans that failed the bit-identity check
  std::vector<BreakerState> states;  ///< per replica; empty for plain channels
};

}  // namespace kgaq

#endif  // KGAQ_SHARD_HEALTH_H_
