#ifndef KGAQ_SHARD_SHARDED_ENGINE_H_
#define KGAQ_SHARD_SHARDED_ENGINE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "shard/coordinator.h"
#include "shard/partitioner.h"
#include "shard/replica_set.h"
#include "shard/shard_node.h"

namespace kgaq {

struct ShardedEngineOptions {
  uint32_t num_shards = 2;
  /// Replication radius for the partitioner (see KgPartitioner::Options);
  /// the default keeps every shard's local graph walk-complete on the
  /// bench KGs, which is what the deterministic-merge parity contract
  /// needs.
  uint32_t halo_hops = 16;
  ShardMode mode = ShardMode::kDeterministicMerge;
  /// Per-shard QueryService knobs. `service.engine` doubles as the
  /// coordinator's engine defaults, so shard sub-queries and the
  /// coordinator replay agree on every tunable.
  ServiceOptions service;
  /// Coordinator-level seed derivation base (QueryService::QuerySeed).
  uint64_t base_seed = 7;
  /// Replicas per logical shard. 1 (the default) wires plain channels —
  /// byte-for-byte the pre-replication deployment. R > 1 stands up R
  /// bit-identical ShardNodes per cut behind a ShardReplicaSet, buying
  /// transparent failover: any query finishes undegraded while at least
  /// one replica of every shard survives.
  uint32_t replicas_per_shard = 1;
  /// Replica-tier tuning (breakers, hedging, probing); used when
  /// replicas_per_shard > 1.
  ReplicaSetOptions replica;
  /// Failover/hedge retry budget, shared across ALL of this engine's
  /// replica sets so a multi-shard brownout cannot multiply attempts.
  RetryBudgetOptions retry_budget;
  /// Test/chaos seam: when set, every replica channel is passed through
  /// this wrapper before wiring (e.g. KillSwitchChannel). Applied to
  /// plain channels too when replicas_per_shard == 1.
  std::function<std::unique_ptr<ShardChannel>(std::unique_ptr<ShardChannel>,
                                              uint32_t shard, uint32_t replica)>
      wrap_channel;
};

/// The in-process sharded deployment, assembled end to end: partition the
/// KG, stand up one ShardNode (EngineContext + restricted QueryService)
/// per cut, wire LocalShardChannels, and front them with a Coordinator —
/// the same QueryRequest -> QueryResponse surface as a single
/// QueryService, behind which the engine tier is now horizontal.
///
///   auto engine = ShardedEngine::Create(graph, model, {.num_shards = 4});
///   QueryResponse r = (*engine)->Execute({query});
///
/// Everything is owned here (cuts, contexts, nodes, channels,
/// coordinator) except the source graph/model behind Create, which are
/// only borrowed during partitioning for the graph and for the engine
/// lifetime for the model. The remote deployment uses the same pieces à
/// la carte: KgPartitioner::WriteShardSnapshots -> one
/// ShardNode::FromSnapshot + HttpServer + MakeShardHttpHandler per host,
/// and a Coordinator over HttpShardChannels (tests/shard_test.cc builds
/// exactly that).
class ShardedEngine {
 public:
  /// Partitions `graph` and builds the full in-process stack. `model` is
  /// borrowed and must outlive the engine; `graph` is only read during
  /// partitioning.
  static Result<std::unique_ptr<ShardedEngine>> Create(
      const KnowledgeGraph& graph, const EmbeddingModel& model,
      ShardedEngineOptions options = {});

  /// Builds the stack from per-shard snapshot files
  /// (KgPartitioner::WriteShardSnapshots output), one path per shard in
  /// shard order. num_shards/halo_hops come from the snapshots'
  /// partition sections; options.num_shards is ignored.
  static Result<std::unique_ptr<ShardedEngine>> FromShardSnapshots(
      const std::vector<std::string>& paths, ShardedEngineOptions options = {});

  QueryResponse Execute(const QueryRequest& request) {
    return coordinator_->Execute(request);
  }

  Coordinator& coordinator() { return *coordinator_; }
  ShardNode& node(size_t shard) { return *nodes_[shard][0]; }
  ShardNode& node(size_t shard, size_t replica) {
    return *nodes_[shard][replica];
  }
  size_t num_shards() const { return nodes_.size(); }
  size_t num_replicas(size_t shard) const { return nodes_[shard].size(); }
  /// Per-node service counters, shard-major then replica (each satisfies
  /// the accounting identity).
  std::vector<QueryService::ServiceStats> shard_stats() const;

 private:
  ShardedEngine() = default;
  static Result<std::unique_ptr<ShardedEngine>> Assemble(
      std::unique_ptr<ShardedEngine> engine, const ShardedEngineOptions& options);

  /// Owning order matters: cuts_ hold the shard graphs the contexts
  /// borrow, so they must outlive contexts_/nodes_ (members destroy in
  /// reverse declaration order). cuts_ is fully built before any context
  /// is created and never resized after — the borrowed references cannot
  /// dangle. nodes_ is shard-major: nodes_[s] holds that shard's R
  /// replicas (all sharing one context — the snapshot is immutable, so
  /// replicas differ only in session state, which is exactly the
  /// bit-identical premise the replica tier rides on).
  std::vector<ShardCut> cuts_;
  std::vector<std::shared_ptr<const EngineContext>> contexts_;
  std::vector<std::vector<std::unique_ptr<ShardNode>>> nodes_;
  std::unique_ptr<Coordinator> coordinator_;
};

}  // namespace kgaq

#endif  // KGAQ_SHARD_SHARDED_ENGINE_H_
