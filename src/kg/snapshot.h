#ifndef KGAQ_KG_SNAPSHOT_H_
#define KGAQ_KG_SNAPSHOT_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "embedding/embedding_model.h"
#include "kg/knowledge_graph.h"

namespace kgaq {

/// Versioned little-endian binary persistence for knowledge graphs and
/// their embeddings (layout in docs/snapshot_format.md).
///
/// The TSV loader re-parses and re-interns every line on each start; the
/// snapshot instead serializes the KnowledgeGraph's internal dictionary
/// and CSR arrays verbatim, so loading is a handful of bulk reads and the
/// loaded graph is *bit-identical* to the saved one — same id assignment,
/// same adjacency order, hence identical engine estimates for a fixed
/// seed. On the bench KG this loads roughly an order of magnitude faster
/// than the TSV parse (see BENCH_micro.json: BM_KgTsvParse vs
/// BM_KgSnapshotLoad).
///
/// Compatibility contract: the container starts with an 8-byte magic, a
/// format version and an endianness marker. Readers reject unknown
/// versions and byte-swapped files (the format is defined little-endian;
/// big-endian hosts would need a swapping reader, which this
/// implementation does not provide).

/// Saves only the graph (no embedding section).
Status SaveKgSnapshot(const KnowledgeGraph& g, const std::string& path);

/// Loads a graph-only or combined snapshot, ignoring any embedding
/// section.
Result<KnowledgeGraph> LoadKgSnapshot(const std::string& path);

/// A combined graph + embedding snapshot, the unit a resident engine
/// serves from (EngineContext::LoadFromSnapshot wraps this).
struct EngineSnapshot {
  KnowledgeGraph graph;
  /// Null when the snapshot carried no embedding section.
  std::unique_ptr<FixedEmbedding> embedding;
};

/// Saves the graph plus (when `model` is non-null) its embedding vectors
/// via the embedding_io binary blob.
Status SaveEngineSnapshot(const KnowledgeGraph& g,
                          const EmbeddingModel* model,
                          const std::string& path);

/// Loads a snapshot written by SaveEngineSnapshot / SaveKgSnapshot.
Result<EngineSnapshot> LoadEngineSnapshot(const std::string& path);

}  // namespace kgaq

#endif  // KGAQ_KG_SNAPSHOT_H_
