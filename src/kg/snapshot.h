#ifndef KGAQ_KG_SNAPSHOT_H_
#define KGAQ_KG_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "common/status.h"
#include "embedding/embedding_model.h"
#include "kg/knowledge_graph.h"

namespace kgaq {

/// Versioned little-endian binary persistence for knowledge graphs and
/// their embeddings (layout in docs/snapshot_format.md).
///
/// The TSV loader re-parses and re-interns every line on each start; the
/// snapshot instead serializes the KnowledgeGraph's internal dictionary
/// and CSR arrays verbatim, so loading is a handful of bulk reads and the
/// loaded graph is *bit-identical* to the saved one — same id assignment,
/// same adjacency order, hence identical engine estimates for a fixed
/// seed. On the bench KG this loads roughly an order of magnitude faster
/// than the TSV parse (see BENCH_micro.json: BM_KgTsvParse vs
/// BM_KgSnapshotLoad).
///
/// Compatibility contract: the container starts with an 8-byte magic, a
/// format version and an endianness marker. Readers reject unknown
/// versions and byte-swapped files (the format is defined little-endian;
/// big-endian hosts would need a swapping reader, which this
/// implementation does not provide).
///
/// Version history:
///   v1 — KG section + optional embedding blob.
///   v2 — adds an optional partition-map section (flag 0x2) between the
///        header flags and the KG section, written only for per-shard
///        snapshots produced by KgPartitioner. Writers emit v1 bytes when
///        no partition info is present, so unsharded snapshots stay
///        byte-identical to pre-v2 output; the reader accepts both.

/// Partition-map header section of a per-shard snapshot (format v2).
/// Records how the shard was cut so a loader can verify it is assembling
/// a consistent shard set (docs/sharding.md).
struct KgPartitionInfo {
  /// Partition scheme id. 0 = FNV-1a-64 over the node name, mod
  /// num_shards (common/shard_hash.h).
  uint32_t scheme = 0;
  uint32_t num_shards = 0;
  uint32_t shard_index = 0;
  /// Halo depth used when the shard was cut (1 = cut-edge replication).
  uint32_t halo_hops = 1;
  /// Nodes this shard owns (hash-assigned), not counting halo replicas.
  uint64_t owned_nodes = 0;
  /// Triple count of the *global* graph the shard was cut from.
  uint64_t global_triples = 0;

  bool operator==(const KgPartitionInfo&) const = default;
};

/// Saves only the graph (no embedding section).
Status SaveKgSnapshot(const KnowledgeGraph& g, const std::string& path);

/// Loads a graph-only or combined snapshot, ignoring any embedding
/// section.
Result<KnowledgeGraph> LoadKgSnapshot(const std::string& path);

/// A combined graph + embedding snapshot, the unit a resident engine
/// serves from (EngineContext::LoadFromSnapshot wraps this).
struct EngineSnapshot {
  KnowledgeGraph graph;
  /// Null when the snapshot carried no embedding section.
  std::unique_ptr<FixedEmbedding> embedding;
  /// Present only for per-shard snapshots (format v2, flag 0x2).
  std::optional<KgPartitionInfo> partition;
};

/// Saves the graph plus (when `model` is non-null) its embedding vectors
/// via the embedding_io binary blob.
Status SaveEngineSnapshot(const KnowledgeGraph& g,
                          const EmbeddingModel* model,
                          const std::string& path);

/// As above, plus a partition-map section when `partition` is non-null
/// (the file is then written as format v2; otherwise the v1 bytes are
/// unchanged).
Status SaveEngineSnapshot(const KnowledgeGraph& g,
                          const EmbeddingModel* model,
                          const KgPartitionInfo* partition,
                          const std::string& path);

/// Loads a snapshot written by SaveEngineSnapshot / SaveKgSnapshot.
Result<EngineSnapshot> LoadEngineSnapshot(const std::string& path);

}  // namespace kgaq

#endif  // KGAQ_KG_SNAPSHOT_H_
