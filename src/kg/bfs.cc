#include "kg/bfs.h"

namespace kgaq {

BoundedSubgraph BoundedBfs(const KnowledgeGraph& g, NodeId source,
                           int max_hops) {
  BoundedSubgraph out;
  out.source = source;
  out.max_hops = max_hops;
  out.distance.assign(g.NumNodes(), -1);
  if (source >= g.NumNodes()) return out;

  out.distance[source] = 0;
  out.nodes.push_back(source);
  // out.nodes doubles as the BFS queue: nodes are appended in
  // distance-nondecreasing order and scanned once.
  for (size_t head = 0; head < out.nodes.size(); ++head) {
    NodeId u = out.nodes[head];
    int32_t du = out.distance[u];
    if (du >= max_hops) continue;
    for (const Neighbor& nb : g.Neighbors(u)) {
      if (out.distance[nb.node] < 0) {
        out.distance[nb.node] = du + 1;
        out.nodes.push_back(nb.node);
      }
    }
  }
  return out;
}

}  // namespace kgaq
