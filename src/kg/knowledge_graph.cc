#include "kg/knowledge_graph.h"

#include <algorithm>

namespace kgaq {

bool KnowledgeGraph::HasType(NodeId u, TypeId t) const {
  auto span = NodeTypes(u);
  return std::find(span.begin(), span.end(), t) != span.end();
}

std::optional<double> KnowledgeGraph::Attribute(NodeId u,
                                                AttributeId a) const {
  const size_t begin = attr_offsets_[u];
  const size_t end = attr_offsets_[u + 1];
  // Per-node attribute lists are sorted by id (GraphBuilder invariant).
  auto first = attr_ids_.begin() + begin;
  auto last = attr_ids_.begin() + end;
  auto it = std::lower_bound(first, last, a);
  if (it == last || *it != a) return std::nullopt;
  return attr_values_[static_cast<size_t>(it - attr_ids_.begin())];
}

NodeId KnowledgeGraph::FindNodeByName(std::string_view name) const {
  auto it = name_to_node_.find(std::string(name));
  return it == name_to_node_.end() ? kInvalidId : it->second;
}

}  // namespace kgaq
