#ifndef KGAQ_KG_KNOWLEDGE_GRAPH_H_
#define KGAQ_KG_KNOWLEDGE_GRAPH_H_

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "kg/dictionary.h"
#include "kg/types.h"

namespace kgaq {

/// One traversable arc incident to a node.
///
/// The paper's subgraph matches are edge-to-path mappings where paths may
/// traverse KG edges in either direction (e.g. Audi_TT -assembly->
/// Volkswagen -country-> Germany is walked from Germany). The adjacency
/// therefore materializes each stored triple (s, p, o) twice: forward at s
/// and reversed at o, with `forward` recording the stored orientation.
struct Neighbor {
  NodeId node;            ///< The node reached by crossing this arc.
  PredicateId predicate;  ///< Predicate of the underlying triple.
  bool forward;           ///< True iff this arc follows the stored direction.

  bool operator==(const Neighbor&) const = default;
};

/// Immutable, dictionary-encoded in-memory knowledge graph (Definition 1).
///
/// Nodes carry a unique name, one or more types, and a sparse set of
/// numerical attributes; edges carry a predicate. Adjacency is CSR so
/// Neighbors() is a contiguous span — the random walk's hot path.
/// Construct via GraphBuilder; instances are safe for concurrent reads.
class KnowledgeGraph {
 public:
  KnowledgeGraph() = default;

  KnowledgeGraph(const KnowledgeGraph&) = delete;
  KnowledgeGraph& operator=(const KnowledgeGraph&) = delete;
  KnowledgeGraph(KnowledgeGraph&&) = default;
  KnowledgeGraph& operator=(KnowledgeGraph&&) = default;

  size_t NumNodes() const { return node_names_.size(); }
  /// Number of stored triples (each appears as two arcs in the adjacency).
  size_t NumEdges() const { return num_triples_; }
  size_t NumPredicates() const { return predicates_.size(); }
  size_t NumTypes() const { return types_.size(); }
  size_t NumAttributes() const { return attributes_.size(); }

  /// All arcs (both orientations) incident to `u`.
  std::span<const Neighbor> Neighbors(NodeId u) const {
    return {adjacency_.data() + adj_offsets_[u],
            adj_offsets_[u + 1] - adj_offsets_[u]};
  }

  /// Degree in the traversal graph (forward + reverse arcs).
  size_t Degree(NodeId u) const {
    return adj_offsets_[u + 1] - adj_offsets_[u];
  }

  /// Unique entity name of `u`.
  const std::string& NodeName(NodeId u) const {
    return names_.name(node_names_[u]);
  }

  /// Type ids assigned to `u` (at least one).
  std::span<const TypeId> NodeTypes(NodeId u) const {
    return {type_ids_.data() + type_offsets_[u],
            type_offsets_[u + 1] - type_offsets_[u]};
  }

  /// True iff `u` has type `t`.
  bool HasType(NodeId u, TypeId t) const;

  /// Value of numerical attribute `a` at node `u`, if present.
  std::optional<double> Attribute(NodeId u, AttributeId a) const;

  /// Node with the given unique name, or kInvalidId.
  NodeId FindNodeByName(std::string_view name) const;

  /// Dictionaries (valid lookups for query construction).
  const Dictionary& names() const { return names_; }
  const Dictionary& types() const { return types_; }
  const Dictionary& predicates() const { return predicates_; }
  const Dictionary& attributes() const { return attributes_; }

  /// Convenience id lookups; kInvalidId when absent.
  TypeId TypeIdOf(std::string_view type_name) const {
    return types_.Lookup(type_name);
  }
  PredicateId PredicateIdOf(std::string_view pred) const {
    return predicates_.Lookup(pred);
  }
  AttributeId AttributeIdOf(std::string_view attr) const {
    return attributes_.Lookup(attr);
  }

  /// All nodes carrying type `t` (precomputed index).
  std::span<const NodeId> NodesWithType(TypeId t) const {
    if (t >= types_.size()) return {};
    return {type_index_members_.data() + type_index_offsets_[t],
            type_index_offsets_[t + 1] - type_index_offsets_[t]};
  }

  /// Average traversal degree (2 * triples / nodes); used by SSB complexity
  /// accounting and dataset statistics reports.
  double AverageDegree() const {
    return NumNodes() == 0
               ? 0.0
               : 2.0 * static_cast<double>(num_triples_) / NumNodes();
  }

 private:
  friend class GraphBuilder;
  /// Binary snapshot serializer (src/kg/snapshot.cc): reads/writes the
  /// internal arrays verbatim so a loaded graph is bit-identical to the
  /// one saved — including id assignment and CSR layout.
  friend class KgSnapshotIo;
  /// Shard cutter (src/shard/partitioner.cc): copies every array verbatim
  /// except the adjacency CSR, which it rewrites to the shard's triple
  /// subset. Keeping dictionaries and the node table intact preserves id
  /// assignment — the bitwise-parity contract in docs/sharding.md depends
  /// on shard-local ids equalling global ids.
  friend class KgPartitioner;

  Dictionary names_;
  Dictionary types_;
  Dictionary predicates_;
  Dictionary attributes_;

  std::vector<uint32_t> node_names_;  // node -> name id

  // CSR adjacency over both arc orientations.
  std::vector<size_t> adj_offsets_;  // NumNodes()+1 entries
  std::vector<Neighbor> adjacency_;
  size_t num_triples_ = 0;

  // CSR node->types.
  std::vector<size_t> type_offsets_;
  std::vector<TypeId> type_ids_;

  // CSR type->nodes (inverted index).
  std::vector<size_t> type_index_offsets_;
  std::vector<NodeId> type_index_members_;

  // CSR node->attributes, parallel id/value arrays sorted by id per node.
  std::vector<size_t> attr_offsets_;
  std::vector<AttributeId> attr_ids_;
  std::vector<double> attr_values_;

  std::unordered_map<std::string, NodeId> name_to_node_;
};

}  // namespace kgaq

#endif  // KGAQ_KG_KNOWLEDGE_GRAPH_H_
