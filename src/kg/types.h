#ifndef KGAQ_KG_TYPES_H_
#define KGAQ_KG_TYPES_H_

#include <cstdint>
#include <limits>

namespace kgaq {

/// Dense identifier of an entity node in a KnowledgeGraph.
using NodeId = uint32_t;
/// Dense identifier of an edge predicate (e.g. "assembly").
using PredicateId = uint32_t;
/// Dense identifier of a node type (e.g. "Automobile").
using TypeId = uint32_t;
/// Dense identifier of a numerical attribute (e.g. "price").
using AttributeId = uint32_t;

/// Sentinel for "no such id"; also returned by dictionary misses.
inline constexpr uint32_t kInvalidId = std::numeric_limits<uint32_t>::max();

}  // namespace kgaq

#endif  // KGAQ_KG_TYPES_H_
