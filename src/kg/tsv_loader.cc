#include "kg/tsv_loader.h"

#include <charconv>
#include <fstream>
#include <functional>
#include <sstream>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "kg/graph_builder.h"

namespace kgaq {

namespace {

// Heterogeneous string hashing: lets the declared-name map be probed
// with the string_views the line splitter yields, with no per-record
// temporary std::string on the parse hot path.
struct StringHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const {
    return std::hash<std::string_view>{}(s);
  }
  size_t operator()(const std::string& s) const {
    return std::hash<std::string_view>{}(s);
  }
};

// Splits `line` on tabs into at most `max_fields` pieces.
std::vector<std::string_view> SplitTabs(std::string_view line) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (start <= line.size()) {
    size_t pos = line.find('\t', start);
    if (pos == std::string_view::npos) {
      out.push_back(line.substr(start));
      break;
    }
    out.push_back(line.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string_view> SplitCommas(std::string_view s) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t pos = s.find(',', start);
    if (pos == std::string_view::npos) {
      if (start < s.size()) out.push_back(s.substr(start));
      break;
    }
    if (pos > start) out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

Result<KnowledgeGraph> ParseLines(std::istream& in) {
  GraphBuilder builder;
  // Name -> (node id, declaring line). GraphBuilder::AddNode silently
  // merges re-declared names (useful for programmatic construction); the
  // loader instead rejects duplicates and names the offending node and
  // both lines, and resolves edge/attribute endpoints itself so an
  // undeclared reference reports *which* name is missing and where.
  std::unordered_map<std::string, std::pair<NodeId, size_t>, StringHash,
                     std::equal_to<>>
      declared;
  std::string line;
  size_t line_no = 0;

  auto resolve = [&](std::string_view name, const char* record,
                     size_t at_line) -> Result<NodeId> {
    auto it = declared.find(name);
    if (it == declared.end()) {
      return Status::InvalidArgument(
          std::string(record) + " references undeclared node '" +
          std::string(name) + "' at line " + std::to_string(at_line) +
          " (node lines must precede the lines using them)");
    }
    return it->second.first;
  };

  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    auto fields = SplitTabs(line);
    const std::string where = " at line " + std::to_string(line_no);
    if (fields[0] == "N") {
      if (fields.size() != 3) {
        return Status::InvalidArgument("malformed node record" + where);
      }
      auto types = SplitCommas(fields[2]);
      if (types.empty()) {
        return Status::InvalidArgument("node without types" + where);
      }
      auto [it, inserted] = declared.emplace(
          std::string(fields[1]), std::make_pair(NodeId{0}, line_no));
      if (!inserted) {
        return Status::InvalidArgument(
            "duplicate declaration of node '" + std::string(fields[1]) +
            "'" + where + " (first declared at line " +
            std::to_string(it->second.second) + ")");
      }
      it->second.first = builder.AddNode(fields[1], types);
    } else if (fields[0] == "E") {
      if (fields.size() != 4) {
        return Status::InvalidArgument("malformed edge record" + where);
      }
      auto src = resolve(fields[1], "edge", line_no);
      if (!src.ok()) return src.status();
      auto dst = resolve(fields[3], "edge", line_no);
      if (!dst.ok()) return dst.status();
      builder.AddEdge(*src, fields[2], *dst);
    } else if (fields[0] == "A") {
      if (fields.size() != 4) {
        return Status::InvalidArgument("malformed attribute record" + where);
      }
      auto u = resolve(fields[1], "attribute", line_no);
      if (!u.ok()) return u.status();
      double value = 0.0;
      auto sv = fields[3];
      auto [ptr, ec] =
          std::from_chars(sv.data(), sv.data() + sv.size(), value);
      if (ec != std::errc() || ptr != sv.data() + sv.size()) {
        return Status::InvalidArgument("bad attribute value '" +
                                       std::string(sv) + "'" + where);
      }
      builder.SetAttribute(*u, fields[2], value);
    } else {
      return Status::InvalidArgument("unknown record tag '" +
                                     std::string(fields[0]) + "'" + where);
    }
  }
  return std::move(builder).Build();
}

}  // namespace

Result<KnowledgeGraph> TsvLoader::LoadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  return ParseLines(in);
}

Result<KnowledgeGraph> TsvLoader::LoadString(const std::string& text) {
  std::istringstream in(text);
  return ParseLines(in);
}

std::string TsvLoader::SaveString(const KnowledgeGraph& g) {
  std::ostringstream out;
  out << "# kgaq knowledge graph: " << g.NumNodes() << " nodes, "
      << g.NumEdges() << " edges\n";
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    out << "N\t" << g.NodeName(u) << '\t';
    auto types = g.NodeTypes(u);
    for (size_t i = 0; i < types.size(); ++i) {
      if (i) out << ',';
      out << g.types().name(types[i]);
    }
    out << '\n';
  }
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (const Neighbor& nb : g.Neighbors(u)) {
      if (!nb.forward) continue;  // each triple once, in stored orientation
      out << "E\t" << g.NodeName(u) << '\t'
          << g.predicates().name(nb.predicate) << '\t' << g.NodeName(nb.node)
          << '\n';
    }
  }
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (AttributeId a = 0; a < g.NumAttributes(); ++a) {
      auto v = g.Attribute(u, a);
      if (v.has_value()) {
        out << "A\t" << g.NodeName(u) << '\t' << g.attributes().name(a)
            << '\t' << *v << '\n';
      }
    }
  }
  return out.str();
}

Status TsvLoader::SaveFile(const KnowledgeGraph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open '" + path + "' for write");
  out << SaveString(g);
  if (!out) return Status::IoError("write failed for '" + path + "'");
  return Status::OK();
}

}  // namespace kgaq
