#ifndef KGAQ_KG_TSV_LOADER_H_
#define KGAQ_KG_TSV_LOADER_H_

#include <string>

#include "common/status.h"
#include "kg/knowledge_graph.h"

namespace kgaq {

/// Text serialization of a knowledge graph.
///
/// The format is a line-oriented TSV, one record per line:
///
///   N <tab> name <tab> type1,type2,...        # node declaration
///   E <tab> src_name <tab> predicate <tab> dst_name
///   A <tab> name <tab> attribute <tab> value  # numerical attribute
///   # comment lines and blank lines are skipped
///
/// Node lines must precede edge/attribute lines that reference them;
/// violations are rejected with the offending node name and line number.
/// Re-declaring a node name is an error (entity names are unique per
/// Definition 1 — merging two declarations silently would mask data
/// bugs). This hand-rolled parser stands in for the N-Triples/RDF loaders
/// the paper's datasets ship with; the synthetic datasets serialize
/// losslessly. For repeated loading of large graphs prefer the binary
/// snapshot (kg/snapshot.h), which restores the parsed graph bit-exactly
/// and ~10x faster.
class TsvLoader {
 public:
  /// Parses `path` into a KnowledgeGraph.
  static Result<KnowledgeGraph> LoadFile(const std::string& path);

  /// Parses an in-memory document (same format as LoadFile).
  static Result<KnowledgeGraph> LoadString(const std::string& text);

  /// Serializes `g` to `path` in the TSV format above.
  static Status SaveFile(const KnowledgeGraph& g, const std::string& path);

  /// Serializes `g` to a string.
  static std::string SaveString(const KnowledgeGraph& g);
};

}  // namespace kgaq

#endif  // KGAQ_KG_TSV_LOADER_H_
