#include "kg/graph_builder.h"

#include <algorithm>
#include <utility>

namespace kgaq {

NodeId GraphBuilder::AddNode(std::string_view name,
                             const std::vector<std::string_view>& types) {
  uint32_t name_id = names_.Intern(name);
  NodeId node;
  if (name_id < node_name_ids_.size() && node_name_ids_[name_id] == name_id) {
    // Names are interned densely in node order, so name id == node id.
    node = name_id;
  } else {
    node = static_cast<NodeId>(node_name_ids_.size());
    node_name_ids_.push_back(name_id);
    node_types_.emplace_back();
    node_attrs_.emplace_back();
  }
  for (auto t : types) {
    TypeId tid = types_.Intern(t);
    auto& lst = node_types_[node];
    if (std::find(lst.begin(), lst.end(), tid) == lst.end()) {
      lst.push_back(tid);
    }
  }
  return node;
}

void GraphBuilder::AddEdge(NodeId src, std::string_view predicate,
                           NodeId dst) {
  triples_.push_back({src, predicates_.Intern(predicate), dst});
}

void GraphBuilder::SetAttribute(NodeId u, std::string_view attr,
                                double value) {
  AttributeId aid = attributes_.Intern(attr);
  auto& lst = node_attrs_[u];
  for (auto& [id, v] : lst) {
    if (id == aid) {
      v = value;
      return;
    }
  }
  lst.emplace_back(aid, value);
}

void GraphBuilder::AddType(NodeId u, std::string_view type) {
  TypeId tid = types_.Intern(type);
  auto& lst = node_types_[u];
  if (std::find(lst.begin(), lst.end(), tid) == lst.end()) {
    lst.push_back(tid);
  }
}

Result<KnowledgeGraph> GraphBuilder::Build() && {
  const size_t n = node_types_.size();
  for (size_t u = 0; u < n; ++u) {
    if (node_types_[u].empty()) {
      return Status::FailedPrecondition(
          "node '" + names_.name(node_name_ids_[u]) +
          "' has no type; Definition 1 requires at least one");
    }
  }

  KnowledgeGraph g;
  g.names_ = std::move(names_);
  g.types_ = std::move(types_);
  g.predicates_ = std::move(predicates_);
  g.attributes_ = std::move(attributes_);
  g.node_names_ = std::move(node_name_ids_);
  g.num_triples_ = triples_.size();

  // Adjacency CSR over both arc orientations.
  std::vector<size_t> degree(n, 0);
  for (const auto& t : triples_) {
    ++degree[t.src];
    ++degree[t.dst];
  }
  g.adj_offsets_.assign(n + 1, 0);
  for (size_t u = 0; u < n; ++u) {
    g.adj_offsets_[u + 1] = g.adj_offsets_[u] + degree[u];
  }
  g.adjacency_.resize(g.adj_offsets_[n]);
  std::vector<size_t> cursor(g.adj_offsets_.begin(), g.adj_offsets_.end() - 1);
  for (const auto& t : triples_) {
    g.adjacency_[cursor[t.src]++] = {t.dst, t.predicate, /*forward=*/true};
    g.adjacency_[cursor[t.dst]++] = {t.src, t.predicate, /*forward=*/false};
  }

  // Node->types CSR.
  g.type_offsets_.assign(n + 1, 0);
  for (size_t u = 0; u < n; ++u) {
    g.type_offsets_[u + 1] = g.type_offsets_[u] + node_types_[u].size();
  }
  g.type_ids_.reserve(g.type_offsets_[n]);
  for (size_t u = 0; u < n; ++u) {
    for (TypeId t : node_types_[u]) g.type_ids_.push_back(t);
  }

  // Type->nodes inverted index.
  const size_t num_types = g.types_.size();
  std::vector<size_t> type_count(num_types, 0);
  for (TypeId t : g.type_ids_) ++type_count[t];
  g.type_index_offsets_.assign(num_types + 1, 0);
  for (size_t t = 0; t < num_types; ++t) {
    g.type_index_offsets_[t + 1] = g.type_index_offsets_[t] + type_count[t];
  }
  g.type_index_members_.resize(g.type_index_offsets_[num_types]);
  std::vector<size_t> tcursor(g.type_index_offsets_.begin(),
                              g.type_index_offsets_.end() - 1);
  for (NodeId u = 0; u < n; ++u) {
    for (TypeId t : node_types_[u]) {
      g.type_index_members_[tcursor[t]++] = u;
    }
  }

  // Node->attributes CSR, per-node sorted by attribute id for binary search.
  g.attr_offsets_.assign(n + 1, 0);
  for (size_t u = 0; u < n; ++u) {
    std::sort(node_attrs_[u].begin(), node_attrs_[u].end());
    g.attr_offsets_[u + 1] = g.attr_offsets_[u] + node_attrs_[u].size();
  }
  g.attr_ids_.reserve(g.attr_offsets_[n]);
  g.attr_values_.reserve(g.attr_offsets_[n]);
  for (size_t u = 0; u < n; ++u) {
    for (const auto& [id, v] : node_attrs_[u]) {
      g.attr_ids_.push_back(id);
      g.attr_values_.push_back(v);
    }
  }

  // Name index.
  g.name_to_node_.reserve(n);
  for (NodeId u = 0; u < n; ++u) {
    g.name_to_node_.emplace(g.names_.name(g.node_names_[u]), u);
  }

  return g;
}

}  // namespace kgaq
