#ifndef KGAQ_KG_BFS_H_
#define KGAQ_KG_BFS_H_

#include <cstdint>
#include <vector>

#include "kg/knowledge_graph.h"
#include "kg/types.h"

namespace kgaq {

/// Result of an n-bounded breadth-first expansion from a source node.
///
/// The paper limits both SSB and the semantic-aware random walk to the
/// n-bounded subgraph G' of the mapping node u_s (§III, §IV-A2): graph
/// queries exhibit strong access locality, and n = 3 empirically retrieves
/// ~99% of correct answers.
struct BoundedSubgraph {
  NodeId source = kInvalidId;
  int max_hops = 0;
  /// Hop distance per graph node; -1 when the node is outside the bound.
  std::vector<int32_t> distance;
  /// Nodes within the bound, in BFS (distance-nondecreasing) order;
  /// nodes[0] == source.
  std::vector<NodeId> nodes;

  bool Contains(NodeId u) const { return distance[u] >= 0; }
};

/// Expands at most `max_hops` hops from `source` over traversal arcs
/// (both edge orientations, matching the paper's edge-to-path mapping).
BoundedSubgraph BoundedBfs(const KnowledgeGraph& g, NodeId source,
                           int max_hops);

}  // namespace kgaq

#endif  // KGAQ_KG_BFS_H_
