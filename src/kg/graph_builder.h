#ifndef KGAQ_KG_GRAPH_BUILDER_H_
#define KGAQ_KG_GRAPH_BUILDER_H_

#include <string_view>
#include <vector>

#include "common/status.h"
#include "kg/knowledge_graph.h"
#include "kg/types.h"

namespace kgaq {

/// Mutable accumulator that produces an immutable KnowledgeGraph.
///
/// Usage:
///   GraphBuilder b;
///   NodeId de = b.AddNode("Germany", {"Country"});
///   NodeId tt = b.AddNode("Audi_TT", {"Automobile"});
///   b.AddEdge(tt, "assembly", de);
///   b.SetAttribute(tt, "price", 64300.0);
///   KnowledgeGraph g = std::move(b).Build();
///
/// Entity names are unique (Definition 1 / entity disambiguation); AddNode
/// on an existing name returns the existing node and unions the types.
class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// Adds (or fetches) the node with this unique name, adding `types`.
  NodeId AddNode(std::string_view name,
                 const std::vector<std::string_view>& types);

  /// Adds the directed triple (src, predicate, dst). Parallel edges with
  /// different predicates are allowed; exact duplicates are kept (they are
  /// harmless for sampling and match real KG dumps).
  void AddEdge(NodeId src, std::string_view predicate, NodeId dst);

  /// Sets (or overwrites) numerical attribute `attr` on `u`.
  void SetAttribute(NodeId u, std::string_view attr, double value);

  /// Adds an extra type to an existing node.
  void AddType(NodeId u, std::string_view type);

  size_t NumNodes() const { return node_types_.size(); }
  size_t NumEdges() const { return triples_.size(); }

  /// Finalizes into a CSR-packed immutable graph. The builder is consumed.
  /// Fails if any node has no type (Definition 1 requires >= 1).
  Result<KnowledgeGraph> Build() &&;

 private:
  struct Triple {
    NodeId src;
    PredicateId predicate;
    NodeId dst;
  };

  Dictionary names_;
  Dictionary types_;
  Dictionary predicates_;
  Dictionary attributes_;

  std::vector<uint32_t> node_name_ids_;
  std::vector<std::vector<TypeId>> node_types_;
  std::vector<std::vector<std::pair<AttributeId, double>>> node_attrs_;
  std::vector<Triple> triples_;
};

}  // namespace kgaq

#endif  // KGAQ_KG_GRAPH_BUILDER_H_
