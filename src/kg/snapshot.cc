#include "kg/snapshot.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/binary_io.h"
#include "common/fault_injection.h"
#include "embedding/embedding_io.h"
#include "kg/dictionary.h"

namespace kgaq {

namespace {

constexpr char kMagic[8] = {'K', 'G', 'A', 'Q', 'S', 'N', 'A', 'P'};
// v1: KG section + optional embedding. v2 adds the optional partition-map
// section; writers emit v1 when no partition info is present so unsharded
// snapshots remain byte-identical to pre-v2 output.
constexpr uint32_t kFormatVersionV1 = 1;
constexpr uint32_t kFormatVersionV2 = 2;
// Written as a u32 on the producing host; a byte-swapped reader sees
// 0x04030201 and rejects the file (the format is defined little-endian).
constexpr uint32_t kEndianMarker = 0x01020304;
constexpr uint8_t kFlagHasEmbedding = 0x1;
constexpr uint8_t kFlagHasPartition = 0x2;

static_assert(sizeof(size_t) == 8,
              "snapshot offsets are serialized as raw 64-bit arrays");

template <typename T>
void WriteVec(std::ostream& out, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  WritePod<uint64_t>(out, v.size());
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
}

// Every reader threads the file's byte size through as `max_bytes`: no
// count field can legitimately claim more payload than the file holds,
// so a corrupt header is rejected before any allocation instead of
// driving a multi-gigabyte resize and dying on bad_alloc.
template <typename T>
bool ReadVec(std::istream& in, uint64_t max_bytes, std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  uint64_t count = 0;
  if (!ReadPod(in, count) || count > max_bytes / sizeof(T)) return false;
  v.resize(count);
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(count * sizeof(T)));
  return count == 0 || in.good();
}

// Dictionaries are stored as one end-offset array plus one concatenated
// byte blob: two bulk reads regardless of entry count, instead of a
// length+data read pair per string.
void WriteDict(std::ostream& out, const Dictionary& dict) {
  std::vector<uint64_t> ends;
  ends.reserve(dict.size());
  uint64_t total = 0;
  for (uint32_t id = 0; id < dict.size(); ++id) {
    total += dict.name(id).size();
    ends.push_back(total);
  }
  WriteVec(out, ends);
  WritePod<uint64_t>(out, total);
  for (uint32_t id = 0; id < dict.size(); ++id) {
    const std::string& s = dict.name(id);
    out.write(s.data(), static_cast<std::streamsize>(s.size()));
  }
}

bool ReadDict(std::istream& in, uint64_t max_bytes, Dictionary& dict) {
  std::vector<uint64_t> ends;
  if (!ReadVec(in, max_bytes, ends)) return false;
  uint64_t total = 0;
  if (!ReadPod(in, total) || total > max_bytes) return false;
  if (!ends.empty() && ends.back() != total) return false;
  std::string blob(total, '\0');
  in.read(blob.data(), static_cast<std::streamsize>(total));
  if (total != 0 && !in.good()) return false;
  dict.Reserve(ends.size());
  uint64_t start = 0;
  for (uint64_t id = 0; id < ends.size(); ++id) {
    const uint64_t end = ends[id];
    if (end < start || end > total) return false;
    const std::string_view s(blob.data() + start, end - start);
    // Dense insertion order is the id assignment; a duplicate string would
    // silently shift every later id, so reject it.
    if (dict.Intern(s) != id) return false;
    start = end;
  }
  return true;
}

}  // namespace

/// Serializer over KnowledgeGraph's private arrays (friend; see
/// knowledge_graph.h). Splitting Neighbor structs into parallel
/// node/predicate/forward arrays keeps the on-disk layout padding-free
/// and independent of the in-memory struct layout.
class KgSnapshotIo {
 public:
  static void Write(const KnowledgeGraph& g, std::ostream& out) {
    WriteDict(out, g.names_);
    WriteDict(out, g.types_);
    WriteDict(out, g.predicates_);
    WriteDict(out, g.attributes_);
    WriteVec(out, g.node_names_);
    WritePod<uint64_t>(out, g.num_triples_);
    WriteVec(out, g.adj_offsets_);
    std::vector<NodeId> adj_nodes(g.adjacency_.size());
    std::vector<PredicateId> adj_preds(g.adjacency_.size());
    std::vector<uint8_t> adj_forward(g.adjacency_.size());
    for (size_t i = 0; i < g.adjacency_.size(); ++i) {
      adj_nodes[i] = g.adjacency_[i].node;
      adj_preds[i] = g.adjacency_[i].predicate;
      adj_forward[i] = g.adjacency_[i].forward ? 1 : 0;
    }
    WriteVec(out, adj_nodes);
    WriteVec(out, adj_preds);
    WriteVec(out, adj_forward);
    WriteVec(out, g.type_offsets_);
    WriteVec(out, g.type_ids_);
    WriteVec(out, g.type_index_offsets_);
    WriteVec(out, g.type_index_members_);
    WriteVec(out, g.attr_offsets_);
    WriteVec(out, g.attr_ids_);
    WriteVec(out, g.attr_values_);
  }

  static Status Read(std::istream& in, uint64_t max_bytes,
                     KnowledgeGraph& g) {
    const Status corrupt =
        Status::InvalidArgument("snapshot KG section truncated or corrupt");
    if (!ReadDict(in, max_bytes, g.names_) ||
        !ReadDict(in, max_bytes, g.types_) ||
        !ReadDict(in, max_bytes, g.predicates_) ||
        !ReadDict(in, max_bytes, g.attributes_)) {
      return corrupt;
    }
    if (!ReadVec(in, max_bytes, g.node_names_)) return corrupt;
    uint64_t num_triples = 0;
    if (!ReadPod(in, num_triples)) return corrupt;
    g.num_triples_ = num_triples;
    if (!ReadVec(in, max_bytes, g.adj_offsets_)) return corrupt;
    std::vector<NodeId> adj_nodes;
    std::vector<PredicateId> adj_preds;
    std::vector<uint8_t> adj_forward;
    if (!ReadVec(in, max_bytes, adj_nodes) ||
        !ReadVec(in, max_bytes, adj_preds) ||
        !ReadVec(in, max_bytes, adj_forward)) {
      return corrupt;
    }
    if (adj_nodes.size() != adj_preds.size() ||
        adj_nodes.size() != adj_forward.size()) {
      return corrupt;
    }
    g.adjacency_.resize(adj_nodes.size());
    for (size_t i = 0; i < adj_nodes.size(); ++i) {
      g.adjacency_[i] = {adj_nodes[i], adj_preds[i], adj_forward[i] != 0};
    }
    if (!ReadVec(in, max_bytes, g.type_offsets_) ||
        !ReadVec(in, max_bytes, g.type_ids_) ||
        !ReadVec(in, max_bytes, g.type_index_offsets_) ||
        !ReadVec(in, max_bytes, g.type_index_members_) ||
        !ReadVec(in, max_bytes, g.attr_offsets_) ||
        !ReadVec(in, max_bytes, g.attr_ids_) ||
        !ReadVec(in, max_bytes, g.attr_values_)) {
      return corrupt;
    }

    // Structural invariants the rest of the library assumes; a snapshot
    // violating any of them would turn span accessors into out-of-bounds
    // reads (e.g. a non-monotone offset pair underflows the span length).
    const Status inconsistent =
        Status::InvalidArgument("snapshot KG section inconsistent");
    const size_t n = g.node_names_.size();
    if (g.adj_offsets_.size() != n + 1 || g.type_offsets_.size() != n + 1 ||
        g.attr_offsets_.size() != n + 1 ||
        g.type_index_offsets_.size() != g.types_.size() + 1 ||
        g.adj_offsets_[n] != g.adjacency_.size() ||
        g.type_offsets_[n] != g.type_ids_.size() ||
        g.attr_offsets_[n] != g.attr_ids_.size() ||
        g.attr_ids_.size() != g.attr_values_.size() ||
        g.type_index_offsets_[g.types_.size()] !=
            g.type_index_members_.size()) {
      return inconsistent;
    }
    // Each stored triple appears exactly twice in the adjacency (forward
    // arc at its subject, reversed at its object).
    if (g.adjacency_.size() % 2 != 0 ||
        g.num_triples_ != g.adjacency_.size() / 2) {
      return inconsistent;
    }
    auto monotone_from_zero = [](const std::vector<size_t>& offsets) {
      if (offsets.empty() || offsets.front() != 0) return false;
      for (size_t i = 1; i < offsets.size(); ++i) {
        if (offsets[i] < offsets[i - 1]) return false;
      }
      return true;
    };
    if (!monotone_from_zero(g.adj_offsets_) ||
        !monotone_from_zero(g.type_offsets_) ||
        !monotone_from_zero(g.type_index_offsets_) ||
        !monotone_from_zero(g.attr_offsets_)) {
      return inconsistent;
    }
    for (uint32_t name_id : g.node_names_) {
      if (name_id >= g.names_.size()) return inconsistent;
    }
    for (const Neighbor& nb : g.adjacency_) {
      if (nb.node >= n || nb.predicate >= g.predicates_.size()) {
        return inconsistent;
      }
    }
    for (TypeId t : g.type_ids_) {
      if (t >= g.types_.size()) return inconsistent;
    }
    for (NodeId u : g.type_index_members_) {
      if (u >= n) return inconsistent;
    }
    for (AttributeId a : g.attr_ids_) {
      if (a >= g.attributes_.size()) return inconsistent;
    }

    g.name_to_node_.clear();
    g.name_to_node_.reserve(n);
    for (NodeId u = 0; u < n; ++u) {
      g.name_to_node_.emplace(g.names_.name(g.node_names_[u]), u);
    }
    return Status::OK();
  }
};

Status SaveEngineSnapshot(const KnowledgeGraph& g,
                          const EmbeddingModel* model,
                          const KgPartitionInfo* partition,
                          const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open '" + path + "' for write");
  out.write(kMagic, sizeof(kMagic));
  WritePod<uint32_t>(out, partition != nullptr ? kFormatVersionV2
                                               : kFormatVersionV1);
  WritePod<uint32_t>(out, kEndianMarker);
  uint8_t flags = 0;
  if (model != nullptr) flags |= kFlagHasEmbedding;
  if (partition != nullptr) flags |= kFlagHasPartition;
  WritePod<uint8_t>(out, flags);
  if (partition != nullptr) {
    // Field-by-field, never a struct memcpy: the on-disk layout must not
    // depend on compiler padding.
    WritePod<uint32_t>(out, partition->scheme);
    WritePod<uint32_t>(out, partition->num_shards);
    WritePod<uint32_t>(out, partition->shard_index);
    WritePod<uint32_t>(out, partition->halo_hops);
    WritePod<uint64_t>(out, partition->owned_nodes);
    WritePod<uint64_t>(out, partition->global_triples);
  }
  KgSnapshotIo::Write(g, out);
  if (model != nullptr) {
    KGAQ_RETURN_IF_ERROR(WriteEmbeddingBlob(*model, out));
  }
  if (!out) return Status::IoError("write failed for '" + path + "'");
  return Status::OK();
}

Status SaveEngineSnapshot(const KnowledgeGraph& g,
                          const EmbeddingModel* model,
                          const std::string& path) {
  return SaveEngineSnapshot(g, model, nullptr, path);
}

Result<EngineSnapshot> LoadEngineSnapshot(const std::string& path) {
  if (KGAQ_FAULT_POINT("snapshot.read.short")) {
    return Status::IoError("injected short read loading '" + path + "'");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  // Total file size: the upper bound handed to every array reader, so a
  // corrupt count field can never drive an allocation past the payload
  // that actually exists.
  in.seekg(0, std::ios::end);
  const std::streamoff end_pos = in.tellg();
  if (!in.good() || end_pos < 0) {
    // e.g. the path names a directory: it opens, but cannot be sized —
    // without this check the -1 would cast to a 2^64 byte "bound".
    return Status::IoError("cannot determine size of '" + path + "'");
  }
  const uint64_t file_bytes = static_cast<uint64_t>(end_pos);
  in.seekg(0);
  char magic[sizeof(kMagic)] = {};
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("'" + path +
                                   "' is not a kgaq snapshot (bad magic)");
  }
  uint32_t version = 0, endian = 0;
  uint8_t flags = 0;
  if (!ReadPod(in, version) || !ReadPod(in, endian) || !ReadPod(in, flags)) {
    return Status::InvalidArgument("snapshot header truncated: '" + path +
                                   "'");
  }
  if (version != kFormatVersionV1 && version != kFormatVersionV2) {
    return Status::InvalidArgument(
        "snapshot format version " + std::to_string(version) +
        " is not supported (reader speaks versions " +
        std::to_string(kFormatVersionV1) + "-" +
        std::to_string(kFormatVersionV2) + ")");
  }
  if (endian != kEndianMarker) {
    return Status::InvalidArgument(
        "snapshot endianness mismatch: the format is little-endian and "
        "this reader does not byte-swap");
  }
  if (version == kFormatVersionV1 && (flags & kFlagHasPartition) != 0) {
    return Status::InvalidArgument(
        "snapshot claims a partition section but is format v1");
  }
  EngineSnapshot snap;
  if ((flags & kFlagHasPartition) != 0) {
    KgPartitionInfo part;
    if (!ReadPod(in, part.scheme) || !ReadPod(in, part.num_shards) ||
        !ReadPod(in, part.shard_index) || !ReadPod(in, part.halo_hops) ||
        !ReadPod(in, part.owned_nodes) ||
        !ReadPod(in, part.global_triples)) {
      return Status::InvalidArgument("snapshot partition section truncated");
    }
    if (part.num_shards == 0 || part.shard_index >= part.num_shards ||
        part.halo_hops == 0) {
      return Status::InvalidArgument(
          "snapshot partition section inconsistent");
    }
    snap.partition = part;
  }
  KGAQ_RETURN_IF_ERROR(KgSnapshotIo::Read(in, file_bytes, snap.graph));
  if ((flags & kFlagHasEmbedding) != 0) {
    auto model = ReadEmbeddingBlob(in);
    if (!model.ok()) return model.status();
    snap.embedding = std::move(*model);
  }
  return snap;
}

Status SaveKgSnapshot(const KnowledgeGraph& g, const std::string& path) {
  return SaveEngineSnapshot(g, nullptr, path);
}

Result<KnowledgeGraph> LoadKgSnapshot(const std::string& path) {
  auto snap = LoadEngineSnapshot(path);
  if (!snap.ok()) return snap.status();
  return std::move(snap->graph);
}

}  // namespace kgaq
