#ifndef KGAQ_KG_DICTIONARY_H_
#define KGAQ_KG_DICTIONARY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "kg/types.h"

namespace kgaq {

/// Bidirectional string <-> dense-id interning table.
///
/// Used for entity names, node types, predicates and attribute names.
/// Ids are assigned densely in insertion order starting at 0, so they can
/// index plain vectors elsewhere.
class Dictionary {
 public:
  Dictionary() = default;

  /// Returns the id for `s`, interning it if unseen.
  uint32_t Intern(std::string_view s);

  /// Pre-sizes the table for `n` entries (bulk loaders: snapshot reader).
  void Reserve(size_t n) {
    index_.reserve(n);
    names_.reserve(n);
  }

  /// Returns the id for `s` or kInvalidId if never interned.
  uint32_t Lookup(std::string_view s) const;

  /// Returns the string for a valid id. Precondition: id < size().
  const std::string& name(uint32_t id) const { return names_[id]; }

  bool Contains(std::string_view s) const {
    return Lookup(s) != kInvalidId;
  }

  size_t size() const { return names_.size(); }
  bool empty() const { return names_.empty(); }

 private:
  std::unordered_map<std::string, uint32_t> index_;
  std::vector<std::string> names_;
};

}  // namespace kgaq

#endif  // KGAQ_KG_DICTIONARY_H_
