#include "kg/dictionary.h"

namespace kgaq {

uint32_t Dictionary::Intern(std::string_view s) {
  auto it = index_.find(std::string(s));
  if (it != index_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(names_.size());
  names_.emplace_back(s);
  index_.emplace(names_.back(), id);
  return id;
}

uint32_t Dictionary::Lookup(std::string_view s) const {
  auto it = index_.find(std::string(s));
  return it == index_.end() ? kInvalidId : it->second;
}

}  // namespace kgaq
