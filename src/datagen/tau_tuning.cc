#include "datagen/tau_tuning.h"

#include <algorithm>
#include <set>

#include "baselines/ssb.h"

namespace kgaq {

Result<std::vector<TauSweepPoint>> SweepTau(
    const GeneratedDataset& ds, const EmbeddingModel& model,
    const std::vector<BenchmarkQuery>& probe_queries,
    const std::vector<double>& taus, int n_hops) {
  Ssb::Options opts;
  opts.n_hops = n_hops;
  Ssb ssb(ds.graph(), model, opts);

  // Precompute per-query exact similarities and annotated sets once; each
  // tau only re-thresholds.
  struct Probe {
    std::vector<std::pair<NodeId, double>> sims;
    std::set<NodeId> annotated;
  };
  std::vector<Probe> probes;
  for (const auto& bq : probe_queries) {
    if (bq.query.query.branches.size() != 1) continue;
    auto sims = ssb.BranchSimilarities(bq.query.query.branches[0]);
    if (!sims.ok()) return sims.status();
    auto ha = ds.HumanCorrectAnswers(bq.query);
    if (!ha.ok()) return ha.status();
    Probe p;
    p.sims.assign(sims->begin(), sims->end());
    p.annotated.insert(ha->begin(), ha->end());
    probes.push_back(std::move(p));
  }
  if (probes.empty()) {
    return Status::InvalidArgument("no usable simple probe queries");
  }

  std::vector<TauSweepPoint> out;
  for (double tau : taus) {
    std::vector<double> jaccards;
    for (const Probe& p : probes) {
      std::set<NodeId> relevant;
      for (const auto& [node, s] : p.sims) {
        if (s >= tau) relevant.insert(node);
      }
      std::vector<NodeId> inter;
      std::set_intersection(relevant.begin(), relevant.end(),
                            p.annotated.begin(), p.annotated.end(),
                            std::back_inserter(inter));
      const size_t uni =
          relevant.size() + p.annotated.size() - inter.size();
      jaccards.push_back(uni == 0 ? 1.0
                                  : static_cast<double>(inter.size()) / uni);
    }
    TauSweepPoint pt;
    pt.tau = tau;
    for (double j : jaccards) pt.avg_jaccard += j;
    pt.avg_jaccard /= static_cast<double>(jaccards.size());
    for (double j : jaccards) {
      pt.variance += (j - pt.avg_jaccard) * (j - pt.avg_jaccard);
    }
    pt.variance /= static_cast<double>(jaccards.size());
    out.push_back(pt);
  }
  return out;
}

double PickBestTau(const std::vector<TauSweepPoint>& points) {
  double best_tau = 0.85;
  double best_score = -1.0;
  for (const auto& pt : points) {
    // Higher AJS wins; lower variance breaks near-ties (paper's Table V
    // reading).
    const double score = pt.avg_jaccard - 0.1 * pt.variance;
    if (score > best_score) {
      best_score = score;
      best_tau = pt.tau;
    }
  }
  return best_tau;
}

Result<double> TuneTau(const GeneratedDataset& ds,
                       const EmbeddingModel& model, size_t num_probes) {
  WorkloadOptions wopts;
  wopts.num_simple = num_probes;
  wopts.num_filter = 0;
  wopts.num_group_by = 0;
  wopts.num_chain = 0;
  wopts.num_star = 0;
  wopts.num_cycle = 0;
  wopts.num_flower = 0;
  auto probes = WorkloadGenerator::Generate(ds, wopts);
  std::vector<double> taus;
  for (double t = 0.60; t <= 0.951; t += 0.05) taus.push_back(t);
  auto sweep = SweepTau(ds, model, probes, taus);
  if (!sweep.ok()) return sweep.status();
  return PickBestTau(*sweep);
}

}  // namespace kgaq
