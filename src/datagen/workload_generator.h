#ifndef KGAQ_DATAGEN_WORKLOAD_GENERATOR_H_
#define KGAQ_DATAGEN_WORKLOAD_GENERATOR_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "datagen/dataset.h"
#include "query/query_graph.h"

namespace kgaq {

/// One workload entry: a ready-to-run aggregate query plus bookkeeping.
struct BenchmarkQuery {
  std::string id;    ///< "Q1", "Q2", ...
  std::string text;  ///< Human-readable phrasing of the question.
  AggregateQuery query;
};

/// Composition of a generated workload. The defaults are scaled-down
/// relative proportions of the paper's 400-query mix (QALD-4 /
/// WebQuestions seeds + synthetic complex shapes; §VII-A).
struct WorkloadOptions {
  size_t num_simple = 12;
  size_t num_filter = 4;
  size_t num_group_by = 3;
  size_t num_chain = 6;
  size_t num_star = 4;
  size_t num_cycle = 4;
  size_t num_flower = 4;
  uint64_t seed = 99;
};

/// Generates a workload against a generated dataset. Every produced query
/// resolves (hub exists, predicates exist in the KG, types known) and each
/// complex query's branches share the planted target type.
class WorkloadGenerator {
 public:
  static std::vector<BenchmarkQuery> Generate(const GeneratedDataset& ds,
                                              const WorkloadOptions& options);

  /// Convenience single-query builders used by examples/tests/benches.
  static AggregateQuery SimpleQuery(const GeneratedDataset& ds,
                                    size_t domain, size_t hub_index,
                                    AggregateFunction f);
  static AggregateQuery ChainQuery(const GeneratedDataset& ds, size_t domain,
                                   size_t hub_index, AggregateFunction f);
};

}  // namespace kgaq

#endif  // KGAQ_DATAGEN_WORKLOAD_GENERATOR_H_
