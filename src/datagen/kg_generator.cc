#include "datagen/kg_generator.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/random.h"
#include "embedding/vector_ops.h"
#include "kg/graph_builder.h"

namespace kgaq {

namespace {

// Planted Eq. 4 cosines per schema role (before profile offset / jitter).
// Chosen so that at tau ~= 0.85: direct (1 hop, ~0.96) and indirect
// (2 hops, geometric mean ~0.92) validate correct; semi-relevant
// (~0.80) and distractor (~0.52) schemas do not.
constexpr double kDirectCos = 0.96;
constexpr double kIndirectACos = 0.95;
constexpr double kIndirectBCos = 0.90;
constexpr double kSemiACos = 0.82;
constexpr double kSemiBCos = 0.78;
constexpr double kDistractorACos = 0.55;
constexpr double kDistractorBCos = 0.50;

struct DomainTemplate {
  const char* name;
  const char* answer_type;
  const char* mid_type;       // intermediate of the relevant 2-hop schema
  const char* semi_mid_type;  // intermediate of the semi-relevant schema
  const char* dis_mid_type;   // intermediate of the distractor schema
  const char* query_pred;
  const char* direct_pred;
  const char* indirect_a;  // answer -> intermediate
  const char* indirect_b;  // intermediate -> hub
  const char* semi_a;
  const char* semi_b;
  const char* distractor_a;
  const char* distractor_b;
  AttributeSpec attrs[3];
};

using AK = AttributeSpec::Kind;

const DomainTemplate kTemplates[] = {
    {"automobile", "Automobile", "Company", "DesignStudio", "Person",
     "product", "assembly", "manufacturer", "country", "styled_by",
     "studio_base", "designer", "nationality",
     {{"price", AK::kLogNormal, 10.6, 0.30},
      {"horsepower", AK::kNormal, 250, 60},
      {"fuel_economy", AK::kUniform, 18, 42}}},
    {"soccer", "SoccerPlayer", "SoccerClub", "YouthAcademy", "Person",
     "born_in", "birth_country", "plays_for", "club_country", "trained_at",
     "academy_country", "idolized_by", "fan_nationality",
     {{"age", AK::kUniform, 17, 39},
      {"transfer_value", AK::kLogNormal, 16.0, 0.45},
      {"appearances", AK::kNormal, 180, 70}}},
    {"movie", "Movie", "Studio", "Distributor", "Person", "filmed_in",
     "shot_in", "produced_by", "studio_country", "distributed_by",
     "market_country", "premiered_for", "audience_nationality",
     {{"box_office", AK::kLogNormal, 17.0, 0.50},
      {"rating", AK::kUniform, 1, 10},
      {"runtime", AK::kNormal, 112, 22}}},
    {"city", "City", "Region", "District", "Person", "located_in",
     "city_of", "in_region", "region_of", "in_district", "district_of",
     "mayor_of", "citizen_of",
     {{"population", AK::kLogNormal, 12.0, 0.55},
      {"area", AK::kLogNormal, 5.0, 0.50},
      {"elevation", AK::kUniform, 0, 2500}}},
    {"museum", "Museum", "Foundation", "Trust", "Person", "situated_in",
     "museum_country", "run_by", "foundation_country", "endowed_by",
     "trust_country", "curated_by", "curator_nationality",
     {{"visitors", AK::kLogNormal, 12.0, 0.45},
      {"exhibits", AK::kLogNormal, 7.0, 0.40},
      {"founded", AK::kUniform, 1700, 2010}}},
    {"language", "Language", "Ethnicity", "Dialect", "Person", "spoken_in",
     "official_language_of", "spoken_by", "ethnic_group_of",
     "dialect_cluster", "cluster_region", "studied_by",
     "scholar_nationality",
     {{"speakers", AK::kLogNormal, 15.0, 0.55},
      {"age_estimate", AK::kUniform, 100, 3000},
      {"vitality", AK::kUniform, 1, 10}}},
};
constexpr size_t kNumTemplates = sizeof(kTemplates) / sizeof(kTemplates[0]);

const char* const kCountryNames[] = {
    "Germany", "China",  "Korea",  "Spain",  "England", "France",
    "Italy",   "Japan",  "Brazil", "India",  "Canada",  "Norway"};
constexpr size_t kNumCountryNames =
    sizeof(kCountryNames) / sizeof(kCountryNames[0]);

// Domain selectivity targets cycled across domains; combined with the
// cross-hub candidate bleed they span the paper's 0.05%..70% range.
const double kRelevantFractions[] = {0.20, 0.30, 0.40, 0.50, 0.60, 0.70};

double SampleAttribute(const AttributeSpec& spec, Rng& rng) {
  switch (spec.kind) {
    case AK::kLogNormal:
      return std::exp(spec.a + spec.b * rng.NextGaussian());
    case AK::kNormal:
      return std::max(1.0, spec.a + spec.b * rng.NextGaussian());
    case AK::kUniform:
      return spec.a + (spec.b - spec.a) * rng.NextDouble();
  }
  return 0.0;
}

// Plan of every predicate's target cosine to its domain's query direction.
struct PredicatePlan {
  size_t domain;
  double cosine;
};

}  // namespace

DatasetProfile DatasetProfile::Dbpedia(double scale) {
  DatasetProfile p;
  p.name = "dbpedia";
  p.seed = 11;
  p.num_hubs = std::max<size_t>(4, static_cast<size_t>(12 * scale));
  p.num_domains = 6;
  p.answers_per_hub_per_domain =
      std::max<size_t>(16, static_cast<size_t>(60 * scale));
  p.filler_nodes = static_cast<size_t>(1500 * scale);
  p.noise_edge_factor = 1.2;
  p.semantic_offset = 0.0;
  return p;
}

DatasetProfile DatasetProfile::Freebase(double scale) {
  DatasetProfile p;
  p.name = "freebase";
  p.seed = 22;
  p.num_hubs = std::max<size_t>(4, static_cast<size_t>(14 * scale));
  p.num_domains = 6;
  p.answers_per_hub_per_domain =
      std::max<size_t>(12, static_cast<size_t>(48 * scale));
  p.filler_nodes = static_cast<size_t>(1200 * scale);
  p.noise_edge_factor = 2.4;  // Freebase is the densest (Table III)
  p.semantic_offset = -0.04;  // optimal tau shifts to ~0.80 (Table V)
  return p;
}

DatasetProfile DatasetProfile::Yago2(double scale) {
  DatasetProfile p;
  p.name = "yago2";
  p.seed = 33;
  p.num_hubs = std::max<size_t>(4, static_cast<size_t>(16 * scale));
  p.num_domains = 6;
  p.answers_per_hub_per_domain =
      std::max<size_t>(12, static_cast<size_t>(44 * scale));
  p.filler_nodes = static_cast<size_t>(2400 * scale);  // most nodes
  p.noise_edge_factor = 1.6;
  p.semantic_offset = -0.03;
  return p;
}

DatasetProfile DatasetProfile::Mini(uint64_t seed) {
  DatasetProfile p;
  p.name = "mini";
  p.seed = seed;
  p.num_hubs = 4;
  p.num_domains = 3;
  p.answers_per_hub_per_domain = 14;
  p.filler_nodes = 60;
  p.noise_edge_factor = 0.8;
  return p;
}

Result<GeneratedDataset> KgGenerator::Generate(
    const DatasetProfile& profile) {
  if (profile.num_hubs < 2) {
    return Status::InvalidArgument("need at least two hubs");
  }
  if (profile.num_domains == 0 || profile.num_domains > kNumTemplates) {
    return Status::InvalidArgument(
        "num_domains must be in [1, " + std::to_string(kNumTemplates) + "]");
  }

  Rng rng(profile.seed);
  GeneratedDataset ds;
  ds.profile_name_ = profile.name;
  GraphBuilder builder;
  std::unordered_map<std::string, PredicatePlan> predicate_plans;

  auto plan_predicate = [&](const std::string& pred, size_t domain,
                            double cosine) {
    const double shifted =
        std::clamp(cosine + profile.semantic_offset, 0.05, 0.999);
    predicate_plans.emplace(pred, PredicatePlan{domain, shifted});
  };
  // Per-edge jitter is realized as predicate *variants* ("assembly",
  // "assembly_plant") with slightly different planted cosines, so each
  // predicate still has a single well-defined vector.
  auto variant = [&](const std::string& base, size_t domain, double cosine,
                     int which) {
    const std::string name = which == 0 ? base : base + "_v" + // e.g. _v1
                                              std::to_string(which);
    if (!predicate_plans.count(name)) {
      const double jitter =
          which == 0 ? 0.0
                     : (which == 1 ? profile.cosine_jitter
                                   : -profile.cosine_jitter);
      plan_predicate(name, domain, cosine + jitter);
    }
    return name;
  };

  // ---- Hubs ------------------------------------------------------------
  std::vector<NodeId> hubs;
  for (size_t h = 0; h < profile.num_hubs; ++h) {
    std::string name = h < kNumCountryNames
                           ? kCountryNames[h]
                           : "Country_" + std::to_string(h);
    hubs.push_back(builder.AddNode(name, {"Country"}));
  }
  // Border ring + chords: the bleed channel that lets other hubs' answers
  // enter a hub's n-bounded scope as (incorrect) candidates.
  for (size_t h = 0; h < hubs.size(); ++h) {
    builder.AddEdge(hubs[h], "borders", hubs[(h + 1) % hubs.size()]);
    if (hubs.size() > 4 && rng.NextBernoulli(0.5)) {
      NodeId other = hubs[rng.NextBounded(hubs.size())];
      if (other != hubs[h]) builder.AddEdge(hubs[h], "borders", other);
    }
  }

  // ---- Domains ---------------------------------------------------------
  ds.domains_.resize(profile.num_domains);
  ds.planted_.resize(profile.num_domains);
  for (size_t d = 0; d < profile.num_domains; ++d) {
    const DomainTemplate& t = kTemplates[d];
    DomainInfo& info = ds.domains_[d];
    info.name = t.name;
    info.answer_type = t.answer_type;
    info.intermediate_type = t.mid_type;
    info.query_predicate = t.query_pred;
    info.direct_predicate = t.direct_pred;
    info.indirect_a = t.indirect_a;
    info.indirect_b = t.indirect_b;
    info.relevant_fraction = kRelevantFractions[d % 6];
    for (const AttributeSpec& a : t.attrs) info.attributes.push_back(a);

    plan_predicate(t.query_pred, d, 0.999);

    // Anchor edges guarantee every base schema predicate exists in the KG
    // dictionary (queries and the embedding are resolved against it), even
    // when the random variant choice would otherwise skip the base name.
    {
      NodeId aa = builder.AddNode("SchemaAnchor_" + std::string(t.name) + "_a",
                                  {"Thing"});
      NodeId ab = builder.AddNode("SchemaAnchor_" + std::string(t.name) + "_b",
                                  {"Thing"});
      builder.AddEdge(aa, variant(t.query_pred, d, 0.999, 0), ab);
      builder.AddEdge(aa, variant(t.direct_pred, d, kDirectCos, 0), ab);
      builder.AddEdge(aa, variant(t.indirect_a, d, kIndirectACos, 0), ab);
      builder.AddEdge(aa, variant(t.indirect_b, d, kIndirectBCos, 0), ab);
    }

    // Intermediate pools per hub, created lazily.
    auto make_pool = [&](const char* type, const char* tag, NodeId hub,
                         size_t count) {
      std::vector<NodeId> pool;
      for (size_t i = 0; i < count; ++i) {
        std::string nm = std::string(type) + "_" + tag + "_" +
                         std::to_string(hub) + "_" + std::to_string(i);
        pool.push_back(builder.AddNode(nm, {type}));
      }
      return pool;
    };

    for (size_t h = 0; h < hubs.size(); ++h) {
      const NodeId hub = hubs[h];
      const size_t num_answers = profile.answers_per_hub_per_domain;
      const size_t pool_size = std::max<size_t>(2, num_answers / 6);

      std::vector<NodeId> mids =
          make_pool(t.mid_type, t.name, hub, pool_size);
      std::vector<NodeId> semi_mids =
          make_pool(t.semi_mid_type, t.name, hub, pool_size);
      std::vector<NodeId> dis_mids =
          make_pool(t.dis_mid_type, t.name, hub, pool_size);
      // Connect intermediates to the hub once each.
      for (NodeId m : mids) {
        builder.AddEdge(
            m, variant(t.indirect_b, d, kIndirectBCos, rng.NextBounded(3)),
            hub);
      }
      for (NodeId m : semi_mids) {
        builder.AddEdge(
            m, variant(t.semi_b, d, kSemiBCos, rng.NextBounded(3)), hub);
      }
      for (NodeId m : dis_mids) {
        builder.AddEdge(
            m, variant(t.distractor_b, d, kDistractorBCos,
                       rng.NextBounded(3)),
            hub);
      }

      auto attach = [&](NodeId answer, NodeId to_hub, SchemaRole role,
                        std::vector<NodeId>& mid_pool,
                        std::vector<NodeId>& semi_pool,
                        std::vector<NodeId>& dis_pool) {
        switch (role) {
          case SchemaRole::kDirectRelevant: {
            // ~1/3 of direct edges use the query predicate itself so that
            // it exists in the KG dictionary (queries resolve against it).
            if (rng.NextBernoulli(0.33)) {
              builder.AddEdge(answer, t.query_pred, to_hub);
            } else {
              builder.AddEdge(
                  answer,
                  variant(t.direct_pred, d, kDirectCos, rng.NextBounded(3)),
                  to_hub);
            }
            break;
          }
          case SchemaRole::kIndirectRelevant: {
            NodeId m = mid_pool[rng.NextBounded(mid_pool.size())];
            builder.AddEdge(
                answer,
                variant(t.indirect_a, d, kIndirectACos, rng.NextBounded(3)),
                m);
            break;
          }
          case SchemaRole::kSemiRelevant: {
            NodeId m = semi_pool[rng.NextBounded(semi_pool.size())];
            builder.AddEdge(
                answer, variant(t.semi_a, d, kSemiACos, rng.NextBounded(3)),
                m);
            break;
          }
          case SchemaRole::kDistractor: {
            NodeId m = dis_pool[rng.NextBounded(dis_pool.size())];
            builder.AddEdge(
                answer,
                variant(t.distractor_a, d, kDistractorACos,
                        rng.NextBounded(3)),
                m);
            break;
          }
        }
      };

      for (size_t i = 0; i < num_answers; ++i) {
        std::string nm = std::string(t.answer_type) + "_" +
                         std::to_string(hub) + "_" + std::to_string(i);
        NodeId answer = builder.AddNode(nm, {t.answer_type});
        for (const AttributeSpec& a : t.attrs) {
          builder.SetAttribute(answer, a.name, SampleAttribute(a, rng));
        }
        const bool relevant = rng.NextBernoulli(info.relevant_fraction);
        SchemaRole role;
        if (relevant) {
          role = rng.NextBernoulli(0.5) ? SchemaRole::kDirectRelevant
                                        : SchemaRole::kIndirectRelevant;
        } else {
          role = rng.NextBernoulli(0.5) ? SchemaRole::kSemiRelevant
                                        : SchemaRole::kDistractor;
        }
        attach(answer, hub, role, mids, semi_mids, dis_mids);
        ds.planted_[d][hub].push_back({answer, role});

        // Occasional second attachment to the same hub (schema diversity).
        if (rng.NextBernoulli(0.2)) {
          attach(answer, hub, role, mids, semi_mids, dis_mids);
        }
        // Second-hub attachment feeding the complex-shape workloads with
        // non-empty intersections. Only relevant answers co-attach, and
        // each co-attachment gets a *dedicated* intermediate: shared
        // bridging structure (a direct edge or a shared mid) would create
        // 2-3-edge predicate-pure paths that make a neighboring hub's
        // whole answer set tau-relevant for this hub — Eq. 2 scores
        // predicates only, so such bridges score ~1.0. A private mid
        // pushes every cross-hub bridge past the n = 3 bound.
        if (IsRelevantRole(role) &&
            rng.NextBernoulli(profile.second_hub_probability)) {
          // Deterministic partner pairing (h, h+1) keeps star/cycle/flower
          // workload intersections reliably non-empty.
          size_t h2 = (h + 1) % hubs.size();
          if (hubs[h2] != hub) {
            NodeId m = builder.AddNode(
                std::string(t.mid_type) + "_co_" + nm, {t.mid_type});
            builder.AddEdge(
                answer,
                variant(t.indirect_a, d, kIndirectACos, rng.NextBounded(3)),
                m);
            builder.AddEdge(
                m,
                variant(t.indirect_b, d, kIndirectBCos, rng.NextBounded(3)),
                hubs[h2]);
            ds.planted_[d][hubs[h2]].push_back(
                {answer, SchemaRole::kIndirectRelevant});
          }
        }
      }
    }
  }

  // ---- Filler nodes + noise edges ---------------------------------------
  static const char* const kFillerTypes[] = {"Thing", "Place", "Event",
                                             "Organization"};
  std::vector<NodeId> all_for_noise;
  for (size_t i = 0; i < profile.filler_nodes; ++i) {
    NodeId f = builder.AddNode("Thing_" + std::to_string(i),
                               {kFillerTypes[i % 4]});
    all_for_noise.push_back(f);
  }
  const size_t num_nodes_so_far = builder.NumNodes();
  const size_t noise_edges = static_cast<size_t>(
      profile.noise_edge_factor * static_cast<double>(num_nodes_so_far));
  // Noise predicates get no plan entry -> random (low-cosine) vectors.
  for (size_t i = 0; i < noise_edges; ++i) {
    NodeId a = static_cast<NodeId>(rng.NextBounded(num_nodes_so_far));
    NodeId b = static_cast<NodeId>(rng.NextBounded(num_nodes_so_far));
    if (a == b) continue;
    builder.AddEdge(a, "related_to_" + std::to_string(rng.NextBounded(8)),
                    b);
  }

  auto graph = std::move(builder).Build();
  if (!graph.ok()) return graph.status();
  ds.graph_ = std::move(*graph);
  ds.hubs_ = std::move(hubs);

  // ---- Reference embedding ----------------------------------------------
  const size_t dim = profile.embedding_dim;
  auto ref = std::make_unique<FixedEmbedding>(
      "Reference", ds.graph_.NumNodes(), ds.graph_.NumPredicates(), dim,
      dim);
  // One latent direction per domain.
  std::vector<std::vector<float>> domain_dirs(profile.num_domains);
  for (auto& dir : domain_dirs) {
    dir.resize(dim);
    for (auto& x : dir) x = static_cast<float>(rng.NextGaussian());
    NormalizeInPlace(dir);
  }
  for (PredicateId p = 0; p < ds.graph_.NumPredicates(); ++p) {
    auto vec = ref->MutablePredicateVector(p);
    auto it = predicate_plans.find(ds.graph_.predicates().name(p));
    if (it == predicate_plans.end()) {
      for (auto& x : vec) x = static_cast<float>(rng.NextGaussian());
      NormalizeInPlace(vec);
      continue;
    }
    const auto& dir = domain_dirs[it->second.domain];
    // v = c * q + sqrt(1 - c^2) * w with w a unit vector orthogonal to q.
    std::vector<float> w(dim);
    for (auto& x : w) x = static_cast<float>(rng.NextGaussian());
    const double proj = Dot(w, dir);
    AddScaled(w, dir, -proj);
    NormalizeInPlace(w);
    const double c = it->second.cosine;
    const double s = std::sqrt(std::max(0.0, 1.0 - c * c));
    for (size_t i = 0; i < dim; ++i) {
      vec[i] = static_cast<float>(c * dir[i] + s * w[i]);
    }
  }
  for (NodeId u = 0; u < ds.graph_.NumNodes(); ++u) {
    auto vec = ref->MutableEntityVector(u);
    for (auto& x : vec) x = static_cast<float>(rng.NextGaussian());
    NormalizeInPlace(vec);
  }
  ds.reference_ = std::move(ref);
  return ds;
}

}  // namespace kgaq
