#ifndef KGAQ_DATAGEN_KG_GENERATOR_H_
#define KGAQ_DATAGEN_KG_GENERATOR_H_

#include <string>

#include "common/status.h"
#include "datagen/dataset.h"

namespace kgaq {

/// Shape parameters of a synthetic KG (scaled-down stand-ins for the
/// paper's DBpedia / Freebase / YAGO2; Table III).
///
/// The generated graph reproduces the property the paper's contribution
/// exploits — schema flexibility: every (hub, answer) fact is expressed by
/// one of several predicate paths whose planted Eq. 4 similarities place
/// them cleanly above tau (direct + indirect relevant), near tau
/// (semi-relevant) or far below it (distractors + noise). Hub-hub border
/// edges leak other hubs' answers into each hub's n-bounded scope so
/// candidate sets are much larger than correct sets (the paper's 6.39%
/// average selectivity regime).
struct DatasetProfile {
  std::string name = "dbpedia";
  uint64_t seed = 1;
  size_t num_hubs = 12;
  size_t num_domains = 6;
  size_t answers_per_hub_per_domain = 40;
  size_t filler_nodes = 1500;
  /// Noise edges per node on average.
  double noise_edge_factor = 1.2;
  /// Additive shift applied to relevant/semi-relevant planted cosines;
  /// moves the dataset's optimal tau (Table V's per-dataset optima).
  double semantic_offset = 0.0;
  /// Per-edge jitter on planted cosines (predicate-variant spread).
  double cosine_jitter = 0.02;
  /// Probability that an answer also attaches to a second hub (feeds the
  /// star/cycle/flower workloads with non-empty intersections).
  double second_hub_probability = 0.2;
  size_t embedding_dim = 32;

  /// Profile presets mirroring the relative shapes of Table III.
  /// `scale` multiplies hub/answer/filler counts.
  static DatasetProfile Dbpedia(double scale = 1.0);
  static DatasetProfile Freebase(double scale = 1.0);
  static DatasetProfile Yago2(double scale = 1.0);
  /// A deliberately tiny profile for unit tests.
  static DatasetProfile Mini(uint64_t seed = 1);
};

/// Builds GeneratedDataset instances from a profile.
class KgGenerator {
 public:
  static Result<GeneratedDataset> Generate(const DatasetProfile& profile);
};

}  // namespace kgaq

#endif  // KGAQ_DATAGEN_KG_GENERATOR_H_
