#include "datagen/workload_generator.h"

#include <algorithm>
#include <cmath>

namespace kgaq {

namespace {

const AggregateFunction kFunctionCycle[] = {
    AggregateFunction::kCount, AggregateFunction::kAvg,
    AggregateFunction::kSum};

QueryBranch SimpleBranch(const GeneratedDataset& ds, size_t domain,
                         size_t hub_index) {
  const DomainInfo& info = ds.domains()[domain];
  QueryBranch b;
  b.specific_name = ds.graph().NodeName(ds.hubs()[hub_index]);
  b.specific_types = {"Country"};
  b.hops.push_back({info.query_predicate, {info.answer_type}});
  return b;
}

QueryBranch DirectBranch(const GeneratedDataset& ds, size_t domain,
                         size_t hub_index) {
  const DomainInfo& info = ds.domains()[domain];
  QueryBranch b;
  b.specific_name = ds.graph().NodeName(ds.hubs()[hub_index]);
  b.specific_types = {"Country"};
  b.hops.push_back({info.direct_predicate, {info.answer_type}});
  return b;
}

QueryBranch ChainBranch(const GeneratedDataset& ds, size_t domain,
                        size_t hub_index) {
  const DomainInfo& info = ds.domains()[domain];
  QueryBranch b;
  b.specific_name = ds.graph().NodeName(ds.hubs()[hub_index]);
  b.specific_types = {"Country"};
  b.hops.push_back({info.indirect_b, {info.intermediate_type}});
  b.hops.push_back({info.indirect_a, {info.answer_type}});
  return b;
}

void DecorateAggregate(const GeneratedDataset& ds, size_t domain,
                       AggregateFunction f, AggregateQuery& q) {
  q.function = f;
  if (f != AggregateFunction::kCount) {
    q.attribute = ds.domains()[domain].attributes[0].name;
  }
}

// Interquartile range of an attribute over the domain's answer entities —
// a filter that keeps roughly half the answers, like the paper's
// fuel-economy range example (Q3).
Filter IqrFilter(const GeneratedDataset& ds, size_t domain) {
  const DomainInfo& info = ds.domains()[domain];
  const AttributeSpec& spec =
      info.attributes[std::min<size_t>(1, info.attributes.size() - 1)];
  const KnowledgeGraph& g = ds.graph();
  std::vector<double> values;
  TypeId t = g.TypeIdOf(info.answer_type);
  AttributeId a = g.AttributeIdOf(spec.name);
  if (t != kInvalidId && a != kInvalidId) {
    for (NodeId u : g.NodesWithType(t)) {
      auto v = g.Attribute(u, a);
      if (v.has_value()) values.push_back(*v);
    }
  }
  Filter f;
  f.attribute = spec.name;
  if (values.size() < 4) {
    f.lower = 0.0;
    f.upper = 1e18;
    return f;
  }
  std::sort(values.begin(), values.end());
  f.lower = values[values.size() / 4];
  f.upper = values[(3 * values.size()) / 4];
  return f;
}

GroupBy MakeGroupBy(const GeneratedDataset& ds, size_t domain) {
  const DomainInfo& info = ds.domains()[domain];
  // Prefer a uniform attribute (age-like) for meaningful buckets.
  const AttributeSpec* spec = &info.attributes.back();
  for (const AttributeSpec& a : info.attributes) {
    if (a.kind == AttributeSpec::Kind::kUniform) {
      spec = &a;
      break;
    }
  }
  GroupBy gb;
  gb.attribute = spec->name;
  gb.bucket_width = std::max(1.0, (spec->b - spec->a) / 4.0);
  return gb;
}

std::string HubName(const GeneratedDataset& ds, size_t hub_index) {
  return ds.graph().NodeName(ds.hubs()[hub_index]);
}

}  // namespace

AggregateQuery WorkloadGenerator::SimpleQuery(const GeneratedDataset& ds,
                                              size_t domain,
                                              size_t hub_index,
                                              AggregateFunction f) {
  AggregateQuery q;
  q.query = QueryGraph::Simple(
      HubName(ds, hub_index), {"Country"},
      ds.domains()[domain].query_predicate,
      {ds.domains()[domain].answer_type});
  DecorateAggregate(ds, domain, f, q);
  return q;
}

AggregateQuery WorkloadGenerator::ChainQuery(const GeneratedDataset& ds,
                                             size_t domain, size_t hub_index,
                                             AggregateFunction f) {
  AggregateQuery q;
  q.query = QueryGraph::Chain(ChainBranch(ds, domain, hub_index));
  DecorateAggregate(ds, domain, f, q);
  return q;
}

std::vector<BenchmarkQuery> WorkloadGenerator::Generate(
    const GeneratedDataset& ds, const WorkloadOptions& options) {
  std::vector<BenchmarkQuery> out;
  Rng rng(options.seed);
  const size_t num_domains = ds.domains().size();
  const size_t num_hubs = ds.hubs().size();
  size_t counter = 0;

  auto next_id = [&counter] { return "Q" + std::to_string(++counter); };
  auto pick_domain = [&](size_t i) { return i % num_domains; };
  auto pick_hub = [&](size_t i) { return (i * 3 + 1) % num_hubs; };
  auto pick_fn = [&](size_t i) { return kFunctionCycle[i % 3]; };

  for (size_t i = 0; i < options.num_simple; ++i) {
    const size_t d = pick_domain(i), h = pick_hub(i);
    BenchmarkQuery bq;
    bq.id = next_id();
    bq.query = SimpleQuery(ds, d, h, pick_fn(i));
    bq.text = std::string(AggregateFunctionToString(bq.query.function)) +
              " of " + ds.domains()[d].answer_type + " with " +
              ds.domains()[d].query_predicate + " " + HubName(ds, h);
    out.push_back(std::move(bq));
  }

  for (size_t i = 0; i < options.num_filter; ++i) {
    const size_t d = pick_domain(i + 1), h = pick_hub(i + 2);
    BenchmarkQuery bq;
    bq.id = next_id();
    bq.query = SimpleQuery(ds, d, h, pick_fn(i + 1));
    bq.query.filters.push_back(IqrFilter(ds, d));
    bq.text = "filtered " + std::string(AggregateFunctionToString(
                                bq.query.function)) +
              " of " + ds.domains()[d].answer_type + " of " + HubName(ds, h);
    out.push_back(std::move(bq));
  }

  for (size_t i = 0; i < options.num_group_by; ++i) {
    const size_t d = pick_domain(i + 2), h = pick_hub(i + 1);
    BenchmarkQuery bq;
    bq.id = next_id();
    bq.query = SimpleQuery(ds, d, h, AggregateFunction::kCount);
    bq.query.group_by = MakeGroupBy(ds, d);
    bq.text = "COUNT of " + ds.domains()[d].answer_type + " of " +
              HubName(ds, h) + " per " + bq.query.group_by.attribute +
              " group";
    out.push_back(std::move(bq));
  }

  for (size_t i = 0; i < options.num_chain; ++i) {
    const size_t d = pick_domain(i), h = pick_hub(i + 3);
    BenchmarkQuery bq;
    bq.id = next_id();
    bq.query = ChainQuery(ds, d, h, pick_fn(i));
    bq.text = "chain " + std::string(AggregateFunctionToString(
                             bq.query.function)) +
              " of " + ds.domains()[d].answer_type + " via " +
              ds.domains()[d].intermediate_type + " of " + HubName(ds, h);
    out.push_back(std::move(bq));
  }

  auto complex_query = [&](QueryShape shape, size_t i) {
    const size_t d = pick_domain(i);
    const size_t h1 = pick_hub(i);
    // The generator co-attaches answers to the (h, h+1) partner hub, so
    // stars over partner pairs have non-empty relevant intersections.
    const size_t h2 = (h1 + 1) % num_hubs;
    (void)rng;
    std::vector<QueryBranch> branches;
    switch (shape) {
      case QueryShape::kStar:
        // Two specific entities sharing the target ("produced in China
        // and Korea").
        branches.push_back(SimpleBranch(ds, d, h1));
        branches.push_back(SimpleBranch(ds, d, h2));
        break;
      case QueryShape::kCycle:
        // Two predicates between the same pair of query nodes.
        branches.push_back(SimpleBranch(ds, d, h1));
        branches.push_back(DirectBranch(ds, d, h1));
        break;
      case QueryShape::kFlower:
      default:
        branches.push_back(SimpleBranch(ds, d, h1));
        branches.push_back(DirectBranch(ds, d, h1));
        branches.push_back(ChainBranch(ds, d, h1));
        break;
    }
    AggregateQuery q;
    q.query = QueryGraph::Complex(shape, std::move(branches));
    DecorateAggregate(ds, d, pick_fn(i), q);
    return q;
  };

  for (size_t i = 0; i < options.num_star; ++i) {
    BenchmarkQuery bq;
    bq.id = next_id();
    bq.query = complex_query(QueryShape::kStar, i);
    bq.text = "star query " + bq.id;
    out.push_back(std::move(bq));
  }
  for (size_t i = 0; i < options.num_cycle; ++i) {
    BenchmarkQuery bq;
    bq.id = next_id();
    bq.query = complex_query(QueryShape::kCycle, i);
    bq.text = "cycle query " + bq.id;
    out.push_back(std::move(bq));
  }
  for (size_t i = 0; i < options.num_flower; ++i) {
    BenchmarkQuery bq;
    bq.id = next_id();
    bq.query = complex_query(QueryShape::kFlower, i);
    bq.text = "flower query " + bq.id;
    out.push_back(std::move(bq));
  }
  return out;
}

}  // namespace kgaq
