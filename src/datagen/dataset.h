#ifndef KGAQ_DATAGEN_DATASET_H_
#define KGAQ_DATAGEN_DATASET_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "embedding/embedding_model.h"
#include "kg/knowledge_graph.h"
#include "query/query_graph.h"

namespace kgaq {

/// How one answer entity is attached to a hub (the planted schema role).
///
/// Roles encode the ground-truth *meaning* of the connection — this is the
/// dataset's stand-in for the paper's human annotation, which likewise
/// marked whole connection schemas (not individual entities) as relevant
/// to a query predicate (§VII-A "Metrics").
enum class SchemaRole {
  kDirectRelevant,    ///< 1-hop edge, predicate ~= query predicate.
  kIndirectRelevant,  ///< 2-hop via typed intermediate, both edges close.
  kSemiRelevant,      ///< 2-hop, similarity ~0.8 — NOT annotated relevant.
  kDistractor,        ///< 2-hop, clearly unrelated predicates.
};

/// True for the roles a human annotator marks as expressing the query
/// relation.
inline bool IsRelevantRole(SchemaRole role) {
  return role == SchemaRole::kDirectRelevant ||
         role == SchemaRole::kIndirectRelevant;
}

/// Numeric attribute synthesized on a domain's answer entities.
struct AttributeSpec {
  enum class Kind { kLogNormal, kNormal, kUniform };
  std::string name;
  Kind kind;
  double a;  ///< mu (lognormal/normal) or lower bound (uniform).
  double b;  ///< sigma (lognormal/normal) or upper bound (uniform).
};

/// Static description of one generated domain ("average price of cars
/// produced in <country>"-style question family).
struct DomainInfo {
  std::string name;
  std::string answer_type;        ///< e.g. "Automobile".
  std::string intermediate_type;  ///< e.g. "Company".
  std::string query_predicate;    ///< e.g. "product" — what queries ask.
  std::string direct_predicate;   ///< Relevant 1-hop predicate ("assembly").
  std::string indirect_a;         ///< answer -> intermediate predicate.
  std::string indirect_b;         ///< intermediate -> hub predicate.
  std::vector<AttributeSpec> attributes;
  /// Fraction of this domain's hub answers planted with a relevant schema.
  double relevant_fraction = 0.3;
};

/// One planted (answer, hub) attachment with its annotation.
struct PlantedAnswer {
  NodeId answer = kInvalidId;
  SchemaRole role = SchemaRole::kDistractor;
};

/// A generated dataset: the graph, the planted "reference" embedding whose
/// predicate vectors realize the intended Eq. 4 similarities exactly, the
/// domain metadata, and the human-annotation oracle.
class GeneratedDataset {
 public:
  GeneratedDataset() = default;
  GeneratedDataset(GeneratedDataset&&) = default;
  GeneratedDataset& operator=(GeneratedDataset&&) = default;

  const KnowledgeGraph& graph() const { return graph_; }
  /// Planted predicate/entity vectors (ideal embedding; model for Eq. 4).
  const EmbeddingModel& reference_embedding() const { return *reference_; }
  const std::vector<DomainInfo>& domains() const { return domains_; }
  const std::vector<NodeId>& hubs() const { return hubs_; }
  const std::string& profile_name() const { return profile_name_; }

  /// Answers planted for (domain, hub), with their schema annotations.
  const std::vector<PlantedAnswer>& PlantedAnswers(size_t domain,
                                                   NodeId hub) const;

  /// Human-annotation oracle: the answers a crowd of schema annotators
  /// would accept for this query (relevant-schema attachment at every
  /// branch's hub; intersection for complex shapes). Filters and attribute
  /// requirements are NOT applied here — pass the result through
  /// AggregateOverAnswers to obtain HA-GT values.
  Result<std::vector<NodeId>> HumanCorrectAnswers(
      const AggregateQuery& query) const;

  /// HA ground-truth aggregate value (annotated answers + query filters).
  Result<double> HumanGroundTruth(const AggregateQuery& query) const;

  /// Domain index whose answer type matches the query target, or npos.
  size_t DomainIndexForTargetType(const std::string& type_name) const;

 private:
  friend class KgGenerator;

  KnowledgeGraph graph_;
  std::unique_ptr<FixedEmbedding> reference_;
  std::vector<DomainInfo> domains_;
  std::vector<NodeId> hubs_;
  std::string profile_name_;
  /// planted_[domain] maps hub node -> planted answers.
  std::vector<std::map<NodeId, std::vector<PlantedAnswer>>> planted_;
};

}  // namespace kgaq

#endif  // KGAQ_DATAGEN_DATASET_H_
