#ifndef KGAQ_DATAGEN_TAU_TUNING_H_
#define KGAQ_DATAGEN_TAU_TUNING_H_

#include <vector>

#include "common/status.h"
#include "datagen/dataset.h"
#include "datagen/workload_generator.h"
#include "embedding/embedding_model.h"

namespace kgaq {

/// One row of the paper's Table V: how well the tau-relevant answers agree
/// with the human-annotated ones at a given threshold.
struct TauSweepPoint {
  double tau = 0.0;
  double avg_jaccard = 0.0;  ///< AJS over the probe queries.
  double variance = 0.0;     ///< Var of the per-query Jaccard.
};

/// Sweeps tau over the probe queries (simple queries only, as in §VII-A):
/// for each query, the tau-relevant answer set (exact Eq. 3 similarities
/// thresholded at tau) is compared by Jaccard against the annotated set.
/// This is how a domain expert tunes tau from a limited annotated subset
/// (the paper uses 35% of queries).
Result<std::vector<TauSweepPoint>> SweepTau(
    const GeneratedDataset& ds, const EmbeddingModel& model,
    const std::vector<BenchmarkQuery>& probe_queries,
    const std::vector<double>& taus, int n_hops = 3);

/// The tau with the highest average Jaccard (ties: lower variance).
double PickBestTau(const std::vector<TauSweepPoint>& points);

/// Convenience: sweep the paper's grid {0.60, 0.65, ..., 0.95} over a few
/// generated simple queries and return the winning tau for this
/// (dataset, embedding) pair.
Result<double> TuneTau(const GeneratedDataset& ds,
                       const EmbeddingModel& model, size_t num_probes = 8);

}  // namespace kgaq

#endif  // KGAQ_DATAGEN_TAU_TUNING_H_
