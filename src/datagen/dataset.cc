#include "datagen/dataset.h"

#include <algorithm>
#include <unordered_set>

#include "baselines/baseline_util.h"

namespace kgaq {

const std::vector<PlantedAnswer>& GeneratedDataset::PlantedAnswers(
    size_t domain, NodeId hub) const {
  static const std::vector<PlantedAnswer> kEmpty;
  if (domain >= planted_.size()) return kEmpty;
  auto it = planted_[domain].find(hub);
  return it == planted_[domain].end() ? kEmpty : it->second;
}

size_t GeneratedDataset::DomainIndexForTargetType(
    const std::string& type_name) const {
  for (size_t d = 0; d < domains_.size(); ++d) {
    if (domains_[d].answer_type == type_name) return d;
  }
  return static_cast<size_t>(-1);
}

Result<std::vector<NodeId>> GeneratedDataset::HumanCorrectAnswers(
    const AggregateQuery& query) const {
  std::unordered_set<NodeId> intersection;
  bool first = true;
  for (const QueryBranch& branch : query.query.branches) {
    const NodeId hub = graph_.FindNodeByName(branch.specific_name);
    if (hub == kInvalidId) {
      return Status::NotFound("hub '" + branch.specific_name +
                              "' not in the generated dataset");
    }
    size_t domain = static_cast<size_t>(-1);
    for (const auto& t : branch.target_types()) {
      domain = DomainIndexForTargetType(t);
      if (domain != static_cast<size_t>(-1)) break;
    }
    if (domain == static_cast<size_t>(-1)) {
      return Status::NotFound(
          "query target type does not match any generated domain");
    }
    std::unordered_set<NodeId> branch_answers;
    for (const PlantedAnswer& pa : PlantedAnswers(domain, hub)) {
      if (IsRelevantRole(pa.role)) branch_answers.insert(pa.answer);
    }
    if (first) {
      intersection = std::move(branch_answers);
      first = false;
    } else {
      std::unordered_set<NodeId> merged;
      for (NodeId u : branch_answers) {
        if (intersection.count(u)) merged.insert(u);
      }
      intersection = std::move(merged);
    }
  }
  std::vector<NodeId> out(intersection.begin(), intersection.end());
  std::sort(out.begin(), out.end());
  return out;
}

Result<double> GeneratedDataset::HumanGroundTruth(
    const AggregateQuery& query) const {
  auto answers = HumanCorrectAnswers(query);
  if (!answers.ok()) return answers.status();
  return AggregateOverAnswers(graph_, query, std::move(*answers)).value;
}

}  // namespace kgaq
