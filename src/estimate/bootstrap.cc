#include "estimate/bootstrap.h"

#include <cmath>
#include <limits>

#include "estimate/normal.h"

namespace kgaq {

BootstrapResult Bootstrap(std::span<const SampleItem> sample,
                          AggregateFunction f, size_t num_resamples,
                          Rng& rng) {
  BootstrapResult out;
  if (sample.empty() || num_resamples == 0) return out;

  std::vector<SampleItem> resample(sample.size());
  out.resample_estimates.reserve(num_resamples);
  for (size_t b = 0; b < num_resamples; ++b) {
    for (size_t i = 0; i < sample.size(); ++i) {
      resample[i] = sample[rng.NextBounded(sample.size())];
    }
    out.resample_estimates.push_back(HtEstimator::Estimate(f, resample));
  }

  double mean = 0.0;
  for (double v : out.resample_estimates) mean += v;
  mean /= static_cast<double>(out.resample_estimates.size());
  double var = 0.0;
  for (double v : out.resample_estimates) var += (v - mean) * (v - mean);
  // Eq. 11 uses the (B - 1) divisor.
  if (out.resample_estimates.size() > 1) {
    var /= static_cast<double>(out.resample_estimates.size() - 1);
  }
  out.mean = mean;
  out.sigma = std::sqrt(var);
  return out;
}

BlbResult BagOfLittleBootstraps(std::span<const SampleItem> sample,
                                AggregateFunction f, double confidence_level,
                                const BlbOptions& options, Rng& rng) {
  BlbResult out;
  if (sample.empty() || options.t == 0) return out;
  const double z = NormalCriticalValue(confidence_level);

  const size_t n = sample.size();
  const size_t bag_size = std::max<size_t>(
      1, static_cast<size_t>(
             std::pow(static_cast<double>(n), options.m)));

  // Each bag subsamples without replacement (partial Fisher-Yates over an
  // index array), then bootstraps full-size resamples from the bag.
  std::vector<size_t> indices(n);
  for (size_t i = 0; i < n; ++i) indices[i] = i;

  double moe_acc = 0.0;
  double sigma_acc = 0.0;
  size_t used_bags = 0;
  std::vector<SampleItem> bag(bag_size);
  for (size_t bi = 0; bi < options.t; ++bi) {
    size_t bag_correct = 0;
    for (size_t i = 0; i < bag_size; ++i) {
      const size_t j = i + rng.NextBounded(n - i);
      std::swap(indices[i], indices[j]);
      bag[i] = sample[indices[i]];
      bag_correct += bag[i].correct ? 1 : 0;
    }
    // A bag with no correct draw yields identically-zero resample
    // estimates and a spurious sigma of 0; it carries no information about
    // the estimator's variability, so it is skipped. When low selectivity
    // starves every bag, the MoE is reported as +infinity — the caller
    // must keep sampling rather than terminate on a vacuous CI.
    if (bag_correct == 0) continue;
    // Bootstrap: each virtual resample has the *full* sample size n drawn
    // from the bag — the BLB trick that keeps resamples statistically
    // full-sized. Realized via Poissonized multinomial multiplicities
    // (count_i ~ Poisson(n / b)), so a resample costs O(bag), not O(n).
    const double lambda =
        static_cast<double>(n) / static_cast<double>(bag_size);
    std::vector<double> weights(bag_size);
    double mean = 0.0;
    std::vector<double> est;
    est.reserve(options.num_resamples);
    for (size_t b = 0; b < options.num_resamples; ++b) {
      for (size_t i = 0; i < bag_size; ++i) {
        weights[i] = static_cast<double>(rng.NextPoisson(lambda));
      }
      est.push_back(HtEstimator::WeightedEstimate(f, bag, weights));
      mean += est.back();
    }
    mean /= static_cast<double>(est.size());
    double var = 0.0;
    for (double v : est) var += (v - mean) * (v - mean);
    if (est.size() > 1) var /= static_cast<double>(est.size() - 1);
    const double sigma = std::sqrt(var);
    sigma_acc += sigma;
    moe_acc += z * sigma;  // Eq. 10 per bag
    ++used_bags;
  }
  if (used_bags == 0) {
    out.moe = std::numeric_limits<double>::infinity();
    out.sigma = std::numeric_limits<double>::infinity();
    return out;
  }
  out.moe = moe_acc / static_cast<double>(used_bags);
  out.sigma = sigma_acc / static_cast<double>(used_bags);
  return out;
}

}  // namespace kgaq
