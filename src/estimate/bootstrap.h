#ifndef KGAQ_ESTIMATE_BOOTSTRAP_H_
#define KGAQ_ESTIMATE_BOOTSTRAP_H_

#include <span>
#include <vector>

#include "common/random.h"
#include "estimate/ht_estimator.h"
#include "query/aggregate.h"

namespace kgaq {

/// Standard bootstrap estimate of the point estimator's standard deviation
/// (Eq. 11): draws B resamples with replacement, evaluates the estimator on
/// each, and returns the empirical sigma of the resample estimates.
struct BootstrapResult {
  double mean = 0.0;
  double sigma = 0.0;
  std::vector<double> resample_estimates;
};

BootstrapResult Bootstrap(std::span<const SampleItem> sample,
                          AggregateFunction f, size_t num_resamples,
                          Rng& rng);

/// Bag of Little Bootstraps (Kleiner et al.) estimate of the Margin of
/// Error (Eq. 10): splits the sample into t subsamples of size |S|^m,
/// bootstraps each with resamples of the full size |S|, converts each
/// sigma into a per-bag MoE eps_i = z * sigma_i, and averages.
struct BlbOptions {
  size_t t = 3;             ///< Number of little bags (paper: t >= 3).
  double m = 0.6;           ///< Subsample size exponent (paper: m = 0.6).
  size_t num_resamples = 50;  ///< Bootstrap resamples per bag (B >= 50).
};

struct BlbResult {
  double moe = 0.0;    ///< Averaged eps over bags.
  double sigma = 0.0;  ///< Averaged sigma over bags.
};

BlbResult BagOfLittleBootstraps(std::span<const SampleItem> sample,
                                AggregateFunction f, double confidence_level,
                                const BlbOptions& options, Rng& rng);

}  // namespace kgaq

#endif  // KGAQ_ESTIMATE_BOOTSTRAP_H_
