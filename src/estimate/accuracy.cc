#include "estimate/accuracy.h"

#include <algorithm>
#include <cmath>

namespace kgaq {

double MoeTargetFor(double v_hat, double error_bound) {
  return std::abs(v_hat) * error_bound / (1.0 + error_bound);
}

bool SatisfiesErrorBound(double moe, double v_hat, double error_bound) {
  return moe <= MoeTargetFor(v_hat, error_bound);
}

size_t ConfigureSampleIncrement(size_t current_sample_size, double moe,
                                double v_hat, double error_bound, double m,
                                size_t min_increment) {
  const double target = MoeTargetFor(v_hat, error_bound);
  if (target <= 0.0 || moe <= target) return min_increment;
  const double ratio = moe / target;
  const double delta = static_cast<double>(current_sample_size) *
                       (std::pow(ratio, 2.0 * m) - 1.0);
  const double clamped = std::min(delta, 1e9);
  return std::max(min_increment,
                  static_cast<size_t>(std::ceil(clamped)));
}

}  // namespace kgaq
