#include "estimate/ht_estimator.h"

#include <algorithm>

namespace kgaq {

double HtEstimator::EstimateSum(std::span<const SampleItem> sample) {
  if (sample.empty()) return 0.0;
  double acc = 0.0;
  for (const SampleItem& it : sample) {
    if (it.correct && it.pi > 0.0) acc += it.value / it.pi;
  }
  return acc / static_cast<double>(sample.size());
}

double HtEstimator::EstimateCount(std::span<const SampleItem> sample) {
  if (sample.empty()) return 0.0;
  double acc = 0.0;
  for (const SampleItem& it : sample) {
    if (it.correct && it.pi > 0.0) acc += 1.0 / it.pi;
  }
  return acc / static_cast<double>(sample.size());
}

double HtEstimator::EstimateAvg(std::span<const SampleItem> sample) {
  double num = 0.0, den = 0.0;
  for (const SampleItem& it : sample) {
    if (it.correct && it.pi > 0.0) {
      num += it.value / it.pi;
      den += 1.0 / it.pi;
    }
  }
  return den == 0.0 ? 0.0 : num / den;
}

double HtEstimator::Estimate(AggregateFunction f,
                             std::span<const SampleItem> sample) {
  switch (f) {
    case AggregateFunction::kCount:
      return EstimateCount(sample);
    case AggregateFunction::kSum:
      return EstimateSum(sample);
    case AggregateFunction::kAvg:
      return EstimateAvg(sample);
    case AggregateFunction::kMax: {
      double best = 0.0;
      bool any = false;
      for (const SampleItem& it : sample) {
        if (it.correct && (!any || it.value > best)) {
          best = it.value;
          any = true;
        }
      }
      return best;
    }
    case AggregateFunction::kMin: {
      double best = 0.0;
      bool any = false;
      for (const SampleItem& it : sample) {
        if (it.correct && (!any || it.value < best)) {
          best = it.value;
          any = true;
        }
      }
      return best;
    }
  }
  return 0.0;
}

double HtEstimator::WeightedEstimate(AggregateFunction f,
                                     std::span<const SampleItem> sample,
                                     std::span<const double> weights) {
  double total_w = 0.0;
  double num = 0.0, den = 0.0;
  bool any_extreme = false;
  double extreme = 0.0;
  const size_t n = sample.size() < weights.size() ? sample.size()
                                                  : weights.size();
  for (size_t i = 0; i < n; ++i) {
    const double w = weights[i];
    if (w <= 0.0) continue;
    total_w += w;
    const SampleItem& it = sample[i];
    if (!it.correct || it.pi <= 0.0) continue;
    num += w * it.value / it.pi;
    den += w / it.pi;
    if (f == AggregateFunction::kMax &&
        (!any_extreme || it.value > extreme)) {
      extreme = it.value;
      any_extreme = true;
    }
    if (f == AggregateFunction::kMin &&
        (!any_extreme || it.value < extreme)) {
      extreme = it.value;
      any_extreme = true;
    }
  }
  switch (f) {
    case AggregateFunction::kSum:
      return total_w == 0.0 ? 0.0 : num / total_w;
    case AggregateFunction::kCount:
      return total_w == 0.0 ? 0.0 : den / total_w;
    case AggregateFunction::kAvg:
      return den == 0.0 ? 0.0 : num / den;
    case AggregateFunction::kMax:
    case AggregateFunction::kMin:
      return extreme;
  }
  return 0.0;
}

size_t HtEstimator::CountCorrect(std::span<const SampleItem> sample) {
  return static_cast<size_t>(
      std::count_if(sample.begin(), sample.end(),
                    [](const SampleItem& it) { return it.correct; }));
}

}  // namespace kgaq
