#ifndef KGAQ_ESTIMATE_ACCURACY_H_
#define KGAQ_ESTIMATE_ACCURACY_H_

#include <cstddef>

namespace kgaq {

/// Theorem 2: the relative error |V_hat - V| / V is bounded by eb with
/// probability 1 - alpha iff the Margin of Error satisfies
/// eps <= V_hat * eb / (1 + eb).
double MoeTargetFor(double v_hat, double error_bound);

/// Convenience: true iff `moe` already meets Theorem 2's target.
bool SatisfiesErrorBound(double moe, double v_hat, double error_bound);

/// Error-based sample-increment configuration (Eq. 12): given the current
/// MoE and sample size, returns |Delta S_A| =
/// |S_A| * ((eps / target)^{2m} - 1), rounded up, and at least
/// `min_increment` so iteration always makes progress.
size_t ConfigureSampleIncrement(size_t current_sample_size, double moe,
                                double v_hat, double error_bound,
                                double m = 0.6, size_t min_increment = 8);

}  // namespace kgaq

#endif  // KGAQ_ESTIMATE_ACCURACY_H_
