#ifndef KGAQ_ESTIMATE_NORMAL_H_
#define KGAQ_ESTIMATE_NORMAL_H_

namespace kgaq {

/// Inverse standard-normal CDF (quantile function), |error| < 1.15e-9
/// (Acklam's rational approximation with one Halley refinement step).
/// Requires p in (0, 1).
double NormalQuantile(double p);

/// The critical value z_{alpha/2} with right-tail probability alpha/2 used
/// by Eq. 10: for a confidence level 1-alpha, returns
/// NormalQuantile(1 - alpha/2). E.g. confidence 0.95 -> 1.95996.
double NormalCriticalValue(double confidence_level);

}  // namespace kgaq

#endif  // KGAQ_ESTIMATE_NORMAL_H_
