#include "estimate/evt.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace kgaq {

GpdFit FitGpdPwm(std::span<const double> values, double threshold,
                 size_t min_exceedances) {
  GpdFit fit;
  fit.threshold = threshold;
  std::vector<double> exceedances;
  for (double v : values) {
    if (v > threshold) exceedances.push_back(v - threshold);
  }
  fit.num_exceedances = exceedances.size();
  if (exceedances.size() < min_exceedances) return fit;
  std::sort(exceedances.begin(), exceedances.end());

  // Probability-weighted moments (Hosking & Wallis 1987). With
  //   a0 = E[Y] = mean(y),
  //   a1 = E[Y (1 - F(Y))] ~= sum((n-j)/(n-1) * y_(j)) / n  (ascending,
  //        1-indexed j),
  // the GPD moments a_s = sigma / ((s+1)(s+1-xi)) give
  //   xi = 2 - a0 / (a0 - 2 a1),  sigma = 2 a0 a1 / (a0 - 2 a1).
  const size_t n = exceedances.size();
  double a0 = 0.0, a1 = 0.0;
  for (size_t j = 0; j < n; ++j) {
    a0 += exceedances[j];
    if (n > 1) {
      a1 += exceedances[j] * static_cast<double>(n - 1 - j) /
            static_cast<double>(n - 1);
    }
  }
  a0 /= static_cast<double>(n);
  a1 /= static_cast<double>(n);
  const double denom = a0 - 2.0 * a1;
  if (std::abs(denom) < 1e-12 || a0 <= 0.0) return fit;
  fit.xi = 2.0 - a0 / denom;
  fit.sigma = 2.0 * a0 * a1 / denom;
  fit.ok = fit.sigma > 0.0 && std::isfinite(fit.xi) &&
           std::isfinite(fit.sigma);
  return fit;
}

double GpdQuantile(const GpdFit& fit, double p) {
  if (!fit.ok || p <= 0.0 || p >= 1.0) return fit.threshold;
  const double tail = 1.0 - p;
  if (std::abs(fit.xi) < 1e-9) {
    return fit.threshold - fit.sigma * std::log(tail);
  }
  return fit.threshold +
         fit.sigma / fit.xi * (std::pow(tail, -fit.xi) - 1.0);
}

double EstimateExtremeEvt(AggregateFunction f,
                          std::span<const SampleItem> sample,
                          const EvtOptions& options) {
  const bool is_max = f == AggregateFunction::kMax;
  // MIN reduces to MAX of the negated values. Draws are with replacement
  // (Theorem 1), so the tail is fitted over *distinct* answers — duplicated
  // draws would make the empirical 1 - 1/N quantile collapse onto the
  // observed maximum and the extrapolation vanish.
  std::unordered_set<NodeId> seen;
  std::vector<double> values;
  for (const SampleItem& it : sample) {
    if (!it.correct || !seen.insert(it.node).second) continue;
    values.push_back(is_max ? it.value : -it.value);
  }
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double sample_extreme = values.back();

  // POT threshold at the configured quantile of the correct values.
  const double threshold =
      values[static_cast<size_t>(options.threshold_quantile *
                                 static_cast<double>(values.size() - 1))];
  GpdFit fit = FitGpdPwm(values, threshold, options.min_exceedances);
  if (!fit.ok || std::abs(fit.xi) > options.max_abs_xi) {
    return is_max ? sample_extreme : -sample_extreme;
  }

  // Population size: the HT COUNT estimate (or at least the number of
  // distinct correct draws observed).
  const double ht_count = HtEstimator::EstimateCount(sample);
  const double population =
      std::max(ht_count, static_cast<double>(values.size()));
  if (population <= 1.0) {
    return is_max ? sample_extreme : -sample_extreme;
  }

  // The expected maximum of `population` draws sits near the 1 - 1/N tail
  // quantile of the exceedance distribution, rescaled by the fraction of
  // mass above the threshold.
  const double frac_above =
      static_cast<double>(fit.num_exceedances) /
      static_cast<double>(values.size());
  const double tail_p = 1.0 / (population * frac_above);
  if (tail_p >= 1.0) {
    return is_max ? sample_extreme : -sample_extreme;
  }
  double estimate = GpdQuantile(fit, 1.0 - tail_p);
  // Never report below what was actually observed.
  estimate = std::max(estimate, sample_extreme);
  return is_max ? estimate : -estimate;
}

}  // namespace kgaq
