#ifndef KGAQ_ESTIMATE_HT_ESTIMATOR_H_
#define KGAQ_ESTIMATE_HT_ESTIMATOR_H_

#include <span>
#include <vector>

#include "kg/types.h"
#include "query/aggregate.h"

namespace kgaq {

/// One validated element of the random sample S_A.
struct SampleItem {
  NodeId node = kInvalidId;
  /// Value of the aggregate attribute u.a (0 for COUNT or missing attr).
  double value = 0.0;
  /// Stationary sampling probability pi'_i of the answer (Theorem 1).
  double pi = 0.0;
  /// Result of correctness validation (s_i >= tau AND filters pass):
  /// items failing it belong to S_A \ S_A^+ and contribute zero mass.
  bool correct = false;
};

/// Horvitz-Thompson estimators for the non-uniform i.i.d. sample (Eq. 7-9).
///
/// Implementation note on the divisor: the paper's Eq. 7-8 write the outer
/// mean over |S_A^+|, while the Lemma 3/4 proofs treat every draw as an
/// i.i.d. variable from pi_A whose incorrect draws contribute zero. The two
/// coincide exactly when all draws validate correct; when some draws are
/// incorrect, dividing the inner sums by the total number of draws |S_A|
/// (with indicator weights 1{correct}) is the estimator the proofs actually
/// establish as unbiased: E[1{correct} * X/pi'] = sum over A+ of X. We use
/// the |S_A| divisor so Lemmas 3-4 hold verbatim; the AVG ratio (Eq. 9) is
/// divisor-free either way.
class HtEstimator {
 public:
  /// SUM estimate (Eq. 7): (1/|S_A|) * sum_{S_A^+} value_i / pi_i.
  static double EstimateSum(std::span<const SampleItem> sample);

  /// COUNT estimate (Eq. 8): (1/|S_A|) * sum_{S_A^+} 1 / pi_i.
  static double EstimateCount(std::span<const SampleItem> sample);

  /// AVG estimate (Eq. 9): EstimateSum / EstimateCount (0 if no correct
  /// draws). Consistent by the SLLN importance-sampling argument (Lemma 5).
  static double EstimateAvg(std::span<const SampleItem> sample);

  /// Dispatch on the aggregate function. MAX/MIN return the extreme value
  /// among correct draws — the paper's guarantee-free fallback (§VII-B).
  static double Estimate(AggregateFunction f,
                         std::span<const SampleItem> sample);

  /// Number of correct draws |S_A^+|.
  static size_t CountCorrect(std::span<const SampleItem> sample);

  /// Weighted variant used by the Poissonized BLB resampling: item i
  /// appears `weights[i]` times in the virtual resample (weights need not
  /// be integral). Equivalent to Estimate() on the expanded multiset;
  /// total weight plays the |S_A| divisor role. MAX/MIN ignore weights
  /// beyond presence (> 0).
  static double WeightedEstimate(AggregateFunction f,
                                 std::span<const SampleItem> sample,
                                 std::span<const double> weights);
};

}  // namespace kgaq

#endif  // KGAQ_ESTIMATE_HT_ESTIMATOR_H_
