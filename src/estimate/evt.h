#ifndef KGAQ_ESTIMATE_EVT_H_
#define KGAQ_ESTIMATE_EVT_H_

#include <span>
#include <vector>

#include "estimate/ht_estimator.h"

namespace kgaq {

/// Extreme-value-theory estimation for MAX / MIN — the direction the paper
/// leaves as future work (§IV-B1 Remarks: "extreme estimation based on
/// Extreme Value Theory could be an alternative").
///
/// The naive MAX estimate (largest value observed in the sample) is biased
/// low whenever the sample misses the population's tail. The
/// peaks-over-threshold method instead fits a Generalized Pareto
/// Distribution (GPD) to the sample's exceedances over a high threshold u
/// (Pickands-Balkema-de Haan: tails of most distributions are GPD) and
/// extrapolates the population maximum as the 1 - 1/N tail quantile,
/// where N is the estimated number of correct answers (the HT COUNT).

/// Fitted GPD tail parameters.
struct GpdFit {
  bool ok = false;
  double xi = 0.0;     ///< Shape (xi < 0: bounded tail; > 0: heavy tail).
  double sigma = 0.0;  ///< Scale (> 0).
  double threshold = 0.0;
  size_t num_exceedances = 0;
};

/// Fits a GPD to the exceedances `y_i = x_i - threshold > 0` using the
/// probability-weighted-moments estimator of Hosking & Wallis (1987):
/// robust for xi < 0.5, no iteration, well suited to small samples.
/// Requires at least `min_exceedances` positive exceedances.
GpdFit FitGpdPwm(std::span<const double> values, double threshold,
                 size_t min_exceedances = 8);

/// The GPD quantile above the threshold: Q(p) = u + sigma/xi *
/// ((1-p)^-xi - 1) (limit u - sigma*ln(1-p) at xi -> 0).
double GpdQuantile(const GpdFit& fit, double p);

/// Options for the extreme estimator.
struct EvtOptions {
  /// Quantile of the correct values used as the POT threshold. A median
  /// threshold keeps enough exceedances to fit even at small budgets.
  double threshold_quantile = 0.5;
  size_t min_exceedances = 6;
  /// Clamp on the fitted shape: |xi| above this falls back to the sample
  /// extreme (wildly heavy or bounded fits extrapolate nonsense).
  double max_abs_xi = 0.9;
};

/// EVT point estimate of the population MAX (or MIN via negation) from a
/// validated sample: fits the tail of the correct values and returns the
/// 1 - 1/N quantile with N = max(HT COUNT estimate, #correct draws).
/// Falls back to the plain sample extreme when the tail cannot be fitted.
double EstimateExtremeEvt(AggregateFunction f,
                          std::span<const SampleItem> sample,
                          const EvtOptions& options = {});

}  // namespace kgaq

#endif  // KGAQ_ESTIMATE_EVT_H_
