#include "common/status.h"

namespace kgaq {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

int HttpStatusForCode(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kAlreadyExists:
      return 409;
    case StatusCode::kFailedPrecondition:
      return 412;
    case StatusCode::kResourceExhausted:
      return 429;
    case StatusCode::kUnimplemented:
      return 501;
    case StatusCode::kUnavailable:
      return 503;
    case StatusCode::kInternal:
    case StatusCode::kIoError:
      return 500;
  }
  return 500;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace kgaq
