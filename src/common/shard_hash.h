#ifndef KGAQ_COMMON_SHARD_HASH_H_
#define KGAQ_COMMON_SHARD_HASH_H_

#include <cstdint>
#include <string_view>

namespace kgaq {

/// Shard-ownership hashing shared by the partitioner (src/shard/) and the
/// per-shard candidate restriction in the core engine (EngineOptions::
/// shard). Ownership is keyed on the node *name*, never the NodeId: names
/// are stable across graph rebuilds and across shard-local graphs (which
/// keep the full dictionary), whereas ids depend on interning order.
///
/// FNV-1a is fixed by docs/sharding.md as partition scheme 0 — the value
/// is part of the snapshot partition-map contract, so it must never
/// change for scheme 0.

constexpr uint64_t Fnv1a64(std::string_view s) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

/// Owner shard of a node, by name, in [0, num_shards).
constexpr uint32_t ShardOfName(std::string_view name, uint32_t num_shards) {
  return num_shards <= 1
             ? 0
             : static_cast<uint32_t>(Fnv1a64(name) % num_shards);
}

}  // namespace kgaq

#endif  // KGAQ_COMMON_SHARD_HASH_H_
