#ifndef KGAQ_COMMON_RANDOM_H_
#define KGAQ_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace kgaq {

/// Deterministic, fast pseudo-random generator (xoshiro256++).
///
/// Every stochastic component in kgaq (random walks, bootstrap resampling,
/// data generation, negative sampling) takes an explicit `Rng&` so that runs
/// are reproducible given a seed. Satisfies the C++ UniformRandomBitGenerator
/// concept so it can also drive <random> distributions when convenient.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the generator; identical seeds yield identical streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64-bit draw.
  uint64_t operator()() { return Next(); }
  uint64_t Next();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, bound) using Lemire's rejection method.
  /// `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Standard normal draw (Marsaglia polar method, cached spare).
  double NextGaussian();

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Poisson draw. Exact (Knuth) for small means; Gaussian approximation
  /// for mean > 32 — accurate enough for bootstrap multiplicities.
  uint64_t NextPoisson(double mean);

  /// Draws an index in [0, weights.size()) with probability proportional to
  /// weights[i]. Weights must be non-negative with positive sum; otherwise
  /// falls back to uniform.
  size_t NextWeighted(const std::vector<double>& weights);

  /// Forks an independent generator (splitmix of the current state);
  /// used to hand deterministic child streams to worker threads.
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_spare_ = false;
  double spare_ = 0.0;
};

/// In-place Fisher-Yates shuffle driven by `rng`.
template <typename T>
void Shuffle(std::vector<T>& v, Rng& rng) {
  for (size_t i = v.size(); i > 1; --i) {
    size_t j = rng.NextBounded(i);
    using std::swap;
    swap(v[i - 1], v[j]);
  }
}

}  // namespace kgaq

#endif  // KGAQ_COMMON_RANDOM_H_
