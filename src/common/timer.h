#ifndef KGAQ_COMMON_TIMER_H_
#define KGAQ_COMMON_TIMER_H_

#include <chrono>

namespace kgaq {

/// Monotonic wall-clock stopwatch used for response-time measurements.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction / last Restart, in milliseconds.
  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  /// Elapsed time in seconds.
  double ElapsedSeconds() const { return ElapsedMillis() / 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates elapsed time across multiple disjoint intervals; used to
/// attribute query time to the paper's S1/S2/S3 steps (Table XII).
class StepTimer {
 public:
  /// Starts (or restarts) an interval.
  void Start() { timer_.Restart(); running_ = true; }

  /// Ends the current interval and adds it to the accumulated total.
  void Stop() {
    if (running_) {
      total_ms_ += timer_.ElapsedMillis();
      running_ = false;
    }
  }

  /// Total accumulated milliseconds over all Start/Stop intervals.
  double TotalMillis() const { return total_ms_; }

  /// Clears the accumulated total.
  void Reset() {
    total_ms_ = 0.0;
    running_ = false;
  }

 private:
  WallTimer timer_;
  double total_ms_ = 0.0;
  bool running_ = false;
};

}  // namespace kgaq

#endif  // KGAQ_COMMON_TIMER_H_
