#ifndef KGAQ_COMMON_FAULT_INJECTION_H_
#define KGAQ_COMMON_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace kgaq {
namespace fault_injection {

/// Deterministic fault-injection registry for chaos tests.
///
/// Production code marks recoverable failure sites with KGAQ_FAULT_POINT:
///
///   if (KGAQ_FAULT_POINT("serve.admit.queue_full")) {
///     return Status::ResourceExhausted("injected: admission queue full");
///   }
///
/// With injection disabled (the default, and the only state production
/// ever runs in) the macro is a single relaxed atomic load of a flag
/// that never changes — no registry lookup, no lock, no branch history
/// pollution beyond one well-predicted test.
///
/// Tests call Enable(seed) and Arm(point, p). The decision for the i-th
/// hit of a point is a pure function of (seed, point name, i): a
/// splitmix64 draw compared against p. Per-point hit counters are the
/// only mutable state, so the SET of failing hit indices is fixed by the
/// seed regardless of thread schedule — reordering which caller observes
/// which index is the only nondeterminism, which is exactly the
/// "schedule-deterministic" contract chaos tests need (same seed → same
/// number of injected faults at every point, run to run).
///
/// The registry is process-global; tests that enable it must not run
/// concurrently with tests that assume it is off (gtest runs tests in
/// one thread, so this only matters for hand-rolled multithreaded
/// drivers, which should Enable once up front).
///
/// Points are string-keyed and need no registration. Current sites:
/// serving (`serve.admit.queue_full`, `serve.round.slow`,
/// `serve.scheduler.stall`, `serve.loop.wakeup` — an event-loop wakeup
/// is dropped undrained; level-triggered pollers re-deliver it next
/// tick), HTTP (`http.conn.read_error`,
/// `http.client.connect_error`, `http.client.recv_error`), snapshot
/// loading (`snapshot.read.short`),
/// the governed caches (`core.cache.build` — the builder throws,
/// the claim is released so the cache is never poisoned;
/// `core.cache.alloc` — materialization fails, the caller gets the
/// value ephemerally), and the shard tier (`shard.rpc.send` — a
/// coordinator-to-shard channel call fails with kUnavailable at entry,
/// local and HTTP channels alike; `shard.merge` — the coordinator's
/// plan merge fails with kInternal after releasing the shards' plan
/// sessions; `shard.replica.probe` — an active health probe of a
/// quarantined replica fails, keeping its breaker open;
/// `shard.rpc.hedge` — a hedged validate fails at the launch decision,
/// so the race degenerates to waiting on the primary). Grep
/// KGAQ_FAULT_POINT for the authoritative list.

namespace internal {
extern std::atomic<bool> g_enabled;
}  // namespace internal

/// True when fault injection is globally enabled. Inline: this is the
/// only cost production pays at a fault point.
inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

/// Enables injection with a deterministic decision seed. Idempotent;
/// re-enabling with a different seed rebases every point's decisions
/// (counters keep running).
void Enable(uint64_t seed);

/// Disables injection; armed points and counters are kept (a later
/// Enable resumes them). Points never fire while disabled.
void Disable();

/// Disables injection and forgets every armed point and counter.
void Reset();

/// Arms `point` to fail each hit independently with probability `p`
/// (clamped to [0,1]). Re-arming overwrites the previous setting.
void Arm(std::string_view point, double probability);

/// Arms `point` to fail its next `times` hits unconditionally, then
/// never again (until re-armed). Useful for forcing one specific
/// interleaving instead of a probabilistic storm.
void ArmCount(std::string_view point, uint64_t times);

/// The decision function behind KGAQ_FAULT_POINT. Counts a hit for
/// `point` and returns whether this hit should fail. Unarmed points
/// always return false (hits are still counted, so coverage of fault
/// points is observable). Thread-safe.
bool ShouldFail(std::string_view point);

/// Number of times `point` was evaluated / failed since the last Reset.
uint64_t HitCount(std::string_view point);
uint64_t FailCount(std::string_view point);

struct PointStats {
  std::string name;
  uint64_t hits = 0;
  uint64_t failures = 0;
};
/// Every point seen since the last Reset, sorted by name.
std::vector<PointStats> Snapshot();

}  // namespace fault_injection
}  // namespace kgaq

/// Evaluates to true when the named fault point should fail this hit.
/// Zero-cost when injection is disabled (one relaxed atomic load).
#define KGAQ_FAULT_POINT(point)               \
  (::kgaq::fault_injection::Enabled() &&      \
   ::kgaq::fault_injection::ShouldFail(point))

#endif  // KGAQ_COMMON_FAULT_INJECTION_H_
