#ifndef KGAQ_COMMON_THREAD_POOL_H_
#define KGAQ_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace kgaq {

/// A fixed-size worker pool.
///
/// The chain-query engine (§V of the paper) runs each second-stage sampling
/// "as a thread"; BranchSampler submits those samplings here. Tasks are
/// plain std::function<void()>; synchronization of results is the caller's
/// job (see TaskGroup / ParallelFor for the common fork-join case).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution on some worker.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing. On a shared
  /// pool this includes tasks submitted by other callers; prefer TaskGroup
  /// for fork-join over the shared GlobalPool().
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// True while the calling thread is executing a pool task — on a worker
  /// thread of any pool, or on a thread running a group task inside a
  /// helping TaskGroup::Wait (so the answer depends on call context, never
  /// on which thread the scheduler happened to pick). TaskGroup::Wait
  /// drains its own group's queued tasks while waiting, so nested
  /// fork-join cannot deadlock; some parallel helpers still check this to
  /// pick a serial schedule inside pool tasks where the outer parallelism
  /// is already at the right granularity (stationary sweeps inside chain
  /// stage builds).
  static bool OnPoolWorker();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

/// The process-wide shared worker pool, sized to the hardware concurrency
/// and constructed on first use. Sharing one pool across every sampler and
/// session avoids the thread-spawn cost that a per-Build local pool paid on
/// each chain query, and keeps total threads bounded under concurrent
/// sessions. Never destroyed (workers would otherwise race static
/// destruction at exit).
ThreadPool& GlobalPool();

/// Fork-join scope over a (possibly shared) pool: counts only its own
/// tasks, so concurrent TaskGroups on GlobalPool() wait independently.
///
/// Wait() is work-helping: while the group still has queued (not yet
/// started) tasks, the waiting thread pops and runs them itself instead of
/// blocking. This makes nested fork-join deadlock-free by construction —
/// a pool task that creates a group and Waits drains that group's queue
/// inline even when every pool worker is busy, so the old
/// OnPoolWorker()-guarded serial fallback in ParallelFor is gone.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool);
  ~TaskGroup() { Wait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Enqueues `task` on the pool and tracks it in this group.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted through THIS group has finished,
  /// helping to run the group's own queued tasks while it waits.
  void Wait();

 private:
  // Shared with the pool runners so a runner scheduled after the group's
  // destruction (its task was already drained by a helping waiter) still
  // has valid state to inspect.
  struct State {
    std::mutex mu;
    std::condition_variable done;
    std::deque<std::function<void()>> queue;
    size_t pending = 0;
  };

  // Pops and runs one queued task of `state`; returns false when the
  // queue is empty.
  static bool RunOne(State& state);

  ThreadPool& pool_;
  std::shared_ptr<State> state_;
};

/// Runs body(i) for i in [0, n) across the pool and joins. Safe on the
/// shared GlobalPool(): only its own iterations are awaited, and the
/// helping Wait makes it safe to call from inside a pool task (nested
/// fork-join drains its own iterations instead of deadlocking).
void ParallelFor(ThreadPool& pool, size_t n,
                 const std::function<void(size_t)>& body);

}  // namespace kgaq

#endif  // KGAQ_COMMON_THREAD_POOL_H_
