#ifndef KGAQ_COMMON_THREAD_POOL_H_
#define KGAQ_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace kgaq {

/// A fixed-size worker pool.
///
/// The chain-query engine (§V of the paper) runs each second-stage sampling
/// "as a thread"; ChainEngine submits those samplings here. Tasks are plain
/// std::function<void()>; synchronization of results is the caller's job
/// (see ParallelFor for the common fork-join case).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution on some worker.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

/// Runs body(i) for i in [0, n) across the pool and joins.
void ParallelFor(ThreadPool& pool, size_t n,
                 const std::function<void(size_t)>& body);

}  // namespace kgaq

#endif  // KGAQ_COMMON_THREAD_POOL_H_
