#ifndef KGAQ_COMMON_THREAD_POOL_H_
#define KGAQ_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace kgaq {

/// A fixed-size worker pool.
///
/// The chain-query engine (§V of the paper) runs each second-stage sampling
/// "as a thread"; BranchSampler submits those samplings here. Tasks are
/// plain std::function<void()>; synchronization of results is the caller's
/// job (see TaskGroup / ParallelFor for the common fork-join case).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution on some worker.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing. On a shared
  /// pool this includes tasks submitted by other callers; prefer TaskGroup
  /// for fork-join over the shared GlobalPool().
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// True when the calling thread is a kgaq pool worker (of any pool).
  /// TaskGroup::Wait does not steal work, so fork-join issued from inside a
  /// pool task can deadlock once every worker blocks in a nested Wait;
  /// parallel helpers (stationary sweeps, sharded validation) check this
  /// and fall back to serial execution on worker threads.
  static bool OnPoolWorker();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

/// The process-wide shared worker pool, sized to the hardware concurrency
/// and constructed on first use. Sharing one pool across every sampler and
/// session avoids the thread-spawn cost that a per-Build local pool paid on
/// each chain query, and keeps total threads bounded under concurrent
/// sessions. Never destroyed (workers would otherwise race static
/// destruction at exit).
ThreadPool& GlobalPool();

/// Fork-join scope over a (possibly shared) pool: counts only its own
/// tasks, so concurrent TaskGroups on GlobalPool() wait independently.
/// Do not call Wait() from inside a task running on the same pool.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}
  ~TaskGroup() { Wait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Enqueues `task` on the pool and tracks it in this group.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted through THIS group has finished.
  void Wait();

 private:
  ThreadPool& pool_;
  std::mutex mu_;
  std::condition_variable done_;
  size_t pending_ = 0;
};

/// Runs body(i) for i in [0, n) across the pool and joins. Safe on the
/// shared GlobalPool(): only its own iterations are awaited. When called
/// from a pool worker it runs the iterations inline instead of forking
/// (see OnPoolWorker), so nested fork-join can never deadlock.
void ParallelFor(ThreadPool& pool, size_t n,
                 const std::function<void(size_t)>& body);

}  // namespace kgaq

#endif  // KGAQ_COMMON_THREAD_POOL_H_
