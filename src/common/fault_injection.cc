#include "common/fault_injection.h"

#include <algorithm>
#include <mutex>
#include <unordered_map>

namespace kgaq {
namespace fault_injection {

namespace internal {
std::atomic<bool> g_enabled{false};
}  // namespace internal

namespace {

struct Point {
  double probability = 0.0;
  uint64_t fail_next = 0;  ///< unconditional failures left (ArmCount)
  uint64_t hits = 0;
  uint64_t failures = 0;
};

struct Registry {
  std::mutex mu;
  uint64_t seed = 0;
  // Keys are the string_view literals' contents, owned by the map.
  std::unordered_map<std::string, Point> points;
};

Registry& GetRegistry() {
  static Registry* r = new Registry();  // leaked: outlives every test
  return *r;
}

uint64_t SplitMix64(uint64_t z) {
  z += 0x9E3779B97F4A7C15ULL;
  z ^= z >> 30;
  z *= 0xBF58476D1CE4E5B9ULL;
  z ^= z >> 27;
  z *= 0x94D049BB133111EBULL;
  z ^= z >> 31;
  return z;
}

uint64_t HashName(std::string_view name) {
  // FNV-1a: stable across platforms so a seed reproduces everywhere.
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

void Enable(uint64_t seed) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.seed = seed;
  internal::g_enabled.store(true, std::memory_order_relaxed);
}

void Disable() {
  internal::g_enabled.store(false, std::memory_order_relaxed);
}

void Reset() {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  internal::g_enabled.store(false, std::memory_order_relaxed);
  r.points.clear();
  r.seed = 0;
}

void Arm(std::string_view point, double probability) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  Point& p = r.points[std::string(point)];
  p.probability = std::clamp(probability, 0.0, 1.0);
  p.fail_next = 0;
}

void ArmCount(std::string_view point, uint64_t times) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  Point& p = r.points[std::string(point)];
  p.probability = 0.0;
  p.fail_next = times;
}

bool ShouldFail(std::string_view point) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  Point& p = r.points[std::string(point)];
  const uint64_t hit = p.hits++;
  bool fail = false;
  if (p.fail_next > 0) {
    --p.fail_next;
    fail = true;
  } else if (p.probability > 0.0) {
    // The i-th hit's decision is a pure function of (seed, name, i):
    // same seed → same failing hit indices, independent of schedule.
    const uint64_t draw = SplitMix64(r.seed ^ HashName(point) ^ hit);
    // Top 53 bits → uniform double in [0, 1).
    const double u =
        static_cast<double>(draw >> 11) * 0x1.0p-53;
    fail = u < p.probability;
  }
  if (fail) ++p.failures;
  return fail;
}

uint64_t HitCount(std::string_view point) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.points.find(std::string(point));
  return it == r.points.end() ? 0 : it->second.hits;
}

uint64_t FailCount(std::string_view point) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.points.find(std::string(point));
  return it == r.points.end() ? 0 : it->second.failures;
}

std::vector<PointStats> Snapshot() {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<PointStats> out;
  out.reserve(r.points.size());
  for (const auto& [name, p] : r.points) {
    out.push_back({name, p.hits, p.failures});
  }
  std::sort(out.begin(), out.end(),
            [](const PointStats& a, const PointStats& b) {
              return a.name < b.name;
            });
  return out;
}

}  // namespace fault_injection
}  // namespace kgaq
