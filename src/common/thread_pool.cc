#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

namespace kgaq {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

namespace {
thread_local bool t_on_pool_worker = false;
}  // namespace

bool ThreadPool::OnPoolWorker() { return t_on_pool_worker; }

namespace {
// Marks the current thread as executing a pool task for the duration of
// a TaskGroup task run by a helping waiter, so OnPoolWorker() answers
// "am I inside a pool task?" identically whether the task landed on a
// worker or on the thread draining its own group — keeping granularity
// guards (e.g. the stationary sweep's) deterministic, not schedule-
// dependent.
class ScopedPoolTaskMark {
 public:
  ScopedPoolTaskMark() : prev_(t_on_pool_worker) { t_on_pool_worker = true; }
  ~ScopedPoolTaskMark() { t_on_pool_worker = prev_; }

 private:
  bool prev_;
};
}  // namespace

void ThreadPool::WorkerLoop() {
  t_on_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(lock,
                           [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

ThreadPool& GlobalPool() {
  static ThreadPool* pool = new ThreadPool(
      std::max(2u, std::thread::hardware_concurrency()));
  return *pool;
}

TaskGroup::TaskGroup(ThreadPool& pool)
    : pool_(pool), state_(std::make_shared<State>()) {}

bool TaskGroup::RunOne(State& state) {
  std::function<void()> task;
  {
    std::unique_lock<std::mutex> lock(state.mu);
    if (state.queue.empty()) return false;
    task = std::move(state.queue.front());
    state.queue.pop_front();
  }
  {
    ScopedPoolTaskMark mark;
    task();
  }
  {
    std::unique_lock<std::mutex> lock(state.mu);
    if (--state.pending == 0) state.done.notify_all();
  }
  return true;
}

void TaskGroup::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->queue.push_back(std::move(task));
    ++state_->pending;
    // A helper blocked in Wait must see newly queued work, not just
    // completion.
    state_->done.notify_one();
  }
  // The runner holds the state alive: it may be dequeued by the pool after
  // a helping waiter already drained its task and destroyed the group.
  pool_.Submit([state = state_] { RunOne(*state); });
}

void TaskGroup::Wait() {
  State& state = *state_;
  for (;;) {
    // Help: drain this group's queued tasks on the waiting thread. Any
    // task popped here is one no pool worker has started, so running it
    // inline is a valid fork-join schedule — and the reason a pool task
    // waiting on its own nested group always makes progress.
    while (RunOne(state)) {
    }
    std::unique_lock<std::mutex> lock(state.mu);
    if (state.pending == 0) return;
    state.done.wait(lock, [&state] {
      return state.pending == 0 || !state.queue.empty();
    });
    if (state.pending == 0) return;
  }
}

void ParallelFor(ThreadPool& pool, size_t n,
                 const std::function<void(size_t)>& body) {
  TaskGroup group(pool);
  for (size_t i = 0; i < n; ++i) {
    group.Submit([i, &body] { body(i); });
  }
  group.Wait();
}

}  // namespace kgaq
