#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

namespace kgaq {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

namespace {
thread_local bool t_on_pool_worker = false;
}  // namespace

bool ThreadPool::OnPoolWorker() { return t_on_pool_worker; }

void ThreadPool::WorkerLoop() {
  t_on_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(lock,
                           [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

ThreadPool& GlobalPool() {
  static ThreadPool* pool = new ThreadPool(
      std::max(2u, std::thread::hardware_concurrency()));
  return *pool;
}

void TaskGroup::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    ++pending_;
  }
  pool_.Submit([this, task = std::move(task)] {
    task();
    std::unique_lock<std::mutex> lock(mu_);
    if (--pending_ == 0) done_.notify_all();
  });
}

void TaskGroup::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_.wait(lock, [this] { return pending_ == 0; });
}

void ParallelFor(ThreadPool& pool, size_t n,
                 const std::function<void(size_t)>& body) {
  if (ThreadPool::OnPoolWorker()) {
    // Already on a worker: run inline. TaskGroup::Wait does not steal
    // work, so forking from a worker can deadlock once every worker
    // blocks in a nested Wait; inline execution is a valid fork-join
    // schedule and keeps nested callers (chain stage builds issuing
    // sweeps, sessions driven from pool tasks) safe by construction.
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  TaskGroup group(pool);
  for (size_t i = 0; i < n; ++i) {
    group.Submit([i, &body] { body(i); });
  }
  group.Wait();
}

}  // namespace kgaq
