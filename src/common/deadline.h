#ifndef KGAQ_COMMON_DEADLINE_H_
#define KGAQ_COMMON_DEADLINE_H_

#include <chrono>
#include <limits>

namespace kgaq {

/// A point on the monotonic clock by which some work must finish.
///
/// Built once (typically at request submission) and then polled cheaply
/// from cooperative cancellation points: the serving scheduler checks a
/// query's deadline between Algorithm-2 rounds, so an expired query
/// retires at the next round boundary instead of being torn down
/// mid-draw. Uses steady_clock throughout — wall-clock adjustments
/// (NTP, DST) can never extend or shorten a query's budget.
class Deadline {
 public:
  /// Default: no deadline (never expires).
  Deadline() : tp_(Clock::time_point::max()) {}

  static Deadline Infinite() { return Deadline(); }

  /// Expires `ms` milliseconds from now. Non-positive budgets produce an
  /// already-expired deadline (useful for "fail fast" probes); NaN and
  /// budgets too large for the clock (including +inf — remember `ms` can
  /// arrive from the network) mean "no deadline". The clamp keeps the
  /// double→duration cast defined for every input.
  static Deadline AfterMillis(double ms) {
    if (!(ms > 0.0)) {  // also catches NaN
      Deadline d;
      d.tp_ = Clock::now();
      return d;
    }
    // ~292 years of nanoseconds overflows int64; anything past ten years
    // is indistinguishable from "never" for a query deadline.
    constexpr double kMaxMillis = 3.16e11;  // ~10 years
    if (!(ms < kMaxMillis)) return Infinite();
    Deadline d;
    d.tp_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double, std::milli>(ms));
    return d;
  }

  bool is_infinite() const { return tp_ == Clock::time_point::max(); }

  /// True once the monotonic clock has passed the deadline.
  bool expired() const {
    return !is_infinite() && Clock::now() >= tp_;
  }

  /// Milliseconds left before expiry; +inf for an infinite deadline,
  /// never negative.
  double remaining_millis() const {
    if (is_infinite()) return std::numeric_limits<double>::infinity();
    const auto left = std::chrono::duration<double, std::milli>(
        tp_ - Clock::now());
    return left.count() > 0.0 ? left.count() : 0.0;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point tp_;
};

}  // namespace kgaq

#endif  // KGAQ_COMMON_DEADLINE_H_
