#include "common/random.h"

#include <cmath>

namespace kgaq {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless method.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = -bound % bound;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextGaussian() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * mul;
  has_spare_ = true;
  return u * mul;
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

uint64_t Rng::NextPoisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean > 32.0) {
    const double draw = mean + std::sqrt(mean) * NextGaussian();
    return draw <= 0.0 ? 0 : static_cast<uint64_t>(draw + 0.5);
  }
  const double limit = std::exp(-mean);
  uint64_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= NextDouble();
  } while (p > limit);
  return k - 1;
}

size_t Rng::NextWeighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w > 0.0) total += w;
  }
  if (total <= 0.0 || weights.empty()) {
    return weights.empty() ? 0 : NextBounded(weights.size());
  }
  double target = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] <= 0.0) continue;
    acc += weights[i];
    if (target < acc) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() {
  uint64_t child_seed = Next() ^ 0xA0761D6478BD642FULL;
  return Rng(child_seed);
}

}  // namespace kgaq
