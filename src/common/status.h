#ifndef KGAQ_COMMON_STATUS_H_
#define KGAQ_COMMON_STATUS_H_

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace kgaq {

/// Error codes used across the kgaq library. Modeled after the
/// RocksDB/Arrow status idiom: no exceptions cross API boundaries.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kInternal = 6,
  kIoError = 7,
  kUnimplemented = 8,
  /// A bounded resource (admission queue, budget, quota) is full; the
  /// operation was rejected without side effects and may be retried
  /// later. The serving layer maps this to HTTP 429.
  kResourceExhausted = 9,
  /// The service cannot take the request right now (shutting down,
  /// connection-level failure); safe to retry against the same or
  /// another instance. The serving layer maps this to HTTP 503.
  kUnavailable = 10,
};

/// Returns a stable human-readable name for a status code.
const char* StatusCodeToString(StatusCode code);

/// The single place status codes translate to HTTP response codes, shared
/// by the HTTP front-end and the retrying client so the wire taxonomy
/// cannot drift: kOk→200, kInvalidArgument/kOutOfRange→400,
/// kFailedPrecondition→412, kNotFound→404, kAlreadyExists→409,
/// kResourceExhausted→429, kUnavailable→503, kUnimplemented→501,
/// kInternal/kIoError→500.
int HttpStatusForCode(StatusCode code);

/// A lightweight status object carrying a code and an optional message.
///
/// Usage:
///   Status s = DoThing();
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders e.g. "InvalidArgument: tau must be in [0,1]".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// A value-or-status holder, the library's exception-free return channel.
///
/// Usage:
///   Result<KnowledgeGraph> r = TsvLoader::Load(path);
///   if (!r.ok()) return r.status();
///   KnowledgeGraph g = std::move(r).value();
template <typename T>
class Result {
 public:
  /// Implicit construction from a value makes `return value;` work.
  Result(T value) : value_(std::move(value)) {}  // NOLINT
  /// Implicit construction from an error status.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok() && value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

  /// Returns the value or `fallback` when this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status from an expression to the caller.
#define KGAQ_RETURN_IF_ERROR(expr)                    \
  do {                                                \
    ::kgaq::Status kgaq_status_tmp_ = (expr);         \
    if (!kgaq_status_tmp_.ok()) return kgaq_status_tmp_; \
  } while (false)

}  // namespace kgaq

#endif  // KGAQ_COMMON_STATUS_H_
