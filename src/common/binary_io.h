#ifndef KGAQ_COMMON_BINARY_IO_H_
#define KGAQ_COMMON_BINARY_IO_H_

#include <istream>
#include <ostream>
#include <type_traits>

namespace kgaq {

/// Raw little-endian POD stream helpers shared by the binary persistence
/// layers (kg/snapshot, embedding_io). The on-disk byte order is the
/// host's — the snapshot container's endianness marker is what keeps the
/// format honest (see docs/snapshot_format.md).

template <typename T>
void WritePod(std::ostream& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& in, T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  return in.good();
}

}  // namespace kgaq

#endif  // KGAQ_COMMON_BINARY_IO_H_
