#include "core/engine_context.h"

#include <utility>

#include "kg/bfs.h"
#include "sampling/random_walk.h"

namespace kgaq {

namespace {

/// Flat allowance per cache-map node (key + slot + red-black
/// bookkeeping), folded into each sizer so the governed byte figures
/// stay comparable to the pre-governor Stats() accounting.
constexpr size_t kMapNodeOverhead = 64;

}  // namespace

EngineContext::EngineContext(const KnowledgeGraph& g,
                             const EmbeddingModel& model,
                             EngineCacheOptions cache_options)
    : g_(&g), model_(&model), cache_options_(cache_options) {
  InitCaches();
}

EngineContext::EngineContext(KnowledgeGraph graph,
                             std::unique_ptr<EmbeddingModel> model,
                             EngineCacheOptions cache_options)
    : owned_graph_(std::move(graph)),
      owned_model_(std::move(model)),
      cache_options_(cache_options) {
  g_ = &*owned_graph_;
  model_ = owned_model_.get();
  InitCaches();
}

void EngineContext::InitCaches() {
  CacheBudgetOptions b;
  b.budget_bytes = cache_options_.budget_bytes;
  b.pressured_enter = cache_options_.pressured_enter;
  b.pressured_exit = cache_options_.pressured_exit;
  b.critical_enter = cache_options_.critical_enter;
  b.critical_exit = cache_options_.critical_exit;
  budget_ = std::make_shared<CacheBudget>(b);

  // Similarity rows are always admitted: they are tiny relative to walk
  // cores, and every core build for the predicate needs one anyway.
  GovernedCache<SimsKey, const PredicateSimilarityCache>::Options sims_opts;
  sims_opts.max_tracked_keys = cache_options_.max_tracked_keys;
  sims_ = std::make_unique<
      GovernedCache<SimsKey, const PredicateSimilarityCache>>(
      budget_,
      [](const PredicateSimilarityCache& row) {
        return sizeof(row) + row.size() * sizeof(double) + kMapNodeOverhead;
      },
      sims_opts);

  GovernedCache<WalkCoreKey, const WalkCore>::Options core_opts;
  core_opts.admission_min_requests =
      cache_options_.core_admission_min_requests;
  core_opts.max_tracked_keys = cache_options_.max_tracked_keys;
  cores_ = std::make_unique<GovernedCache<WalkCoreKey, const WalkCore>>(
      budget_,
      [](const WalkCore& core) {
        return sizeof(core) + core.transitions.MemoryBytes() +
               core.pi.capacity() * sizeof(double) + kMapNodeOverhead;
      },
      core_opts);

  GovernedCache<std::string, ChainValidationCache>::Options chain_opts;
  chain_opts.admission_min_requests =
      cache_options_.chain_admission_min_requests;
  chain_opts.max_tracked_keys = cache_options_.max_tracked_keys;
  chain_ = std::make_unique<GovernedCache<std::string, ChainValidationCache>>(
      budget_,
      [](const ChainValidationCache& store) {
        // Baseline only: a store is empty at admission and reports every
        // profile it later lands through its byte sink.
        return sizeof(store) + kMapNodeOverhead;
      },
      chain_opts);
  // Wire each admitted store's live growth into its entry control, so
  // profiles inserted after admission keep the budget honest (and the
  // store evictable at its true cost).
  chain_->set_materialize_hook(
      [](ChainValidationCache& store,
         const std::shared_ptr<governor_internal::EntryControl>& control) {
        store.SetByteSink([control](size_t delta) { control->Grow(delta); });
      });
}

Result<std::shared_ptr<EngineContext>> EngineContext::LoadFromSnapshot(
    const std::string& path, EngineCacheOptions cache_options) {
  auto snap = LoadEngineSnapshot(path);
  if (!snap.ok()) return snap.status();
  if (snap->embedding == nullptr) {
    return Status::FailedPrecondition(
        "snapshot '" + path +
        "' has no embedding section; a resident engine context needs one "
        "(save with SaveEngineSnapshot(graph, &model, path))");
  }
  // The embedding must cover the graph it is served with, or the first
  // query would index past the vector tables.
  if (snap->embedding->num_entities() < snap->graph.NumNodes() ||
      snap->embedding->num_predicates() < snap->graph.NumPredicates()) {
    return Status::FailedPrecondition(
        "snapshot '" + path + "' embedding covers " +
        std::to_string(snap->embedding->num_entities()) + " entities / " +
        std::to_string(snap->embedding->num_predicates()) +
        " predicates but the graph has " +
        std::to_string(snap->graph.NumNodes()) + " nodes / " +
        std::to_string(snap->graph.NumPredicates()) +
        " predicates — it was trained for a different graph");
  }
  return std::make_shared<EngineContext>(
      std::move(snap->graph), std::move(snap->embedding), cache_options);
}

std::shared_ptr<const PredicateSimilarityCache>
EngineContext::PredicateSimilarities(PredicateId query_predicate, double floor,
                                     CachePinScope* pins) const {
  const SimsKey key{query_predicate, floor};
  return sims_->GetOrBuild(
      key,
      [&] {
        return std::make_shared<const PredicateSimilarityCache>(
            *model_, query_predicate, floor);
      },
      pins);
}

std::shared_ptr<const EngineContext::WalkCore> EngineContext::ScopedWalkCore(
    const WalkCoreKey& key, CachePinScope* pins) const {
  return cores_->GetOrBuild(
      key,
      [&] {
        // The similarity row is only read during TransitionModel
        // construction (nothing in the finished core references it), so
        // the internal lookup borrows without the caller's pin scope.
        auto sims =
            PredicateSimilarities(key.query_predicate, key.sims_floor);
        const BoundedSubgraph scope = BoundedBfs(*g_, key.root, key.n_hops);
        TransitionOptions t_opts;
        t_opts.self_loop_similarity = key.self_loop_similarity;
        TransitionModel transitions(*g_, scope, *sims, t_opts);
        StationaryOptions st_opts;
        st_opts.max_iterations = key.stationary_max_iterations;
        std::vector<double> pi =
            ComputeStationaryDistribution(transitions, st_opts).pi;
        return std::make_shared<const WalkCore>(std::move(transitions),
                                                std::move(pi));
      },
      pins);
}

std::shared_ptr<ChainValidationCache> EngineContext::ChainProfiles(
    const std::string& branch_signature, CachePinScope* pins) const {
  // A declined admission hands back a fresh ephemeral store (no byte
  // sink): the query still memoizes its own backward searches, it just
  // doesn't share them — profiles are pure functions of their key, so
  // results are identical either way.
  return chain_->GetOrBuild(
      branch_signature, [] { return std::make_shared<ChainValidationCache>(); },
      pins);
}

EngineContext::CacheStats EngineContext::Stats() const {
  CacheStats out;
  const GovernedCacheStats sims = sims_->Stats();
  const GovernedCacheStats cores = cores_->Stats();
  const GovernedCacheStats chain = chain_->Stats();

  out.sims_hits = sims.hits;
  out.sims_misses = sims.misses;
  out.sims_entries = sims.entries;
  out.sims_bytes = sims.bytes;
  out.core_hits = cores.hits;
  out.core_misses = cores.misses;
  out.core_entries = cores.entries;
  out.core_bytes = cores.bytes;

  // Chain hits/misses/entries keep their pre-governor meaning: profile-
  // level reuse summed over every resident per-signature store. The byte
  // figure is the governed accounting (baseline + sink-reported growth),
  // i.e. exactly what the shared budget was charged for these stores.
  for (const auto& store : chain_->Values()) {
    const ChainValidationCache::Stats s = store->stats();
    out.chain_hits += s.hits;
    out.chain_misses += s.misses;
    out.chain_entries += s.entries;
  }
  out.chain_bytes = chain.bytes;

  out.budget_bytes = budget_->budget_bytes();
  out.charged_bytes = budget_->charged_bytes();
  out.pinned_bytes = budget_->pinned_bytes();
  out.evictions = sims.evictions + cores.evictions + chain.evictions;
  out.admission_rejects = sims.admission_rejects + cores.admission_rejects +
                          chain.admission_rejects;
  out.shed_builds = sims.shed_builds + cores.shed_builds + chain.shed_builds;
  out.alloc_failures =
      sims.alloc_failures + cores.alloc_failures + chain.alloc_failures;
  out.build_failures =
      sims.build_failures + cores.build_failures + chain.build_failures;
  out.pressure = budget_->pressure();
  return out;
}

}  // namespace kgaq
