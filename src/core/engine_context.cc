#include "core/engine_context.h"

#include <chrono>
#include <utility>

#include "kg/bfs.h"
#include "sampling/random_walk.h"

namespace kgaq {

EngineContext::EngineContext(const KnowledgeGraph& g,
                             const EmbeddingModel& model)
    : g_(&g), model_(&model) {}

EngineContext::EngineContext(KnowledgeGraph graph,
                             std::unique_ptr<EmbeddingModel> model)
    : owned_graph_(std::move(graph)), owned_model_(std::move(model)) {
  g_ = &*owned_graph_;
  model_ = owned_model_.get();
}

Result<std::shared_ptr<EngineContext>> EngineContext::LoadFromSnapshot(
    const std::string& path) {
  auto snap = LoadEngineSnapshot(path);
  if (!snap.ok()) return snap.status();
  if (snap->embedding == nullptr) {
    return Status::FailedPrecondition(
        "snapshot '" + path +
        "' has no embedding section; a resident engine context needs one "
        "(save with SaveEngineSnapshot(graph, &model, path))");
  }
  // The embedding must cover the graph it is served with, or the first
  // query would index past the vector tables.
  if (snap->embedding->num_entities() < snap->graph.NumNodes() ||
      snap->embedding->num_predicates() < snap->graph.NumPredicates()) {
    return Status::FailedPrecondition(
        "snapshot '" + path + "' embedding covers " +
        std::to_string(snap->embedding->num_entities()) + " entities / " +
        std::to_string(snap->embedding->num_predicates()) +
        " predicates but the graph has " +
        std::to_string(snap->graph.NumNodes()) + " nodes / " +
        std::to_string(snap->graph.NumPredicates()) +
        " predicates — it was trained for a different graph");
  }
  return std::make_shared<EngineContext>(std::move(snap->graph),
                                         std::move(snap->embedding));
}

std::shared_ptr<const PredicateSimilarityCache>
EngineContext::PredicateSimilarities(PredicateId query_predicate,
                                     double floor) const {
  const SimsKey key{query_predicate, floor};
  std::promise<std::shared_ptr<const PredicateSimilarityCache>> promise;
  std::shared_future<std::shared_ptr<const PredicateSimilarityCache>> future;
  {
    std::lock_guard<std::mutex> lock(sims_mu_);
    auto it = sims_.find(key);
    if (it != sims_.end()) {
      sims_hits_.fetch_add(1, std::memory_order_relaxed);
      future = it->second;
    } else {
      sims_.emplace(key, promise.get_future().share());
    }
  }
  if (future.valid()) return future.get();  // built, or in flight

  sims_misses_.fetch_add(1, std::memory_order_relaxed);
  try {
    auto built = std::make_shared<const PredicateSimilarityCache>(
        *model_, query_predicate, floor);
    promise.set_value(built);
    return built;
  } catch (...) {
    // Un-claim the key so a later request can retry instead of hitting a
    // permanently broken promise.
    {
      std::lock_guard<std::mutex> lock(sims_mu_);
      sims_.erase(key);
    }
    promise.set_exception(std::current_exception());
    throw;
  }
}

std::shared_ptr<const EngineContext::WalkCore> EngineContext::ScopedWalkCore(
    const WalkCoreKey& key) const {
  std::promise<std::shared_ptr<const WalkCore>> promise;
  std::shared_future<std::shared_ptr<const WalkCore>> future;
  {
    std::lock_guard<std::mutex> lock(cores_mu_);
    auto it = cores_.find(key);
    if (it != cores_.end()) {
      core_hits_.fetch_add(1, std::memory_order_relaxed);
      future = it->second;
    } else {
      // Claim the key: later requesters find the future and wait for
      // this thread's build instead of duplicating it.
      cores_.emplace(key, promise.get_future().share());
    }
  }
  if (future.valid()) return future.get();  // built, or in flight

  core_misses_.fetch_add(1, std::memory_order_relaxed);
  // Build outside the lock: cores are pure functions of (graph, model,
  // key), so concurrent requests for other keys proceed, and waiters on
  // this key observe exactly the value they would have computed.
  try {
    auto sims = PredicateSimilarities(key.query_predicate, key.sims_floor);
    const BoundedSubgraph scope = BoundedBfs(*g_, key.root, key.n_hops);
    TransitionOptions t_opts;
    t_opts.self_loop_similarity = key.self_loop_similarity;
    TransitionModel transitions(*g_, scope, *sims, t_opts);
    StationaryOptions st_opts;
    st_opts.max_iterations = key.stationary_max_iterations;
    std::vector<double> pi =
        ComputeStationaryDistribution(transitions, st_opts).pi;
    auto built = std::make_shared<const WalkCore>(std::move(transitions),
                                                  std::move(pi));
    promise.set_value(built);
    return built;
  } catch (...) {
    // Un-claim the key so a later request can retry instead of hitting a
    // permanently broken promise.
    {
      std::lock_guard<std::mutex> lock(cores_mu_);
      cores_.erase(key);
    }
    promise.set_exception(std::current_exception());
    throw;
  }
}

std::shared_ptr<ChainValidationCache> EngineContext::ChainProfiles(
    const std::string& branch_signature) const {
  std::lock_guard<std::mutex> lock(chain_mu_);
  auto& slot = chain_caches_[branch_signature];
  if (slot == nullptr) slot = std::make_shared<ChainValidationCache>();
  return slot;
}

namespace {

/// The cached value behind a ready future, or nullptr for a build still
/// in flight (its promise is unfulfilled — the entry counts, its bytes
/// don't yet). Ready futures of this codebase never carry exceptions
/// (builders re-throw after un-claiming the key), so get() is safe.
template <typename T>
std::shared_ptr<T> ValueIfReady(const std::shared_future<std::shared_ptr<T>>& f) {
  if (!f.valid() ||
      f.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
    return nullptr;
  }
  return f.get();
}

}  // namespace

EngineContext::CacheStats EngineContext::Stats() const {
  CacheStats out;
  out.sims_hits = sims_hits_.load(std::memory_order_relaxed);
  out.sims_misses = sims_misses_.load(std::memory_order_relaxed);
  out.core_hits = core_hits_.load(std::memory_order_relaxed);
  out.core_misses = core_misses_.load(std::memory_order_relaxed);
  // Flat allowance per map node (key + value + red-black bookkeeping).
  constexpr size_t kMapNodeOverhead = 64;
  {
    std::lock_guard<std::mutex> lock(sims_mu_);
    out.sims_entries = sims_.size();
    for (const auto& [key, future] : sims_) {
      out.sims_bytes += kMapNodeOverhead;
      if (auto row = ValueIfReady(future); row != nullptr) {
        out.sims_bytes += sizeof(*row) + row->size() * sizeof(double);
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(cores_mu_);
    out.core_entries = cores_.size();
    for (const auto& [key, future] : cores_) {
      out.core_bytes += kMapNodeOverhead;
      if (auto core = ValueIfReady(future); core != nullptr) {
        out.core_bytes += sizeof(*core) + core->transitions.MemoryBytes() +
                          core->pi.capacity() * sizeof(double);
      }
    }
  }
  std::lock_guard<std::mutex> lock(chain_mu_);
  for (const auto& [sig, cache] : chain_caches_) {
    const ChainValidationCache::Stats s = cache->stats();
    out.chain_hits += s.hits;
    out.chain_misses += s.misses;
    out.chain_entries += s.entries;
    out.chain_bytes += s.bytes + sig.capacity() + kMapNodeOverhead;
  }
  return out;
}

}  // namespace kgaq
