#ifndef KGAQ_CORE_CACHE_GOVERNOR_H_
#define KGAQ_CORE_CACHE_GOVERNOR_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/fault_injection.h"

namespace kgaq {

/// Memory-pressure state of a CacheBudget — a three-state machine over
/// the *pinned* budget fill (pinned_bytes / budget_bytes), with
/// hysteresis exactly like the serving layer's OverloadState:
///
///   Healthy ──fill ≥ pressured_enter──▶ Pressured ──fill ≥ critical_enter──▶ Critical
///      ▲◀──fill ≤ pressured_exit──────────┘  ▲◀─────fill ≤ critical_exit──────┘
///
/// The fill is measured over PINNED bytes, not total resident bytes: a
/// full cache of evictable entries is the normal steady state of LRU
/// operation (eviction can always make room), so it is not pressure.
/// Pressure means demand that eviction cannot satisfy — bytes borrowed
/// by in-flight sessions that provably may not be reclaimed. Under
/// Critical, GovernedCache stops admitting new builds (queries run with
/// ephemeral structures, marked degraded upstream) instead of growing
/// past the budget or evicting someone's live state.
enum class MemoryPressure : uint8_t { kHealthy, kPressured, kCritical };

/// "healthy", "pressured", "critical".
const char* MemoryPressureToString(MemoryPressure p);

/// Knobs of one shared cache budget. budget_bytes == 0 disables
/// governance entirely: nothing is evicted, pressure is always Healthy,
/// and every build is admitted — the pre-governor behavior.
struct CacheBudgetOptions {
  size_t budget_bytes = 0;
  /// Pressure thresholds as fractions of budget_bytes over pinned fill.
  /// Enter thresholds must sit above their exits (the hysteresis band).
  double pressured_enter = 0.70;
  double pressured_exit = 0.50;
  double critical_enter = 0.90;
  double critical_exit = 0.70;
};

/// One byte budget shared by every GovernedCache of an EngineContext.
/// Tracks resident (charged) and pinned bytes, derives the pressure
/// state, and coordinates eviction: caches register a reclaimer, and
/// Rebalance() drives them round-robin until the charge fits the budget
/// or nothing unpinned remains.
///
/// Lock hierarchy (a thread may only take locks downward):
///   GovernedCache::mu_  >  EntryControl::mu  >  CacheBudget::mu_
/// Rebalance() itself holds none of these while calling reclaimers (it
/// serializes concurrent rebalancers with a dedicated try-lock).
class CacheBudget {
 public:
  explicit CacheBudget(CacheBudgetOptions options = {});

  bool bounded() const { return options_.budget_bytes > 0; }
  size_t budget_bytes() const { return options_.budget_bytes; }

  /// Resident-byte accounting (called by GovernedCache under its locks).
  void Charge(size_t bytes);
  void Release(size_t bytes);
  /// Pinned-byte accounting: the subset of charged bytes some live
  /// CachePinScope holds. Drives the pressure state.
  void PinCharge(size_t bytes);
  void PinRelease(size_t bytes);

  size_t charged_bytes() const;
  size_t pinned_bytes() const;
  MemoryPressure pressure() const;
  bool OverBudget() const;
  /// True while Critical: new cache builds should run ephemeral.
  bool ShouldShedBuilds() const {
    return pressure() == MemoryPressure::kCritical;
  }

  /// A reclaimer evicts unpinned entries toward the budget and returns
  /// the bytes it freed. Registered once per cache at construction.
  using Reclaimer = std::function<size_t()>;
  void RegisterReclaimer(Reclaimer fn);

  /// Runs reclaimers while the charge exceeds the budget and progress is
  /// being made. Safe to call from any thread holding NO governor locks;
  /// concurrent calls coalesce (losers return immediately — the winner
  /// is already evicting on their behalf). No-op when unbounded.
  void Rebalance();

 private:
  void UpdatePressureLocked();

  const CacheBudgetOptions options_;
  mutable std::mutex mu_;
  size_t charged_ = 0;
  size_t pinned_ = 0;
  MemoryPressure pressure_ = MemoryPressure::kHealthy;
  std::vector<Reclaimer> reclaimers_;

  std::mutex rebalance_mu_;  ///< serializes Rebalance bodies (try-lock)
};

namespace governor_internal {

/// Shared bookkeeping of one cached entry, referenced by its cache's
/// slot and by every CachePinScope currently borrowing the entry. It
/// outlives eviction (scopes may still hold it), so eviction marks it
/// non-resident instead of destroying it; the value itself stays alive
/// through the consumers' shared_ptrs — eviction frees future lookups,
/// never live state.
struct EntryControl {
  explicit EntryControl(std::shared_ptr<CacheBudget> b)
      : budget(std::move(b)) {}

  /// Grows the entry's byte cost (chain-profile stores report Insert
  /// deltas through this) and rebalances. Call with no governor locks.
  void Grow(size_t delta) {
    {
      std::lock_guard<std::mutex> lock(mu);
      bytes += delta;
      if (resident) {
        budget->Charge(delta);
        if (pins > 0) budget->PinCharge(delta);
      }
    }
    budget->Rebalance();
  }

  const std::shared_ptr<CacheBudget> budget;
  std::mutex mu;  ///< guards bytes/pins/resident
  size_t bytes = 0;
  uint32_t pins = 0;
  bool resident = false;
};

}  // namespace governor_internal

/// RAII borrow epoch: everything a QuerySession acquires through a
/// GovernedCache with a pin scope attached stays pinned — provably never
/// evicted — until Release() (called by QuerySession::FinishRun, and by
/// the destructor as a backstop). Pinning is about honesty, not
/// correctness: consumers hold shared_ptrs, so evicting a borrowed entry
/// could never corrupt a result — but it would free no memory while
/// destroying hit-sharing and the budget's accounting of what is
/// actually reclaimable. Thread-safe (branch builds pin concurrently
/// from pool workers).
class CachePinScope {
 public:
  CachePinScope() = default;
  ~CachePinScope() { Release(); }
  CachePinScope(const CachePinScope&) = delete;
  CachePinScope& operator=(const CachePinScope&) = delete;

  /// Unpins every held entry. Idempotent. The caller should follow with
  /// CacheBudget::Rebalance() (or EngineContext::EvictToBudget()) so
  /// newly unpinned bytes become reclaimable immediately.
  void Release() {
    std::vector<std::shared_ptr<governor_internal::EntryControl>> held;
    {
      std::lock_guard<std::mutex> lock(mu_);
      held.swap(pins_);
    }
    for (const auto& control : held) {
      std::lock_guard<std::mutex> elock(control->mu);
      --control->pins;
      if (control->pins == 0 && control->resident) {
        control->budget->PinRelease(control->bytes);
      }
    }
  }

  /// Builds declined under Critical pressure while this scope was
  /// attached — the session ran with ephemeral structures and should be
  /// reported degraded.
  uint64_t shed_builds() const {
    return shed_builds_.load(std::memory_order_relaxed);
  }
  void NoteShedBuild() {
    shed_builds_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  template <typename K, typename V>
  friend class GovernedCache;

  void Add(std::shared_ptr<governor_internal::EntryControl> control) {
    std::lock_guard<std::mutex> lock(mu_);
    pins_.push_back(std::move(control));
  }

  mutable std::mutex mu_;
  std::vector<std::shared_ptr<governor_internal::EntryControl>> pins_;
  std::atomic<uint64_t> shed_builds_{0};
};

/// Counters of one GovernedCache (all since construction).
struct GovernedCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  size_t entries = 0;       ///< resident + in-flight
  size_t bytes = 0;         ///< resident, materialized
  size_t pinned_bytes = 0;  ///< subset of bytes some live scope pins
  uint64_t evictions = 0;
  uint64_t admission_rejects = 0;  ///< frequency-declined (cold keys)
  uint64_t shed_builds = 0;        ///< pressure-declined (Critical)
  uint64_t alloc_failures = 0;     ///< core.cache.alloc fired at insert
  uint64_t build_failures = 0;     ///< builder threw (core.cache.build)
};

/// A budgeted, internally synchronized memo cache over a pure function
/// of its key: byte-cost LRU eviction against a shared CacheBudget,
/// epoch pinning (CachePinScope), frequency-based admission (SamGraph's
/// hot-set discipline: only keys requested >= admission_min_requests
/// times get cached — one-off scans build ephemeral values and cannot
/// thrash the hot set), in-flight build deduplication via shared
/// futures, and deterministic fault points in the build path:
///
///   core.cache.build — the builder itself fails (throws); the claim is
///     released so the next request rebuilds (the cache is never
///     poisoned by a failed build).
///   core.cache.alloc — the build succeeds but inserting/charging the
///     entry fails; the caller (and every deduplicated waiter) still
///     receives the built value, it just never becomes resident.
///
/// Every declined admission (cold key, Critical pressure, injected
/// alloc failure) degrades to an ephemeral build of the same pure
/// function — so governance changes wall-clock and memory, never any
/// result. That is the substrate-level half of the engine's bitwise
/// determinism contract.
template <typename K, typename V>
class GovernedCache {
 public:
  struct Options {
    /// Cache a key only once it has been requested this many times
    /// (counting the request that builds). 1 = always admit.
    uint64_t admission_min_requests = 1;
    /// Bound on the admission counter table; exceeding it halves every
    /// count and drops zeros, so the tracker itself cannot leak.
    size_t max_tracked_keys = 65536;
  };

  using ValuePtr = std::shared_ptr<V>;
  using Builder = std::function<ValuePtr()>;
  /// Byte cost of a materialized value (the MemoryBytes/Stats-style
  /// accounting the budget charges).
  using Sizer = std::function<size_t(const V&)>;
  /// Called once per admitted value right before it becomes resident;
  /// lets the owner wire live byte-growth sinks (chain-profile stores)
  /// to the entry's control.
  using MaterializeHook = std::function<void(
      V&, const std::shared_ptr<governor_internal::EntryControl>&)>;

  GovernedCache(std::shared_ptr<CacheBudget> budget, Sizer sizer,
                Options options = {})
      : budget_(std::move(budget)),
        sizer_(std::move(sizer)),
        options_(options) {
    budget_->RegisterReclaimer([this] { return EvictTowardBudget(); });
  }

  GovernedCache(const GovernedCache&) = delete;
  GovernedCache& operator=(const GovernedCache&) = delete;

  void set_materialize_hook(MaterializeHook hook) {
    materialize_hook_ = std::move(hook);
  }

  /// The value for `key`, building it via `build` on a miss. Concurrent
  /// first requests deduplicate in flight (one builds, the rest wait on
  /// its future). With `pins` attached, the entry is pinned into the
  /// scope (hits and builds alike) and survives every eviction sweep
  /// until the scope releases. Returns an ephemeral (uncached) value
  /// when admission declines — see the class comment. Throws what the
  /// builder throws; a failed build un-claims the key.
  ValuePtr GetOrBuild(const K& key, const Builder& build,
                      CachePinScope* pins = nullptr) {
    std::promise<ValuePtr> promise;
    std::shared_future<ValuePtr> future;
    bool admit = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      const uint64_t requests = RecordRequestLocked(key);
      auto it = map_.find(key);
      if (it != map_.end()) {
        ++hits_;
        if (it->second.in_lru) {
          lru_.splice(lru_.begin(), lru_, it->second.lru);
        }
        future = it->second.future;
      } else {
        ++misses_;
        if (budget_->ShouldShedBuilds()) {
          ++shed_builds_;
          if (pins != nullptr) pins->NoteShedBuild();
        } else if (requests < options_.admission_min_requests) {
          ++admission_rejects_;
        } else {
          admit = true;
          Slot slot;
          slot.future = promise.get_future().share();
          map_.emplace(key, std::move(slot));
        }
      }
    }

    if (future.valid()) {
      ValuePtr value = future.get();  // built, or blocks on the builder
      if (pins != nullptr) PinIfResident(key, pins);
      return value;
    }

    // Build outside every lock. Values are pure functions of the key (on
    // top of the owner's fixed inputs), so whether this build lands in
    // the cache or stays ephemeral can never change any result.
    ValuePtr value;
    try {
      if (KGAQ_FAULT_POINT("core.cache.build")) {
        throw std::runtime_error(
            "injected: cache build failure (core.cache.build)");
      }
      value = build();
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++build_failures_;
        if (admit) map_.erase(key);  // un-claim: next request rebuilds
      }
      if (admit) promise.set_exception(std::current_exception());
      throw;
    }

    if (!admit) return value;  // ephemeral by admission policy

    // Materialize: charge the budget and publish the resident entry —
    // unless the allocation fault fires, in which case this caller and
    // every waiter still get the built value, it just never becomes
    // resident (the "cache storage allocation failed" path).
    if (KGAQ_FAULT_POINT("core.cache.alloc")) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++alloc_failures_;
        map_.erase(key);
      }
      promise.set_value(value);
      return value;
    }

    const size_t bytes = sizer_(*value);
    auto control =
        std::make_shared<governor_internal::EntryControl>(budget_);
    if (materialize_hook_) materialize_hook_(*value, control);
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = map_.find(key);  // present: in-flight slots never evict
      lru_.push_front(&it->first);
      it->second.lru = lru_.begin();
      it->second.in_lru = true;
      it->second.control = control;
      std::lock_guard<std::mutex> elock(control->mu);
      control->bytes = bytes;
      control->resident = true;
      budget_->Charge(bytes);
      if (pins != nullptr) {
        control->pins = 1;
        budget_->PinCharge(bytes);
      }
    }
    if (pins != nullptr) pins->Add(control);
    promise.set_value(value);
    budget_->Rebalance();
    return value;
  }

  /// Evicts unpinned entries in LRU order until the shared budget fits
  /// (or nothing evictable remains). Skips in-flight builds and pinned
  /// entries — the pinning contract eviction provably honors, enforced
  /// under both the map lock and the entry lock. Returns bytes freed.
  size_t EvictTowardBudget() {
    size_t freed = 0;
    std::lock_guard<std::mutex> lock(mu_);
    auto it = lru_.end();
    while (it != lru_.begin() && budget_->OverBudget()) {
      --it;
      auto mit = map_.find(**it);
      const std::shared_ptr<governor_internal::EntryControl>& control =
          mit->second.control;
      size_t bytes = 0;
      {
        std::lock_guard<std::mutex> elock(control->mu);
        if (control->pins > 0) continue;  // pinned: never reclaimed
        control->resident = false;
        bytes = control->bytes;
      }
      budget_->Release(bytes);
      freed += bytes;
      ++evictions_;
      it = lru_.erase(it);
      map_.erase(mit);
    }
    return freed;
  }

  GovernedCacheStats Stats() const {
    GovernedCacheStats out;
    std::lock_guard<std::mutex> lock(mu_);
    out.hits = hits_;
    out.misses = misses_;
    out.entries = map_.size();
    out.evictions = evictions_;
    out.admission_rejects = admission_rejects_;
    out.shed_builds = shed_builds_;
    out.alloc_failures = alloc_failures_;
    out.build_failures = build_failures_;
    for (const auto& [key, slot] : map_) {
      if (slot.control == nullptr) continue;  // in flight: entry only
      std::lock_guard<std::mutex> elock(slot.control->mu);
      out.bytes += slot.control->bytes;
      if (slot.control->pins > 0) out.pinned_bytes += slot.control->bytes;
    }
    return out;
  }

  /// Snapshot of every materialized value (for owners that aggregate
  /// value-level stats, e.g. per-signature chain-profile counters).
  std::vector<ValuePtr> Values() const {
    std::vector<std::shared_future<ValuePtr>> futures;
    {
      std::lock_guard<std::mutex> lock(mu_);
      futures.reserve(map_.size());
      for (const auto& [key, slot] : map_) futures.push_back(slot.future);
    }
    std::vector<ValuePtr> out;
    for (const auto& f : futures) {
      if (f.wait_for(std::chrono::seconds(0)) ==
          std::future_status::ready) {
        out.push_back(f.get());
      }
    }
    return out;
  }

 private:
  struct Slot {
    std::shared_future<ValuePtr> future;
    std::shared_ptr<governor_internal::EntryControl> control;  // null in flight
    typename std::list<const K*>::iterator lru;
    bool in_lru = false;
  };

  /// Bumps the admission counter for `key` and returns its value. The
  /// table is aged (halve + drop zeros) whenever it outgrows
  /// max_tracked_keys, so cold one-off keys decay out instead of
  /// accumulating — the counter map itself obeys a budget. Caller holds
  /// mu_. Tracking is skipped entirely at threshold 1 (always admit).
  uint64_t RecordRequestLocked(const K& key) {
    if (options_.admission_min_requests <= 1) return 1;
    const uint64_t count = ++freq_[key];
    if (freq_.size() > options_.max_tracked_keys) {
      for (auto it = freq_.begin(); it != freq_.end();) {
        it->second /= 2;
        it = it->second == 0 ? freq_.erase(it) : std::next(it);
      }
    }
    return count;
  }

  /// Pins a hit entry into `scope`. Looks the slot up again under the
  /// map lock (the entry may have been evicted between the hit and this
  /// call — then there is nothing resident to pin; the caller's
  /// shared_ptr keeps its value alive regardless).
  void PinIfResident(const K& key, CachePinScope* scope) {
    std::shared_ptr<governor_internal::EntryControl> control;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = map_.find(key);
      if (it == map_.end() || it->second.control == nullptr) return;
      control = it->second.control;
      std::lock_guard<std::mutex> elock(control->mu);
      ++control->pins;
      if (control->pins == 1 && control->resident) {
        budget_->PinCharge(control->bytes);
      }
    }
    scope->Add(std::move(control));
  }

  const std::shared_ptr<CacheBudget> budget_;
  const Sizer sizer_;
  const Options options_;
  MaterializeHook materialize_hook_;

  mutable std::mutex mu_;
  std::map<K, Slot> map_;
  std::list<const K*> lru_;  ///< front = most recent; back = eviction end
  std::map<K, uint64_t> freq_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  uint64_t admission_rejects_ = 0;
  uint64_t shed_builds_ = 0;
  uint64_t alloc_failures_ = 0;
  uint64_t build_failures_ = 0;
};

}  // namespace kgaq

#endif  // KGAQ_CORE_CACHE_GOVERNOR_H_
