#include "core/greedy_validator.h"

#include <algorithm>
#include <cmath>
#include <queue>

namespace kgaq {

GreedyValidator::GreedyValidator(const KnowledgeGraph& g,
                                 const TransitionModel& model,
                                 std::span<const double> pi,
                                 const PredicateSimilarityCache& sims,
                                 const Options& options)
    : g_(&g), model_(&model), pi_(pi), sims_(&sims), options_(options) {}

GreedyValidator::Match GreedyValidator::FindBestMatch(NodeId target) const {
  Match out;
  if (target >= g_->NumNodes()) return out;
  const uint32_t target_local = model_->LocalId(target);
  if (target_local == kInvalidId) return out;

  // Search states form a tree; parent links reconstruct paths without
  // per-state path copies.
  struct State {
    uint32_t local;       // scope-local node
    int32_t parent;       // index into the state arena, -1 for the root
    int16_t depth;        // edges from the source
    double log_sim_sum;   // sum of log predicate similarities on the path
  };
  std::vector<State> arena;
  arena.push_back({static_cast<uint32_t>(model_->SourceLocal()), -1, 0, 0.0});

  // Max-heap on (stationary visiting probability, running mean log-sim):
  // "select the node from the candidate set with the highest pi", with
  // path quality breaking ties — every arrival at a node shares the same
  // pi, so without the tie-break the heap would order a node's arrivals
  // arbitrarily and best-of-first-r could skip the direct match.
  using Prio = std::pair<std::pair<double, double>, int32_t>;
  auto cmp = [](const Prio& a, const Prio& b) { return a.first < b.first; };
  auto mean_log = [](const State& s) {
    return s.depth == 0 ? 0.0
                        : s.log_sim_sum / static_cast<double>(s.depth);
  };
  std::priority_queue<Prio, std::vector<Prio>, decltype(cmp)> frontier(cmp);
  frontier.push({{pi_[model_->SourceLocal()], 0.0}, 0});

  std::vector<uint32_t> path_nodes;  // scratch for cycle checks
  size_t expansions = 0;
  while (!frontier.empty() && expansions < options_.max_expansions) {
    ++expansions;
    const int32_t si = frontier.top().second;
    frontier.pop();
    const State s = arena[si];

    if (s.local == target_local && s.depth > 0) {
      const double sim =
          std::exp(s.log_sim_sum / static_cast<double>(s.depth));
      if (!out.found || sim > out.similarity) {
        out.similarity = sim;
        out.length = s.depth;
      }
      out.found = true;
      if (++out.paths_examined >= options_.repeat_factor) break;
      continue;  // a path ends at its first arrival at the target
    }
    if (s.depth >= options_.max_hops) continue;

    // Nodes already on this state's path are excluded (simple paths).
    path_nodes.clear();
    for (int32_t cur = si; cur >= 0; cur = arena[cur].parent) {
      path_nodes.push_back(arena[cur].local);
    }

    const NodeId u = model_->GlobalId(s.local);
    for (const Neighbor& nb : g_->Neighbors(u)) {
      const uint32_t v = model_->LocalId(nb.node);
      if (v == kInvalidId) continue;
      if (std::find(path_nodes.begin(), path_nodes.end(), v) !=
          path_nodes.end()) {
        continue;
      }
      const double log_sim = std::log(sims_->Similarity(nb.predicate));
      arena.push_back({v, si, static_cast<int16_t>(s.depth + 1),
                       s.log_sim_sum + log_sim});
      frontier.push({{pi_[v], mean_log(arena.back())},
                     static_cast<int32_t>(arena.size() - 1)});
    }
  }
  return out;
}

std::vector<GreedyValidator::Match> GreedyValidator::ComputeAllMatches(
    size_t max_expansions) const {
  const size_t n = model_->NumScopeNodes();
  std::vector<Match> out(n);

  struct State {
    uint32_t local;
    int32_t parent;
    int16_t depth;
    double log_sim_sum;
  };
  std::vector<State> arena;
  arena.push_back({static_cast<uint32_t>(model_->SourceLocal()), -1, 0, 0.0});

  // Same (pi, path-quality) ordering as FindBestMatch.
  using Prio = std::pair<std::pair<double, double>, int32_t>;
  auto cmp = [](const Prio& a, const Prio& b) { return a.first < b.first; };
  auto mean_log = [](const State& s) {
    return s.depth == 0 ? 0.0
                        : s.log_sim_sum / static_cast<double>(s.depth);
  };
  std::priority_queue<Prio, std::vector<Prio>, decltype(cmp)> frontier(cmp);
  frontier.push({{pi_[model_->SourceLocal()], 0.0}, 0});

  std::vector<uint32_t> path_nodes;
  size_t expansions = 0;
  while (!frontier.empty() && expansions < max_expansions) {
    ++expansions;
    const int32_t si = frontier.top().second;
    frontier.pop();
    const State s = arena[si];

    if (s.depth > 0) {
      Match& m = out[s.local];
      if (m.paths_examined < options_.repeat_factor) {
        const double sim =
            std::exp(s.log_sim_sum / static_cast<double>(s.depth));
        if (!m.found || sim > m.similarity) {
          m.similarity = sim;
          m.length = s.depth;
        }
        m.found = true;
        ++m.paths_examined;
      }
    }
    if (s.depth >= options_.max_hops) continue;

    path_nodes.clear();
    for (int32_t cur = si; cur >= 0; cur = arena[cur].parent) {
      path_nodes.push_back(arena[cur].local);
    }

    const NodeId u = model_->GlobalId(s.local);
    for (const Neighbor& nb : g_->Neighbors(u)) {
      const uint32_t v = model_->LocalId(nb.node);
      if (v == kInvalidId) continue;
      if (std::find(path_nodes.begin(), path_nodes.end(), v) !=
          path_nodes.end()) {
        continue;
      }
      const double log_sim = std::log(sims_->Similarity(nb.predicate));
      arena.push_back({v, si, static_cast<int16_t>(s.depth + 1),
                       s.log_sim_sum + log_sim});
      frontier.push({{pi_[v], mean_log(arena.back())},
                     static_cast<int32_t>(arena.size() - 1)});
    }
  }
  return out;
}

}  // namespace kgaq
