#include "core/greedy_validator.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/thread_pool.h"

namespace kgaq {

GreedyValidator::GreedyValidator(const KnowledgeGraph& g,
                                 const TransitionModel& model,
                                 std::span<const double> pi,
                                 const PredicateSimilarityCache& sims,
                                 const Options& options)
    : g_(&g), model_(&model), pi_(pi), sims_(&sims), options_(options) {}

GreedyValidator::Match GreedyValidator::FindBestMatch(NodeId target) const {
  Match out;
  if (target >= g_->NumNodes()) return out;
  const uint32_t target_local = model_->LocalId(target);
  if (target_local == kInvalidId) return out;

  // Search states form a tree; parent links reconstruct paths without
  // per-state path copies.
  struct State {
    uint32_t local;       // scope-local node
    int32_t parent;       // index into the state arena, -1 for the root
    int16_t depth;        // edges from the source
    double log_sim_sum;   // sum of log predicate similarities on the path
  };
  std::vector<State> arena;
  arena.push_back({static_cast<uint32_t>(model_->SourceLocal()), -1, 0, 0.0});

  // Max-heap on (stationary visiting probability, running mean log-sim):
  // "select the node from the candidate set with the highest pi", with
  // path quality breaking ties — every arrival at a node shares the same
  // pi, so without the tie-break the heap would order a node's arrivals
  // arbitrarily and best-of-first-r could skip the direct match.
  using Prio = std::pair<std::pair<double, double>, int32_t>;
  auto cmp = [](const Prio& a, const Prio& b) { return a.first < b.first; };
  auto mean_log = [](const State& s) {
    return s.depth == 0 ? 0.0
                        : s.log_sim_sum / static_cast<double>(s.depth);
  };
  std::priority_queue<Prio, std::vector<Prio>, decltype(cmp)> frontier(cmp);
  frontier.push({{pi_[model_->SourceLocal()], 0.0}, 0});

  std::vector<uint32_t> path_nodes;  // scratch for cycle checks
  size_t expansions = 0;
  while (!frontier.empty() && expansions < options_.max_expansions) {
    ++expansions;
    const int32_t si = frontier.top().second;
    frontier.pop();
    const State s = arena[si];

    if (s.local == target_local && s.depth > 0) {
      const double sim =
          std::exp(s.log_sim_sum / static_cast<double>(s.depth));
      if (!out.found || sim > out.similarity) {
        out.similarity = sim;
        out.length = s.depth;
      }
      out.found = true;
      if (++out.paths_examined >= options_.repeat_factor) break;
      continue;  // a path ends at its first arrival at the target
    }
    if (s.depth >= options_.max_hops) continue;

    // Nodes already on this state's path are excluded (simple paths).
    path_nodes.clear();
    for (int32_t cur = si; cur >= 0; cur = arena[cur].parent) {
      path_nodes.push_back(arena[cur].local);
    }

    const NodeId u = model_->GlobalId(s.local);
    for (const Neighbor& nb : g_->Neighbors(u)) {
      const uint32_t v = model_->LocalId(nb.node);
      if (v == kInvalidId) continue;
      if (std::find(path_nodes.begin(), path_nodes.end(), v) !=
          path_nodes.end()) {
        continue;
      }
      const double log_sim = std::log(sims_->Similarity(nb.predicate));
      arena.push_back({v, si, static_cast<int16_t>(s.depth + 1),
                       s.log_sim_sum + log_sim});
      frontier.push({{pi_[v], mean_log(arena.back())},
                     static_cast<int32_t>(arena.size() - 1)});
    }
  }
  return out;
}

std::vector<GreedyValidator::Match> GreedyValidator::ComputeAllMatches(
    size_t max_expansions) const {
  // Dispatch on configuration only — never on pool width or calling
  // context — so which algorithm (and therefore which result, when the
  // expansion cap binds) is fixed by the options on every machine.
  // Nested-fork-join safety is TaskGroup's job: its helping Wait drains
  // queued shard tasks inline, which cannot change sharded results.
  if (model_->NumScopeNodes() >= options_.shard_min_scope &&
      options_.num_shards > 1) {
    return ComputeAllMatchesSharded(max_expansions, options_.num_shards);
  }
  return ComputeAllMatchesSerial(max_expansions);
}

std::vector<GreedyValidator::Match> GreedyValidator::ComputeAllMatchesSerial(
    size_t max_expansions) const {
  const size_t n = model_->NumScopeNodes();
  std::vector<Match> out(n);

  struct State {
    uint32_t local;
    int32_t parent;
    int16_t depth;
    double log_sim_sum;
  };
  std::vector<State> arena;
  arena.push_back({static_cast<uint32_t>(model_->SourceLocal()), -1, 0, 0.0});

  // Same (pi, path-quality) ordering as FindBestMatch.
  using Prio = std::pair<std::pair<double, double>, int32_t>;
  auto cmp = [](const Prio& a, const Prio& b) { return a.first < b.first; };
  auto mean_log = [](const State& s) {
    return s.depth == 0 ? 0.0
                        : s.log_sim_sum / static_cast<double>(s.depth);
  };
  std::priority_queue<Prio, std::vector<Prio>, decltype(cmp)> frontier(cmp);
  frontier.push({{pi_[model_->SourceLocal()], 0.0}, 0});

  std::vector<uint32_t> path_nodes;
  size_t expansions = 0;
  while (!frontier.empty() && expansions < max_expansions) {
    ++expansions;
    const int32_t si = frontier.top().second;
    frontier.pop();
    const State s = arena[si];

    if (s.depth > 0) {
      Match& m = out[s.local];
      if (m.paths_examined < options_.repeat_factor) {
        const double sim =
            std::exp(s.log_sim_sum / static_cast<double>(s.depth));
        if (!m.found || sim > m.similarity) {
          m.similarity = sim;
          m.length = s.depth;
        }
        m.found = true;
        ++m.paths_examined;
      }
    }
    if (s.depth >= options_.max_hops) continue;

    path_nodes.clear();
    for (int32_t cur = si; cur >= 0; cur = arena[cur].parent) {
      path_nodes.push_back(arena[cur].local);
    }

    const NodeId u = model_->GlobalId(s.local);
    for (const Neighbor& nb : g_->Neighbors(u)) {
      const uint32_t v = model_->LocalId(nb.node);
      if (v == kInvalidId) continue;
      if (std::find(path_nodes.begin(), path_nodes.end(), v) !=
          path_nodes.end()) {
        continue;
      }
      const double log_sim = std::log(sims_->Similarity(nb.predicate));
      arena.push_back({v, si, static_cast<int16_t>(s.depth + 1),
                       s.log_sim_sum + log_sim});
      frontier.push({{pi_[v], mean_log(arena.back())},
                     static_cast<int32_t>(arena.size() - 1)});
    }
  }
  return out;
}

std::vector<GreedyValidator::Match> GreedyValidator::ComputeAllMatchesSharded(
    size_t max_expansions, size_t num_shards) const {
  const size_t n = model_->NumScopeNodes();
  std::vector<Match> out(n);
  const uint32_t source = static_cast<uint32_t>(model_->SourceLocal());

  // Expand the root once: one seed per in-scope out-arc of the source, in
  // neighbor order (exactly the states the serial traversal pushes first).
  struct State {
    uint32_t local;
    int32_t parent;
    int16_t depth;
    double log_sim_sum;
  };
  std::vector<State> seeds;
  for (const Neighbor& nb : g_->Neighbors(model_->GlobalId(source))) {
    const uint32_t v = model_->LocalId(nb.node);
    if (v == kInvalidId || v == source) continue;
    seeds.push_back(
        {v, 0, 1, std::log(sims_->Similarity(nb.predicate))});
  }
  if (seeds.empty()) return out;
  const size_t shards = std::min(num_shards, seeds.size());
  if (shards <= 1) {
    // One first-hop subtree: the "shard" would just rerun the serial
    // traversal (with an inflated budget) on one thread.
    return ComputeAllMatchesSerial(max_expansions);
  }

  // One arrival per popped state (all depth > 0 here; the root is never
  // queued). A shard's pop sequence is exactly the serial schedule
  // restricted to its subtrees — a state becomes poppable only once its
  // parent pops, and parents never cross shards — so the serial global
  // schedule is recovered below by a priority-ordered merge of the shard
  // sequences.
  struct Arrival {
    uint32_t local;
    int16_t depth;
    double mean_log;
  };
  std::vector<std::vector<Arrival>> shard_arrivals(shards);
  // Budget per shard: its fair share of the cap with 2x slack for subtree
  // imbalance. A shard that stops on this budget while the merged schedule
  // still wants entries gets its budget doubled and re-run (deterministic
  // traversal, so a re-run extends its sequence in place) — parity with
  // the serial schedule is reached in O(log) rounds, while a genuinely
  // binding global cap never pays more than ~2x the serial work.
  std::vector<size_t> shard_budget(shards, (max_expansions / shards) * 2 + 1);
  std::vector<uint8_t> stale(shards, 1);

  auto run_shard = [&](size_t shard) {
    std::vector<State> arena;
    // Index 0 is the root so seed parent links reach it: the simple-path
    // walk-back must see the source on every path.
    arena.push_back({source, -1, 0, 0.0});

    using Prio = std::pair<std::pair<double, double>, int32_t>;
    auto cmp = [](const Prio& a, const Prio& b) { return a.first < b.first; };
    auto mean_log = [](const State& s) {
      return s.depth == 0 ? 0.0
                          : s.log_sim_sum / static_cast<double>(s.depth);
    };
    std::priority_queue<Prio, std::vector<Prio>, decltype(cmp)> frontier(cmp);
    for (size_t i = shard; i < seeds.size(); i += shards) {
      arena.push_back(seeds[i]);
      frontier.push({{pi_[seeds[i].local], mean_log(seeds[i])},
                     static_cast<int32_t>(arena.size() - 1)});
    }

    auto& arrivals = shard_arrivals[shard];
    arrivals.clear();
    const size_t budget = shard_budget[shard];
    std::vector<uint32_t> path_nodes;
    size_t expansions = 0;
    while (!frontier.empty() && expansions < budget) {
      ++expansions;
      const int32_t si = frontier.top().second;
      frontier.pop();
      const State s = arena[si];
      arrivals.push_back({s.local, s.depth, mean_log(s)});
      if (s.depth >= options_.max_hops) continue;

      path_nodes.clear();
      for (int32_t cur = si; cur >= 0; cur = arena[cur].parent) {
        path_nodes.push_back(arena[cur].local);
      }

      const NodeId u = model_->GlobalId(s.local);
      for (const Neighbor& nb : g_->Neighbors(u)) {
        const uint32_t v = model_->LocalId(nb.node);
        if (v == kInvalidId) continue;
        if (std::find(path_nodes.begin(), path_nodes.end(), v) !=
            path_nodes.end()) {
          continue;
        }
        const double log_sim = std::log(sims_->Similarity(nb.predicate));
        arena.push_back({v, si, static_cast<int16_t>(s.depth + 1),
                         s.log_sim_sum + log_sim});
        frontier.push({{pi_[v], mean_log(arena.back())},
                       static_cast<int32_t>(arena.size() - 1)});
      }
    }
  };
  for (;;) {
    ParallelFor(GlobalPool(), shards, [&](size_t shard) {
      if (stale[shard]) run_shard(shard);
    });
    std::fill(stale.begin(), stale.end(), 0);

    // Deterministic k-way merge by the serial pop priority (pi, mean_log)
    // descending, ties broken by shard index — scheduling never matters.
    // Replaying the merged schedule through the serial recording rule
    // reproduces the serial per-node matches; among states with exactly
    // equal priority only the reported path length can differ. The serial
    // traversal spends one expansion popping the root before any arrival.
    out.assign(n, Match{});
    std::vector<size_t> cursor(shards, 0);
    size_t remaining = max_expansions > 0 ? max_expansions - 1 : 0;
    for (; remaining > 0; --remaining) {
      size_t best_shard = shards;
      double best_pi = 0.0, best_mean = 0.0;
      for (size_t shard = 0; shard < shards; ++shard) {
        if (cursor[shard] >= shard_arrivals[shard].size()) continue;
        const Arrival& a = shard_arrivals[shard][cursor[shard]];
        const double a_pi = pi_[a.local];
        if (best_shard == shards || a_pi > best_pi ||
            (a_pi == best_pi && a.mean_log > best_mean)) {
          best_shard = shard;
          best_pi = a_pi;
          best_mean = a.mean_log;
        }
      }
      if (best_shard == shards) break;  // every shard sequence is drained
      const Arrival& a = shard_arrivals[best_shard][cursor[best_shard]++];
      Match& m = out[a.local];
      if (m.paths_examined >= options_.repeat_factor) continue;
      const double sim = std::exp(a.mean_log);
      if (!m.found || sim > m.similarity) {
        m.similarity = sim;
        m.length = a.depth;
      }
      m.found = true;
      ++m.paths_examined;
    }
    if (remaining == 0) return out;  // global cap reached: prefix complete

    // The merge drained every recorded sequence below the cap. A shard
    // that stopped on its own budget may still owe schedule entries; any
    // other shard is exhausted for real. Note a shard at the full cap
    // cannot coexist with remaining > 0 (the merge would have consumed
    // its max_expansions-1 arrivals first), so this always terminates.
    bool rerun = false;
    for (size_t shard = 0; shard < shards; ++shard) {
      if (shard_arrivals[shard].size() >= shard_budget[shard] &&
          shard_budget[shard] < max_expansions) {
        shard_budget[shard] =
            std::min(max_expansions, shard_budget[shard] * 2);
        stale[shard] = 1;
        rerun = true;
      }
    }
    if (!rerun) return out;
  }
}

}  // namespace kgaq
