#ifndef KGAQ_CORE_CHAIN_VALIDATION_CACHE_H_
#define KGAQ_CORE_CHAIN_VALIDATION_CACHE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace kgaq {

/// Memoized backward-search results for one boundary state of the chain
/// validation: starting a fresh segment at some node with stages
/// `stage..0` still to traverse, best_log[L] is the maximum
/// log-similarity sum over all completions of exactly L edges reaching
/// the specific node (-inf where no completion of that length exists).
/// A profile is `valid` only when its enumeration completed, so every
/// usable entry is exact; the best final geometric mean through a prefix
/// (pl, plen) is max_L exp((pl + best_log[L]) / (plen + L)) — per-length
/// maxima suffice because the denominator is fixed once L is.
struct ChainCompletionProfile {
  std::vector<double> best_log;
  bool valid = false;
};

/// Query-level store of chain-validation completion profiles, promoted out
/// of BranchSampler so that queries sharing a branch shape (same specific
/// node, hop predicates/types, hop bound and search budget — the cache's
/// owner keys instances by that signature) reuse each other's backward
/// searches instead of re-enumerating them.
///
/// Thread safety: profiles are pure functions of their key, entries are
/// immutable once inserted and unordered_map never relocates elements, so
/// returned pointers stay valid while concurrent sessions keep inserting;
/// the mutex only guards lookup/insert and first insert wins races.
/// Sharing therefore never changes any result — warm and cold caches
/// yield bitwise-identical validations.
class ChainValidationCache {
 public:
  /// Profile for `key`, or nullptr when never computed. Counts a reuse
  /// hit/miss (a present-but-invalid profile still counts as a hit: the
  /// caller learns "fall back to best-first" without re-enumerating).
  const ChainCompletionProfile* Find(uint64_t key);

  /// Inserts `profile` under `key` unless a concurrent computation got
  /// there first, and returns the resident profile either way.
  const ChainCompletionProfile* Insert(uint64_t key,
                                       ChainCompletionProfile profile);

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    size_t entries = 0;
    /// Approximate resident bytes: per-profile payload plus hash-map
    /// node overhead. Feeds EngineContext::Stats and the serving /stats
    /// endpoint (the accounting the cache governor's eviction charges).
    size_t bytes = 0;
  };
  Stats stats() const;

  /// Installs a live byte-growth sink: every Insert that actually lands
  /// a new profile reports its approximate byte cost (the same per-entry
  /// figure stats() uses), called with NO internal lock held — the
  /// governor charges the shared budget through it, so a store that
  /// keeps growing after admission stays visible to eviction instead of
  /// being billed only at build time. At most one sink; installed by the
  /// owning GovernedCache at materialization, before the store is
  /// published to any session.
  void SetByteSink(std::function<void(size_t delta)> sink);

 private:
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, ChainCompletionProfile> profiles_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::function<void(size_t)> byte_sink_;
};

}  // namespace kgaq

#endif  // KGAQ_CORE_CHAIN_VALIDATION_CACHE_H_
