#ifndef KGAQ_CORE_APPROX_ENGINE_H_
#define KGAQ_CORE_APPROX_ENGINE_H_

#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include <atomic>

#include "common/deadline.h"
#include "common/random.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/branch_sampler.h"
#include "core/engine_context.h"
#include "sampling/alias_table.h"
#include "embedding/embedding_model.h"
#include "estimate/bootstrap.h"
#include "estimate/ht_estimator.h"
#include "kg/knowledge_graph.h"
#include "query/query_graph.h"

namespace kgaq {

/// Restricts a session's candidate set to the nodes one shard owns
/// (federated scatter-gather mode, docs/sharding.md). Ownership is
/// ShardOfName(node name, num_shards) — common/shard_hash.h, partition
/// scheme 0 — so the restriction is consistent with KgPartitioner cuts.
/// num_shards <= 1 means unrestricted (the default).
struct ShardSelector {
  uint32_t num_shards = 0;
  uint32_t shard_index = 0;
};

/// All tunables of the sampling-estimation pipeline, with the paper's
/// default configuration (§VII-A "Parameters"): eb = 1%, 1-alpha = 95%,
/// r = 3, lambda = 0.3, n = 3, BLB t = 3 / m = 0.6 / B = 50.
struct EngineOptions {
  double error_bound = 0.01;
  double confidence_level = 0.95;
  /// Semantic-similarity threshold tau; dataset-tuned via Table V.
  double tau = 0.85;
  /// Desired sample ratio lambda: N = lambda * |A|.
  double sample_ratio = 0.3;
  BlbOptions blb;
  BranchSamplerOptions branch;
  /// Safety cap on Algorithm 2 iterations (paper observes Ne <= 10).
  size_t max_rounds = 60;
  size_t min_initial_draws = 30;
  /// Termination requires at least this many correct draws in S_A^+; a
  /// near-empty S_A^+ makes both the estimate and its bootstrap CI
  /// vacuous, so low-selectivity queries keep sampling instead.
  size_t min_correct_draws = 25;
  /// Hard budget on |S_A| across all rounds.
  size_t max_total_draws = 500000;
  /// MAX/MIN (no guarantee): rounds x fraction-of-candidates sampling.
  /// The paper observes the exact extreme enters the sample after ~8
  /// rounds on average at 5% per round.
  size_t extreme_rounds = 8;
  double extreme_sample_fraction = 0.08;
  /// Extreme-value-theory extrapolation for MAX/MIN (the paper's stated
  /// future work): fit a GPD tail to the correct draws and report the
  /// 1 - 1/N tail quantile instead of the raw sample extreme.
  bool use_evt_for_extremes = false;
  /// GROUP-BY termination ignores groups with fewer correct draws.
  size_t group_min_support = 5;
  /// Ablation (Fig. 5b): when false, §IV-B2 correctness validation is
  /// skipped and every draw counts as correct (filters still apply).
  bool validate_correctness = true;
  /// Ablation (Fig. 5c): when > 0, |Delta S_A| is this fixed value instead
  /// of the Eq. 12 error-based configuration.
  size_t fixed_increment = 0;
  /// Candidate-set restriction for federated sharding (unset = all).
  ShardSelector shard;
  uint64_t seed = 7;
};

/// Per-iteration trace of Algorithm 2 (drives Table IX).
struct RoundTrace {
  size_t round = 0;
  double v_hat = 0.0;
  double moe = 0.0;
  size_t total_draws = 0;
  size_t correct_draws = 0;
};

/// One GROUP-BY bucket's estimate (§V-A).
struct GroupEstimate {
  /// Inclusive lower edge of the bucket: key * bucket_width.
  double bucket_lower = 0.0;
  double v_hat = 0.0;
  double moe = 0.0;
  size_t support = 0;  ///< Correct draws in the bucket.
  bool satisfied = false;
};

/// Time attribution to the paper's three steps (Table XII): S1 semantic-
/// aware sampling, S2 validation + estimation, S3 accuracy guarantee.
struct StepTimings {
  double s1_sampling_ms = 0.0;
  double s2_estimation_ms = 0.0;
  double s3_accuracy_ms = 0.0;
  double total_ms = 0.0;
};

/// Final (or intermediate, for interactive use) result of an aggregate
/// query: the point estimate with its confidence interval V_hat +- MoE at
/// the configured confidence level.
struct AggregateResult {
  double v_hat = 0.0;
  double moe = 0.0;
  double confidence_level = 0.95;
  double error_bound = 0.01;
  /// True iff Theorem 2's termination condition was met (always false for
  /// MAX/MIN, which carry no guarantee).
  bool satisfied = false;
  size_t rounds = 0;
  size_t total_draws = 0;
  size_t num_candidates = 0;
  size_t correct_draws = 0;
  std::vector<RoundTrace> trace;
  std::vector<GroupEstimate> groups;  ///< Empty unless GROUP-BY.
  StepTimings timings;
};

class QuerySession;

/// Why a stepwise run retired before meeting its error bound. Checked at
/// round boundaries only (cooperative), so a stopped session's already-
/// completed rounds — and every other session's draws — are unaffected.
enum class StopCause {
  kNone,              ///< ran to its natural end (bound met or budget spent)
  kCancelled,         ///< the installed cancel flag was set
  kDeadlineExceeded,  ///< the installed deadline expired
  kShed,              ///< RequestShed(): overload asked the run to retire
  kShardLost,         ///< a federated session's remote evaluator failed
};

const char* StopCauseToString(StopCause c);

/// Validation outcome of one candidate: the exact per-draw facts the
/// DrawAndValidate fold records into the sample. Factored out so a shard
/// can compute them remotely (QuerySession::EvaluateBatch) and a
/// federated coordinator session can fold them in bitwise-identically to
/// a local run (docs/sharding.md).
struct NodeOutcome {
  bool correct = false;
  double value = 0.0;
  int64_t group_key = 0;
};

/// Outsourced per-draw validation for federated sessions: given the
/// candidate *indices* of one round's draws (duplicates included, in draw
/// order), fills `out` with one NodeOutcome per draw, aligned with the
/// input. A non-OK status means the owning shard is unreachable; the
/// session retires with StopCause::kShardLost and its pre-round partial
/// estimate intact.
using RemoteEvaluator = std::function<Status(
    std::span<const size_t> draw_indices, std::vector<NodeOutcome>& out)>;

/// Everything needed to replay the global draw schedule without a graph:
/// the merged candidate distribution (exactly the unsharded session's
/// arrays, no renormalization) plus the evaluator that reaches the
/// shards. See QuerySession::CreateFederated.
struct FederatedSessionSpec {
  EngineOptions options;
  AggregateQuery query;
  std::vector<NodeId> candidates;
  std::vector<double> probabilities;
  bool group_by_enabled = false;
  RemoteEvaluator evaluator;
};

/// The sampling-estimation engine (Algorithm 2).
///
///   ApproxEngine engine(graph, embedding);
///   auto result = engine.Execute(query);
///   // result->v_hat +- result->moe covers the tau-relevant ground truth
///   // with the configured confidence, and |V_hat - V| / V <= eb.
///
/// Or, resident-engine style with explicit shared state:
///
///   auto ctx = std::make_shared<EngineContext>(graph, embedding);
///   ApproxEngine engine(ctx);   // many engines/queries can share ctx
///
/// The engine is stateless across queries and safe to share between
/// threads as long as each call uses its own session. All expensive
/// derived state (similarity rows, walk cores, chain-validation profiles)
/// lives in the EngineContext, so engines borrowing one context reuse it
/// across queries; the two-argument constructor creates a private context
/// with the same lifetime as the engine.
class ApproxEngine {
 public:
  ApproxEngine(const KnowledgeGraph& g, const EmbeddingModel& model,
               EngineOptions options = {});
  explicit ApproxEngine(std::shared_ptr<const EngineContext> context,
                        EngineOptions options = {});

  /// One-shot execution: creates a session and runs Algorithm 2 to the
  /// configured error bound.
  Result<AggregateResult> Execute(const AggregateQuery& query) const;

  /// Creates a resumable session for interactive error-bound refinement
  /// (Fig. 6a): RunToErrorBound can be called repeatedly with shrinking
  /// bounds, reusing all previously collected sample.
  Result<std::unique_ptr<QuerySession>> CreateSession(
      const AggregateQuery& query) const;

  const EngineOptions& options() const { return options_; }
  const KnowledgeGraph& graph() const { return ctx_->graph(); }
  const EmbeddingModel& model() const { return ctx_->model(); }
  const std::shared_ptr<const EngineContext>& context() const {
    return ctx_;
  }

 private:
  std::shared_ptr<const EngineContext> ctx_;
  EngineOptions options_;
};

/// Resumable Algorithm-2 state bound to one query: branch samplers, the
/// combined candidate distribution, and every draw validated so far. The
/// session borrows the engine's EngineContext (pinning it alive) and is
/// itself cheap — building one derives only the query-specific candidate
/// distribution; the heavy shared state comes from the context's caches.
///
/// Two equivalent driving modes:
///  * RunToErrorBound(eb): run rounds to completion (the classic API);
///  * BeginRun(eb) / StepRound() / FinishRun(): one draw-validate-estimate
///    round per StepRound call, so a scheduler (serve/QueryService) can
///    interleave many sessions' rounds over the shared pool. Both modes
///    execute the identical sequence of draws and estimator calls, so for
///    a fixed seed they produce bitwise-identical results.
class QuerySession {
 public:
  /// Runs (or continues) the sampling-estimation loop until the Theorem 2
  /// condition holds for `error_bound`, then returns the current result.
  /// Reported timings cover only the work done by this call, so a
  /// subsequent call with a tighter bound reports the *incremental* cost.
  AggregateResult RunToErrorBound(double error_bound);

  /// Starts a stepwise run toward `error_bound`. Any previous run must
  /// have finished.
  void BeginRun(double error_bound);

  /// Executes one Algorithm-2 round (draw + validate + estimate + check).
  /// Returns true when the run has finished (bound satisfied or budget
  /// exhausted) — call FinishRun() then.
  bool StepRound();

  /// Completes the stepwise run and returns its result.
  AggregateResult FinishRun();

  bool run_finished() const { return run_.finished; }

  /// Installs the cooperative stop control consulted between rounds.
  /// `cancel` (may be null) is an external flag — typically owned by a
  /// serving ticket — that any thread may set; `deadline` bounds the run
  /// on the monotonic clock. StepRound re-checks both before drawing, so
  /// a cancelled or expired session finishes at the next round boundary
  /// with whatever sample it has; FinishRun then reports the partial
  /// estimate and stop_cause() says why the run stopped short. The flag
  /// must outlive the session (or be cleared with another SetStopControl).
  void SetStopControl(const std::atomic<bool>* cancel, Deadline deadline);

  /// Asks the run to retire at its next round boundary with the sample it
  /// already holds — the overload ("load shedding") analogue of Cancel,
  /// distinguishable from it via stop_cause() == kShed so the serving
  /// layer can report a *degraded completion* rather than a cancellation.
  /// Lowest priority of the three stop signals: a concurrent cancel or
  /// expired deadline wins attribution. Safe to call from any thread
  /// between rounds (the serve scheduler calls it at tick boundaries).
  void RequestShed() { shed_requested_.store(true, std::memory_order_release); }

  /// Why the most recent run stopped (kNone when it ran to completion).
  StopCause stop_cause() const { return stop_cause_; }

  /// Rounds completed across the session's lifetime (all runs). The
  /// scheduler uses this to guarantee "never shed a query that has not
  /// yet produced a single-round estimate".
  size_t rounds_completed() const { return rounds_total_; }

  /// True when a cache build this session needed was declined under
  /// Critical memory pressure — the query ran on ephemeral structures
  /// (identical results, nothing cached). The serving layer reports such
  /// completions degraded, mirroring shed runs.
  bool cache_builds_shed() const { return pins_.shed_builds() > 0; }

  const AggregateQuery& query() const { return query_; }
  size_t num_candidates() const { return candidates_.size(); }

  /// The combined candidate distribution, in construction order (the
  /// index space EvaluateBatch and RemoteEvaluator speak).
  std::span<const NodeId> candidate_nodes() const { return candidates_; }
  std::span<const double> candidate_probabilities() const {
    return probabilities_;
  }

  /// Validates candidate `index` exactly as the DrawAndValidate fold
  /// would: branch-min similarity vs tau, filters, value lookup (missing
  /// value kills correctness when the aggregate needs one), group-key
  /// bucketing (missing group attribute kills correctness). Results come
  /// from the branch samplers' per-node caches, so repeated calls are
  /// cheap and identical.
  NodeOutcome EvaluateCandidate(size_t index) const;

  /// Batch form for shard validate handlers: warms the validation caches
  /// in parallel with the same inter-branch positive filter the local
  /// draw path applies, then evaluates each index. `out` is cleared and
  /// aligned with `indices` (duplicates allowed).
  void EvaluateBatch(std::span<const size_t> indices,
                     std::vector<NodeOutcome>& out) const;

  /// Builds a graph-less session that replays the global draw schedule —
  /// same alias table, same Rng stream, same BLB calls — over a merged
  /// candidate distribution, outsourcing per-draw validation to
  /// `spec.evaluator`. With spec arrays equal to an unsharded session's
  /// candidates/probabilities and an evaluator that answers exactly like
  /// EvaluateCandidate, results are bitwise-identical to the unsharded
  /// run (docs/sharding.md states the contract).
  static std::unique_ptr<QuerySession> CreateFederated(
      FederatedSessionSpec spec);

 private:
  friend class ApproxEngine;
  QuerySession() = default;

  struct DrawRecord {
    SampleItem item;
    int64_t group_key = 0;
  };

  void DrawAndValidate(size_t k);
  std::vector<SampleItem> GroupView(int64_t key) const;
  /// Consults the stop control; records the cause on first trigger.
  bool ShouldStop();

  std::shared_ptr<const EngineContext> ctx_;
  const KnowledgeGraph* g_ = nullptr;
  EngineOptions options_;
  AggregateQuery query_;
  Rng rng_{0};

  /// Borrow epoch over the context's governed caches: every structure the
  /// session's branch builds acquire stays pinned (never evicted) until
  /// FinishRun releases the scope (the destructor is the backstop).
  CachePinScope pins_;

  std::vector<std::unique_ptr<BranchSampler>> branches_;
  // Combined candidate distribution (single branch: that branch's own;
  // complex shapes: intersection with product weights, §V-B). Draws go
  // through the O(1) alias table.
  std::vector<NodeId> candidates_;
  std::vector<double> probabilities_;
  AliasTable alias_;
  // Per-session scratch reused by every DrawAndValidate round: drawn
  // candidate indices and the distinct nodes handed to the validators.
  std::vector<size_t> draw_scratch_;
  std::vector<NodeId> warm_scratch_;

  std::vector<SampleItem> items_;
  std::vector<int64_t> group_keys_;
  AttributeId value_attr_ = kInvalidId;
  AttributeId group_attr_ = kInvalidId;
  std::vector<std::pair<AttributeId, Filter>> resolved_filters_;

  /// Non-null only for federated sessions (CreateFederated): outsources
  /// the per-draw fold, so g_/ctx_/branches_ stay null/empty and the
  /// local validation path never runs.
  RemoteEvaluator evaluator_;

  double s1_ms_ = 0.0;        // charged to the first RunToErrorBound
  bool s1_reported_ = false;
  size_t rounds_total_ = 0;
  std::vector<RoundTrace> trace_;

  /// State of the current BeginRun/StepRound/FinishRun cycle.
  struct RunState {
    double error_bound = 0.01;
    bool extreme = false;   // MAX/MIN path (no guarantee)
    bool finished = true;   // no run in progress
    AggregateResult out;
    size_t target = 0;              // guaranteed path: desired |S_A|
    size_t rounds_this_call = 0;    // guaranteed path
    size_t per_round = 0;           // extreme path: draws per round
    size_t extreme_rounds_done = 0;
  };
  RunState run_;
  StepTimer s2_;
  StepTimer s3_;

  /// Cooperative stop control (see SetStopControl / RequestShed).
  const std::atomic<bool>* cancel_requested_ = nullptr;
  Deadline deadline_;  // infinite by default
  std::atomic<bool> shed_requested_{false};
  StopCause stop_cause_ = StopCause::kNone;
};

/// Pre-refactor name for QuerySession, kept for source compatibility.
using InteractiveSession = QuerySession;

}  // namespace kgaq

#endif  // KGAQ_CORE_APPROX_ENGINE_H_
