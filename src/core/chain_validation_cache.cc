#include "core/chain_validation_cache.h"

#include <utility>

namespace kgaq {

const ChainCompletionProfile* ChainValidationCache::Find(uint64_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = profiles_.find(key);
  if (it == profiles_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return &it->second;
}

const ChainCompletionProfile* ChainValidationCache::Insert(
    uint64_t key, ChainCompletionProfile profile) {
  std::lock_guard<std::mutex> lock(mu_);
  // Concurrent sessions may race to the same boundary state; both computed
  // the identical profile, first insert wins.
  auto [it, unused] = profiles_.emplace(key, std::move(profile));
  return &it->second;
}

ChainValidationCache::Stats ChainValidationCache::stats() const {
  Stats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  out.entries = profiles_.size();
  // Approximation: key + profile struct + best_log payload per entry,
  // plus a flat per-node allowance for the hash table's bucket/node
  // bookkeeping. Exact malloc accounting isn't worth a trace hook here;
  // the eviction policy this feeds needs relative magnitude, not bytes
  // to the cent.
  constexpr size_t kNodeOverhead = 32;
  out.bytes = profiles_.bucket_count() * sizeof(void*);
  for (const auto& [key, profile] : profiles_) {
    out.bytes += sizeof(key) + sizeof(profile) + kNodeOverhead +
                 profile.best_log.capacity() * sizeof(double);
  }
  return out;
}

}  // namespace kgaq
