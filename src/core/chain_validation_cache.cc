#include "core/chain_validation_cache.h"

#include <utility>

namespace kgaq {

const ChainCompletionProfile* ChainValidationCache::Find(uint64_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = profiles_.find(key);
  if (it == profiles_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return &it->second;
}

namespace {

/// Per-entry byte cost, shared by stats() and the growth sink so the
/// budget's incremental charges and the introspected total agree.
constexpr size_t kNodeOverhead = 32;

size_t EntryBytes(const ChainCompletionProfile& profile) {
  return sizeof(uint64_t) + sizeof(profile) + kNodeOverhead +
         profile.best_log.capacity() * sizeof(double);
}

}  // namespace

const ChainCompletionProfile* ChainValidationCache::Insert(
    uint64_t key, ChainCompletionProfile profile) {
  const ChainCompletionProfile* resident;
  size_t grown = 0;
  std::function<void(size_t)> sink;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Concurrent sessions may race to the same boundary state; both
    // computed the identical profile, first insert wins (and only the
    // winner's bytes are charged).
    auto [it, inserted] = profiles_.emplace(key, std::move(profile));
    resident = &it->second;
    if (inserted && byte_sink_) {
      grown = EntryBytes(it->second);
      sink = byte_sink_;
    }
  }
  // The sink charges the shared budget and may trigger an eviction
  // sweep; call it outside mu_ so the governor's lock hierarchy (cache
  // map > entry > budget, never through a value's own lock) holds.
  if (sink) sink(grown);
  return resident;
}

void ChainValidationCache::SetByteSink(
    std::function<void(size_t delta)> sink) {
  size_t backlog = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    byte_sink_ = std::move(sink);
    // Report anything inserted before the sink existed (profiles landed
    // between construction and admission), so the budget never
    // undercounts an already-growing store.
    for (const auto& [key, profile] : profiles_) {
      backlog += EntryBytes(profile);
    }
  }
  if (backlog > 0) byte_sink_(backlog);
}

ChainValidationCache::Stats ChainValidationCache::stats() const {
  Stats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  out.entries = profiles_.size();
  // Approximation: key + profile struct + best_log payload per entry
  // (EntryBytes — the same figure the byte sink charges incrementally),
  // plus the hash table's bucket array. Exact malloc accounting isn't
  // worth a trace hook here; eviction needs relative magnitude, not
  // bytes to the cent.
  out.bytes = profiles_.bucket_count() * sizeof(void*);
  for (const auto& [key, profile] : profiles_) {
    out.bytes += EntryBytes(profile);
  }
  return out;
}

}  // namespace kgaq
