#ifndef KGAQ_CORE_BRANCH_SAMPLER_H_
#define KGAQ_CORE_BRANCH_SAMPLER_H_

#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/chain_validation_cache.h"
#include "core/engine_context.h"
#include "core/greedy_validator.h"
#include "embedding/embedding_model.h"
#include "kg/knowledge_graph.h"
#include "query/query_graph.h"
#include "sampling/alias_table.h"

namespace kgaq {

/// Tuning knobs for building one branch's sampling machinery.
struct BranchSamplerOptions {
  int n_hops = 3;                   ///< n-bounded subgraph bound per stage.
  double self_loop_similarity = 0.001;
  int repeat_factor = 3;            ///< Validator r.
  /// Chain queries: how many stage intermediates (highest stationary mass)
  /// seed the next stage's samplings (§V-B runs one per thread). Wide
  /// enough by default to cover foreign intermediates that leak into the
  /// scope — truncation here biases the candidate set.
  size_t chain_branch_width = 48;
  /// Expansion cap for the multi-stage validation search.
  size_t chain_validation_max_expansions = 60000;
  size_t stationary_max_iterations = 500;
  /// Memoize per-stage boundary states of the chain validation search:
  /// answers sharing a stage-k intermediate reuse its backward-search
  /// results instead of re-running the full multi-stage search. Falls back
  /// to the capped best-first search when the exhaustive enumeration behind
  /// the memo would exceed chain_validation_max_expansions.
  bool chain_memo = true;
};

/// Sampling + validation machinery for ONE query branch (a simple query or
/// a chain), rooted at the branch's specific node.
///
/// Building performs the paper's S1 step: n-bounded scoping, Eq. 5
/// transition model, Eq. 6 convergence, and pi_A extraction — stage by
/// stage for chains, with second-stage samplings running on a thread pool
/// and composed probabilities pi' = pi'_i * pi'_j (§V-B).
///
/// After building, the sampler exposes the i.i.d. answer distribution and
/// per-answer greedy validation of the full multi-stage match similarity.
class BranchSampler {
 public:
  /// Builds everything against a shared EngineContext: similarity rows,
  /// per-stage walk cores and the chain-validation profile store come
  /// from (and persist in) the context's caches, so branches of later
  /// queries that share structure reuse them. With `pins` attached (a
  /// QuerySession's borrow epoch), every borrowed structure is pinned —
  /// a governed context's eviction cannot reclaim it until the scope
  /// releases. The returned object is immutable apart from the
  /// validation cache. Fails when the specific node cannot be resolved
  /// or a stage build throws (e.g. an injected cache fault).
  static Result<std::unique_ptr<BranchSampler>> Build(
      const EngineContext& ctx, const QueryBranch& branch,
      const BranchSamplerOptions& options, CachePinScope* pins = nullptr);

  /// Standalone build: derives everything through an ephemeral context
  /// (the shared structures live on inside this sampler, nothing is
  /// reused across calls) — the pre-EngineContext behavior.
  static Result<std::unique_ptr<BranchSampler>> Build(
      const KnowledgeGraph& g, const EmbeddingModel& model,
      const QueryBranch& branch, const BranchSamplerOptions& options);

  size_t NumCandidates() const { return candidates_.size(); }
  NodeId CandidateNode(size_t i) const { return candidates_[i]; }
  double CandidateProbability(size_t i) const { return probabilities_[i]; }

  /// Index of `u` among the candidates, or kInvalidId.
  uint32_t CandidateIndex(NodeId u) const;

  /// Draws `k` i.i.d. candidate indices from the branch's pi_A in O(k)
  /// via the alias table (no per-draw binary search).
  std::vector<size_t> Draw(size_t k, Rng& rng) const;

  /// Allocation-free variant: draws into `out` (resized to `k`), reusing
  /// its capacity across rounds.
  void Draw(size_t k, Rng& rng, std::vector<size_t>& out) const;

  /// Greedy-validated overall match similarity of candidate `u` (geometric
  /// mean over all edges of the best found multi-stage path; §IV-B2 + §V-B).
  /// Cached per node. Returns 0 when no match is found.
  double ValidateSimilarity(NodeId u) const;

  /// Validates every (distinct, not-yet-cached) node of `nodes` and fills
  /// the per-node cache, running chain validations as parallel tasks on
  /// `pool`. Subsequent ValidateSimilarity calls for these nodes are cache
  /// hits. Per-node results are identical to serial validation (each
  /// search is independent and deterministic), so parallelism never
  /// changes engine output.
  void WarmValidationCache(std::span<const NodeId> nodes,
                           ThreadPool& pool) const;

  /// Wall-clock milliseconds spent in Build (the paper's S1).
  double build_millis() const { return build_millis_; }

 private:
  BranchSampler() = default;

  const KnowledgeGraph* g_ = nullptr;
  BranchSamplerOptions options_;
  NodeId us_ = kInvalidId;

  /// Resolved query hops (shared across stage units; the similarity rows
  /// live in the EngineContext's cache).
  struct ResolvedHop {
    PredicateId predicate = kInvalidId;
    std::vector<TypeId> types;
    std::shared_ptr<const PredicateSimilarityCache> sims;
  };
  std::vector<ResolvedHop> hops_;

  /// Multi-stage validation: the best overall Eq. 2 similarity of a match
  /// from `u` back to the specific node — each segment's predicates are
  /// scored against its own hop predicate and segment boundaries must land
  /// on hop-typed nodes. Dispatches to the memoized stage decomposition
  /// (options_.chain_memo) with the per-answer best-first search as the
  /// fallback when the enumeration budget is exceeded.
  double ValidateChainSimilarity(NodeId u) const;

  /// The original per-answer backward best-first (A*) search.
  double ValidateChainSimilarityAstar(NodeId u) const;

  /// Returns the profile for boundary state (stage, x) — see
  /// ChainCompletionProfile in core/chain_validation_cache.h — computing
  /// and memoizing it in chain_cache_ on first use; nullptr when it is
  /// invalid. Each profile's own segment enumeration gets a fresh
  /// chain_validation_max_expansions budget of DFS edge visits and
  /// sub-profiles are budgeted the same way recursively, making validity
  /// a pure function of (stage, x) — whether the cache happens to be warm
  /// (parallel warm-up, or an earlier query sharing the branch signature
  /// through the EngineContext) can never change which answers fall back
  /// to the best-first search.
  const ChainCompletionProfile* ChainCompletionsFrom(int stage,
                                                     NodeId x) const;

  /// DFS over the simple segment paths out of `node` (stage's predicate
  /// scoring), recording completions into `profile`; false when `budget`
  /// is exhausted.
  bool EnumerateCompletions(int stage, NodeId node, int len, double log_sum,
                            std::vector<NodeId>& path, size_t& budget,
                            ChainCompletionProfile& profile) const;

  // Final answer distribution. Draws go through the O(1) alias table; the
  // explicit probabilities stay for HT weights and diagnostics.
  std::vector<NodeId> candidates_;
  std::vector<double> probabilities_;
  AliasTable alias_;
  std::unordered_map<NodeId, uint32_t> candidate_index_;

  // Per-stage machinery for validation. Stage 0 is rooted at the specific
  // node; stage k > 0 holds one entry per retained intermediate. The walk
  // core (transition model + stationary pi) is borrowed from the
  // EngineContext cache; the validator wraps it per unit (it only stores
  // pointers).
  struct StageUnit {
    NodeId root = kInvalidId;
    double weight = 0.0;           // renormalized pi' of the root's chain
    double root_log_sim = 0.0;     // accumulated log-sim to reach the root
    int root_length = 0;           // accumulated path length to the root
    std::shared_ptr<const EngineContext::WalkCore> core;
    std::unique_ptr<GreedyValidator> validator;
  };
  // stage_units_[s] = units of stage s (1 for stage 0).
  std::vector<std::vector<StageUnit>> stage_units_;

  mutable std::unordered_map<NodeId, double> validation_cache_;
  /// Boundary-state profiles for chain validation, keyed
  /// (stage << 32) | node. Promoted to the EngineContext (per branch
  /// signature), so sessions with equal-shaped branches share it; empty
  /// for simple branches.
  std::shared_ptr<ChainValidationCache> chain_cache_;
  /// Lazily-computed batched validation for simple (1-hop) branches:
  /// similarity per scope-local node of the stage-0 unit.
  mutable std::vector<GreedyValidator::Match> batch_matches_;
  mutable bool batch_ready_ = false;
  double build_millis_ = 0.0;
};

}  // namespace kgaq

#endif  // KGAQ_CORE_BRANCH_SAMPLER_H_
