#ifndef KGAQ_CORE_BRANCH_SAMPLER_H_
#define KGAQ_CORE_BRANCH_SAMPLER_H_

#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/greedy_validator.h"
#include "embedding/embedding_model.h"
#include "kg/knowledge_graph.h"
#include "query/query_graph.h"
#include "sampling/alias_table.h"

namespace kgaq {

/// Tuning knobs for building one branch's sampling machinery.
struct BranchSamplerOptions {
  int n_hops = 3;                   ///< n-bounded subgraph bound per stage.
  double self_loop_similarity = 0.001;
  int repeat_factor = 3;            ///< Validator r.
  /// Chain queries: how many stage intermediates (highest stationary mass)
  /// seed the next stage's samplings (§V-B runs one per thread). Wide
  /// enough by default to cover foreign intermediates that leak into the
  /// scope — truncation here biases the candidate set.
  size_t chain_branch_width = 48;
  /// Expansion cap for the multi-stage validation search.
  size_t chain_validation_max_expansions = 60000;
  size_t stationary_max_iterations = 500;
  /// Memoize per-stage boundary states of the chain validation search:
  /// answers sharing a stage-k intermediate reuse its backward-search
  /// results instead of re-running the full multi-stage search. Falls back
  /// to the capped best-first search when the exhaustive enumeration behind
  /// the memo would exceed chain_validation_max_expansions.
  bool chain_memo = true;
};

/// Sampling + validation machinery for ONE query branch (a simple query or
/// a chain), rooted at the branch's specific node.
///
/// Building performs the paper's S1 step: n-bounded scoping, Eq. 5
/// transition model, Eq. 6 convergence, and pi_A extraction — stage by
/// stage for chains, with second-stage samplings running on a thread pool
/// and composed probabilities pi' = pi'_i * pi'_j (§V-B).
///
/// After building, the sampler exposes the i.i.d. answer distribution and
/// per-answer greedy validation of the full multi-stage match similarity.
class BranchSampler {
 public:
  /// Builds everything; the returned object is immutable apart from the
  /// validation cache. Fails when the specific node cannot be resolved.
  static Result<std::unique_ptr<BranchSampler>> Build(
      const KnowledgeGraph& g, const EmbeddingModel& model,
      const QueryBranch& branch, const BranchSamplerOptions& options);

  size_t NumCandidates() const { return candidates_.size(); }
  NodeId CandidateNode(size_t i) const { return candidates_[i]; }
  double CandidateProbability(size_t i) const { return probabilities_[i]; }

  /// Index of `u` among the candidates, or kInvalidId.
  uint32_t CandidateIndex(NodeId u) const;

  /// Draws `k` i.i.d. candidate indices from the branch's pi_A in O(k)
  /// via the alias table (no per-draw binary search).
  std::vector<size_t> Draw(size_t k, Rng& rng) const;

  /// Allocation-free variant: draws into `out` (resized to `k`), reusing
  /// its capacity across rounds.
  void Draw(size_t k, Rng& rng, std::vector<size_t>& out) const;

  /// Greedy-validated overall match similarity of candidate `u` (geometric
  /// mean over all edges of the best found multi-stage path; §IV-B2 + §V-B).
  /// Cached per node. Returns 0 when no match is found.
  double ValidateSimilarity(NodeId u) const;

  /// Validates every (distinct, not-yet-cached) node of `nodes` and fills
  /// the per-node cache, running chain validations as parallel tasks on
  /// `pool`. Subsequent ValidateSimilarity calls for these nodes are cache
  /// hits. Per-node results are identical to serial validation (each
  /// search is independent and deterministic), so parallelism never
  /// changes engine output.
  void WarmValidationCache(std::span<const NodeId> nodes,
                           ThreadPool& pool) const;

  /// Wall-clock milliseconds spent in Build (the paper's S1).
  double build_millis() const { return build_millis_; }

 private:
  BranchSampler() = default;

  const KnowledgeGraph* g_ = nullptr;
  BranchSamplerOptions options_;
  NodeId us_ = kInvalidId;

  /// Resolved query hops (shared across stage units).
  struct ResolvedHop {
    PredicateId predicate = kInvalidId;
    std::vector<TypeId> types;
    std::shared_ptr<PredicateSimilarityCache> sims;
  };
  std::vector<ResolvedHop> hops_;

  /// Multi-stage validation: the best overall Eq. 2 similarity of a match
  /// from `u` back to the specific node — each segment's predicates are
  /// scored against its own hop predicate and segment boundaries must land
  /// on hop-typed nodes. Dispatches to the memoized stage decomposition
  /// (options_.chain_memo) with the per-answer best-first search as the
  /// fallback when the enumeration budget is exceeded.
  double ValidateChainSimilarity(NodeId u) const;

  /// The original per-answer backward best-first (A*) search.
  double ValidateChainSimilarityAstar(NodeId u) const;

  /// Memoized backward-search results for one boundary state of the chain
  /// validation: starting a fresh segment at some node with stages
  /// `stage..0` still to traverse, best_log[L] is the maximum
  /// log-similarity sum over all completions of exactly L edges reaching
  /// the specific node (-inf where no completion of that length exists).
  /// A profile is `valid` only when its enumeration completed, so every
  /// usable memo entry is exact; the best final geometric mean through a
  /// prefix (pl, plen) is max_L exp((pl + best_log[L]) / (plen + L)) —
  /// per-length maxima suffice because the denominator is fixed once L is.
  struct ChainCompletionProfile {
    std::vector<double> best_log;
    bool valid = false;
  };

  /// Returns the profile for boundary state (stage, x), computing and
  /// memoizing it on first use; nullptr when it is invalid. Each profile's
  /// own segment enumeration gets a fresh chain_validation_max_expansions
  /// budget of DFS edge visits and sub-profiles are budgeted the same way
  /// recursively, making validity a pure function of (stage, x) — whether
  /// the memo happens to be warm (e.g. under parallel warm-up) can never
  /// change which answers fall back to the best-first search.
  const ChainCompletionProfile* ChainCompletionsFrom(int stage,
                                                     NodeId x) const;

  /// DFS over the simple segment paths out of `node` (stage's predicate
  /// scoring), recording completions into `profile`; false when `budget`
  /// is exhausted.
  bool EnumerateCompletions(int stage, NodeId node, int len, double log_sum,
                            std::vector<NodeId>& path, size_t& budget,
                            ChainCompletionProfile& profile) const;

  // Final answer distribution. Draws go through the O(1) alias table; the
  // explicit probabilities stay for HT weights and diagnostics.
  std::vector<NodeId> candidates_;
  std::vector<double> probabilities_;
  AliasTable alias_;
  std::unordered_map<NodeId, uint32_t> candidate_index_;

  // Per-stage machinery for validation. Stage 0 is rooted at the specific
  // node; stage k > 0 holds one entry per retained intermediate.
  struct StageUnit {
    NodeId root = kInvalidId;
    double weight = 0.0;           // renormalized pi' of the root's chain
    double root_log_sim = 0.0;     // accumulated log-sim to reach the root
    int root_length = 0;           // accumulated path length to the root
    std::unique_ptr<TransitionModel> transitions;
    std::vector<double> pi;
    std::unique_ptr<GreedyValidator> validator;
  };
  // stage_units_[s] = units of stage s (1 for stage 0).
  std::vector<std::vector<StageUnit>> stage_units_;

  mutable std::unordered_map<NodeId, double> validation_cache_;
  /// Boundary-state memo for chain validation, keyed (stage << 32) | node.
  /// Entries are immutable once inserted (and unordered_map never moves
  /// elements), so returned pointers stay valid while concurrent warm-up
  /// tasks keep inserting; the mutex only guards lookup/insert.
  mutable std::unordered_map<uint64_t, ChainCompletionProfile> chain_memo_;
  mutable std::mutex chain_memo_mu_;
  /// Lazily-computed batched validation for simple (1-hop) branches:
  /// similarity per scope-local node of the stage-0 unit.
  mutable std::vector<GreedyValidator::Match> batch_matches_;
  mutable bool batch_ready_ = false;
  double build_millis_ = 0.0;
};

}  // namespace kgaq

#endif  // KGAQ_CORE_BRANCH_SAMPLER_H_
