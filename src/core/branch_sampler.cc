#include "core/branch_sampler.h"

#include <algorithm>
#include <cmath>
#include <exception>
#include <limits>
#include <queue>
#include <unordered_set>

#include "common/timer.h"
#include "sampling/answer_sampler.h"

namespace kgaq {

namespace {

std::vector<TypeId> ResolveTypes(const KnowledgeGraph& g,
                                 const std::vector<std::string>& names) {
  std::vector<TypeId> out;
  for (const auto& t : names) {
    TypeId id = g.TypeIdOf(t);
    if (id != kInvalidId) out.push_back(id);
  }
  return out;
}

}  // namespace

Result<std::unique_ptr<BranchSampler>> BranchSampler::Build(
    const KnowledgeGraph& g, const EmbeddingModel& model,
    const QueryBranch& branch, const BranchSamplerOptions& options) {
  // Ephemeral context: the shared structures it hands out are kept alive
  // by the sampler's shared_ptrs; nothing is reused across calls.
  EngineContext ctx(g, model);
  return Build(ctx, branch, options);
}

Result<std::unique_ptr<BranchSampler>> BranchSampler::Build(
    const EngineContext& ctx, const QueryBranch& branch,
    const BranchSamplerOptions& options, CachePinScope* pins) {
  WallTimer timer;
  const KnowledgeGraph& g = ctx.graph();
  const NodeId us = g.FindNodeByName(branch.specific_name);
  if (us == kInvalidId) {
    return Status::NotFound("specific node '" + branch.specific_name +
                            "' not found");
  }
  if (branch.hops.empty()) {
    return Status::InvalidArgument("branch has no hops");
  }

  auto sampler = std::unique_ptr<BranchSampler>(new BranchSampler());
  sampler->g_ = &g;
  sampler->options_ = options;
  sampler->us_ = us;
  sampler->stage_units_.resize(branch.hops.size());

  // Resolve hops once; similarity rows come from (and persist in) the
  // context's per-predicate cache.
  for (const QueryHop& hop : branch.hops) {
    ResolvedHop rh;
    rh.predicate = g.PredicateIdOf(hop.predicate);
    if (rh.predicate == kInvalidId) {
      return Status::NotFound("query predicate '" + hop.predicate +
                              "' is unknown to the KG embedding");
    }
    rh.types = ResolveTypes(g, hop.node_types);
    rh.sims = ctx.PredicateSimilarities(
        rh.predicate, PredicateSimilarityCache::kDefaultFloor, pins);
    sampler->hops_.push_back(std::move(rh));
  }

  // Chain branches share validation profiles across queries through the
  // context, keyed by everything a profile depends on: the specific node,
  // the hop bound, the enumeration budget, the similarity floor and each
  // hop's predicate + resolved types.
  if (branch.hops.size() > 1) {
    std::string sig = "us:" + std::to_string(us) +
                      ";n:" + std::to_string(options.n_hops) + ";b:" +
                      std::to_string(options.chain_validation_max_expansions) +
                      ";f:" +
                      std::to_string(PredicateSimilarityCache::kDefaultFloor);
    for (const ResolvedHop& rh : sampler->hops_) {
      sig += ";p:" + std::to_string(rh.predicate) + ":";
      for (TypeId t : rh.types) sig += std::to_string(t) + ",";
    }
    sampler->chain_cache_ = ctx.ChainProfiles(sig, pins);
  }

  // Stage roots start as the single specific node with full weight.
  {
    StageUnit root_unit;
    root_unit.root = us;
    root_unit.weight = 1.0;
    sampler->stage_units_[0].push_back(std::move(root_unit));
  }

  std::unordered_map<NodeId, double> answer_mass;

  for (size_t s = 0; s < branch.hops.size(); ++s) {
    const ResolvedHop& rhop = sampler->hops_[s];
    const std::vector<TypeId>& hop_types = rhop.types;
    const bool last = s + 1 == branch.hops.size();

    auto& units = sampler->stage_units_[s];
    // Next-stage seeds gathered per unit (node, weight, log-sim, len) so
    // the merge below is in unit order regardless of task scheduling —
    // chain builds are bit-for-bit reproducible.
    struct Seed {
      NodeId node;
      double weight;
      double log_sim;
      int length;
    };
    std::vector<std::vector<Seed>> unit_seeds(units.size());
    std::vector<std::vector<std::pair<NodeId, double>>> unit_mass(
        units.size());

    // Each unit's scoping + convergence + extraction is independent; the
    // chain case runs them as parallel tasks on the shared pool (§V-B:
    // "each second sampling is run as a thread"). The pool has no
    // exception handling (a throwing task would terminate the process),
    // so each unit captures its own failure — e.g. an injected
    // core.cache.build fault — and Build converts the first into Status.
    std::vector<std::exception_ptr> unit_errors(units.size());
    auto build_unit_impl = [&](size_t ui) {
      StageUnit& unit = units[ui];
      EngineContext::WalkCoreKey core_key;
      core_key.root = unit.root;
      core_key.query_predicate = rhop.predicate;
      core_key.n_hops = options.n_hops;
      core_key.self_loop_similarity = options.self_loop_similarity;
      core_key.sims_floor = PredicateSimilarityCache::kDefaultFloor;
      core_key.stationary_max_iterations = options.stationary_max_iterations;
      unit.core = ctx.ScopedWalkCore(core_key, pins);
      GreedyValidator::Options v_opts;
      v_opts.repeat_factor = options.repeat_factor;
      v_opts.max_hops = options.n_hops;
      unit.validator = std::make_unique<GreedyValidator>(
          g, unit.core->transitions, unit.core->pi, *rhop.sims, v_opts);

      AnswerSampler extraction(g, unit.core->transitions, unit.core->pi,
                               hop_types);
      if (last) {
        // Record this unit's pi' = pi'_i * pi'_j contributions; they are
        // accumulated per answer after the join (an answer reachable
        // through several intermediates accumulates all of them, per §V-B
        // step (3)).
        auto& mass = unit_mass[ui];
        mass.reserve(extraction.NumCandidates());
        for (size_t i = 0; i < extraction.NumCandidates(); ++i) {
          mass.emplace_back(extraction.CandidateNode(i),
                            unit.weight * extraction.CandidateProbability(i));
        }
      } else {
        // Retain the top-width intermediates by stationary mass as next-
        // stage roots, weighted by their (renormalized) probabilities.
        std::vector<size_t> order(extraction.NumCandidates());
        for (size_t i = 0; i < order.size(); ++i) order[i] = i;
        const size_t keep =
            std::min(options.chain_branch_width, order.size());
        std::partial_sort(order.begin(), order.begin() + keep, order.end(),
                          [&](size_t a, size_t b) {
                            return extraction.CandidateProbability(a) >
                                   extraction.CandidateProbability(b);
                          });
        double kept_mass = 0.0;
        for (size_t i = 0; i < keep; ++i) {
          kept_mass += extraction.CandidateProbability(order[i]);
        }
        if (kept_mass <= 0.0) return;
        // FindBestMatch is const with purely call-local state, so the
        // kept intermediates validate concurrently (nested fork-join on
        // the shared pool is deadlock-free — TaskGroup::Wait helps). The
        // Seed assembly below stays serial in slot order, so the stage
        // remains bit-for-bit reproducible under any schedule.
        std::vector<GreedyValidator::Match> matches(keep);
        if (keep > 1) {
          ParallelFor(GlobalPool(), keep, [&](size_t i) {
            matches[i] = unit.validator->FindBestMatch(
                extraction.CandidateNode(order[i]));
          });
        } else if (keep == 1) {
          matches[0] =
              unit.validator->FindBestMatch(extraction.CandidateNode(order[0]));
        }
        for (size_t i = 0; i < keep; ++i) {
          const NodeId m = extraction.CandidateNode(order[i]);
          const GreedyValidator::Match& match = matches[i];
          if (!match.found || match.similarity <= 0.0) continue;
          Seed seed;
          seed.node = m;
          seed.weight = unit.weight *
                        extraction.CandidateProbability(order[i]) / kept_mass;
          seed.log_sim = unit.root_log_sim +
                         match.length * std::log(match.similarity);
          seed.length = unit.root_length + match.length;
          unit_seeds[ui].push_back(seed);
        }
      }
    };
    auto build_unit = [&](size_t ui) {
      try {
        build_unit_impl(ui);
      } catch (...) {
        unit_errors[ui] = std::current_exception();
      }
    };

    if (units.size() > 1) {
      ParallelFor(GlobalPool(), units.size(), build_unit);
    } else {
      for (size_t ui = 0; ui < units.size(); ++ui) build_unit(ui);
    }
    for (const std::exception_ptr& err : unit_errors) {
      if (!err) continue;
      try {
        std::rethrow_exception(err);
      } catch (const std::exception& e) {
        return Status::Internal(std::string("branch stage build failed: ") +
                                e.what());
      } catch (...) {
        return Status::Internal("branch stage build failed");
      }
    }

    if (last) {
      for (const auto& mass : unit_mass) {
        for (const auto& [node, m] : mass) answer_mass[node] += m;
      }
    } else {
      double total = 0.0;
      size_t num_seeds = 0;
      for (const auto& seeds : unit_seeds) {
        num_seeds += seeds.size();
        for (const Seed& seed : seeds) total += seed.weight;
      }
      if (num_seeds == 0) break;  // chain dead-ends; zero candidates
      auto& next_units = sampler->stage_units_[s + 1];
      next_units.reserve(num_seeds);
      for (const auto& seeds : unit_seeds) {
        for (const Seed& seed : seeds) {
          StageUnit u;
          u.root = seed.node;
          u.weight = total > 0.0 ? seed.weight / total : 0.0;
          u.root_log_sim = seed.log_sim;
          u.root_length = seed.length;
          next_units.push_back(std::move(u));
        }
      }
    }
  }

  // Freeze the final answer distribution.
  double total = 0.0;
  for (const auto& [node, mass] : answer_mass) total += mass;
  sampler->candidates_.reserve(answer_mass.size());
  sampler->probabilities_.reserve(answer_mass.size());
  for (const auto& [node, mass] : answer_mass) {
    sampler->candidates_.push_back(node);
    sampler->probabilities_.push_back(total > 0.0 ? mass / total : 0.0);
  }
  sampler->alias_ = AliasTable(sampler->probabilities_);
  sampler->candidate_index_.reserve(sampler->candidates_.size());
  for (uint32_t i = 0; i < sampler->candidates_.size(); ++i) {
    sampler->candidate_index_.emplace(sampler->candidates_[i], i);
  }

  sampler->build_millis_ = timer.ElapsedMillis();
  return sampler;
}

uint32_t BranchSampler::CandidateIndex(NodeId u) const {
  auto it = candidate_index_.find(u);
  return it == candidate_index_.end() ? kInvalidId : it->second;
}

std::vector<size_t> BranchSampler::Draw(size_t k, Rng& rng) const {
  std::vector<size_t> out;
  Draw(k, rng, out);
  return out;
}

void BranchSampler::Draw(size_t k, Rng& rng,
                         std::vector<size_t>& out) const {
  alias_.Draw(k, rng, out);
}

void BranchSampler::WarmValidationCache(std::span<const NodeId> nodes,
                                        ThreadPool& pool) const {
  if (hops_.size() == 1) {
    // Simple branches validate through one shared batch traversal; there is
    // nothing per-node to parallelize beyond triggering it once.
    if (!batch_ready_) {
      batch_matches_ = stage_units_[0][0].validator->ComputeAllMatches();
      batch_ready_ = true;
    }
    return;
  }
  std::vector<NodeId> todo;
  std::unordered_set<NodeId> seen;
  for (NodeId u : nodes) {
    if (validation_cache_.count(u) != 0 || !seen.insert(u).second) continue;
    todo.push_back(u);
  }
  if (todo.empty()) return;
  std::vector<double> sims(todo.size());
  if (todo.size() == 1) {
    sims[0] = ValidateChainSimilarity(todo[0]);
  } else {
    ParallelFor(pool, todo.size(),
                [&](size_t i) { sims[i] = ValidateChainSimilarity(todo[i]); });
  }
  for (size_t i = 0; i < todo.size(); ++i) {
    validation_cache_.emplace(todo[i], sims[i]);
  }
}

double BranchSampler::ValidateSimilarity(NodeId u) const {
  auto it = validation_cache_.find(u);
  if (it != validation_cache_.end()) return it->second;

  double best;
  if (hops_.size() == 1) {
    // Simple query: the paper's pi-guided greedy validation (§IV-B2),
    // batched — one traversal covers every candidate (identical per-node
    // results, see GreedyValidator::ComputeAllMatches).
    const StageUnit& unit = stage_units_[0][0];
    if (!batch_ready_) {
      batch_matches_ = unit.validator->ComputeAllMatches();
      batch_ready_ = true;
    }
    const uint32_t local = unit.core->transitions.LocalId(u);
    best = (local != kInvalidId && batch_matches_[local].found)
               ? batch_matches_[local].similarity
               : 0.0;
  } else {
    best = ValidateChainSimilarity(u);
  }
  validation_cache_.emplace(u, best);
  return best;
}

double BranchSampler::ValidateChainSimilarity(NodeId u) const {
  if (options_.chain_memo) {
    const ChainCompletionProfile* profile =
        ChainCompletionsFrom(static_cast<int>(hops_.size()) - 1, u);
    if (profile != nullptr) {
      double best = 0.0;
      for (size_t len = 1; len < profile->best_log.size(); ++len) {
        const double lg = profile->best_log[len];
        if (lg == -std::numeric_limits<double>::infinity()) continue;
        best = std::max(best, std::exp(lg / static_cast<double>(len)));
      }
      return best;
    }
    // The exhaustive enumeration behind the memo would exceed the budget
    // (dense neighborhood); fall back to the capped best-first search.
  }
  return ValidateChainSimilarityAstar(u);
}

const ChainCompletionProfile* BranchSampler::ChainCompletionsFrom(
    int stage, NodeId x) const {
  const uint64_t key = (static_cast<uint64_t>(stage) << 32) | x;
  if (const ChainCompletionProfile* found = chain_cache_->Find(key)) {
    return found->valid ? found : nullptr;
  }

  ChainCompletionProfile profile;
  profile.best_log.assign(
      static_cast<size_t>(stage + 1) * options_.n_hops + 1,
      -std::numeric_limits<double>::infinity());
  // A fresh per-profile budget (rather than one shared by the whole
  // answer) keeps validity a pure function of (stage, x): a profile that
  // enumerates within its own budget succeeds no matter how much work its
  // caller already did, so warm and cold caches yield identical results.
  size_t budget = options_.chain_validation_max_expansions;
  std::vector<NodeId> path = {x};
  profile.valid = EnumerateCompletions(stage, x, 0, 0.0, path, budget,
                                       profile);
  if (!profile.valid) profile.best_log.clear();

  const ChainCompletionProfile* resident =
      chain_cache_->Insert(key, std::move(profile));
  return resident->valid ? resident : nullptr;
}

bool BranchSampler::EnumerateCompletions(int stage, NodeId node, int len,
                                         double log_sum,
                                         std::vector<NodeId>& path,
                                         size_t& budget,
                                         ChainCompletionProfile& profile)
    const {
  // Mirrors the best-first search's expansion rules exactly — simple paths
  // within a segment (the path vector holds the current segment only),
  // stage switches at hop-typed nodes with >= 1 segment edge, completions
  // at the specific node inside stage 0 — but enumerates the whole bounded
  // space instead of racing a priority queue toward the single best
  // completion, so the result can be shared across prefixes.
  const PredicateSimilarityCache& sims = *hops_[stage].sims;
  for (const Neighbor& nb : g_->Neighbors(node)) {
    if (budget == 0) return false;
    --budget;
    if (std::find(path.begin(), path.end(), nb.node) != path.end()) {
      continue;
    }
    const double lg = log_sum + std::log(sims.Similarity(nb.predicate));
    const int seg_len = len + 1;
    if (stage == 0) {
      if (nb.node == us_) {
        // A segment-0 path completes at its (only) arrival at u_s; simple
        // paths cannot revisit it, so there is nothing past this node.
        auto& slot = profile.best_log[seg_len];
        slot = std::max(slot, lg);
        continue;
      }
    } else {
      bool typed = false;
      for (TypeId t : hops_[stage - 1].types) {
        if (g_->HasType(nb.node, t)) {
          typed = true;
          break;
        }
      }
      if (typed) {
        const ChainCompletionProfile* rest =
            ChainCompletionsFrom(stage - 1, nb.node);
        if (rest == nullptr) return false;
        for (size_t rest_len = 1; rest_len < rest->best_log.size();
             ++rest_len) {
          const double rest_lg = rest->best_log[rest_len];
          if (rest_lg == -std::numeric_limits<double>::infinity()) continue;
          auto& slot = profile.best_log[seg_len + rest_len];
          slot = std::max(slot, lg + rest_lg);
        }
      }
    }
    if (seg_len < options_.n_hops) {
      path.push_back(nb.node);
      const bool ok =
          EnumerateCompletions(stage, nb.node, seg_len, lg, path, budget,
                               profile);
      path.pop_back();
      if (!ok) return false;
    }
  }
  return true;
}

double BranchSampler::ValidateChainSimilarityAstar(NodeId u) const {
  // Backward best-first search from the answer toward the specific node.
  // A full match decomposes into one segment per query hop: segment s
  // (1..n edges) has its predicates scored against hop s's predicate and
  // ends (in forward orientation) at a node carrying hop s's types. The
  // search walks segments in reverse (hop K-1 down to 0), switching to the
  // previous hop whenever it stands on a node typed for it, and completes
  // when segment 0 reaches u_s.
  //
  // States are ordered by an *admissible* bound on the final geometric
  // mean: every future edge contributes log-similarity <= 0, so
  // log_sum / (total_len + min_remaining_edges) never underestimates the
  // best completion through the state. Best-first on that bound makes the
  // first completion popped optimal within the segment-length-bounded
  // search space (A* argument), up to the expansion cap.
  const int num_stages = static_cast<int>(hops_.size());
  const int max_seg = options_.n_hops;

  struct State {
    NodeId node;
    int32_t parent;  // arena index, -1 at the root
    int16_t stage;   // hop index currently being traversed (backward)
    int16_t seg_len;
    int16_t total_len;
    double log_sum;
  };
  std::vector<State> arena;
  arena.push_back({u, -1, static_cast<int16_t>(num_stages - 1), 0, 0, 0.0});

  // Admissible upper bound on the final geometric-mean log: log_sum only
  // accumulates non-positive terms, and *adding* perfect (log 0) edges
  // raises the mean, so the optimistic completion fills the entire
  // remaining segment capacity with perfect edges:
  //   bound = log_sum / (total_len + max_remaining_edges).
  // Goal states (segment 0 standing on u_s) use their exact value.
  auto bound = [this, max_seg](const State& s) {
    if (s.stage == 0 && s.node == us_ && s.seg_len >= 1) {
      return s.log_sum / static_cast<double>(s.total_len);
    }
    const int max_rem = s.stage * max_seg + (max_seg - s.seg_len);
    const int denom = s.total_len + max_rem;
    return denom == 0 ? 0.0 : s.log_sum / static_cast<double>(denom);
  };
  auto cmp = [](const std::pair<double, int32_t>& a,
                const std::pair<double, int32_t>& b) {
    return a.first < b.first;
  };
  std::priority_queue<std::pair<double, int32_t>,
                      std::vector<std::pair<double, int32_t>>, decltype(cmp)>
      frontier(cmp);
  frontier.push({0.0, 0});

  double best = 0.0;
  size_t expansions = 0;
  std::vector<NodeId> path_nodes;
  while (!frontier.empty() &&
         expansions < options_.chain_validation_max_expansions) {
    ++expansions;
    const int32_t si = frontier.top().second;
    frontier.pop();
    const State s = arena[si];

    // Completion: inside segment 0 (>= 1 edge) standing on u_s. With the
    // admissible ordering the first completion is the best one reachable.
    if (s.stage == 0 && s.seg_len >= 1 && s.node == us_) {
      best = std::exp(s.log_sum / static_cast<double>(s.total_len));
      break;
    }

    // Stage switch (epsilon move): if this node carries the previous
    // hop's type and the current segment is non-empty, start that hop.
    if (s.stage > 0 && s.seg_len >= 1) {
      bool typed = false;
      for (TypeId t : hops_[s.stage - 1].types) {
        if (g_->HasType(s.node, t)) {
          typed = true;
          break;
        }
      }
      if (typed) {
        arena.push_back({s.node, s.parent,
                         static_cast<int16_t>(s.stage - 1), 0, s.total_len,
                         s.log_sum});
        frontier.push({bound(arena.back()),
                       static_cast<int32_t>(arena.size() - 1)});
      }
    }

    if (s.seg_len >= max_seg) continue;

    // Simplicity is enforced per segment (stages are sampled and matched
    // independently in §V-B, so a chain match may revisit a node across
    // segment boundaries — SSB's exact enumeration composes stages the
    // same way). The walk back stops at the segment's start state.
    path_nodes.clear();
    for (int32_t cur = si; cur >= 0; cur = arena[cur].parent) {
      path_nodes.push_back(arena[cur].node);
      if (arena[cur].seg_len == 0) break;
    }

    const PredicateSimilarityCache& sims = *hops_[s.stage].sims;
    for (const Neighbor& nb : g_->Neighbors(s.node)) {
      if (std::find(path_nodes.begin(), path_nodes.end(), nb.node) !=
          path_nodes.end()) {
        continue;
      }
      arena.push_back({nb.node, si, s.stage,
                       static_cast<int16_t>(s.seg_len + 1),
                       static_cast<int16_t>(s.total_len + 1),
                       s.log_sum + std::log(sims.Similarity(nb.predicate))});
      frontier.push({bound(arena.back()),
                     static_cast<int32_t>(arena.size() - 1)});
    }
  }
  return best;
}

}  // namespace kgaq
