#include "core/cache_governor.h"

namespace kgaq {

const char* MemoryPressureToString(MemoryPressure p) {
  switch (p) {
    case MemoryPressure::kHealthy:
      return "healthy";
    case MemoryPressure::kPressured:
      return "pressured";
    case MemoryPressure::kCritical:
      return "critical";
  }
  return "unknown";
}

CacheBudget::CacheBudget(CacheBudgetOptions options) : options_(options) {}

void CacheBudget::Charge(size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  charged_ += bytes;
}

void CacheBudget::Release(size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  charged_ = bytes <= charged_ ? charged_ - bytes : 0;
}

void CacheBudget::PinCharge(size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  pinned_ += bytes;
  UpdatePressureLocked();
}

void CacheBudget::PinRelease(size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  pinned_ = bytes <= pinned_ ? pinned_ - bytes : 0;
  UpdatePressureLocked();
}

size_t CacheBudget::charged_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return charged_;
}

size_t CacheBudget::pinned_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pinned_;
}

MemoryPressure CacheBudget::pressure() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pressure_;
}

bool CacheBudget::OverBudget() const {
  std::lock_guard<std::mutex> lock(mu_);
  return options_.budget_bytes > 0 && charged_ > options_.budget_bytes;
}

void CacheBudget::UpdatePressureLocked() {
  if (options_.budget_bytes == 0) {
    pressure_ = MemoryPressure::kHealthy;
    return;
  }
  const double fill = static_cast<double>(pinned_) /
                      static_cast<double>(options_.budget_bytes);
  // Hysteresis: enter thresholds sit strictly above the matching exits,
  // so pin churn around one boundary cannot flap the state (and with it
  // the admission policy) on every borrow/release.
  switch (pressure_) {
    case MemoryPressure::kHealthy:
      if (fill >= options_.critical_enter) {
        pressure_ = MemoryPressure::kCritical;
      } else if (fill >= options_.pressured_enter) {
        pressure_ = MemoryPressure::kPressured;
      }
      break;
    case MemoryPressure::kPressured:
      if (fill >= options_.critical_enter) {
        pressure_ = MemoryPressure::kCritical;
      } else if (fill <= options_.pressured_exit) {
        pressure_ = MemoryPressure::kHealthy;
      }
      break;
    case MemoryPressure::kCritical:
      if (fill <= options_.critical_exit) {
        pressure_ = fill <= options_.pressured_exit
                        ? MemoryPressure::kHealthy
                        : MemoryPressure::kPressured;
      }
      break;
  }
}

void CacheBudget::RegisterReclaimer(Reclaimer fn) {
  std::lock_guard<std::mutex> lock(mu_);
  reclaimers_.push_back(std::move(fn));
}

void CacheBudget::Rebalance() {
  if (!bounded()) return;
  // Losers of the try-lock return immediately: the winner is already
  // evicting toward the same budget, and blocking here would stall a
  // build-completion path on another cache's sweep.
  std::unique_lock<std::mutex> guard(rebalance_mu_, std::try_to_lock);
  if (!guard.owns_lock()) return;
  std::vector<Reclaimer> reclaimers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    reclaimers = reclaimers_;
  }
  while (OverBudget()) {
    size_t progress = 0;
    for (const Reclaimer& fn : reclaimers) progress += fn();
    // No progress with the charge still over budget means everything
    // left is pinned or in flight — Critical pressure takes over (new
    // builds shed) until scopes release.
    if (progress == 0) break;
  }
}

}  // namespace kgaq
