#ifndef KGAQ_CORE_ENGINE_CONTEXT_H_
#define KGAQ_CORE_ENGINE_CONTEXT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/cache_governor.h"
#include "core/chain_validation_cache.h"
#include "embedding/embedding_model.h"
#include "embedding/predicate_similarity.h"
#include "kg/knowledge_graph.h"
#include "kg/snapshot.h"
#include "sampling/transition_model.h"

namespace kgaq {

/// Memory-governance knobs of one EngineContext — see docs/memory.md.
/// The defaults reproduce the ungoverned behavior exactly: unbounded
/// budget, every build admitted, nothing ever evicted.
struct EngineCacheOptions {
  /// Shared byte budget across all three caches (similarity rows, walk
  /// cores, chain-profile stores). 0 = unbounded (no eviction, no
  /// pressure, no admission control by pressure).
  size_t budget_bytes = 0;
  /// Frequency-based admission (the CPU analogue of SamGraph's
  /// frequency-hashmap hot-feature cache): cache a walk core / chain
  /// store only once its key has been requested this many times. 1 =
  /// always admit. Similarity rows are always admitted — they are small,
  /// shared by every key that touches the predicate, and evicting them
  /// buys nothing.
  uint64_t core_admission_min_requests = 1;
  uint64_t chain_admission_min_requests = 1;
  /// Pressure hysteresis over the pinned budget fill (see MemoryPressure).
  double pressured_enter = 0.70;
  double pressured_exit = 0.50;
  double critical_enter = 0.90;
  double critical_exit = 0.70;
  /// Bound on each cache's admission counter table.
  size_t max_tracked_keys = 65536;
};

/// The immutable, build-once share of the query stack: one knowledge
/// graph, one embedding, and every expensive derived structure that is a
/// pure function of the two — predicate-similarity rows, per-scope
/// transition models with their alias rows / in-CSR plus stationary
/// distributions, and the query-level chain-validation profile store
/// promoted out of BranchSampler.
///
/// Sessions (QuerySession) and services (QueryService) borrow a context
/// through shared_ptr<const EngineContext> and stay cheap: building one
/// costs nothing beyond the per-query candidate distribution, while
/// repeated or concurrent queries over the same KG reuse the heavy state
/// instead of re-deriving it per ApproxEngine instance.
///
/// Logical immutability: the caches below are internally synchronized
/// memo tables over pure functions, so concurrent readers can never
/// observe different values for the same key — sharing a context across
/// threads changes wall-clock, never results. With a cache budget set
/// (EngineCacheOptions::budget_bytes), the caches are governed: byte-
/// cost LRU eviction against the shared budget, epoch pinning so
/// in-flight sessions never lose entries they borrowed (CachePinScope),
/// frequency-based admission, and pressure-aware build shedding — all of
/// which degrade only to rebuilding or to ephemeral structures, so
/// governance too changes wall-clock and memory, never results. See
/// docs/memory.md.
class EngineContext {
 public:
  /// Borrowing constructor: `g` and `model` must outlive the context.
  EngineContext(const KnowledgeGraph& g, const EmbeddingModel& model,
                EngineCacheOptions cache_options = {});

  /// Owning constructor: adopts snapshot-loaded storage.
  EngineContext(KnowledgeGraph graph, std::unique_ptr<EmbeddingModel> model,
                EngineCacheOptions cache_options = {});

  /// One-call resident-engine bring-up: loads a combined binary snapshot
  /// (kg/snapshot.h) and wraps it in an owning context. Fails when the
  /// snapshot carries no embedding section.
  static Result<std::shared_ptr<EngineContext>> LoadFromSnapshot(
      const std::string& path, EngineCacheOptions cache_options = {});

  EngineContext(const EngineContext&) = delete;
  EngineContext& operator=(const EngineContext&) = delete;

  const KnowledgeGraph& graph() const { return *g_; }
  const EmbeddingModel& model() const { return *model_; }
  const EngineCacheOptions& cache_options() const { return cache_options_; }

  /// Shared Eq. 4 similarity rows for (query predicate, clamp floor),
  /// computed once per key across every borrowing query. With `pins`
  /// attached the row is pinned into the scope for its borrow epoch.
  std::shared_ptr<const PredicateSimilarityCache> PredicateSimilarities(
      PredicateId query_predicate,
      double floor = PredicateSimilarityCache::kDefaultFloor,
      CachePinScope* pins = nullptr) const;

  /// One branch stage's shared walk machinery: the n-bounded scope's
  /// Eq. 5 transition model (alias rows + in-CSR) and its Eq. 6
  /// stationary distribution.
  struct WalkCore {
    TransitionModel transitions;
    std::vector<double> pi;

    WalkCore(TransitionModel t, std::vector<double> p)
        : transitions(std::move(t)), pi(std::move(p)) {}
  };

  /// Cache key for a walk core. Everything the built structure depends on
  /// (beyond the context's fixed graph/model) must appear here.
  struct WalkCoreKey {
    NodeId root = kInvalidId;
    PredicateId query_predicate = kInvalidId;
    int n_hops = 0;
    double self_loop_similarity = 0.0;
    double sims_floor = 0.0;
    size_t stationary_max_iterations = 0;

    auto operator<=>(const WalkCoreKey&) const = default;
  };

  /// The walk core for `key`, building (scope BFS + transition model +
  /// stationary solve) on first use. Concurrent first requests for the
  /// same key deduplicate in flight: one caller builds, the rest block on
  /// its future — cores are pure functions of (graph, model, key), so
  /// which caller wins never affects any result. Under governance a
  /// declined admission returns an ephemeral core (same pure function,
  /// just not cached).
  std::shared_ptr<const WalkCore> ScopedWalkCore(
      const WalkCoreKey& key, CachePinScope* pins = nullptr) const;

  /// The chain-validation profile store for one branch signature (an
  /// opaque string encoding specific node, hop predicates/types, hop
  /// bound, enumeration budget and similarity floor — see
  /// BranchSampler::Build). Queries with equal signatures share profiles;
  /// a store's post-admission growth is charged to the budget live
  /// through its byte sink.
  std::shared_ptr<ChainValidationCache> ChainProfiles(
      const std::string& branch_signature,
      CachePinScope* pins = nullptr) const;

  /// Aggregate cache counters plus entry counts and approximate resident
  /// bytes per cache, for tests / ops introspection (surfaced by the
  /// serving layer's /stats endpoint). Byte figures cover the cached
  /// payloads and flat container-overhead allowances, not exact
  /// allocator accounting; in-flight builds (futures not yet ready)
  /// count as entries with zero bytes and are charged once materialized.
  struct CacheStats {
    uint64_t sims_hits = 0;
    uint64_t sims_misses = 0;
    size_t sims_entries = 0;
    size_t sims_bytes = 0;
    uint64_t core_hits = 0;
    uint64_t core_misses = 0;
    size_t core_entries = 0;
    size_t core_bytes = 0;
    /// Summed over every per-signature ChainValidationCache (profile-
    /// level reuse counters); chain_bytes is the governed accounting of
    /// the signature-level store (baseline + live growth).
    uint64_t chain_hits = 0;
    uint64_t chain_misses = 0;
    size_t chain_entries = 0;
    size_t chain_bytes = 0;

    // Governance counters (across all three caches).
    size_t budget_bytes = 0;   ///< 0 = unbounded
    size_t charged_bytes = 0;  ///< the budget's live resident tally
    size_t pinned_bytes = 0;   ///< subset pinned by live sessions
    uint64_t evictions = 0;
    uint64_t admission_rejects = 0;  ///< frequency-declined builds
    uint64_t shed_builds = 0;        ///< pressure-declined builds
    uint64_t alloc_failures = 0;     ///< injected core.cache.alloc
    uint64_t build_failures = 0;     ///< builder threw (incl. injected)
    MemoryPressure pressure = MemoryPressure::kHealthy;

    size_t TotalBytes() const {
      return sims_bytes + core_bytes + chain_bytes;
    }
  };
  CacheStats Stats() const;

  /// Current memory-pressure state of the shared budget.
  MemoryPressure memory_pressure() const { return budget_->pressure(); }

  /// Runs an eviction sweep toward the budget. Called by sessions after
  /// releasing their pin scope (FinishRun) so newly unpinned bytes are
  /// reclaimed promptly; safe to call from any thread, cheap when the
  /// charge already fits.
  void EvictToBudget() const { budget_->Rebalance(); }

 private:
  using SimsKey = std::pair<PredicateId, double>;

  /// Wires the three governed caches' sizers and the chain growth sink.
  void InitCaches();

  // Owning-mode storage (empty in borrowing mode). Declared before the
  // borrowed pointers so the pointers can reference it.
  std::optional<KnowledgeGraph> owned_graph_;
  std::unique_ptr<EmbeddingModel> owned_model_;

  const KnowledgeGraph* g_;
  const EmbeddingModel* model_;

  EngineCacheOptions cache_options_;
  std::shared_ptr<CacheBudget> budget_;
  mutable std::unique_ptr<
      GovernedCache<SimsKey, const PredicateSimilarityCache>>
      sims_;
  mutable std::unique_ptr<GovernedCache<WalkCoreKey, const WalkCore>> cores_;
  mutable std::unique_ptr<GovernedCache<std::string, ChainValidationCache>>
      chain_;
};

}  // namespace kgaq

#endif  // KGAQ_CORE_ENGINE_CONTEXT_H_
