#ifndef KGAQ_CORE_ENGINE_CONTEXT_H_
#define KGAQ_CORE_ENGINE_CONTEXT_H_

#include <atomic>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "common/status.h"
#include "core/chain_validation_cache.h"
#include "embedding/embedding_model.h"
#include "embedding/predicate_similarity.h"
#include "kg/knowledge_graph.h"
#include "kg/snapshot.h"
#include "sampling/transition_model.h"

namespace kgaq {

/// The immutable, build-once share of the query stack: one knowledge
/// graph, one embedding, and every expensive derived structure that is a
/// pure function of the two — predicate-similarity rows, per-scope
/// transition models with their alias rows / in-CSR plus stationary
/// distributions, and the query-level chain-validation profile store
/// promoted out of BranchSampler.
///
/// Sessions (QuerySession) and services (QueryService) borrow a context
/// through shared_ptr<const EngineContext> and stay cheap: building one
/// costs nothing beyond the per-query candidate distribution, while
/// repeated or concurrent queries over the same KG reuse the heavy state
/// instead of re-deriving it per ApproxEngine instance.
///
/// Logical immutability: the caches below are internally synchronized
/// memo tables over pure functions, so concurrent readers can never
/// observe different values for the same key — sharing a context across
/// threads changes wall-clock, never results. Entries are retained for
/// the context's lifetime (an eviction policy is future work; see
/// ROADMAP).
class EngineContext {
 public:
  /// Borrowing constructor: `g` and `model` must outlive the context.
  EngineContext(const KnowledgeGraph& g, const EmbeddingModel& model);

  /// Owning constructor: adopts snapshot-loaded storage.
  EngineContext(KnowledgeGraph graph,
                std::unique_ptr<EmbeddingModel> model);

  /// One-call resident-engine bring-up: loads a combined binary snapshot
  /// (kg/snapshot.h) and wraps it in an owning context. Fails when the
  /// snapshot carries no embedding section.
  static Result<std::shared_ptr<EngineContext>> LoadFromSnapshot(
      const std::string& path);

  EngineContext(const EngineContext&) = delete;
  EngineContext& operator=(const EngineContext&) = delete;

  const KnowledgeGraph& graph() const { return *g_; }
  const EmbeddingModel& model() const { return *model_; }

  /// Shared Eq. 4 similarity rows for (query predicate, clamp floor),
  /// computed once per key across every borrowing query.
  std::shared_ptr<const PredicateSimilarityCache> PredicateSimilarities(
      PredicateId query_predicate,
      double floor = PredicateSimilarityCache::kDefaultFloor) const;

  /// One branch stage's shared walk machinery: the n-bounded scope's
  /// Eq. 5 transition model (alias rows + in-CSR) and its Eq. 6
  /// stationary distribution.
  struct WalkCore {
    TransitionModel transitions;
    std::vector<double> pi;

    WalkCore(TransitionModel t, std::vector<double> p)
        : transitions(std::move(t)), pi(std::move(p)) {}
  };

  /// Cache key for a walk core. Everything the built structure depends on
  /// (beyond the context's fixed graph/model) must appear here.
  struct WalkCoreKey {
    NodeId root = kInvalidId;
    PredicateId query_predicate = kInvalidId;
    int n_hops = 0;
    double self_loop_similarity = 0.0;
    double sims_floor = 0.0;
    size_t stationary_max_iterations = 0;

    auto operator<=>(const WalkCoreKey&) const = default;
  };

  /// The walk core for `key`, building (scope BFS + transition model +
  /// stationary solve) on first use. Concurrent first requests for the
  /// same key deduplicate in flight: one caller builds, the rest block on
  /// its future — cores are pure functions of (graph, model, key), so
  /// which caller wins never affects any result.
  std::shared_ptr<const WalkCore> ScopedWalkCore(
      const WalkCoreKey& key) const;

  /// The chain-validation profile store for one branch signature (an
  /// opaque string encoding specific node, hop predicates/types, hop
  /// bound, enumeration budget and similarity floor — see
  /// BranchSampler::Build). Queries with equal signatures share profiles.
  std::shared_ptr<ChainValidationCache> ChainProfiles(
      const std::string& branch_signature) const;

  /// Aggregate cache counters plus entry counts and approximate resident
  /// bytes per cache, for tests / ops introspection (surfaced by the
  /// serving layer's /stats endpoint) and as the measurement groundwork
  /// for the roadmap's LRU-by-bytes eviction. Byte figures cover the
  /// cached payloads and flat container-overhead allowances, not exact
  /// allocator accounting; in-flight builds (futures not yet ready) count
  /// as entries with zero bytes.
  struct CacheStats {
    uint64_t sims_hits = 0;
    uint64_t sims_misses = 0;
    size_t sims_entries = 0;
    size_t sims_bytes = 0;
    uint64_t core_hits = 0;
    uint64_t core_misses = 0;
    size_t core_entries = 0;
    size_t core_bytes = 0;
    /// Summed over every per-signature ChainValidationCache.
    uint64_t chain_hits = 0;
    uint64_t chain_misses = 0;
    size_t chain_entries = 0;
    size_t chain_bytes = 0;

    size_t TotalBytes() const {
      return sims_bytes + core_bytes + chain_bytes;
    }
  };
  CacheStats Stats() const;

 private:
  // Owning-mode storage (empty in borrowing mode). Declared before the
  // borrowed pointers so the pointers can reference it.
  std::optional<KnowledgeGraph> owned_graph_;
  std::unique_ptr<EmbeddingModel> owned_model_;

  const KnowledgeGraph* g_;
  const EmbeddingModel* model_;

  using SimsKey = std::pair<PredicateId, double>;
  mutable std::mutex sims_mu_;
  /// Futures, like cores_: cold keys are claimed so a concurrent
  /// admission wave builds each similarity row once.
  mutable std::map<
      SimsKey,
      std::shared_future<std::shared_ptr<const PredicateSimilarityCache>>>
      sims_;
  mutable std::atomic<uint64_t> sims_hits_{0};
  mutable std::atomic<uint64_t> sims_misses_{0};

  mutable std::mutex cores_mu_;
  /// Futures rather than values: a cold key is claimed under the lock by
  /// the thread that will build it, so concurrent requesters wait for
  /// that one build instead of each re-deriving the same core.
  mutable std::map<WalkCoreKey,
                   std::shared_future<std::shared_ptr<const WalkCore>>>
      cores_;
  mutable std::atomic<uint64_t> core_hits_{0};
  mutable std::atomic<uint64_t> core_misses_{0};

  mutable std::mutex chain_mu_;
  mutable std::map<std::string, std::shared_ptr<ChainValidationCache>>
      chain_caches_;
};

}  // namespace kgaq

#endif  // KGAQ_CORE_ENGINE_CONTEXT_H_
