#include "core/approx_engine.h"

#include <algorithm>
#include <cmath>
#include <exception>
#include <map>
#include <set>

#include "common/shard_hash.h"
#include "common/timer.h"
#include "estimate/accuracy.h"
#include "estimate/evt.h"

namespace kgaq {

const char* StopCauseToString(StopCause c) {
  switch (c) {
    case StopCause::kNone:
      return "none";
    case StopCause::kCancelled:
      return "cancelled";
    case StopCause::kDeadlineExceeded:
      return "deadline_exceeded";
    case StopCause::kShed:
      return "shed";
    case StopCause::kShardLost:
      return "shard_lost";
  }
  return "unknown";
}

ApproxEngine::ApproxEngine(const KnowledgeGraph& g,
                           const EmbeddingModel& model, EngineOptions options)
    : ctx_(std::make_shared<EngineContext>(g, model)),
      options_(options) {}

ApproxEngine::ApproxEngine(std::shared_ptr<const EngineContext> context,
                           EngineOptions options)
    : ctx_(std::move(context)), options_(options) {}

Result<AggregateResult> ApproxEngine::Execute(
    const AggregateQuery& query) const {
  auto session = CreateSession(query);
  if (!session.ok()) return session.status();
  return (*session)->RunToErrorBound(options_.error_bound);
}

Result<std::unique_ptr<QuerySession>> ApproxEngine::CreateSession(
    const AggregateQuery& query) const {
  const KnowledgeGraph& g = ctx_->graph();
  KGAQ_RETURN_IF_ERROR(query.Validate(g));

  auto session = std::unique_ptr<QuerySession>(new QuerySession());
  session->ctx_ = ctx_;
  session->g_ = &g;
  session->options_ = options_;
  session->query_ = query;
  session->rng_ = Rng(options_.seed);

  WallTimer s1_timer;
  // Serial pieces of a branch build (hop similarity rows, chain-profile
  // store admission) throw on failure — e.g. an injected cache fault —
  // rather than returning Status; convert here so a failed build retires
  // the ticket as kFailed instead of unwinding through the scheduler.
  try {
    for (const QueryBranch& branch : query.query.branches) {
      auto bs = BranchSampler::Build(*ctx_, branch, options_.branch,
                                     &session->pins_);
      if (!bs.ok()) return bs.status();
      session->branches_.push_back(std::move(*bs));
    }
  } catch (const std::exception& e) {
    return Status::Internal(std::string("session build failed: ") + e.what());
  }

  // Combined candidate distribution.
  const auto& branches = session->branches_;
  if (branches.size() == 1) {
    const BranchSampler& b = *branches[0];
    session->candidates_.reserve(b.NumCandidates());
    session->probabilities_.reserve(b.NumCandidates());
    for (size_t i = 0; i < b.NumCandidates(); ++i) {
      session->candidates_.push_back(b.CandidateNode(i));
      session->probabilities_.push_back(b.CandidateProbability(i));
    }
  } else {
    // Decomposition-assembly (§V-B): candidates present in every branch's
    // sample space, weighted by the product of branch probabilities.
    for (size_t i = 0; i < branches[0]->NumCandidates(); ++i) {
      const NodeId u = branches[0]->CandidateNode(i);
      double mass = branches[0]->CandidateProbability(i);
      bool in_all = true;
      for (size_t bi = 1; bi < branches.size(); ++bi) {
        const uint32_t idx = branches[bi]->CandidateIndex(u);
        if (idx == kInvalidId) {
          in_all = false;
          break;
        }
        mass *= branches[bi]->CandidateProbability(idx);
      }
      if (in_all && mass > 0.0) {
        session->candidates_.push_back(u);
        session->probabilities_.push_back(mass);
      }
    }
    double total = 0.0;
    for (double p : session->probabilities_) total += p;
    if (total > 0.0) {
      for (double& p : session->probabilities_) p /= total;
    }
  }
  // Federated sharding: keep only the candidates this shard owns, then
  // renormalize. Applied after the combined distribution so the surviving
  // candidates keep their global relative weights; the coordinator's MoE
  // combination (docs/sharding.md) assumes exactly this restriction.
  if (options_.shard.num_shards > 1) {
    size_t kept = 0;
    for (size_t i = 0; i < session->candidates_.size(); ++i) {
      const NodeId u = session->candidates_[i];
      if (ShardOfName(g.NodeName(u), options_.shard.num_shards) ==
          options_.shard.shard_index) {
        session->candidates_[kept] = u;
        session->probabilities_[kept] = session->probabilities_[i];
        ++kept;
      }
    }
    session->candidates_.resize(kept);
    session->probabilities_.resize(kept);
    double total = 0.0;
    for (double p : session->probabilities_) total += p;
    if (total > 0.0) {
      for (double& p : session->probabilities_) p /= total;
    }
  }
  session->alias_ = AliasTable(session->probabilities_);

  // Resolve attribute ids once.
  if (!query.attribute.empty()) {
    session->value_attr_ = g.AttributeIdOf(query.attribute);
  }
  if (query.group_by.enabled()) {
    session->group_attr_ = g.AttributeIdOf(query.group_by.attribute);
  }
  for (const Filter& f : query.filters) {
    session->resolved_filters_.emplace_back(g.AttributeIdOf(f.attribute), f);
  }
  session->s1_ms_ = s1_timer.ElapsedMillis();
  return session;
}

void QuerySession::DrawAndValidate(size_t k) {
  if (candidates_.empty() || k == 0) return;
  ThreadPool& pool = GlobalPool();

  // (1) Draw k candidate indices through the alias table. Large batches
  // are partitioned into fixed slices, each filled by its own Rng forked
  // (in slice order, on this thread) from the session stream. The slice
  // count is a function of k alone — never of the pool size — so a given
  // seed produces the same sample on any machine, not just any run.
  draw_scratch_.resize(k);
  const size_t kMinDrawsPerSlice = 4096;
  const size_t kMaxSlices = 16;
  const size_t slices =
      std::min(kMaxSlices, std::max<size_t>(1, k / kMinDrawsPerSlice));
  if (slices <= 1) {
    for (size_t d = 0; d < k; ++d) draw_scratch_[d] = alias_.Draw(rng_);
  } else {
    const size_t per = (k + slices - 1) / slices;
    std::vector<Rng> slice_rng;
    slice_rng.reserve(slices);
    for (size_t s = 0; s < slices; ++s) slice_rng.push_back(rng_.Fork());
    ParallelFor(pool, slices, [&](size_t s) {
      const size_t lo = s * per;
      const size_t hi = std::min(k, lo + per);
      for (size_t d = lo; d < hi; ++d) {
        draw_scratch_[d] = alias_.Draw(slice_rng[s]);
      }
    });
  }

  // Federated sessions outsource steps (2) and (3): the owning shards
  // validate the drawn candidates and return the per-draw facts, which
  // fold into the sample exactly as a local run would. An unreachable
  // shard retires the run with kShardLost and NOTHING from the aborted
  // round appended — the partial estimate is the prior rounds', whole.
  if (evaluator_) {
    std::vector<NodeOutcome> outcomes;
    const Status st = evaluator_(
        std::span<const size_t>(draw_scratch_.data(), k), outcomes);
    if (!st.ok() || outcomes.size() != k) {
      stop_cause_ = StopCause::kShardLost;
      return;
    }
    for (size_t d = 0; d < k; ++d) {
      const size_t ci = draw_scratch_[d];
      SampleItem item;
      item.node = candidates_[ci];
      item.pi = probabilities_[ci];
      item.value = outcomes[d].value;
      item.correct = outcomes[d].correct;
      items_.push_back(item);
      group_keys_.push_back(outcomes[d].group_key);
    }
    return;
  }

  // (2) Validate the distinct drawn nodes up front, in parallel across the
  // shared pool; the per-draw loop below then only takes cache hits.
  // Later branches are warmed only with nodes every earlier branch scored
  // positive — the same short-circuit the fold applies, so no branch runs
  // a chain search the lazy path would have skipped.
  if (options_.validate_correctness) {
    warm_scratch_.clear();
    warm_scratch_.reserve(draw_scratch_.size());
    for (size_t ci : draw_scratch_) warm_scratch_.push_back(candidates_[ci]);
    for (const auto& b : branches_) {
      b->WarmValidationCache(warm_scratch_, pool);
      if (&b != &branches_.back()) {
        size_t kept = 0;
        for (NodeId u : warm_scratch_) {
          if (b->ValidateSimilarity(u) > 0.0) warm_scratch_[kept++] = u;
        }
        warm_scratch_.resize(kept);
      }
    }
  }

  // (3) Fold each draw into the sample (Definition 6 correctness, filters,
  // value/group lookup) — sequential and cheap; after the warm pass the
  // EvaluateCandidate calls only take cache hits.
  for (size_t d = 0; d < k; ++d) {
    const size_t ci = draw_scratch_[d];
    const NodeOutcome o = EvaluateCandidate(ci);
    SampleItem item;
    item.node = candidates_[ci];
    item.pi = probabilities_[ci];
    item.value = o.value;
    item.correct = o.correct;
    items_.push_back(item);
    group_keys_.push_back(o.group_key);
  }
}

NodeOutcome QuerySession::EvaluateCandidate(size_t index) const {
  const NodeId u = candidates_[index];
  NodeOutcome out;

  // Correctness validation (§IV-B2): the branch-combined greedy match
  // similarity must reach tau; for complex shapes every branch must
  // match (the intersection semantics of §V-B), so the minimum governs.
  bool correct = true;
  if (options_.validate_correctness) {
    double sim = 1.0;
    for (const auto& b : branches_) {
      sim = std::min(sim, b->ValidateSimilarity(u));
      if (sim <= 0.0) break;
    }
    correct = sim >= options_.tau;
  }

  // Filter predicates fold into validation (Definition 6: c(u) = 1 iff
  // L <= u.b <= U and s_i >= tau).
  if (correct) {
    for (const auto& [attr, f] : resolved_filters_) {
      auto v = g_->Attribute(u, attr);
      if (!v.has_value() || *v < f.lower || *v > f.upper) {
        correct = false;
        break;
      }
    }
  }

  const bool needs_value = query_.function != AggregateFunction::kCount &&
                           value_attr_ != kInvalidId;
  double value = 0.0;
  if (correct && needs_value) {
    auto v = g_->Attribute(u, value_attr_);
    if (v.has_value()) {
      value = *v;
    } else {
      // SUM/AVG/MAX/MIN cannot use an answer without the attribute.
      correct = false;
    }
  }
  out.value = value;
  out.correct = correct;

  if (group_attr_ != kInvalidId) {
    auto v = g_->Attribute(u, group_attr_);
    if (v.has_value()) {
      out.group_key = static_cast<int64_t>(
          std::floor(*v / query_.group_by.bucket_width));
    } else {
      out.correct = false;  // ungroupable answers drop out
    }
  }
  return out;
}

void QuerySession::EvaluateBatch(std::span<const size_t> indices,
                                 std::vector<NodeOutcome>& out) const {
  // Same warm pass as the local draw path (including the inter-branch
  // positive filter), so a shard answering a validate RPC runs exactly
  // the chain searches a local fold would have.
  if (options_.validate_correctness && !branches_.empty()) {
    std::vector<NodeId> warm;
    warm.reserve(indices.size());
    for (size_t ci : indices) warm.push_back(candidates_[ci]);
    ThreadPool& pool = GlobalPool();
    for (const auto& b : branches_) {
      b->WarmValidationCache(warm, pool);
      if (&b != &branches_.back()) {
        size_t kept = 0;
        for (NodeId u : warm) {
          if (b->ValidateSimilarity(u) > 0.0) warm[kept++] = u;
        }
        warm.resize(kept);
      }
    }
  }
  out.clear();
  out.reserve(indices.size());
  for (size_t ci : indices) out.push_back(EvaluateCandidate(ci));
}

std::unique_ptr<QuerySession> QuerySession::CreateFederated(
    FederatedSessionSpec spec) {
  auto session = std::unique_ptr<QuerySession>(new QuerySession());
  session->options_ = spec.options;
  session->query_ = spec.query;
  session->rng_ = Rng(spec.options.seed);
  session->candidates_ = std::move(spec.candidates);
  session->probabilities_ = std::move(spec.probabilities);
  session->alias_ = AliasTable(session->probabilities_);
  session->evaluator_ = std::move(spec.evaluator);
  // GROUP-BY routing in StepRound keys off group_attr_ != kInvalidId; the
  // id itself is never dereferenced here because the local fold (the only
  // consumer of the id) is bypassed by the evaluator.
  session->group_attr_ = spec.group_by_enabled ? 0 : kInvalidId;
  return session;
}

std::vector<SampleItem> QuerySession::GroupView(int64_t key) const {
  // Same draw vector with out-of-group items masked incorrect: keeps the
  // |S_A| divisor of the HT estimators intact so each group's estimate
  // targets f_a over that group's correct answers.
  std::vector<SampleItem> view(items_.begin(), items_.end());
  for (size_t i = 0; i < view.size(); ++i) {
    if (group_keys_[i] != key) view[i].correct = false;
  }
  return view;
}

void QuerySession::SetStopControl(const std::atomic<bool>* cancel,
                                  Deadline deadline) {
  cancel_requested_ = cancel;
  deadline_ = deadline;
  shed_requested_.store(false, std::memory_order_release);
  stop_cause_ = StopCause::kNone;
}

bool QuerySession::ShouldStop() {
  if (stop_cause_ != StopCause::kNone) return true;
  if (cancel_requested_ != nullptr &&
      cancel_requested_->load(std::memory_order_acquire)) {
    stop_cause_ = StopCause::kCancelled;
    return true;
  }
  if (deadline_.expired()) {
    stop_cause_ = StopCause::kDeadlineExceeded;
    return true;
  }
  if (shed_requested_.load(std::memory_order_acquire)) {
    stop_cause_ = StopCause::kShed;
    return true;
  }
  return false;
}

void QuerySession::BeginRun(double error_bound) {
  run_ = RunState{};
  run_.error_bound = error_bound;
  run_.finished = false;
  stop_cause_ = StopCause::kNone;
  s2_.Reset();
  s3_.Reset();

  if (!HasAccuracyGuarantee(query_.function)) {
    run_.extreme = true;
    run_.per_round = std::max<size_t>(
        8, static_cast<size_t>(std::ceil(options_.extreme_sample_fraction *
                                         static_cast<double>(
                                             candidates_.size()))));
    // extreme_rounds == 0 means "estimate from the sample already
    // collected, draw nothing" — finish before any StepRound draws.
    if (options_.extreme_rounds == 0) run_.finished = true;
    return;
  }

  run_.out.confidence_level = options_.confidence_level;
  run_.out.error_bound = error_bound;
  run_.out.num_candidates = candidates_.size();
  if (candidates_.empty()) {
    run_.out.satisfied = true;
    run_.finished = true;
    return;
  }

  // Initial desired sample: |S_A| = t * N^m with N = lambda |A| (§IV-C).
  const double n_desired =
      options_.sample_ratio * static_cast<double>(candidates_.size());
  run_.target = std::max(
      options_.min_initial_draws,
      static_cast<size_t>(std::ceil(
          static_cast<double>(options_.blb.t) *
          std::pow(std::max(n_desired, 1.0), options_.blb.m))));
}

bool QuerySession::StepRound() {
  if (run_.finished) return true;

  // Cooperative stop point: checked before the round's draws, so a
  // cancelled or expired query consumes no further Rng stream and every
  // completed round's sample stays intact for the partial estimate.
  if (ShouldStop()) {
    run_.finished = true;
    return true;
  }

  if (run_.extreme) {
    s2_.Start();
    DrawAndValidate(run_.per_round);
    s2_.Stop();
    if (stop_cause_ == StopCause::kShardLost) {
      // The aborted round appended nothing; retire on what prior rounds
      // collected (possibly an empty sample — the caller checks rounds).
      run_.finished = true;
      return true;
    }
    ++rounds_total_;
    if (++run_.extreme_rounds_done >= options_.extreme_rounds) {
      run_.finished = true;
    }
    return run_.finished;
  }

  ++run_.rounds_this_call;
  ++rounds_total_;

  s2_.Start();
  if (items_.size() < run_.target) {
    DrawAndValidate(run_.target - items_.size());
  }
  if (stop_cause_ == StopCause::kShardLost) {
    // A federated round lost its shard mid-draw: the round appended
    // nothing, so back out its round counts (rounds_completed() drives
    // "has a single-round estimate" degradation decisions) and keep
    // run_.out as the last completed round's estimate.
    s2_.Stop();
    --run_.rounds_this_call;
    --rounds_total_;
    run_.finished = true;
    return true;
  }
  const double v_hat = HtEstimator::Estimate(query_.function, items_);
  s2_.Stop();

  s3_.Start();
  const BlbResult blb = BagOfLittleBootstraps(
      items_, query_.function, options_.confidence_level, options_.blb,
      rng_);
  s3_.Stop();

  run_.out.v_hat = v_hat;
  run_.out.moe = blb.moe;
  trace_.push_back({rounds_total_, v_hat, blb.moe, items_.size(),
                    HtEstimator::CountCorrect(items_)});

  bool satisfied;
  const size_t correct = HtEstimator::CountCorrect(items_);
  if (correct < options_.min_correct_draws) {
    // Too few correct draws: both the estimate and its bootstrap CI are
    // vacuous; force more sampling instead of terminating on them.
    satisfied = false;
  } else if (group_attr_ != kInvalidId) {
    // GROUP-BY: every group with enough support must meet Theorem 2.
    s3_.Start();
    std::set<int64_t> keys;
    for (size_t i = 0; i < items_.size(); ++i) {
      if (items_[i].correct) keys.insert(group_keys_[i]);
    }
    run_.out.groups.clear();
    satisfied = true;
    for (int64_t key : keys) {
      auto view = GroupView(key);
      GroupEstimate ge;
      ge.bucket_lower =
          static_cast<double>(key) * query_.group_by.bucket_width;
      ge.v_hat = HtEstimator::Estimate(query_.function, view);
      ge.support = HtEstimator::CountCorrect(view);
      const BlbResult gb = BagOfLittleBootstraps(
          view, query_.function, options_.confidence_level, options_.blb,
          rng_);
      ge.moe = gb.moe;
      ge.satisfied = SatisfiesErrorBound(gb.moe, ge.v_hat, run_.error_bound);
      if (ge.support >= options_.group_min_support && !ge.satisfied) {
        satisfied = false;
      }
      run_.out.groups.push_back(ge);
    }
    s3_.Stop();
  } else {
    satisfied = SatisfiesErrorBound(blb.moe, v_hat, run_.error_bound);
  }

  if (satisfied) {
    run_.out.satisfied = true;
    run_.finished = true;
    return true;
  }
  if (run_.rounds_this_call >= options_.max_rounds ||
      items_.size() >= options_.max_total_draws) {
    run_.finished = true;
    return true;
  }

  // Error-based |Delta S_A| configuration (Eq. 12), or the fixed
  // increment of the Fig. 5c ablation.
  size_t delta;
  if (options_.fixed_increment > 0) {
    delta = options_.fixed_increment;
  } else if (correct < options_.min_correct_draws || v_hat == 0.0 ||
             !std::isfinite(blb.moe)) {
    delta = items_.size();  // geometric growth until signal appears
  } else {
    delta = ConfigureSampleIncrement(items_.size(), blb.moe, v_hat,
                                     run_.error_bound, options_.blb.m);
  }
  run_.target = std::min(items_.size() + delta, options_.max_total_draws);
  return false;
}

AggregateResult QuerySession::FinishRun() {
  run_.finished = true;

  // The borrow epoch ends here: unpin everything acquired at session
  // build (idempotent across repeated runs) and give a governed context
  // the chance to reclaim the newly unpinned bytes right away.
  pins_.Release();
  if (ctx_ != nullptr) ctx_->EvictToBudget();

  if (run_.extreme) {
    s2_.Start();
    AggregateResult out;
    out.v_hat = options_.use_evt_for_extremes
                    ? EstimateExtremeEvt(query_.function, items_)
                    : HtEstimator::Estimate(query_.function, items_);
    out.moe = 0.0;
    out.confidence_level = options_.confidence_level;
    out.error_bound = run_.error_bound;
    out.satisfied = false;  // extreme functions carry no guarantee (§VII-B)
    out.rounds = rounds_total_;
    out.total_draws = items_.size();
    out.num_candidates = candidates_.size();
    out.correct_draws = HtEstimator::CountCorrect(items_);
    s2_.Stop();
    out.timings.s2_estimation_ms = s2_.TotalMillis();
    if (!s1_reported_) {
      out.timings.s1_sampling_ms = s1_ms_;
      s1_reported_ = true;
    }
    out.timings.total_ms =
        out.timings.s1_sampling_ms + out.timings.s2_estimation_ms;
    return out;
  }

  AggregateResult out = std::move(run_.out);
  run_.out = AggregateResult{};
  if (candidates_.empty()) {
    if (!s1_reported_) {
      out.timings.s1_sampling_ms = s1_ms_;
      s1_reported_ = true;
    }
    out.timings.total_ms = out.timings.s1_sampling_ms;
    return out;
  }

  out.rounds = run_.rounds_this_call;
  out.total_draws = items_.size();
  out.correct_draws = HtEstimator::CountCorrect(items_);
  out.trace = trace_;
  out.timings.s2_estimation_ms = s2_.TotalMillis();
  out.timings.s3_accuracy_ms = s3_.TotalMillis();
  if (!s1_reported_) {
    out.timings.s1_sampling_ms = s1_ms_;
    s1_reported_ = true;
  }
  out.timings.total_ms = out.timings.s1_sampling_ms +
                         out.timings.s2_estimation_ms +
                         out.timings.s3_accuracy_ms;
  return out;
}

AggregateResult QuerySession::RunToErrorBound(double error_bound) {
  BeginRun(error_bound);
  while (!StepRound()) {
  }
  return FinishRun();
}

}  // namespace kgaq
