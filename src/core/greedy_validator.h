#ifndef KGAQ_CORE_GREEDY_VALIDATOR_H_
#define KGAQ_CORE_GREEDY_VALIDATOR_H_

#include <span>
#include <vector>

#include "embedding/predicate_similarity.h"
#include "kg/knowledge_graph.h"
#include "sampling/transition_model.h"

namespace kgaq {

/// Correctness validation for sampled answers (§IV-B2).
///
/// Enumerating all subgraph matches of an answer is exponential; instead a
/// greedy best-first search guided by stationary visiting probabilities
/// expands the most-visited frontier node first and records paths reaching
/// the answer. The search stops after `repeat_factor` distinct paths are
/// found (the paper's r; r = 3 balances false negatives vs cost, Fig. 6c)
/// and returns the best Eq. 2 similarity among them.
///
/// The heuristic is false-positive free: it maximizes over a *subset* of
/// the answer's matches, so it never reports a similarity above the true
/// Eq. 3 maximum — an incorrect answer can never validate as correct.
class GreedyValidator {
 public:
  struct Options {
    int repeat_factor = 3;
    int max_hops = 3;
    /// Safety cap on priority-queue pops per validation.
    size_t max_expansions = 200000;
    /// Scope size at which ComputeAllMatches shards its traversal across
    /// GlobalPool() (0 forces sharding, SIZE_MAX disables it).
    size_t shard_min_scope = 4096;
    /// First-hop shard count for the sharded traversal. Fixed by options —
    /// never by thread count — so results are machine-independent.
    size_t num_shards = 8;
  };

  /// `pi` is the stationary distribution over `model`'s scope-local nodes.
  GreedyValidator(const KnowledgeGraph& g, const TransitionModel& model,
                  std::span<const double> pi,
                  const PredicateSimilarityCache& sims,
                  const Options& options);

  /// Best match found from the walk source to `target`.
  struct Match {
    bool found = false;
    double similarity = 0.0;
    int length = 0;
    /// Number of distinct source->target paths examined (<= repeat_factor).
    int paths_examined = 0;
  };
  Match FindBestMatch(NodeId target) const;

  /// Batched variant: one pi-guided traversal recording, for *every* scope
  /// node, the best similarity among its first `repeat_factor` path
  /// arrivals. Paths are enumerated in the same global order as
  /// FindBestMatch (the expansion order does not depend on the target), so
  /// per-node results coincide with per-target searches while costing one
  /// traversal for all candidates. Indexed by scope-local id.
  ///
  /// For scopes of at least Options::shard_min_scope nodes the traversal
  /// shards across GlobalPool() (see ComputeAllMatchesSharded); smaller
  /// scopes run the serial traversal.
  std::vector<Match> ComputeAllMatches(size_t max_expansions = 500000) const;

  /// The single-threaded batched traversal (reference implementation).
  std::vector<Match> ComputeAllMatchesSerial(
      size_t max_expansions = 500000) const;

  /// Pool-parallel batched traversal. The search tree below the source is
  /// partitioned by first hop: shard j owns the source's out-arcs j, j+S,
  /// j+2S, ... and runs an independent best-first traversal of its
  /// subtrees (subtrees are disjoint, so no shared state). A state becomes
  /// poppable exactly when its parent pops and parents never cross shards,
  /// so each shard's pop sequence is the serial schedule restricted to its
  /// subtrees; a priority-ordered merge of the shard sequences therefore
  /// replays the serial global schedule, and running the per-node
  /// recording rule over it (capped at `max_expansions` pops, like the
  /// serial loop) reproduces the serial matches — among states of exactly
  /// equal priority only the reported path length may differ. Shards start
  /// at twice their fair share of the cap and any shard that stops on its
  /// budget while the merged schedule still wants entries is doubled and
  /// re-run, so parity with the serial schedule holds even for imbalanced
  /// subtrees while a genuinely binding cap costs ~2x the serial work at
  /// most. The shard partition is fixed by `num_shards`, never by pool
  /// width, so results are bitwise-deterministic.
  std::vector<Match> ComputeAllMatchesSharded(size_t max_expansions,
                                              size_t num_shards) const;

 private:
  const KnowledgeGraph* g_;
  const TransitionModel* model_;
  std::span<const double> pi_;
  const PredicateSimilarityCache* sims_;
  Options options_;
};

}  // namespace kgaq

#endif  // KGAQ_CORE_GREEDY_VALIDATOR_H_
