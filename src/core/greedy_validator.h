#ifndef KGAQ_CORE_GREEDY_VALIDATOR_H_
#define KGAQ_CORE_GREEDY_VALIDATOR_H_

#include <span>
#include <vector>

#include "embedding/predicate_similarity.h"
#include "kg/knowledge_graph.h"
#include "sampling/transition_model.h"

namespace kgaq {

/// Correctness validation for sampled answers (§IV-B2).
///
/// Enumerating all subgraph matches of an answer is exponential; instead a
/// greedy best-first search guided by stationary visiting probabilities
/// expands the most-visited frontier node first and records paths reaching
/// the answer. The search stops after `repeat_factor` distinct paths are
/// found (the paper's r; r = 3 balances false negatives vs cost, Fig. 6c)
/// and returns the best Eq. 2 similarity among them.
///
/// The heuristic is false-positive free: it maximizes over a *subset* of
/// the answer's matches, so it never reports a similarity above the true
/// Eq. 3 maximum — an incorrect answer can never validate as correct.
class GreedyValidator {
 public:
  struct Options {
    int repeat_factor = 3;
    int max_hops = 3;
    /// Safety cap on priority-queue pops per validation.
    size_t max_expansions = 200000;
  };

  /// `pi` is the stationary distribution over `model`'s scope-local nodes.
  GreedyValidator(const KnowledgeGraph& g, const TransitionModel& model,
                  std::span<const double> pi,
                  const PredicateSimilarityCache& sims,
                  const Options& options);

  /// Best match found from the walk source to `target`.
  struct Match {
    bool found = false;
    double similarity = 0.0;
    int length = 0;
    /// Number of distinct source->target paths examined (<= repeat_factor).
    int paths_examined = 0;
  };
  Match FindBestMatch(NodeId target) const;

  /// Batched variant: one pi-guided traversal recording, for *every* scope
  /// node, the best similarity among its first `repeat_factor` path
  /// arrivals. Paths are enumerated in the same global order as
  /// FindBestMatch (the expansion order does not depend on the target), so
  /// per-node results coincide with per-target searches while costing one
  /// traversal for all candidates. Indexed by scope-local id.
  std::vector<Match> ComputeAllMatches(size_t max_expansions = 500000) const;

 private:
  const KnowledgeGraph* g_;
  const TransitionModel* model_;
  std::span<const double> pi_;
  const PredicateSimilarityCache* sims_;
  Options options_;
};

}  // namespace kgaq

#endif  // KGAQ_CORE_GREEDY_VALIDATOR_H_
