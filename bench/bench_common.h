#ifndef KGAQ_BENCH_BENCH_COMMON_H_
#define KGAQ_BENCH_BENCH_COMMON_H_

// Shared plumbing for the table/figure reproduction harnesses. Each bench
// binary regenerates one table or figure of the paper's §VII on the three
// synthetic dataset profiles, printing rows in the paper's layout.

#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/eaq.h"
#include "baselines/exact_matcher.h"
#include "baselines/grab.h"
#include "baselines/qga.h"
#include "baselines/sgq.h"
#include "baselines/ssb.h"
#include "common/timer.h"
#include "core/approx_engine.h"
#include "datagen/kg_generator.h"
#include "datagen/tau_tuning.h"
#include "datagen/workload_generator.h"

namespace kgaq::bench {

/// Scale of the bench datasets relative to the default profile; override
/// with the KGAQ_BENCH_SCALE environment variable.
inline double BenchScale() {
  const char* s = std::getenv("KGAQ_BENCH_SCALE");
  return s == nullptr ? 1.0 : std::atof(s);
}

/// Cached generated dataset per profile name.
inline const GeneratedDataset& Dataset(const std::string& name) {
  static std::map<std::string, std::unique_ptr<GeneratedDataset>> cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    DatasetProfile profile =
        name == "Freebase" ? DatasetProfile::Freebase(BenchScale())
        : name == "Yago2"  ? DatasetProfile::Yago2(BenchScale())
                           : DatasetProfile::Dbpedia(BenchScale());
    auto r = KgGenerator::Generate(profile);
    if (!r.ok()) {
      std::fprintf(stderr, "dataset generation failed: %s\n",
                   r.status().ToString().c_str());
      std::abort();
    }
    it = cache.emplace(name, std::make_unique<GeneratedDataset>(
                                 std::move(*r)))
             .first;
  }
  return *it->second;
}

inline const std::vector<std::string>& DatasetNames() {
  static const std::vector<std::string> names = {"DBpedia", "Freebase",
                                                 "Yago2"};
  return names;
}

inline const GeneratedDataset& DatasetByDisplayName(const std::string& n) {
  return Dataset(n == "DBpedia" ? "DBpedia" : n);
}

/// One method run: the aggregate value it produced and its response time.
struct MethodRun {
  bool ok = false;
  bool supported = true;
  double value = 0.0;
  double millis = 0.0;
};

inline double RelativeErrorPct(double value, double truth) {
  if (truth == 0.0) return value == 0.0 ? 0.0 : 100.0;
  return 100.0 * std::abs(value - truth) / std::abs(truth);
}

/// The methods of §VII-A. "JENA" and "Virtuoso" are both exact-schema
/// SPARQL semantics (identical answers; Virtuoso is run with a small extra
/// dispatch just like the paper shows near-identical numbers).
inline const std::vector<std::string>& MethodNames() {
  static const std::vector<std::string> names = {
      "Ours", "EAQ", "GraB", "QGA", "SGQ", "JENA", "Virtuoso", "SSB"};
  return names;
}

struct MethodContext {
  const GeneratedDataset* ds;
  const EmbeddingModel* model;
  double tau = 0.85;
  EngineOptions engine_options;
};

inline MethodRun RunMethod(const std::string& method, const MethodContext& c,
                           const AggregateQuery& q) {
  MethodRun out;
  const KnowledgeGraph& g = c.ds->graph();
  WallTimer timer;
  if (method == "Ours") {
    EngineOptions opts = c.engine_options;
    opts.tau = c.tau;
    ApproxEngine engine(g, *c.model, opts);
    auto r = engine.Execute(q);
    if (r.ok()) {
      out.ok = true;
      out.value = r->v_hat;
    }
  } else if (method == "EAQ") {
    if (q.query.shape != QueryShape::kSimple || q.group_by.enabled()) {
      out.supported = false;
      return out;
    }
    Eaq eaq(g, *c.model);
    auto r = eaq.Execute(q);
    if (r.ok()) {
      out.ok = true;
      out.value = r->value;
    }
  } else if (method == "GraB" || method == "QGA") {
    if (q.group_by.enabled()) {
      out.supported = false;
      return out;
    }
    Result<BaselineResult> r =
        method == "GraB" ? GraB(g).Execute(q) : Qga(g).Execute(q);
    if (r.ok()) {
      out.ok = true;
      out.value = r->value;
    }
  } else if (method == "SGQ") {
    if (q.group_by.enabled()) {
      out.supported = false;
      return out;
    }
    SgqTopK::Options opts;
    opts.tau = c.tau;
    SgqTopK sgq(g, *c.model, opts);
    auto r = sgq.Execute(q);
    if (r.ok()) {
      out.ok = true;
      out.value = r->value;
    }
  } else if (method == "JENA" || method == "Virtuoso") {
    ExactMatcher m(g);
    auto r = m.Execute(q);
    if (r.ok()) {
      out.ok = true;
      out.value = r->value;
    }
  } else if (method == "SSB") {
    Ssb::Options opts;
    opts.tau = c.tau;
    Ssb ssb(g, *c.model, opts);
    auto r = ssb.Execute(q);
    if (r.ok()) {
      out.ok = true;
      out.value = r->value;
    }
  }
  out.millis = timer.ElapsedMillis();
  return out;
}

/// Queries of one shape for effectiveness/efficiency tables.
inline std::vector<BenchmarkQuery> ShapeWorkload(const GeneratedDataset& ds,
                                                 QueryShape shape,
                                                 size_t count,
                                                 uint64_t seed = 77) {
  WorkloadOptions opts;
  opts.num_simple = opts.num_filter = opts.num_group_by = opts.num_chain =
      opts.num_star = opts.num_cycle = opts.num_flower = 0;
  opts.seed = seed;
  switch (shape) {
    case QueryShape::kSimple:
      opts.num_simple = count;
      break;
    case QueryShape::kChain:
      opts.num_chain = count;
      break;
    case QueryShape::kStar:
      opts.num_star = count;
      break;
    case QueryShape::kCycle:
      opts.num_cycle = count;
      break;
    case QueryShape::kFlower:
      opts.num_flower = count;
      break;
  }
  return WorkloadGenerator::Generate(ds, opts);
}

/// tau-GT value via SSB (the evaluation's exact oracle).
inline Result<double> TauGroundTruth(const MethodContext& c,
                                     const AggregateQuery& q) {
  Ssb::Options opts;
  opts.tau = c.tau;
  Ssb ssb(c.ds->graph(), *c.model, opts);
  auto r = ssb.Execute(q);
  if (!r.ok()) return r.status();
  return r->value;
}

inline void PrintHeader(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

}  // namespace kgaq::bench

// google-benchmark-based harnesses (bench_micro) define
// KGAQ_BENCH_USE_GOOGLE_BENCHMARK before including this header; the
// table/figure reproductions are plain mains and must not pull in the
// benchmark library.
#ifdef KGAQ_BENCH_USE_GOOGLE_BENCHMARK
#include <benchmark/benchmark.h>

#include <cstring>

namespace kgaq::bench {

/// Runs the registered benchmarks, defaulting --benchmark_out to
/// `default_out` in JSON format so every invocation leaves a
/// machine-readable result file (explicit --benchmark_out wins).
inline int RunBenchmarksWithJsonDefault(int argc, char** argv,
                                        const char* default_out) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    // Exactly --benchmark_out or --benchmark_out=<file>; must not match
    // --benchmark_out_format, which alone names no output file.
    if (std::strcmp(argv[i], "--benchmark_out") == 0 ||
        std::strncmp(argv[i], "--benchmark_out=", 16) == 0) {
      has_out = true;
    }
  }
  std::string out_flag, format_flag;
  if (!has_out) {
    out_flag = std::string("--benchmark_out=") + default_out;
    format_flag = "--benchmark_out_format=json";
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int effective_argc = static_cast<int>(args.size());
  benchmark::Initialize(&effective_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(effective_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace kgaq::bench
#endif  // KGAQ_BENCH_USE_GOOGLE_BENCHMARK

#endif  // KGAQ_BENCH_BENCH_COMMON_H_
