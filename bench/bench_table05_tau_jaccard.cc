// Table V: average Jaccard similarity (AJS) between the human-annotated
// and tau-relevant correct answers, and its variance, as tau sweeps
// 0.60..0.95 over the three datasets. Expectation (paper shape): AJS peaks
// near the dataset's optimal tau (~0.85 for the DBpedia profile, ~0.80 for
// the offset Freebase/Yago2 profiles) and falls off on both sides.
#include "bench/bench_common.h"

int main() {
  using namespace kgaq;
  using namespace kgaq::bench;

  PrintHeader("Table V: AJS between HA-annotated and tau-relevant answers");
  std::vector<double> taus;
  for (double t = 0.60; t <= 0.951; t += 0.05) taus.push_back(t);

  std::printf("%-14s", "Threshold tau");
  for (double t : taus) std::printf("  %6.2f", t);
  std::printf("\n");

  for (const auto& name : DatasetNames()) {
    const GeneratedDataset& ds = Dataset(name);
    // 35% of a 40-query simple workload as annotated probes (paper: 35%).
    WorkloadOptions wopts;
    wopts.num_simple = 14;
    wopts.num_filter = wopts.num_group_by = wopts.num_chain = 0;
    wopts.num_star = wopts.num_cycle = wopts.num_flower = 0;
    auto probes = WorkloadGenerator::Generate(ds, wopts);
    auto sweep = SweepTau(ds, ds.reference_embedding(), probes, taus);
    if (!sweep.ok()) {
      std::fprintf(stderr, "sweep failed: %s\n",
                   sweep.status().ToString().c_str());
      return 1;
    }
    std::printf("%-11s-AJS", name.c_str());
    for (const auto& pt : *sweep) std::printf("  %6.3f", pt.avg_jaccard);
    std::printf("\n%-11s-Var", name.c_str());
    for (const auto& pt : *sweep) std::printf("  %6.3f", pt.variance);
    std::printf("\n");
    std::printf("  -> optimal tau for %s: %.2f\n", name.c_str(),
                PickBestTau(*sweep));
  }
  return 0;
}
