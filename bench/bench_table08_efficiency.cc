// Table VIII: average response time (ms) of every method for every query
// shape over the three datasets. Expected shape (paper): "Ours" is fastest
// (no factoid query evaluation); SSB is slowest (exhaustive enumeration);
// time grows with shape complexity for every method.
#include "bench/bench_common.h"

int main() {
  using namespace kgaq;
  using namespace kgaq::bench;

  const std::vector<std::pair<QueryShape, const char*>> shapes = {
      {QueryShape::kSimple, "Simple"}, {QueryShape::kChain, "Chain"},
      {QueryShape::kStar, "Star"},     {QueryShape::kCycle, "Cycle"},
      {QueryShape::kFlower, "Flower"},
  };
  const size_t kQueriesPerShape = 3;

  PrintHeader("Table VIII: average response time (ms)");
  std::printf("%-9s", "Method");
  for (const auto& dname : DatasetNames()) {
    for (const auto& [shape, sname] : shapes) {
      std::printf(" %3.3s/%-6.6s", dname.c_str(), sname);
    }
  }
  std::printf("\n");

  for (const auto& method : MethodNames()) {
    std::printf("%-9s", method.c_str());
    for (const auto& dname : DatasetNames()) {
      const GeneratedDataset& ds = Dataset(dname);
      MethodContext ctx;
      ctx.ds = &ds;
      ctx.model = &ds.reference_embedding();
      for (const auto& [shape, sname] : shapes) {
        auto queries = ShapeWorkload(ds, shape, kQueriesPerShape);
        double total = 0.0;
        int n = 0;
        for (const auto& bq : queries) {
          auto run = RunMethod(method, ctx, bq.query);
          if (!run.supported || !run.ok) continue;
          total += run.millis;
          ++n;
        }
        if (n == 0) {
          std::printf(" %10s", "-");
        } else {
          std::printf(" %10.1f", total / n);
        }
      }
    }
    std::printf("\n");
  }
  return 0;
}
