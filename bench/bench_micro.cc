// Micro-benchmarks (google-benchmark) for the pipeline's hot paths:
// transition-model construction, stationary-distribution convergence,
// answer draws, greedy validation, HT estimation, and the Poissonized BLB.
// These back the design choices called out in DESIGN.md §4.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "estimate/bootstrap.h"
#include "estimate/ht_estimator.h"
#include "kg/bfs.h"
#include "sampling/answer_sampler.h"
#include "sampling/random_walk.h"

namespace {

using namespace kgaq;
using namespace kgaq::bench;

struct MicroFixture {
  const GeneratedDataset& ds = Dataset("DBpedia");
  const KnowledgeGraph& g = ds.graph();
  NodeId hub = ds.hubs()[0];
  PredicateId pred = g.PredicateIdOf(ds.domains()[0].query_predicate);
  PredicateSimilarityCache sims{ds.reference_embedding(), pred};
  BoundedSubgraph scope = BoundedBfs(g, hub, 3);
};

MicroFixture& Fixture() {
  static MicroFixture* f = new MicroFixture();
  return *f;
}

void BM_BoundedBfs(benchmark::State& state) {
  auto& f = Fixture();
  for (auto _ : state) {
    auto scope = BoundedBfs(f.g, f.hub, static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(scope.nodes.size());
  }
}
BENCHMARK(BM_BoundedBfs)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

void BM_TransitionModelBuild(benchmark::State& state) {
  auto& f = Fixture();
  for (auto _ : state) {
    TransitionModel tm(f.g, f.scope, f.sims);
    benchmark::DoNotOptimize(tm.NumScopeNodes());
  }
}
BENCHMARK(BM_TransitionModelBuild);

void BM_StationaryDistribution(benchmark::State& state) {
  auto& f = Fixture();
  TransitionModel tm(f.g, f.scope, f.sims);
  for (auto _ : state) {
    auto st = ComputeStationaryDistribution(tm);
    benchmark::DoNotOptimize(st.pi.data());
  }
}
BENCHMARK(BM_StationaryDistribution);

void BM_WalkStepExactVsRejection(benchmark::State& state) {
  auto& f = Fixture();
  TransitionModel tm(f.g, f.scope, f.sims);
  Rng rng(1);
  size_t cur = tm.SourceLocal();
  const bool rejection = state.range(0) == 1;
  for (auto _ : state) {
    cur = rejection ? tm.SampleNextRejection(cur, rng)
                    : tm.SampleNext(cur, rng);
    benchmark::DoNotOptimize(cur);
  }
}
BENCHMARK(BM_WalkStepExactVsRejection)->Arg(0)->Arg(1);

void BM_AnswerDraw(benchmark::State& state) {
  auto& f = Fixture();
  TransitionModel tm(f.g, f.scope, f.sims);
  auto st = ComputeStationaryDistribution(tm);
  std::vector<TypeId> types = {
      f.g.TypeIdOf(f.ds.domains()[0].answer_type)};
  AnswerSampler sampler(f.g, tm, st.pi, types);
  Rng rng(2);
  for (auto _ : state) {
    auto draws = sampler.Draw(64, rng);
    benchmark::DoNotOptimize(draws.data());
  }
}
BENCHMARK(BM_AnswerDraw);

void BM_GreedyValidationBatch(benchmark::State& state) {
  auto& f = Fixture();
  TransitionModel tm(f.g, f.scope, f.sims);
  auto st = ComputeStationaryDistribution(tm);
  GreedyValidator::Options opts;
  GreedyValidator v(f.g, tm, st.pi, f.sims, opts);
  for (auto _ : state) {
    auto matches = v.ComputeAllMatches();
    benchmark::DoNotOptimize(matches.data());
  }
}
BENCHMARK(BM_GreedyValidationBatch);

std::vector<SampleItem> MakeItems(size_t n) {
  Rng rng(3);
  std::vector<SampleItem> items(n);
  for (size_t i = 0; i < n; ++i) {
    items[i].node = static_cast<NodeId>(i);
    items[i].value = 10.0 + rng.NextDouble() * 5;
    items[i].pi = 0.001 + rng.NextDouble() * 0.01;
    items[i].correct = rng.NextBernoulli(0.3);
  }
  return items;
}

void BM_HtEstimate(benchmark::State& state) {
  auto items = MakeItems(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        HtEstimator::Estimate(AggregateFunction::kAvg, items));
  }
}
BENCHMARK(BM_HtEstimate)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_BagOfLittleBootstraps(benchmark::State& state) {
  auto items = MakeItems(static_cast<size_t>(state.range(0)));
  Rng rng(4);
  for (auto _ : state) {
    auto blb = BagOfLittleBootstraps(items, AggregateFunction::kAvg, 0.95,
                                     {}, rng);
    benchmark::DoNotOptimize(blb.moe);
  }
}
BENCHMARK(BM_BagOfLittleBootstraps)->Arg(1000)->Arg(10000)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
